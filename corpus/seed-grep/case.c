
char buf[8192];
char pat[16];
int n;
int plen;
int matches;
int lines;

int check(int pos) {
  int k;
  for (k = 1; k < plen; k = k + 1) {
    if (buf[pos + k] != pat[k]) return 0;
  }
  return 1;
}

int main() {
  int i;
  int c;
  int p0;
  p0 = pat[0];
  i = 0;
  while (i < n) {
    c = buf[i];
    if (c == p0) {
      if (check(i)) matches = matches + 1;
    }
    if (c == '\n') lines = lines + 1;
    if (c == 0) i = n;
    i = i + 1;
  }
  return matches * 10000 + lines;
}
