
float inputs[1024];
float w1[2048];
float hidden[32];
float w2[64];
float outputs[2];
float target[2];
int npat;
int nin;
int nhid;

int main() {
  int p;
  int i;
  int h;
  int o;
  float acc;
  float err;
  float total;
  total = 0.0;
  for (p = 0; p < npat; p = p + 1) {
    for (h = 0; h < nhid; h = h + 1) {
      acc = 0.0;
      for (i = 0; i < nin; i = i + 1) {
        acc = acc + inputs[p * nin + i] * w1[h * nin + i];
      }
      if (acc > 4.0) acc = 4.0;
      if (acc < 0.0 - 4.0) acc = 0.0 - 4.0;
      hidden[h] = acc / (1.0 + acc * acc);
    }
    for (o = 0; o < 2; o = o + 1) {
      acc = 0.0;
      for (h = 0; h < nhid; h = h + 1) {
        acc = acc + hidden[h] * w2[o * nhid + h];
      }
      outputs[o] = acc;
      err = target[o] - acc;
      if (err < 0.0) err = 0.0 - err;
      total = total + err;
    }
  }
  return (total * 1000.0) / 1.0;
}
