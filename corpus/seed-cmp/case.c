
char a[8192];
char b[8192];
int n;
int diffs;
int firstdiff;

int main() {
  int i;
  int ca;
  int cb;
  int lines;
  lines = 0;
  firstdiff = 0 - 1;
  for (i = 0; i < n; i = i + 1) {
    ca = a[i];
    cb = b[i];
    if (ca == '\n') lines = lines + 1;
    if (ca != cb) {
      diffs = diffs + 1;
      if (firstdiff < 0) firstdiff = i;
    }
  }
  return diffs * 100000 + (firstdiff + 1) * 10 + lines % 10;
}
