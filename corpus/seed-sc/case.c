
int kind[1024];
int parm[1024];
int value[1024];
int rows;
int cols;
int passes;

int main() {
  int p;
  int r;
  int c;
  int idx;
  int k;
  int acc;
  int left;
  int up;
  int total;
  for (p = 0; p < passes; p = p + 1) {
    for (r = 0; r < rows; r = r + 1) {
      for (c = 0; c < cols; c = c + 1) {
        idx = r * cols + c;
        k = kind[idx];
        if (k == 0) {
          value[idx] = parm[idx];
        } else if (k == 1) {
          left = 0;
          up = 0;
          if (c > 0) left = value[idx - 1];
          if (r > 0) up = value[idx - cols];
          value[idx] = (left + up + parm[idx]) % 100000;
        } else {
          left = 0;
          if (c > 0) left = value[idx - 1];
          if (left > parm[idx]) value[idx] = left - parm[idx];
          else value[idx] = parm[idx] - left;
        }
      }
    }
  }
  total = 0;
  for (idx = 0; idx < rows * cols; idx = idx + 1) {
    total = (total + value[idx]) % 1000003;
  }
  return total;
}
