
char buf[8192];
int n;
int cclass[128];
int delta[32];
int accept[8];
int counts[8];

int main() {
  int i;
  int c;
  int state;
  int cls;
  int nxt;
  state = 0;
  for (i = 0; i < n; i = i + 1) {
    c = buf[i];
    cls = cclass[c % 128];
    nxt = delta[state * 4 + cls];
    if (nxt != state) {
      if (accept[state] != 0) {
        counts[accept[state]] = counts[accept[state]] + 1;
      }
    }
    state = nxt;
  }
  return counts[1] * 10000 + counts[2] * 100 + counts[3];
}
