
int pta[4096];
int ptb[4096];
int nterms;
int width;
int order;

int cmppt(int a, int b) {
  int k;
  int va;
  int vb;
  for (k = 0; k < width; k = k + 1) {
    va = pta[a * width + k];
    vb = ptb[b * width + k];
    if (va < vb) return 0 - 1;
    if (va > vb) return 1;
  }
  return 0;
}

int main() {
  int i;
  int balance;
  balance = 0;
  order = 0;
  for (i = 0; i < nterms; i = i + 1) {
    order = cmppt(i, i);
    balance = balance + order;
    if (order == 0) balance = balance + 1;
  }
  return balance;
}
