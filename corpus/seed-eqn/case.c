
char buf[8192];
int n;
int words;
int numbers;
int operators;
int braces;
int spaces;

int main() {
  int i;
  int c;
  int state;
  state = 0;
  for (i = 0; i < n; i = i + 1) {
    c = buf[i];
    if (c >= 'a' && c <= 'z') {
      if (state != 1) { words = words + 1; state = 1; }
    } else if (c >= 'A' && c <= 'Z') {
      if (state != 1) { words = words + 1; state = 1; }
    } else if (c >= '0' && c <= '9') {
      if (state != 2) { numbers = numbers + 1; state = 2; }
    } else if (c == '{' || c == '}') {
      braces = braces + 1;
      state = 0;
    } else if (c == '+' || c == '-' || c == '^' || c == '/') {
      operators = operators + 1;
      state = 0;
    } else {
      spaces = spaces + 1;
      state = 0;
    }
  }
  return words * 100000 + numbers * 1000 + operators * 100
       + braces * 10 + spaces % 10;
}
