
int cubes[4096];
int ncubes;
int width;

int distance(int a, int b) {
  int k;
  int d;
  int va;
  int vb;
  int meet;
  d = 0;
  for (k = 0; k < width; k = k + 1) {
    va = cubes[a * width + k];
    vb = cubes[b * width + k];
    meet = va & vb;
    if (meet == 0) d = d + 1;
  }
  return d;
}

int contains(int a, int b) {
  int k;
  int va;
  int vb;
  for (k = 0; k < width; k = k + 1) {
    va = cubes[a * width + k];
    vb = cubes[b * width + k];
    if ((va & vb) != vb) return 0;
  }
  return 1;
}

int main() {
  int i;
  int j;
  int mergeable;
  int covered;
  mergeable = 0;
  covered = 0;
  for (i = 0; i < ncubes; i = i + 1) {
    for (j = i + 1; j < ncubes; j = j + 1) {
      if (distance(i, j) == 1) mergeable = mergeable + 1;
      if (contains(i, j)) covered = covered + 1;
    }
  }
  return mergeable * 1000 + covered;
}
