
char buf[8192];
char out[8192];
int htab[1024];
int hval[1024];
int n;

int main() {
  int i;
  int outpos;
  int prev;
  int c;
  int pair;
  int h;
  int run;
  outpos = 0;
  prev = 0 - 1;
  run = 0;
  for (i = 0; i < n; i = i + 1) {
    c = buf[i];
    if (c == prev) {
      run = run + 1;
      if (run == 255) {
        out[outpos] = 27;
        out[outpos + 1] = run;
        outpos = outpos + 2;
        run = 0;
      }
    } else {
      if (run > 3) {
        out[outpos] = 27;
        out[outpos + 1] = run;
        outpos = outpos + 2;
      } else {
        while (run > 0) {
          out[outpos] = prev;
          outpos = outpos + 1;
          run = run - 1;
        }
      }
      run = 0;
      pair = prev * 256 + c;
      h = (pair * 5 + 17) % 1024;
      if (h < 0) h = h + 1024;
      if (htab[h] == pair) {
        out[outpos] = 128 + hval[h] % 96;
        outpos = outpos + 1;
      } else {
        htab[h] = pair;
        hval[h] = hval[h] + 1;
        out[outpos] = c;
        outpos = outpos + 1;
      }
      prev = c;
    }
  }
  return outpos * 7 + out[outpos / 2];
}
