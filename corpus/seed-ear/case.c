
float signal[2048];
float state1[16];
float state2[16];
float coeff_a[16];
float coeff_b[16];
float energy[16];
int nsamples;
int nchan;

int main() {
  int s;
  int ch;
  float x;
  float y;
  float rectified;
  float agc;
  float total;
  for (s = 0; s < nsamples; s = s + 1) {
    x = signal[s];
    for (ch = 0; ch < nchan; ch = ch + 1) {
      y = coeff_a[ch] * x - coeff_b[ch] * state1[ch]
        - 0.5 * state2[ch];
      state2[ch] = state1[ch];
      state1[ch] = y;
      rectified = y;
      if (rectified < 0.0) rectified = 0.0;
      agc = energy[ch];
      if (agc > 100.0) rectified = rectified / 2.0;
      energy[ch] = agc * 0.99 + rectified;
      x = y;
    }
  }
  total = 0.0;
  for (ch = 0; ch < nchan; ch = ch + 1) {
    total = total + energy[ch];
  }
  return total * 100.0;
}
