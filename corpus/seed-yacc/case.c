
int tokens[4096];
int ntok;
int stack[256];
int prec[8];

int main() {
  int sp;
  int i;
  int tok;
  int shifts;
  int reduces;
  int errors;
  int top;
  sp = 0;
  shifts = 0;
  reduces = 0;
  errors = 0;
  for (i = 0; i < ntok; i = i + 1) {
    tok = tokens[i];
    if (tok == 0) {
      stack[sp] = 0;
      sp = sp + 1;
      shifts = shifts + 1;
      if (sp > 250) sp = 1;
    } else if (tok == 3) {
      stack[sp] = 3;
      sp = sp + 1;
      shifts = shifts + 1;
      if (sp > 250) sp = 1;
    } else if (tok == 4) {
      while (sp > 0 && stack[sp - 1] != 3) {
        sp = sp - 1;
        reduces = reduces + 1;
      }
      if (sp > 0) sp = sp - 1;
      else errors = errors + 1;
    } else {
      top = 0 - 1;
      if (sp > 0) top = stack[sp - 1];
      while (sp > 0 && top != 3 && prec[top] >= prec[tok]) {
        sp = sp - 1;
        reduces = reduces + 1;
        top = 0 - 1;
        if (sp > 0) top = stack[sp - 1];
      }
      stack[sp] = tok;
      sp = sp + 1;
      shifts = shifts + 1;
      if (sp > 250) sp = 1;
    }
  }
  return shifts * 10000 + reduces * 10 + errors;
}
