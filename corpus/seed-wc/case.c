
char buf[8192];
int n;
int nl;
int nw;
int nc;

int main() {
  int i;
  int inword;
  int c;
  inword = 0;
  for (i = 0; i < n; i = i + 1) {
    c = buf[i];
    nc = nc + 1;
    if (c == '\n') nl = nl + 1;
    if (c == ' ' || c == '\n' || c == '\t') inword = 0;
    else if (!inword) { inword = 1; nw = nw + 1; }
  }
  return nl * 100000 + nw * 100 + nc % 100;
}
