
int op[4096];
int lhs[4096];
int rhs[4096];
int env[32];
int nroots;
int roots[256];

int eval(int node) {
  int kind;
  int a;
  int b;
  kind = op[node];
  if (kind == 0) return lhs[node];
  if (kind == 1) return env[lhs[node] % 32];
  if (kind == 7) return 0 - eval(lhs[node]);
  a = eval(lhs[node]);
  if (kind == 5) {
    if (a != 0) return eval(rhs[node]);
    return 0;
  }
  b = eval(rhs[node]);
  if (kind == 2) return a + b;
  if (kind == 3) return a - b;
  if (kind == 4) return (a * b) % 65536;
  if (kind == 6) {
    if (a < b) return 1;
    return 0;
  }
  return 0;
}

int main() {
  int i;
  int total;
  total = 0;
  for (i = 0; i < nroots; i = i + 1) {
    total = (total + eval(roots[i])) % 1000003;
  }
  return total;
}
