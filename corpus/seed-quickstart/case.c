
int a[512];
int b[512];
int c[512];
int n;
int i_total;
int j_total;
int k_total;

int main() {
  int idx;
  int j; int k; int i;
  j = 0; k = 0; i = 0;
  for (idx = 0; idx < n; idx = idx + 1) {
    // The paper's Figure 1 kernel:
    if (a[idx] == 0 || b[idx] == 0) j = j + 1;
    else if (c[idx] != 0) k = k + 1;
    else k = k - 1;
    i = i + 1;
  }
  return j * 1000000 + k * 1000 + i;
}
