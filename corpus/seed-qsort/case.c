
int data[2048];
int nelem;

int partition(int lo, int hi) {
  int pivot;
  int i;
  int j;
  int tmp;
  pivot = data[hi];
  i = lo - 1;
  for (j = lo; j < hi; j = j + 1) {
    if (data[j] <= pivot) {
      i = i + 1;
      tmp = data[i];
      data[i] = data[j];
      data[j] = tmp;
    }
  }
  tmp = data[i + 1];
  data[i + 1] = data[hi];
  data[hi] = tmp;
  return i + 1;
}

int quicksort(int lo, int hi) {
  int p;
  if (lo >= hi) return 0;
  p = partition(lo, hi);
  quicksort(lo, p - 1);
  quicksort(p + 1, hi);
  return 0;
}

int main() {
  int i;
  int checksum;
  quicksort(0, nelem - 1);
  checksum = 0;
  for (i = 1; i < nelem; i = i + 1) {
    if (data[i - 1] > data[i]) return 0 - 1;
    checksum = (checksum * 31 + data[i]) % 1000003;
  }
  return checksum;
}
