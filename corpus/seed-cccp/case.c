
char buf[8192];
int n;
int directives;
int comments;
int strings;
int code_chars;

int main() {
  int i;
  int c;
  int nxt;
  int state;
  int at_line_start;
  state = 0;
  at_line_start = 1;
  i = 0;
  while (i < n) {
    c = buf[i];
    nxt = 0;
    if (i + 1 < n) nxt = buf[i + 1];
    if (state == 0) {
      if (c == '/' && nxt == '*') {
        state = 1;
        comments = comments + 1;
        i = i + 1;
      } else if (c == '/' && nxt == '/') {
        state = 2;
        comments = comments + 1;
        i = i + 1;
      } else if (c == '"') {
        state = 3;
        strings = strings + 1;
      } else if (c == '#' && at_line_start) {
        directives = directives + 1;
        state = 2;
      } else if (c != ' ' && c != '\n' && c != '\t') {
        code_chars = code_chars + 1;
      }
    } else if (state == 1) {
      if (c == '*' && nxt == '/') {
        state = 0;
        i = i + 1;
      }
    } else if (state == 2) {
      if (c == '\n') state = 0;
    } else {
      if (c == '\\') i = i + 1;
      else if (c == '"') state = 0;
    }
    if (c == '\n') at_line_start = 1;
    else if (c != ' ' && c != '\t') at_line_start = 0;
    i = i + 1;
  }
  return directives * 100000 + comments * 1000 + strings * 10
       + code_chars % 10;
}
