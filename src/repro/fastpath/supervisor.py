"""Native-engine supervisor: sandboxing, parity canary, cache integrity.

The native (C) kernels of :mod:`repro.fastpath.native` are the only
code in the reproduction that can segfault the interpreter, load a
stale or corrupted shared object, or silently depend on the host
compiler.  This module owns everything about *trusting* that code:

* **Build + cache integrity.**  The kernel ``.so`` is cached under a
  dedicated directory (``REPRO_KERNEL_CACHE``, default
  ``<tmp>/repro-kernels``) keyed by the SHA-256 of the C source *plus*
  the compiler fingerprint (``cc --version`` first line) *plus* the
  build flags, with a ``.sha256`` digest sidecar written at publish
  time.  A cached object whose bytes no longer match the sidecar is
  quarantined (moved under ``quarantine/`` with a ``.reason`` file)
  and rebuilt; a compiler upgrade changes the fingerprint and thereby
  the cache key, so a stale object can never be loaded by accident.

* **Sacrificial-subprocess canary.**  Before a process loads a kernel
  whose digest has never passed validation (no matching ``.ok``
  sidecar), the first invocation happens in a child process
  (``python -m repro.fastpath.supervisor <so>``) that replays a golden
  MiniC trace through the native kernels and the pure-Python engines
  and byte-compares the observables.  A SIGSEGV/SIGBUS kills only the
  child and surfaces as a typed :class:`NativeKernelCrash`; an
  observable mismatch exits with :class:`NativeParityError`'s code and
  quarantines the object.

* **In-process parity canary.**  Even a sandbox-validated object is
  replayed once per process (cheap, in-process) before the process
  trusts it — a mismatch quarantines and demotes.

* **Degradation ladder.**  Any typed failure demotes the *process*
  one rung — native → jitc → interpreter — recorded as a structured
  :class:`DegradationEvent` plus counters (``engine_demotions``,
  ``native_parity_failures``, ``native_kernel_crashes``,
  ``kernel_cache_quarantined``) that :func:`drain_into` folds into a
  :class:`~repro.engine.metrics.PipelineMetrics`, so demotions reach
  ``BENCH_pipeline.json`` and the service breaker.  All rungs are
  byte-identical, so degradation is observable but never changes a
  figure.

``REPRO_NATIVE`` / ``REPRO_KERNEL_CACHE`` / ``REPRO_NATIVE_CFLAGS``
are resolved exactly once per process (at first use); a mid-run env
mutation can never produce mixed-engine chunks within one workload.
"""

from __future__ import annotations

import hashlib
import os
import shlex
import shutil
import subprocess
import sys
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.robustness.errors import (NativeBuildError, NativeEngineError,
                                     NativeKernelCrash, NativeParityError,
                                     NativeToolchainMissing, ReproError)

#: the degradation ladder, best rung first; every rung is byte-identical
ENGINE_LADDER = ("native", "jitc", "interpreter")

#: compiler names probed in order
_DEFAULT_COMPILERS = ("cc", "gcc")

#: base build flags; ``REPRO_NATIVE_CFLAGS`` appends (sanitizers, -g)
_BASE_CFLAGS = ("-O2", "-shared", "-fPIC")

#: wall-clock bound on one sandbox canary child (a hung kernel is a
#: crashed kernel)
_CANARY_TIMEOUT = 180.0

#: counters drained into PipelineMetrics (names match its fields)
_COUNTER_NAMES = ("engine_demotions", "native_parity_failures",
                  "native_kernel_crashes", "kernel_cache_quarantined")


# ----------------------------------------------------------------- #
# Golden canary workload                                            #
# ----------------------------------------------------------------- #

#: small MiniC kernel exercising predication, branches, loads/stores
#: and modulo — enough dynamic behavior that every native kernel path
#: (emulator opcodes, BTB, I/D cache scans) contributes to the digest.
GOLDEN_SOURCE = """
int src[64];
int dst[64];
int n;

int main() {
  int i;
  int v;
  int acc;
  int hits;
  acc = 0;
  hits = 0;
  for (i = 0; i < n; i = i + 1) {
    v = src[i];
    if (v % 3 == 0) acc = acc + v;
    if (v > 6) hits = hits + 1;
    dst[i] = acc * 2 + v;
  }
  return acc * 100 + hits;
}
"""

GOLDEN_INPUTS = {"src": [(i * 5 + 2) % 11 for i in range(64)],
                 "n": [64]}


# ----------------------------------------------------------------- #
# Supervisor state                                                  #
# ----------------------------------------------------------------- #

@dataclass
class DegradationEvent:
    """One structured record of the process losing an engine rung."""

    at: float                  # time.time() of the demotion
    from_engine: str           # rung lost ("native", "jitc")
    to_engine: str             # rung now active
    reason: str                # human-readable cause
    error: str = ""            # taxonomy class name, when one applies

    def to_dict(self) -> dict:
        return {"at": self.at, "from": self.from_engine,
                "to": self.to_engine, "reason": self.reason,
                "error": self.error}


@dataclass
class _State:
    """Per-process supervisor state (env resolved exactly once)."""

    enabled: bool
    cache_dir: str
    cflags: tuple[str, ...]
    compilers: tuple[str, ...] = _DEFAULT_COMPILERS
    fingerprint_override: str | None = None
    engine: str = "native"
    validated: bool = False
    fingerprint: str | None = None
    last_error: ReproError | None = None
    events: list[DegradationEvent] = field(default_factory=list)
    counters: dict[str, int] = field(
        default_factory=lambda: {n: 0 for n in _COUNTER_NAMES})
    drained: dict[str, int] = field(
        default_factory=lambda: {n: 0 for n in _COUNTER_NAMES})
    #: chaos/test injection: "segv-child" | "parity-child" |
    #: "parity-process" | ("scan-fault", k) | ("emu-fault", k)
    injection: object | None = None
    scan_calls: int = 0
    emu_chunks: int = 0

    def __post_init__(self):
        if not self.enabled:
            # REPRO_NATIVE=0 is a configuration choice, not a failure:
            # start below the native rung without a demotion event.
            self.engine = "jitc"


_lock = threading.RLock()
_state: _State | None = None


def _build_state(*, cache_dir: str | None = None,
                 compilers: tuple[str, ...] | None = None,
                 fingerprint: str | None = None) -> _State:
    enabled = os.environ.get("REPRO_NATIVE", "1").lower() not in (
        "0", "off", "no", "false")
    if cache_dir is None:
        cache_dir = os.environ.get("REPRO_KERNEL_CACHE") or os.path.join(
            tempfile.gettempdir(), "repro-kernels")
    extra = tuple(shlex.split(os.environ.get("REPRO_NATIVE_CFLAGS", "")))
    return _State(enabled=enabled, cache_dir=cache_dir,
                  cflags=_BASE_CFLAGS + extra,
                  compilers=compilers or _DEFAULT_COMPILERS,
                  fingerprint_override=fingerprint)


def _get_state() -> _State:
    global _state
    if _state is None:
        with _lock:
            if _state is None:
                _state = _build_state()
    return _state


def reset_for_testing(*, cache_dir: str | None = None,
                      compilers: tuple[str, ...] | None = None,
                      fingerprint: str | None = None) -> None:
    """Rebuild the per-process state (tests and chaos injections only).

    Re-reads the environment, restores the ladder to its top rung, and
    resets :mod:`repro.fastpath.native`'s cached library handle so the
    next use goes through the full acquire/verify path again.
    """
    global _state
    with _lock:
        _state = _build_state(cache_dir=cache_dir, compilers=compilers,
                              fingerprint=fingerprint)
        from repro.fastpath import native
        native._lib = None
        native._lib_tried = False


# ----------------------------------------------------------------- #
# Ladder + telemetry                                                #
# ----------------------------------------------------------------- #

def native_enabled() -> bool:
    """The once-per-process ``REPRO_NATIVE`` snapshot."""
    return _get_state().enabled


def current_engine() -> str:
    """The best rung this process still trusts."""
    return _get_state().engine


def native_active() -> bool:
    """True while the process is still on the native rung."""
    state = _get_state()
    return state.enabled and state.engine == "native"


def demote(reason: str, error: str = "") -> str:
    """Drop one rung; record the structured event.  Returns the new
    rung.  Demoting below the last rung is a no-op (the interpreter
    cannot fail this way)."""
    with _lock:
        state = _get_state()
        idx = ENGINE_LADDER.index(state.engine)
        if idx + 1 >= len(ENGINE_LADDER):
            return state.engine
        new = ENGINE_LADDER[idx + 1]
        state.events.append(DegradationEvent(
            at=time.time(), from_engine=state.engine, to_engine=new,
            reason=reason, error=error))
        state.engine = new
        state.counters["engine_demotions"] += 1
        return new


def last_error() -> ReproError | None:
    return _get_state().last_error


def degradation_events() -> list[DegradationEvent]:
    return list(_get_state().events)


def counters_snapshot() -> dict[str, int]:
    return dict(_get_state().counters)


def drain_into(metrics) -> None:
    """Fold undrained counter deltas into a ``PipelineMetrics``.

    Deltas are moved, not copied: two contexts draining the same
    process state split the totals instead of double-counting them.
    """
    with _lock:
        state = _get_state()
        for name in _COUNTER_NAMES:
            delta = state.counters[name] - state.drained[name]
            if delta:
                setattr(metrics, name, getattr(metrics, name) + delta)
                state.drained[name] = state.counters[name]


def _record_failure(exc: NativeEngineError) -> None:
    state = _get_state()
    state.last_error = exc
    demote(str(exc), error=type(exc).__name__)


# ----------------------------------------------------------------- #
# Injection hooks (tests + chaos campaign)                          #
# ----------------------------------------------------------------- #

def set_injection(kind: object | None) -> None:
    """Arm one fault injection; see :class:`_State.injection`."""
    with _lock:
        state = _get_state()
        state.injection = kind
        state.scan_calls = 0
        state.emu_chunks = 0


def maybe_fault_scan() -> None:
    """Raise an injected kernel fault before the Nth sim-scan call."""
    state = _get_state()
    inj = state.injection
    if not (isinstance(inj, tuple) and inj[0] == "scan-fault"):
        return
    state.scan_calls += 1
    if state.scan_calls >= inj[1]:
        state.injection = None
        raise NativeKernelCrash(
            f"injected sim-scan kernel fault at chunk {state.scan_calls}",
            stage="sim-scan")


def maybe_fault_emu() -> None:
    """Raise an injected kernel fault before the Nth emulator chunk."""
    state = _get_state()
    inj = state.injection
    if not (isinstance(inj, tuple) and inj[0] == "emu-fault"):
        return
    state.emu_chunks += 1
    if state.emu_chunks >= inj[1]:
        state.injection = None
        raise NativeKernelCrash(
            f"injected emulator kernel fault at chunk {state.emu_chunks}",
            stage="emu")


def report_kernel_fault(exc: NativeKernelCrash) -> None:
    """Record a mid-run kernel fault: counter + demotion.  Called by
    the code that caught the fault and is about to recover on the next
    rung (or re-raise the typed error for the scheduler's retry)."""
    with _lock:
        state = _get_state()
        state.counters["native_kernel_crashes"] += 1
        state.last_error = exc
        demote(str(exc), error=type(exc).__name__)


# ----------------------------------------------------------------- #
# Toolchain fingerprint + build                                     #
# ----------------------------------------------------------------- #

def _resolve_compiler(state: _State) -> str:
    for cc in state.compilers:
        if shutil.which(cc):
            return cc
    raise NativeToolchainMissing(
        f"no C compiler found (searched: {', '.join(state.compilers)})",
        searched=state.compilers)


def cc_fingerprint() -> str:
    """Identify the toolchain that kernels are keyed against.

    ``<cc> <first line of cc --version>`` — baked into the cache key,
    so a compiler upgrade structurally invalidates every cached object
    instead of silently serving one built by the old compiler.
    """
    state = _get_state()
    if state.fingerprint_override is not None:
        return state.fingerprint_override
    if state.fingerprint is not None:
        return state.fingerprint
    cc = _resolve_compiler(state)
    try:
        proc = subprocess.run([cc, "--version"], capture_output=True,
                              timeout=30)
        first = proc.stdout.decode("utf-8", "replace").splitlines()
        version = first[0].strip() if first else ""
    except (OSError, subprocess.SubprocessError) as exc:
        raise NativeToolchainMissing(
            f"compiler {cc!r} vanished while fingerprinting: {exc}",
            searched=state.compilers) from exc
    state.fingerprint = f"{cc} {version}".strip()
    return state.fingerprint


def cache_key() -> str:
    """Content hash of (C source, compiler fingerprint, build flags)."""
    from repro.fastpath._native_src import C_SOURCE
    state = _get_state()
    payload = "\x00".join((C_SOURCE, cc_fingerprint(),
                           " ".join(state.cflags)))
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def so_path() -> str:
    """Where the current kernel object lives (built or not)."""
    return os.path.join(_get_state().cache_dir,
                        f"repro_kernel_{cache_key()}.so")


def _digest_file(path: str | Path) -> str:
    return hashlib.sha256(Path(path).read_bytes()).hexdigest()


def _publish(tmp_src: str, dest: str) -> None:
    """Atomically publish ``tmp_src`` plus its digest sidecar."""
    digest = _digest_file(tmp_src)
    tmp = f"{dest}.{os.getpid()}.tmp"
    shutil.copy(tmp_src, tmp)
    os.replace(tmp, dest)
    sidecar = f"{dest}.sha256"
    tmp = f"{sidecar}.{os.getpid()}.tmp"
    with open(tmp, "w") as handle:
        handle.write(digest + "\n")
    os.replace(tmp, sidecar)


def quarantine_so(path: str | Path, reason: str) -> Path | None:
    """Move a kernel object under ``<cache>/quarantine/`` with a
    ``.reason`` sidecar; drop its digest/validation sidecars.  Returns
    the new location (None when the file vanished first)."""
    path = Path(path)
    with _lock:
        state = _get_state()
        qdir = Path(state.cache_dir) / "quarantine"
        qdir.mkdir(parents=True, exist_ok=True)
        dest = qdir / f"{path.name}.{os.getpid()}.{os.urandom(3).hex()}"
        try:
            os.replace(path, dest)
        except FileNotFoundError:
            return None
        dest.with_name(dest.name + ".reason").write_text(reason + "\n")
        for suffix in (".sha256", ".ok"):
            Path(f"{path}{suffix}").unlink(missing_ok=True)
        state.counters["kernel_cache_quarantined"] += 1
        state.validated = False
        return dest


def ensure_built() -> str:
    """Return a digest-verified kernel ``.so``, building if needed.

    A cached object with a missing or mismatching ``.sha256`` sidecar
    is quarantined and rebuilt once.  Raises the typed taxonomy on
    failure (:class:`NativeToolchainMissing`, :class:`NativeBuildError`).
    """
    with _lock:
        state = _get_state()
        dest = so_path()
        if os.path.exists(dest):
            sidecar = Path(f"{dest}.sha256")
            try:
                recorded = sidecar.read_text().strip()
            except OSError:
                recorded = ""
            if recorded and _digest_file(dest) == recorded:
                return dest
            quarantine_so(dest, "cached kernel object failed digest "
                          "verification on load" if recorded
                          else "cached kernel object has no digest "
                          "sidecar")
        cc = _resolve_compiler(state)
        from repro.fastpath._native_src import C_SOURCE
        os.makedirs(state.cache_dir, exist_ok=True)
        try:
            with tempfile.TemporaryDirectory(
                    dir=state.cache_dir) as td:
                src = os.path.join(td, "repro_native.c")
                with open(src, "w") as handle:
                    handle.write(C_SOURCE)
                built = os.path.join(td, "repro_native.so")
                try:
                    proc = subprocess.run(
                        [cc, *state.cflags, "-o", built, src, "-lm"],
                        capture_output=True, timeout=120)
                except (OSError, subprocess.SubprocessError) as exc:
                    raise NativeToolchainMissing(
                        f"compiler {cc!r} vanished mid-build: {exc}",
                        searched=state.compilers) from exc
                if proc.returncode != 0 or not os.path.exists(built):
                    stderr = proc.stderr.decode("utf-8",
                                                "replace")[-2000:]
                    raise NativeBuildError(
                        f"{cc} exited {proc.returncode} building the "
                        f"native kernels", cc=cc, stderr=stderr,
                        so_path=dest)
                _publish(built, dest)
        except OSError as exc:
            raise NativeBuildError(
                f"kernel cache write failed: {exc}", cc=cc,
                so_path=dest) from exc
        return dest


# ----------------------------------------------------------------- #
# Canaries                                                          #
# ----------------------------------------------------------------- #

def _golden_program():
    """Compile the golden canary once per process (FULLPRED exercises
    the predicate-define/set kernel paths on top of the usual ones)."""
    global _GOLDEN
    if _GOLDEN is None:
        from repro.analysis.profile import Profile
        from repro.machine.descriptor import MachineDescription
        from repro.toolchain import Model, compile_for_model, frontend
        machine = MachineDescription(
            issue_width=4, branch_issue_limit=2,
            name="canary").with_real_caches()
        base = frontend(GOLDEN_SOURCE)
        profile = Profile.collect(base, inputs=GOLDEN_INPUTS)
        compiled = compile_for_model(base, Model.FULLPRED, profile,
                                     machine)
        from repro.fastpath.decode import decode_program
        _GOLDEN = (compiled, decode_program(compiled.program), machine)
    return _GOLDEN


_GOLDEN = None


def golden_digest(native: bool) -> str:
    """Run the golden workload end to end and digest every observable.

    The emulation side digests the full :class:`ExecutionResult`
    surface (return value, counts, store-stream signature, memory
    digest, branch outcomes and block counts *in insertion order*, the
    raw trace columns); the simulation side digests the cycle stats
    plus the simulator's boundary digest.  ``native=True`` runs both
    kernels; ``native=False`` runs the pure-Python twins.
    """
    compiled, decoded, machine = _golden_program()
    if native:
        from repro.fastpath.native import run_program_native
        execution = run_program_native(
            compiled.program, inputs=GOLDEN_INPUTS, collect_trace=True,
            decoded=decoded)
    else:
        from repro.fastpath.interp import run_program_fast
        execution = run_program_fast(
            compiled.program, inputs=GOLDEN_INPUTS, collect_trace=True,
            decoded=decoded)
    from repro.fastpath.vector import VectorSimulator, prepare_vector
    vprep = prepare_vector(decoded, compiled.addresses, machine)
    sim = VectorSimulator(vprep, machine, native=native)
    sim.feed(execution.trace)
    stats = sim.finish()
    trace = execution.trace
    h = hashlib.sha256()
    for part in (
            repr(execution.return_value), repr(execution.dynamic_count),
            repr(execution.suppressed_count),
            repr(execution.output_signature),
            repr(execution.output_count), execution.memory_digest,
            repr(list(execution.branch_outcomes.items())),
            repr(list(execution.block_counts.items())),
            trace.sidx.tobytes(), trace.flags.tobytes(),
            trace.addr.tobytes(), trace.vidx.tobytes(),
            repr(trace.values), repr(stats), sim.boundary_digest()):
        h.update(part if isinstance(part, bytes) else part.encode())
        h.update(b"\x00")
    return h.hexdigest()


def sandbox_canary(path: str) -> None:
    """First invocation of a newly built kernel, in a child process.

    Skipped when the object's digest already carries an ``.ok``
    validation sidecar (it passed the sandbox before).  A child killed
    by a signal raises :class:`NativeKernelCrash`; a parity exit
    quarantines the object and raises :class:`NativeParityError`.
    """
    with _lock:
        state = _get_state()
        digest = _digest_file(path)
        ok_path = Path(f"{path}.ok")
        try:
            if ok_path.read_text().strip() == digest:
                return
        except OSError:
            pass
        src_root = str(Path(__file__).resolve().parents[2])
        env = dict(os.environ)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src_root + (
            os.pathsep + existing if existing else "")
        env.pop("REPRO_NATIVE_INJECT", None)
        if state.injection == "segv-child":
            env["REPRO_NATIVE_INJECT"] = "segv"
        elif state.injection == "parity-child":
            env["REPRO_NATIVE_INJECT"] = "parity"
        try:
            proc = subprocess.run(
                [sys.executable, "-m", "repro.fastpath.supervisor",
                 path],
                capture_output=True, timeout=_CANARY_TIMEOUT, env=env)
        except subprocess.TimeoutExpired as exc:
            state.counters["native_kernel_crashes"] += 1
            raise NativeKernelCrash(
                f"sandbox canary hung past {_CANARY_TIMEOUT:g}s",
                so_path=path, stage="canary") from exc
        rc = proc.returncode
        if rc == 0:
            tmp = f"{ok_path}.{os.getpid()}.tmp"
            with open(tmp, "w") as handle:
                handle.write(digest + "\n")
            os.replace(tmp, ok_path)
            return
        stderr = proc.stderr.decode("utf-8", "replace")[-2000:]
        if rc < 0:
            state.counters["native_kernel_crashes"] += 1
            raise NativeKernelCrash(
                f"native kernel died on signal {-rc} in the sandbox "
                f"canary", so_path=path, signal=-rc, stage="canary")
        if rc == NativeParityError.exit_code:
            state.counters["native_parity_failures"] += 1
            quarantine_so(path, "golden parity mismatch in the "
                                "sandbox canary")
            raise NativeParityError(
                "native kernels diverged from the interpreter on the "
                "golden trace (sandbox canary)", so_path=path)
        raise NativeBuildError(
            f"sandbox canary exited {rc}: {stderr[-300:]}",
            so_path=path, stderr=stderr)


def verify_process_parity(path: str) -> None:
    """In-process golden replay, once per process per trusted object.

    Assumes :mod:`repro.fastpath.native` has its library handle set
    (the native runs below short-circuit through it).  A mismatch
    quarantines the object, demotes, and raises
    :class:`NativeParityError`.
    """
    state = _get_state()
    if state.validated:
        return
    expected = golden_digest(native=False)
    actual = golden_digest(native=True)
    if state.injection == "parity-process":
        state.injection = None
        actual = "0" * len(actual)
    if actual != expected:
        with _lock:
            state.counters["native_parity_failures"] += 1
        quarantine_so(path, "golden parity mismatch in the in-process "
                            "canary")
        exc = NativeParityError(
            "native kernels diverged from the interpreter on the "
            "golden trace (in-process canary)", so_path=path,
            expected=expected, actual=actual)
        _record_failure(exc)
        raise exc
    state.validated = True


def acquire_so() -> str | None:
    """Build/verify/sandbox the kernel object for this process.

    Returns the validated path, or None after recording the typed
    failure and demoting — the caller falls through to the next rung.
    """
    with _lock:
        if not native_active():
            return None
        try:
            path = ensure_built()
            sandbox_canary(path)
            return path
        except NativeEngineError as exc:
            _record_failure(exc)
            return None


# ----------------------------------------------------------------- #
# Status + fsck integration                                         #
# ----------------------------------------------------------------- #

@dataclass
class KernelScan:
    """Outcome of one kernel-cache integrity scan."""

    cache_dir: str
    scanned: int = 0
    ok: int = 0
    #: (relative path, problem, action) per bad object
    issues: list[tuple[str, str, str]] = field(default_factory=list)
    #: orphan sidecars (``.sha256``/``.ok`` without an object)
    orphans: int = 0


def scan_kernel_cache(repair: bool = False) -> KernelScan:
    """Digest-verify every cached kernel object.

    With ``repair``, bad objects are quarantined and orphan sidecars
    removed — the ``repro cache fsck --repair`` contract extended to
    the kernel cache.
    """
    state = _get_state()
    scan = KernelScan(cache_dir=state.cache_dir)
    cache = Path(state.cache_dir)
    if not cache.is_dir():
        return scan
    for so in sorted(cache.glob("repro_kernel_*.so")):
        scan.scanned += 1
        sidecar = Path(f"{so}.sha256")
        problem = None
        try:
            recorded = sidecar.read_text().strip()
        except OSError:
            recorded = ""
        if not recorded:
            problem = "missing digest sidecar"
        elif _digest_file(so) != recorded:
            problem = "kernel object bytes do not match the recorded " \
                      "digest"
        if problem is None:
            scan.ok += 1
            continue
        action = "reported"
        if repair:
            quarantine_so(so, problem)
            action = "quarantined"
        scan.issues.append((so.name, problem, action))
    for pattern in ("repro_kernel_*.so.sha256", "repro_kernel_*.so.ok"):
        for sidecar in sorted(cache.glob(pattern)):
            stem = sidecar.name.rsplit(".", 1)[0]
            if not (cache / stem).exists():
                scan.orphans += 1
                if repair:
                    sidecar.unlink(missing_ok=True)
    return scan


def status_lines() -> list[str]:
    """Human-readable supervisor status for ``repro native``."""
    state = _get_state()
    lines = [
        f"engine ladder : {' > '.join(ENGINE_LADDER)}",
        f"current rung  : {state.engine}"
        + ("" if state.enabled else " (REPRO_NATIVE disabled)"),
        f"kernel cache  : {state.cache_dir}",
    ]
    try:
        lines.append(f"cc fingerprint: {cc_fingerprint()}")
        path = so_path()
        built = os.path.exists(path)
        lines.append(f"kernel object : {path}"
                     f" ({'present' if built else 'not built'})")
        if built:
            lines.append(f"  sha256      : {_digest_file(path)}")
            lines.append(
                f"  validated   : "
                f"{'yes' if Path(path + '.ok').exists() else 'no'}")
    except NativeEngineError as exc:
        lines.append(f"toolchain     : unavailable "
                     f"({type(exc).__name__}: {exc})")
    counters = counters_snapshot()
    lines.append("counters      : " + ", ".join(
        f"{name}={counters[name]}" for name in _COUNTER_NAMES))
    for event in degradation_events():
        lines.append(f"demotion      : {event.from_engine} -> "
                     f"{event.to_engine} [{event.error}] {event.reason}")
    if state.last_error is not None:
        lines.append(f"last error    : "
                     f"{type(state.last_error).__name__} "
                     f"(exit {state.last_error.exit_code})")
    return lines


# ----------------------------------------------------------------- #
# Sandbox child entry point                                         #
# ----------------------------------------------------------------- #

def _canary_child_main(argv: list[str]) -> int:
    """Body of ``python -m repro.fastpath.supervisor <so_path>``.

    Loads the object, optionally injects a genuine SIGSEGV or a parity
    perturbation (``REPRO_NATIVE_INJECT``), replays the golden trace
    on both engines and byte-compares.  Exit 0 on parity; exit
    :class:`NativeParityError`'s code on mismatch; a real kernel crash
    kills this process with the signal the parent decodes.
    """
    if not argv:
        sys.stderr.write("usage: python -m repro.fastpath.supervisor "
                         "<kernel.so>\n")
        return 2
    inject = os.environ.get("REPRO_NATIVE_INJECT", "")
    from repro.fastpath import native
    try:
        lib = native._bind_library(argv[0])
    except NativeEngineError as exc:
        sys.stderr.write(f"error[{type(exc).__name__}]: {exc}\n")
        return exc.exit_code
    if inject == "segv":
        import ctypes
        ctypes.string_at(0)  # genuine SIGSEGV, not an emulation
    native._lib = lib
    native._lib_tried = True
    state = _get_state()
    state.validated = True  # the comparison below IS the validation
    try:
        expected = golden_digest(native=False)
        actual = golden_digest(native=True)
    except Exception as exc:  # noqa: BLE001 — child reports, parent maps
        sys.stderr.write(f"canary error[{type(exc).__name__}]: {exc}\n")
        return NativeParityError.exit_code
    if inject == "parity":
        actual = "0" * len(actual)
    if actual != expected:
        sys.stderr.write(
            f"golden parity mismatch: {actual[:16]} != "
            f"{expected[:16]}\n")
        return NativeParityError.exit_code
    return 0


if __name__ == "__main__":
    sys.exit(_canary_child_main(sys.argv[1:]))
