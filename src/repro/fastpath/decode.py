"""Pre-decode: lower a compiled :class:`Program` into flat micro-ops.

One pass over the object-graph IR produces a :class:`DecodedProgram`
whose per-function ``code`` is a flat list of uniform 11-tuples

    ``(kind, sidx, dest, m0, i0, m1, i1, m2, i2, guard, aux)``

where ``kind`` is a dense int dispatch ordinal (ordered roughly by
dynamic frequency), ``sidx`` indexes the program-order static
instruction table shared with :class:`~repro.fastpath.columns.TraceColumns`,
``dest``/``guard`` are dense register indices (``-1`` for none), the
``(m, i)`` pairs encode up to three sources as (mode, index) with mode
``M_REG``/``M_CONST``/``M_PREG``, and ``aux`` carries per-kind decoded
payload (comparison function, resolved branch target, predicate-define
truth tables, ...).  The interpreter hot loop then dispatches on plain
ints with zero per-step attribute or ``isinstance`` lookups.

Control flow is resolved to flat pcs at decode time.  Falling through or
branching into a chain of empty blocks is pre-walked by :func:`_chain`,
which yields the ``(fn, block)`` profile keys the legacy interpreter
would count on the way plus the landing pc (``-1`` when control falls
off the end of the function — a fault the interpreter raises with the
legacy message).
"""

from __future__ import annotations

from repro.emu.interpreter import _CMP
from repro.emu.memory import EmulationFault
from repro.ir.function import Function, Program
from repro.ir.instruction import Instruction, PType
from repro.ir.opcodes import CONDITION, Opcode
from repro.ir.operands import GlobalAddr, Imm, PReg, VReg
from repro.machine.predicates import pred_update

# Source-operand addressing modes.
M_REG = 0     # i indexes the dense virtual-register file
M_CONST = 1   # i indexes the per-function resolved-constant table
M_PREG = 2    # i indexes the dense predicate-register file

# Micro-op kinds.  Pure register ops come first (shared trace/advance
# tail in the interpreter), then memory, then control transfers.
(K_ADD, K_MOV, K_CMP, K_SUB, K_AND, K_PREDDEF, K_OR, K_CMOV, K_SELECT,
 K_XOR, K_SHL, K_SHR, K_NOT, K_NEG, K_MUL, K_AND_NOT, K_OR_NOT, K_DIV,
 K_REM, K_FADD, K_FSUB, K_FMUL, K_FDIV, K_FNEG, K_FMOV, K_CVT_IF,
 K_CVT_FI, K_PREDSET, K_NOP,
 K_LOAD, K_LOAD_B, K_FLOAD, K_STORE, K_STORE_B, K_FSTORE,
 K_BRANCH, K_JUMP, K_CALL, K_RET) = range(39)

_KIND: dict[Opcode, int] = {
    Opcode.ADD: K_ADD, Opcode.SUB: K_SUB, Opcode.MUL: K_MUL,
    Opcode.DIV: K_DIV, Opcode.REM: K_REM, Opcode.NEG: K_NEG,
    Opcode.MOV: K_MOV, Opcode.AND: K_AND, Opcode.OR: K_OR,
    Opcode.XOR: K_XOR, Opcode.NOT: K_NOT, Opcode.SHL: K_SHL,
    Opcode.SHR: K_SHR, Opcode.AND_NOT: K_AND_NOT,
    Opcode.OR_NOT: K_OR_NOT,
    Opcode.FADD: K_FADD, Opcode.FSUB: K_FSUB, Opcode.FMUL: K_FMUL,
    Opcode.FDIV: K_FDIV, Opcode.FNEG: K_FNEG, Opcode.FMOV: K_FMOV,
    Opcode.CVT_IF: K_CVT_IF, Opcode.CVT_FI: K_CVT_FI,
    Opcode.LOAD: K_LOAD, Opcode.LOAD_B: K_LOAD_B, Opcode.FLOAD: K_FLOAD,
    Opcode.STORE: K_STORE, Opcode.STORE_B: K_STORE_B,
    Opcode.FSTORE: K_FSTORE,
    Opcode.JUMP: K_JUMP, Opcode.JSR: K_CALL, Opcode.RET: K_RET,
    Opcode.PRED_CLEAR: K_PREDSET, Opcode.PRED_SET: K_PREDSET,
    Opcode.CMOV: K_CMOV, Opcode.CMOV_COM: K_CMOV,
    Opcode.FCMOV: K_CMOV, Opcode.FCMOV_COM: K_CMOV,
    Opcode.SELECT: K_SELECT, Opcode.FSELECT: K_SELECT,
    Opcode.NOP: K_NOP,
}
# CMP_*/FCMP_* share value-level semantics; branches and predicate
# defines carry their comparison function in ``aux``.
for _op, _cond in CONDITION.items():
    if _op.value.startswith("pred_"):
        _KIND[_op] = K_PREDDEF
    elif _op.value.startswith("b"):
        _KIND[_op] = K_BRANCH
    else:
        _KIND.setdefault(_op, K_CMP)

#: Per-PType truth table indexed by ``(p_in << 1) | cmp_result``; entry
#: is the new predicate value or None for "unchanged" (paper Table 1).
_PRED_TABLES: dict[PType, tuple] = {
    ptype: tuple(pred_update(ptype, p_in, cmp)
                 for p_in in (0, 1) for cmp in (0, 1))
    for ptype in PType
}


class DecodedFunction:
    """Flat decoded form of one :class:`Function`."""

    __slots__ = ("name", "code", "nxt", "entry", "params", "consts_spec",
                 "nregs", "npregs")

    def __init__(self, name, code, nxt, entry, params, consts_spec,
                 nregs, npregs):
        self.name = name
        #: flat list of 11-tuples (see module docstring)
        self.code = code
        #: per-pc successor: None = next pc in the same block, else
        #: (profile_keys, landing_pc) with landing_pc == -1 meaning
        #: control falls off the end of the function
        self.nxt = nxt
        #: (profile_keys, first_pc) for function entry
        self.entry = entry
        #: dense register indices of the formal parameters, in order
        self.params = params
        #: constant table spec: ('imm', value) | ('glob', name, offset)
        self.consts_spec = consts_spec
        self.nregs = nregs
        self.npregs = npregs


class DecodedProgram:
    """All functions of a program, plus the shared sidx table."""

    __slots__ = ("entry", "functions", "instructions")

    def __init__(self, entry: str,
                 functions: dict[str, DecodedFunction],
                 instructions: list[Instruction]):
        self.entry = entry
        self.functions = functions
        #: static instructions in program order — the namespace for
        #: ``TraceColumns.sidx`` and ``SimPrep`` arrays; iteration order
        #: matches ``sim.pipeline.assign_addresses``
        self.instructions = instructions


def decode_program(program: Program) -> DecodedProgram:
    """Lower ``program`` to its flat micro-op form (pure; no caching)."""
    instructions: list[Instruction] = []
    functions: dict[str, DecodedFunction] = {}
    for fn in program.functions.values():
        functions[fn.name] = _decode_function(fn, instructions)
    return DecodedProgram(program.main.name, functions, instructions)


def _decode_function(fn: Function,
                     instructions: list[Instruction]) -> DecodedFunction:
    regmap: dict[VReg, int] = {}
    pregmap: dict[PReg, int] = {}
    constmap: dict[tuple, int] = {}
    consts_spec: list[tuple] = []

    def rid(r: VReg) -> int:
        i = regmap.get(r)
        if i is None:
            i = regmap[r] = len(regmap)
        return i

    def pid(p: PReg) -> int:
        i = pregmap.get(p)
        if i is None:
            i = pregmap[p] = len(pregmap)
        return i

    def cid(key: tuple, spec: tuple) -> int:
        i = constmap.get(key)
        if i is None:
            i = constmap[key] = len(consts_spec)
            consts_spec.append(spec)
        return i

    def enc(op) -> tuple[int, int]:
        t = type(op)
        if t is VReg:
            return M_REG, rid(op)
        if t is Imm:
            v = op.value
            return M_CONST, cid(("imm", type(v), v), ("imm", v))
        if t is PReg:
            return M_PREG, pid(op)
        if t is GlobalAddr:
            return M_CONST, cid(("glob", op.name, op.offset),
                                ("glob", op.name, op.offset))
        raise EmulationFault(f"bad operand {op!r}")

    blocks = fn.blocks
    nblocks = len(blocks)
    block_keys = [(fn.name, b.name) for b in blocks]
    block_len = [len(b.instructions) for b in blocks]
    first_pc: list[int] = []
    pc = 0
    for n in block_len:
        first_pc.append(pc)
        pc += n
    label2idx = {b.name: i for i, b in enumerate(blocks)}

    def chain(bi: int) -> tuple[tuple, int]:
        # Walk empty blocks exactly as the legacy fall-through loop
        # does, collecting the profile keys it would count.
        keys = []
        while bi < nblocks:
            keys.append(block_keys[bi])
            if block_len[bi]:
                return tuple(keys), first_pc[bi]
            bi += 1
        return tuple(keys), -1

    code: list[tuple] = []
    nxt: list[tuple | None] = []
    for bi, block in enumerate(blocks):
        n = len(block.instructions)
        for ii, inst in enumerate(block.instructions):
            sidx = len(instructions)
            instructions.append(inst)
            code.append(_decode_instruction(
                inst, sidx, rid, pid, enc, label2idx, chain))
            nxt.append(None if ii + 1 < n else chain(bi + 1))

    return DecodedFunction(
        name=fn.name, code=code, nxt=nxt, entry=chain(0),
        params=[rid(p) for p in fn.params],
        consts_spec=consts_spec,
        nregs=len(regmap), npregs=len(pregmap))


def _decode_instruction(inst: Instruction, sidx: int, rid, pid, enc,
                        label2idx, chain) -> tuple:
    op = inst.op
    kind = _KIND.get(op)
    if kind is None:
        raise EmulationFault(f"unhandled opcode {op}")

    dest = -1 if inst.dest is None else rid(inst.dest)
    # Predicate defines are exempt from guard nullification: their input
    # predicate is a truth-table operand (paper Table 1), not a guard.
    guard = -1 if (inst.pred is None or kind == K_PREDDEF) \
        else pid(inst.pred)

    m0 = i0 = m1 = i1 = m2 = i2 = 0
    srcs = inst.srcs
    if kind != K_CALL:
        if len(srcs) > 0:
            m0, i0 = enc(srcs[0])
        if len(srcs) > 1:
            m1, i1 = enc(srcs[1])
        if len(srcs) > 2:
            m2, i2 = enc(srcs[2])

    aux = None
    if kind == K_CMP:
        aux = _CMP[inst.condition]
    elif kind == K_BRANCH:
        bi = label2idx.get(inst.target, -1)
        target = chain(bi) if bi >= 0 else None
        aux = (_CMP[inst.condition], inst.uid, target, inst.target)
    elif kind == K_JUMP:
        bi = label2idx.get(inst.target, -1)
        aux = (chain(bi) if bi >= 0 else None, inst.target)
    elif kind == K_CALL:
        aux = (inst.target, tuple(enc(s) for s in srcs))
    elif kind == K_RET:
        aux = bool(srcs)
    elif kind == K_PREDDEF:
        p_in_idx = -1 if inst.pred is None else pid(inst.pred)
        pdspec = tuple((pid(pd.reg), _PRED_TABLES[pd.ptype])
                       for pd in inst.pdests)
        aux = (_CMP[inst.condition], p_in_idx, pdspec)
    elif kind == K_PREDSET:
        aux = 1 if op is Opcode.PRED_SET else 0
    elif kind == K_CMOV:
        aux = op in (Opcode.CMOV, Opcode.FCMOV)
    elif kind in (K_DIV, K_REM, K_FDIV, K_LOAD, K_LOAD_B, K_FLOAD):
        aux = inst.speculative

    return (kind, sidx, dest, m0, i0, m1, i1, m2, i2, guard, aux)
