"""Columnar cycle simulation — the fastpath half of Section 4.1.

:func:`prepare_sim` lowers a decoded program once into per-static-
instruction arrays (byte address, latency, behaviour flags, dense
source/destination register ids); :class:`StreamSimulator` then assigns
issue cycles to :class:`TraceColumns` chunks with the exact model of
``sim.pipeline.simulate_trace`` (in-order k-issue, register interlocks,
BTB, optional blocking I/D caches) but no per-event attribute lookups.

Because the simulator is incremental (``feed`` chunks, then ``finish``),
it composes with the streaming emulator: :func:`emulate_and_simulate_stream`
runs emulate→simulate with the trace never materialized.

Register identity note: the legacy simulator keys its ``ready`` table by
register *objects* across the whole trace, so equal ``VReg``/``PReg``
values from different functions alias one scoreboard entry.  ``prepare_sim``
reproduces this with one program-wide object→dense-id map.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.fastpath.columns import TraceColumns
from repro.fastpath.decode import DecodedProgram, decode_program
from repro.ir.opcodes import OpCategory
from repro.machine.descriptor import MachineDescription
from repro.machine.latencies import latency as _pa7100_latency
from repro.sim.btb import BranchTargetBuffer
from repro.sim.cache import DirectMappedCache
from repro.sim.pipeline import SimulationStats

if TYPE_CHECKING:
    from repro.emu.trace import ExecutionResult
    from repro.ir.function import Program

# Per-static-instruction behaviour flags.
F_CONTROL = 1    # branch/jump/call/ret: occupies a branch issue slot
F_LOAD = 2
F_STORE = 4
F_DYNBRANCH = 8  # dynamically conditional: predicted at fetch
F_JUMP = 16      # jump flavour of a dynamic branch (outcome = executed)
_F_MEM = F_LOAD | F_STORE

_CONTROL_CATS = (OpCategory.BRANCH, OpCategory.JUMP, OpCategory.CALL,
                 OpCategory.RET)


class SimPrep:
    """Per-program arrays the column simulator indexes by ``sidx``."""

    __slots__ = ("pc_addr", "lat", "flags", "used", "dests", "pred",
                 "nregs")

    def __init__(self, pc_addr, lat, flags, used, dests, pred, nregs):
        self.pc_addr = pc_addr
        self.lat = lat
        self.flags = flags
        #: dense ids of all registers read (guard included) — interlocks
        self.used = used
        #: dense ids of all registers written (dest + pdests)
        self.dests = dests
        #: dense id of the guard predicate, -1 when unguarded
        self.pred = pred
        self.nregs = nregs


def prepare_sim(decoded: DecodedProgram, addresses: dict[int, int],
                machine: MachineDescription | None = None) -> SimPrep:
    """Lower static instructions to simulator arrays.

    ``machine`` supplies the latency table (PA-7100 defaults plus any
    ``latency_overrides``); omitting it keeps the plain PA-7100 table.
    Latencies are schedule-relevant (DAG edge weights), so every
    machine sharing a compiled program's ``schedule_digest`` resolves
    the same table and one prep serves all of them.
    """
    latency_of = _pa7100_latency if machine is None else machine.latency
    regmap: dict = {}

    def rid(r) -> int:
        i = regmap.get(r)
        if i is None:
            i = regmap[r] = len(regmap)
        return i

    get_addr = addresses.get
    pc_addr: list[int] = []
    lat: list[int] = []
    flags: list[int] = []
    used: list[tuple[int, ...]] = []
    dests: list[tuple[int, ...]] = []
    pred: list[int] = []
    for inst in decoded.instructions:
        cat = inst.cat
        f = 0
        if cat in _CONTROL_CATS:
            f |= F_CONTROL
        if cat is OpCategory.LOAD:
            f |= F_LOAD
        elif cat is OpCategory.STORE:
            f |= F_STORE
        if cat is OpCategory.BRANCH:
            f |= F_DYNBRANCH
        elif cat is OpCategory.JUMP and inst.pred is not None:
            f |= F_DYNBRANCH | F_JUMP
        pc_addr.append(get_addr(inst.uid, 0))
        lat.append(latency_of(inst.op))
        flags.append(f)
        used.append(tuple(rid(r) for r in inst.used_regs()))
        d = [] if inst.dest is None else [rid(inst.dest)]
        d.extend(rid(pd.reg) for pd in inst.pdests)
        dests.append(tuple(d))
        pred.append(-1 if inst.pred is None else rid(inst.pred))
    return SimPrep(pc_addr, lat, flags, used, dests, pred, len(regmap))


class StreamSimulator:
    """Incremental column simulator: ``feed`` chunks, then ``finish``."""

    def __init__(self, prep: SimPrep, machine: MachineDescription):
        self.prep = prep
        self.machine = machine
        self.btb = BranchTargetBuffer(machine.btb)
        perfect = machine.perfect_caches
        self.icache = None if perfect else DirectMappedCache(
            machine.icache)
        self.dcache = None if perfect else DirectMappedCache(
            machine.dcache)
        self.ready = [0] * prep.nregs
        self.cur_cycle = 0
        self.slots = 0
        self.branch_slots = 0
        self.fetch_available = 0
        self.mem_busy_until = 0
        self.dynamic = 0
        self.executed_n = 0
        self.suppressed_n = 0
        self.branches = 0
        self.mispredictions = 0

    def feed(self, cols: TraceColumns) -> None:
        """Assign cycles to one chunk of the dynamic trace."""
        prep = self.prep
        pc_addr = prep.pc_addr
        lat_tab = prep.lat
        flags_tab = prep.flags
        used_tab = prep.used
        dests_tab = prep.dests
        pred_tab = prep.pred
        ready = self.ready

        machine = self.machine
        width = machine.issue_width
        branch_limit = machine.branch_issue_limit
        btb_predict = self.btb.predict_and_update
        btb_bubble = self.btb.penalty + 1
        icache = self.icache
        dcache = self.dcache
        ic_access = icache.access if icache is not None else None
        ic_penalty = icache.miss_penalty if icache is not None else 0
        dc_access = dcache.access if dcache is not None else None
        dc_penalty = dcache.miss_penalty if dcache is not None else 0

        cur_cycle = self.cur_cycle
        slots = self.slots
        branch_slots = self.branch_slots
        fetch_available = self.fetch_available
        mem_busy_until = self.mem_busy_until
        dynamic = self.dynamic
        executed_n = self.executed_n
        suppressed_n = self.suppressed_n
        branches = self.branches
        mispredictions = self.mispredictions

        for si, fl, mem_addr in zip(cols.sidx, cols.flags, cols.addr):
            dynamic += 1
            f = flags_tab[si]
            executed = fl & 1

            earliest = fetch_available
            # Instruction fetch.
            if ic_access is not None and not ic_access(pc_addr[si]):
                fill_done = (cur_cycle if cur_cycle > earliest
                             else earliest) + ic_penalty
                if fill_done > fetch_available:
                    fetch_available = fill_done
                if fill_done > earliest:
                    earliest = fill_done

            # Operand interlocks: a nullified instruction still needed
            # its guard at decode; an executed one needs all sources.
            if executed:
                for r in used_tab[si]:
                    t = ready[r]
                    if t > earliest:
                        earliest = t
            else:
                p = pred_tab[si]
                if p >= 0:
                    t = ready[p]
                    if t > earliest:
                        earliest = t

            # Blocking data cache: memory ops wait out a pending miss.
            if executed and f & _F_MEM and mem_busy_until > earliest:
                earliest = mem_busy_until

            # In-order issue: find the slot.
            t = earliest if earliest > cur_cycle else cur_cycle
            if t == cur_cycle:
                if slots >= width:
                    t += 1
                elif executed and f & F_CONTROL \
                        and branch_slots >= branch_limit:
                    t += 1
            if t > cur_cycle:
                cur_cycle = t
                slots = 0
                branch_slots = 0
            slots += 1
            if executed and f & F_CONTROL:
                branch_slots += 1

            # Branch prediction: conditional branches and predicated
            # jumps are predicted at fetch even when nullified.
            if f & F_DYNBRANCH:
                branches += 1
                if f & F_JUMP:
                    outcome = bool(executed)
                else:
                    outcome = bool(fl & 2) if executed else False
                if btb_predict(pc_addr[si], outcome):
                    mispredictions += 1
                    stall = t + btb_bubble
                    if stall > fetch_available:
                        fetch_available = stall
            if not executed:
                suppressed_n += 1
                continue
            executed_n += 1

            # Result latency and memory timing.
            lat = lat_tab[si]
            if f & F_LOAD:
                if dc_access is not None and mem_addr >= 0 \
                        and not dc_access(mem_addr):
                    lat += dc_penalty
                    mem_busy_until = t + lat
            elif f & F_STORE:
                if dc_access is not None and mem_addr >= 0:
                    # Write-through, no allocate: no fill, no stall.
                    dc_access(mem_addr, False)
            done = t + lat
            for r in dests_tab[si]:
                ready[r] = done

        self.cur_cycle = cur_cycle
        self.slots = slots
        self.branch_slots = branch_slots
        self.fetch_available = fetch_available
        self.mem_busy_until = mem_busy_until
        self.dynamic = dynamic
        self.executed_n = executed_n
        self.suppressed_n = suppressed_n
        self.branches = branches
        self.mispredictions = mispredictions

    def finish(self) -> SimulationStats:
        stats = SimulationStats(
            cycles=self.cur_cycle + 1,
            dynamic_instructions=self.dynamic,
            executed_instructions=self.executed_n,
            suppressed_instructions=self.suppressed_n,
            branches=self.branches,
            mispredictions=self.mispredictions)
        if self.icache is not None:
            stats.icache_accesses = self.icache.accesses
            stats.icache_misses = self.icache.misses
        if self.dcache is not None:
            stats.dcache_accesses = self.dcache.accesses
            stats.dcache_misses = self.dcache.misses
        return stats


def simulate_columns(cols: TraceColumns, prep: SimPrep,
                     machine: MachineDescription) -> SimulationStats:
    """One-shot columnar equivalent of ``sim.pipeline.simulate_trace``."""
    sim = StreamSimulator(prep, machine)
    sim.feed(cols)
    return sim.finish()


def emulate_and_simulate_stream(
        program: "Program", addresses: dict[int, int],
        machine: MachineDescription,
        inputs: dict[str, list[int | float] | bytes] | None = None,
        max_steps: int = 50_000_000,
        watchdog=None,
        chunk_events: int | None = None,
        decoded: DecodedProgram | None = None,
        prep: SimPrep | None = None,
        metrics=None
) -> "tuple[ExecutionResult, SimulationStats]":
    """Streaming emulate→simulate: the trace is consumed chunk-by-chunk
    and never materialized (``ExecutionResult.trace`` is ``None``).

    When a :class:`~repro.engine.metrics.PipelineMetrics` is supplied,
    the fused run times every simulator feed separately and credits the
    split to the ``emulate`` and ``simulate`` stages (one invocation
    each), so streamed runs stay comparable with the unfused engines in
    ``BENCH_pipeline.json``.
    """
    from time import perf_counter

    from repro.fastpath.interp import DEFAULT_CHUNK_EVENTS, \
        run_program_fast
    if decoded is None:
        decoded = decode_program(program)
    if prep is None:
        prep = prepare_sim(decoded, addresses, machine)
    sim = StreamSimulator(prep, machine)
    sink = sim.feed
    sim_seconds = [0.0]
    if metrics is not None:
        def sink(cols, _feed=sim.feed, _acc=sim_seconds):
            start = perf_counter()
            _feed(cols)
            _acc[0] += perf_counter() - start
    begin = perf_counter()
    execution = run_program_fast(
        program, inputs=inputs, max_steps=max_steps, watchdog=watchdog,
        sink=sink,
        chunk_events=chunk_events or DEFAULT_CHUNK_EVENTS,
        decoded=decoded)
    mid = perf_counter()
    stats = sim.finish()
    if metrics is not None:
        sim_wall = sim_seconds[0] + (perf_counter() - mid)
        metrics.record_stage("emulate", max(mid - begin - sim_seconds[0],
                                            0.0))
        metrics.record_stage("simulate", sim_wall)
    return execution, stats
