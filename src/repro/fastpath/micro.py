"""Timeit microbenchmarks for the hot loops (``repro bench --micro``).

Six benchmarks, each pitting a baseline against its faster replacement
on identical work:

* **dispatch** — full interpreter run of a small predicated kernel
  (:func:`~repro.emu.interpreter.run_program` vs
  :func:`~repro.fastpath.interp.run_program_fast`), normalized per
  dynamic instruction;
* **trace-append** — recording one dynamic event
  (``list.append(TraceEvent(...))`` vs :meth:`TraceColumns.append`);
* **issue-loop** — cycle simulation of a recorded trace
  (:func:`~repro.sim.pipeline.simulate_trace` vs
  :func:`~repro.fastpath.simulate.simulate_columns`), normalized per
  trace event;
* **chunk-sim** — chunked cycle simulation of the same trace
  (:class:`~repro.fastpath.simulate.StreamSimulator` vs
  :class:`~repro.fastpath.vector.VectorSimulator`), normalized per
  trace event;
* **stitch** — the same comparison on deliberately tiny chunks, so
  chunk-boundary state stitching dominates, normalized per chunk;
* **specialize** — vector-backend specialization (tables rebuilt every
  run) amortized over a short vs a long trace: the speedup is the
  amortization factor trace length buys, not an engine comparison.

Everything runs on :mod:`timeit` from the standard library; the
``benchmarks/perf/`` scripts are thin wrappers over this module so the
numbers are reproducible from either entry point.
"""

from __future__ import annotations

import timeit
from dataclasses import dataclass

#: MiniC kernel with branchy, predicatable control flow and array
#: traffic — small enough for a sub-second legacy run, hot enough that
#: per-instruction dispatch cost dominates.
_KERNEL = """
int data[64];
int main() {
    int i; int j; int acc; int lim;
    acc = 0;
    for (i = 0; i < 200; i = i + 1) {
        lim = (i % 13) + 3;
        for (j = 0; j < lim; j = j + 1) {
            if (data[(i + j) % 64] > j) {
                acc = acc + data[j % 64];
            } else {
                acc = acc - j;
            }
            data[(i * 3 + j) % 64] = acc % 251;
        }
    }
    return acc % 100003;
}
"""


@dataclass
class MicroResult:
    """One legacy-vs-fastpath comparison."""

    name: str
    unit: str
    legacy_ns: float
    fast_ns: float

    @property
    def speedup(self) -> float:
        return self.legacy_ns / self.fast_ns if self.fast_ns else 0.0


def _time_per_unit(fn, units: int, repeat: int) -> float:
    """Best-of-``repeat`` nanoseconds per unit of work for ``fn()``."""
    best = min(timeit.repeat(fn, number=1, repeat=repeat))
    return best * 1e9 / max(units, 1)


def _compiled_kernel():
    from repro.analysis.profile import Profile
    from repro.machine.descriptor import fig8_machine
    from repro.toolchain import Model, compile_for_model, frontend

    base = frontend(_KERNEL)
    profile = Profile.collect(base, max_steps=5_000_000)
    machine = fig8_machine()
    compiled = compile_for_model(base, Model.FULLPRED, profile, machine)
    return compiled, machine


def bench_dispatch(repeat: int = 3) -> MicroResult:
    """Interpreter dispatch: legacy loop vs pre-decoded micro-ops."""
    from repro.emu.interpreter import run_program
    from repro.fastpath.decode import decode_program
    from repro.fastpath.interp import run_program_fast

    compiled, _ = _compiled_kernel()
    program = compiled.program
    decoded = decode_program(program)
    dyn = run_program_fast(program, decoded=decoded).dynamic_count
    legacy = _time_per_unit(lambda: run_program(program), dyn, repeat)
    fast = _time_per_unit(
        lambda: run_program_fast(program, decoded=decoded), dyn, repeat)
    return MicroResult("dispatch", "dynamic instr", legacy, fast)


def bench_trace_append(repeat: int = 3, events: int = 50_000) -> MicroResult:
    """Recording one dynamic event: TraceEvent list vs columnar arrays."""
    from repro.emu.trace import TraceEvent
    from repro.fastpath.columns import TraceColumns
    from repro.ir.instruction import Instruction
    from repro.ir.opcodes import Opcode

    inst = Instruction(Opcode.ADD, dest=None, srcs=())

    def legacy():
        out = []
        append = out.append
        for i in range(events):
            append(TraceEvent(inst, True, False, -1, None))

    def fast():
        cols = TraceColumns()
        append = cols.append
        for i in range(events):
            append(7, 1, -1, None)

    legacy_ns = _time_per_unit(legacy, events, repeat)
    fast_ns = _time_per_unit(fast, events, repeat)
    return MicroResult("trace-append", "event", legacy_ns, fast_ns)


def bench_issue_loop(repeat: int = 3) -> MicroResult:
    """Simulator issue loop: object trace vs columnar stream."""
    from repro.emu.interpreter import run_program
    from repro.fastpath.decode import decode_program
    from repro.fastpath.interp import run_program_fast
    from repro.fastpath.simulate import prepare_sim, simulate_columns
    from repro.sim.pipeline import simulate_trace

    compiled, machine = _compiled_kernel()
    program = compiled.program
    decoded = decode_program(program)
    events = run_program(program, collect_trace=True).trace
    cols = run_program_fast(program, collect_trace=True,
                            decoded=decoded).trace
    prep = prepare_sim(decoded, compiled.addresses)
    n = len(events)
    legacy = _time_per_unit(
        lambda: simulate_trace(events, compiled.addresses, machine),
        n, repeat)
    fast = _time_per_unit(
        lambda: simulate_columns(cols, prep, machine), n, repeat)
    return MicroResult("issue-loop", "trace event", legacy, fast)


def _vector_fixture():
    """Shared fixture for the vector benches: trace + sim tables."""
    from repro.fastpath.decode import decode_program
    from repro.fastpath.interp import run_program_fast
    from repro.fastpath.simulate import prepare_sim
    from repro.fastpath.vector import VectorSimPrep

    compiled, machine = _compiled_kernel()
    decoded = decode_program(compiled.program)
    cols = run_program_fast(compiled.program, collect_trace=True,
                            decoded=decoded).trace
    prep = prepare_sim(decoded, compiled.addresses, machine)
    return cols, prep, VectorSimPrep(prep), machine


def _feed_chunked(sim, cols, chunk_events: int) -> None:
    for chunk in cols.chunks(chunk_events):
        sim.feed(chunk)
    sim.finish()


def bench_chunk_simulate(repeat: int = 3) -> MicroResult:
    """Chunked cycle simulation: stream scalar loop vs vector backend."""
    from repro.fastpath.simulate import StreamSimulator
    from repro.fastpath.vector import VectorSimulator

    cols, prep, vprep, machine = _vector_fixture()
    vprep.native_tables()  # specialize once; chunk-sim measures feeds
    size = 1 << 14
    legacy = _time_per_unit(
        lambda: _feed_chunked(StreamSimulator(prep, machine), cols, size),
        len(cols), repeat)
    fast = _time_per_unit(
        lambda: _feed_chunked(VectorSimulator(vprep, machine), cols,
                              size),
        len(cols), repeat)
    return MicroResult("chunk-sim", "trace event", legacy, fast)


def bench_boundary_stitch(repeat: int = 3,
                          chunk_events: int = 256) -> MicroResult:
    """Tiny chunks, so per-boundary state stitching dominates."""
    from repro.fastpath.simulate import StreamSimulator
    from repro.fastpath.vector import VectorSimulator

    cols, prep, vprep, machine = _vector_fixture()
    vprep.native_tables()
    boundaries = max(1, -(-len(cols) // chunk_events))
    legacy = _time_per_unit(
        lambda: _feed_chunked(StreamSimulator(prep, machine), cols,
                              chunk_events),
        boundaries, repeat)
    fast = _time_per_unit(
        lambda: _feed_chunked(VectorSimulator(vprep, machine), cols,
                              chunk_events),
        boundaries, repeat)
    return MicroResult("stitch", "chunk", legacy, fast)


def bench_specialize(repeat: int = 3,
                     short_events: int = 2048) -> MicroResult:
    """Specialization cost vs trace length.

    Both sides rebuild the vector tables from the bare ``SimPrep``
    every run; the "legacy" side then simulates only a short prefix
    while the "fast" side simulates the whole trace.  The speedup is
    how much the per-event specialization premium shrinks as the trace
    grows — an amortization factor, not an engine-vs-engine number.
    """
    from repro.fastpath.vector import VectorSimPrep, VectorSimulator

    cols, prep, _, machine = _vector_fixture()
    short = next(cols.chunks(short_events))

    def run(trace):
        sim = VectorSimulator(VectorSimPrep(prep), machine)
        sim.feed(trace)
        sim.finish()

    legacy = _time_per_unit(lambda: run(short), len(short), repeat)
    fast = _time_per_unit(lambda: run(cols), len(cols), repeat)
    return MicroResult("specialize", "trace event", legacy, fast)


def run_all(repeat: int = 3) -> list[MicroResult]:
    return [bench_dispatch(repeat), bench_trace_append(repeat),
            bench_issue_loop(repeat), bench_chunk_simulate(repeat),
            bench_boundary_stitch(repeat), bench_specialize(repeat)]


def render(results: list[MicroResult]) -> str:
    lines = [f"{'benchmark':<14s}{'legacy':>12s}{'fastpath':>12s}"
             f"{'speedup':>9s}  unit",
             "-" * 55]
    for r in results:
        lines.append(f"{r.name:<14s}{r.legacy_ns:>10.0f}ns"
                     f"{r.fast_ns:>10.0f}ns{r.speedup:>8.2f}x"
                     f"  per {r.unit}")
    return "\n".join(lines)
