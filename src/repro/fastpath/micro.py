"""Timeit microbenchmarks for the hot loops (``repro bench --micro``).

Three benchmarks, each pitting the legacy object-graph code against its
fastpath replacement on identical work:

* **dispatch** — full interpreter run of a small predicated kernel
  (:func:`~repro.emu.interpreter.run_program` vs
  :func:`~repro.fastpath.interp.run_program_fast`), normalized per
  dynamic instruction;
* **trace-append** — recording one dynamic event
  (``list.append(TraceEvent(...))`` vs :meth:`TraceColumns.append`);
* **issue-loop** — cycle simulation of a recorded trace
  (:func:`~repro.sim.pipeline.simulate_trace` vs
  :func:`~repro.fastpath.simulate.simulate_columns`), normalized per
  trace event.

Everything runs on :mod:`timeit` from the standard library; the
``benchmarks/perf/`` scripts are thin wrappers over this module so the
numbers are reproducible from either entry point.
"""

from __future__ import annotations

import timeit
from dataclasses import dataclass

#: MiniC kernel with branchy, predicatable control flow and array
#: traffic — small enough for a sub-second legacy run, hot enough that
#: per-instruction dispatch cost dominates.
_KERNEL = """
int data[64];
int main() {
    int i; int j; int acc; int lim;
    acc = 0;
    for (i = 0; i < 200; i = i + 1) {
        lim = (i % 13) + 3;
        for (j = 0; j < lim; j = j + 1) {
            if (data[(i + j) % 64] > j) {
                acc = acc + data[j % 64];
            } else {
                acc = acc - j;
            }
            data[(i * 3 + j) % 64] = acc % 251;
        }
    }
    return acc % 100003;
}
"""


@dataclass
class MicroResult:
    """One legacy-vs-fastpath comparison."""

    name: str
    unit: str
    legacy_ns: float
    fast_ns: float

    @property
    def speedup(self) -> float:
        return self.legacy_ns / self.fast_ns if self.fast_ns else 0.0


def _time_per_unit(fn, units: int, repeat: int) -> float:
    """Best-of-``repeat`` nanoseconds per unit of work for ``fn()``."""
    best = min(timeit.repeat(fn, number=1, repeat=repeat))
    return best * 1e9 / max(units, 1)


def _compiled_kernel():
    from repro.analysis.profile import Profile
    from repro.machine.descriptor import fig8_machine
    from repro.toolchain import Model, compile_for_model, frontend

    base = frontend(_KERNEL)
    profile = Profile.collect(base, max_steps=5_000_000)
    machine = fig8_machine()
    compiled = compile_for_model(base, Model.FULLPRED, profile, machine)
    return compiled, machine


def bench_dispatch(repeat: int = 3) -> MicroResult:
    """Interpreter dispatch: legacy loop vs pre-decoded micro-ops."""
    from repro.emu.interpreter import run_program
    from repro.fastpath.decode import decode_program
    from repro.fastpath.interp import run_program_fast

    compiled, _ = _compiled_kernel()
    program = compiled.program
    decoded = decode_program(program)
    dyn = run_program_fast(program, decoded=decoded).dynamic_count
    legacy = _time_per_unit(lambda: run_program(program), dyn, repeat)
    fast = _time_per_unit(
        lambda: run_program_fast(program, decoded=decoded), dyn, repeat)
    return MicroResult("dispatch", "dynamic instr", legacy, fast)


def bench_trace_append(repeat: int = 3, events: int = 50_000) -> MicroResult:
    """Recording one dynamic event: TraceEvent list vs columnar arrays."""
    from repro.emu.trace import TraceEvent
    from repro.fastpath.columns import TraceColumns
    from repro.ir.instruction import Instruction
    from repro.ir.opcodes import Opcode

    inst = Instruction(Opcode.ADD, dest=None, srcs=())

    def legacy():
        out = []
        append = out.append
        for i in range(events):
            append(TraceEvent(inst, True, False, -1, None))

    def fast():
        cols = TraceColumns()
        append = cols.append
        for i in range(events):
            append(7, 1, -1, None)

    legacy_ns = _time_per_unit(legacy, events, repeat)
    fast_ns = _time_per_unit(fast, events, repeat)
    return MicroResult("trace-append", "event", legacy_ns, fast_ns)


def bench_issue_loop(repeat: int = 3) -> MicroResult:
    """Simulator issue loop: object trace vs columnar stream."""
    from repro.emu.interpreter import run_program
    from repro.fastpath.decode import decode_program
    from repro.fastpath.interp import run_program_fast
    from repro.fastpath.simulate import prepare_sim, simulate_columns
    from repro.sim.pipeline import simulate_trace

    compiled, machine = _compiled_kernel()
    program = compiled.program
    decoded = decode_program(program)
    events = run_program(program, collect_trace=True).trace
    cols = run_program_fast(program, collect_trace=True,
                            decoded=decoded).trace
    prep = prepare_sim(decoded, compiled.addresses)
    n = len(events)
    legacy = _time_per_unit(
        lambda: simulate_trace(events, compiled.addresses, machine),
        n, repeat)
    fast = _time_per_unit(
        lambda: simulate_columns(cols, prep, machine), n, repeat)
    return MicroResult("issue-loop", "trace event", legacy, fast)


def run_all(repeat: int = 3) -> list[MicroResult]:
    return [bench_dispatch(repeat), bench_trace_append(repeat),
            bench_issue_loop(repeat)]


def render(results: list[MicroResult]) -> str:
    lines = [f"{'benchmark':<14s}{'legacy':>12s}{'fastpath':>12s}"
             f"{'speedup':>9s}  unit",
             "-" * 55]
    for r in results:
        lines.append(f"{r.name:<14s}{r.legacy_ns:>10.0f}ns"
                     f"{r.fast_ns:>10.0f}ns{r.speedup:>8.2f}x"
                     f"  per {r.unit}")
    return "\n".join(lines)
