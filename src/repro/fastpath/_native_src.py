"""C source for the optional native fastpath kernels.

Kept in its own module so :mod:`repro.fastpath.native` stays readable;
the text below is compiled on demand with the system C compiler (see
``native.build``).  Two kernels live here:

* ``sim_scan`` — a full transcription of
  :class:`repro.fastpath.simulate.StreamSimulator.feed` over one trace
  chunk, with every piece of carried state (scoreboard, BTB, cache
  tags, issue counters) owned by caller-provided buffers so chunk
  boundaries and snapshots behave exactly like the Python scan.
* ``emu_new``/``emu_run``/``emu_free`` — a resumable micro-op
  interpreter over the flat :class:`DecodedProgram` image with the
  same observable semantics as ``repro.fastpath.interp`` (wrap-to-32
  arithmetic, dynamic int/float typing, guard nullification,
  predicate truth tables, speculative-op behaviour, trace event
  stream, block/branch profile counting with first-occurrence order,
  fault codes at the exact serial fault points).  It suspends when
  the trace chunk buffer fills (``EMU_CHUNK``), letting Python drain
  the chunk and resume — which is how both the streamed (sink) and
  collected trace modes are produced byte-identically.

Programs whose serial execution would die with a Python *type* error
(e.g. integer ops on float registers) are outside the contract: the
toolchain never emits them and the differential harnesses would crash
on the oracle side first.
"""

C_SOURCE = r"""
#include <stdint.h>
#include <stdlib.h>
#include <string.h>
#include <math.h>

/* ---------------------------------------------------------------- */
/* sim_scan: StreamSimulator.feed over one chunk.                    */
/* ---------------------------------------------------------------- */

/* ptrs layout (see native.py _SIM_PTRS):
   0 c_sidx i32[n]   1 c_flags u8[n]   2 c_addr i64[n]
   3 pc_addr i64[S]  4 lat i32[S]      5 flags u8[S]   6 pred i32[S]
   7 used_off i32[S+1]  8 used_idx i32[]
   9 dests_off i32[S+1] 10 dests_idx i32[]
   11 ready i64[nregs]
   12 btb_tags i64[E] 13 btb_ctr u8[E]
   14 ic_tags i64[]   15 dc_tags i64[]
   16 st i64[14]
   cfg layout:
   0 n  1 btb_entries  2 btb_bubble  3 ic_lines  4 ic_linebytes
   5 ic_pen  6 dc_lines  7 dc_linebytes  8 dc_pen  9 perfect
   10 width  11 branch_limit
   st layout:
   0 cur 1 slots 2 bslots 3 fetch 4 membusy 5 dynamic 6 executed
   7 suppressed 8 branches 9 misp 10 ic_acc 11 ic_miss 12 dc_acc
   13 dc_miss */

#define F_CONTROL 1
#define F_LOAD 2
#define F_STORE 4
#define F_DYNBRANCH 8
#define F_JUMP 16
#define F_MEM (F_LOAD | F_STORE)

void sim_scan(const int64_t *ptrs, const int64_t *cfg)
{
    const int32_t *c_sidx = (const int32_t *)ptrs[0];
    const uint8_t *c_flags = (const uint8_t *)ptrs[1];
    const int64_t *c_addr = (const int64_t *)ptrs[2];
    const int64_t *pc_addr = (const int64_t *)ptrs[3];
    const int32_t *lat_tab = (const int32_t *)ptrs[4];
    const uint8_t *flags_tab = (const uint8_t *)ptrs[5];
    const int32_t *pred_tab = (const int32_t *)ptrs[6];
    const int32_t *used_off = (const int32_t *)ptrs[7];
    const int32_t *used_idx = (const int32_t *)ptrs[8];
    const int32_t *dests_off = (const int32_t *)ptrs[9];
    const int32_t *dests_idx = (const int32_t *)ptrs[10];
    int64_t *ready = (int64_t *)ptrs[11];
    int64_t *btb_tags = (int64_t *)ptrs[12];
    uint8_t *btb_ctr = (uint8_t *)ptrs[13];
    int64_t *ic_tags = (int64_t *)ptrs[14];
    int64_t *dc_tags = (int64_t *)ptrs[15];
    int64_t *st = (int64_t *)ptrs[16];

    const int64_t n = cfg[0];
    const int64_t btb_entries = cfg[1];
    const int64_t btb_bubble = cfg[2];
    const int64_t ic_lines = cfg[3], ic_linebytes = cfg[4];
    const int64_t ic_pen = cfg[5];
    const int64_t dc_lines = cfg[6], dc_linebytes = cfg[7];
    const int64_t dc_pen = cfg[8];
    const int perfect = (int)cfg[9];
    const int64_t width = cfg[10], branch_limit = cfg[11];

    int64_t cur = st[0], slots = st[1], bslots = st[2];
    int64_t fetch = st[3], membusy = st[4];
    int64_t dynamic = st[5], executed_n = st[6], suppressed_n = st[7];
    int64_t branches = st[8], misp = st[9];
    int64_t ic_acc = st[10], ic_miss = st[11];
    int64_t dc_acc = st[12], dc_miss = st[13];

    for (int64_t i = 0; i < n; i++) {
        const int32_t si = c_sidx[i];
        const uint8_t fl = c_flags[i];
        const int64_t mem_addr = c_addr[i];
        const uint8_t f = flags_tab[si];
        const int executed = fl & 1;
        dynamic++;

        int64_t earliest = fetch;
        if (!perfect) {
            /* Instruction fetch: every event probes the icache. */
            const int64_t line = pc_addr[si] / ic_linebytes;
            const int64_t set = line % ic_lines;
            ic_acc++;
            if (ic_tags[set] != line) {
                ic_miss++;
                ic_tags[set] = line;
                int64_t fill = (cur > earliest ? cur : earliest)
                               + ic_pen;
                if (fill > fetch)
                    fetch = fill;
                if (fill > earliest)
                    earliest = fill;
            }
        }

        if (executed) {
            for (int32_t k = used_off[si]; k < used_off[si + 1]; k++) {
                const int64_t t0 = ready[used_idx[k]];
                if (t0 > earliest)
                    earliest = t0;
            }
        } else {
            const int32_t p = pred_tab[si];
            if (p >= 0) {
                const int64_t t0 = ready[p];
                if (t0 > earliest)
                    earliest = t0;
            }
        }

        if (!perfect && executed && (f & F_MEM) && membusy > earliest)
            earliest = membusy;

        int64_t t = earliest > cur ? earliest : cur;
        if (t == cur) {
            if (slots >= width)
                t += 1;
            else if (executed && (f & F_CONTROL)
                     && bslots >= branch_limit)
                t += 1;
        }
        if (t > cur) {
            cur = t;
            slots = 0;
            bslots = 0;
        }
        slots += 1;
        if (executed && (f & F_CONTROL))
            bslots += 1;

        if (f & F_DYNBRANCH) {
            branches++;
            int outcome;
            if (f & F_JUMP)
                outcome = executed != 0;
            else
                outcome = executed ? ((fl & 2) != 0) : 0;
            const int64_t a = pc_addr[si];
            const int64_t bi = (a >> 2) % btb_entries;
            int predicted;
            if (btb_tags[bi] == a) {
                predicted = btb_ctr[bi] >= 2;
                if (outcome) {
                    if (btb_ctr[bi] < 3)
                        btb_ctr[bi]++;
                } else if (btb_ctr[bi] > 0) {
                    btb_ctr[bi]--;
                }
            } else {
                predicted = 0;
                if (outcome) {
                    btb_tags[bi] = a;
                    btb_ctr[bi] = 2;
                }
            }
            if (predicted != outcome) {
                misp++;
                const int64_t stall = t + btb_bubble;
                if (stall > fetch)
                    fetch = stall;
            }
        }
        if (!executed) {
            suppressed_n++;
            continue;
        }
        executed_n++;

        int64_t lat = lat_tab[si];
        if (f & F_LOAD) {
            if (!perfect && mem_addr >= 0) {
                const int64_t line = mem_addr / dc_linebytes;
                const int64_t set = line % dc_lines;
                dc_acc++;
                if (dc_tags[set] != line) {
                    dc_miss++;
                    dc_tags[set] = line;
                    lat += dc_pen;
                    membusy = t + lat;
                }
            }
        } else if (f & F_STORE) {
            if (!perfect && mem_addr >= 0) {
                /* Write-through, no allocate: count only. */
                const int64_t line = mem_addr / dc_linebytes;
                const int64_t set = line % dc_lines;
                dc_acc++;
                if (dc_tags[set] != line)
                    dc_miss++;
            }
        }
        const int64_t done = t + lat;
        for (int32_t k = dests_off[si]; k < dests_off[si + 1]; k++)
            ready[dests_idx[k]] = done;
    }

    st[0] = cur; st[1] = slots; st[2] = bslots;
    st[3] = fetch; st[4] = membusy;
    st[5] = dynamic; st[6] = executed_n; st[7] = suppressed_n;
    st[8] = branches; st[9] = misp;
    st[10] = ic_acc; st[11] = ic_miss;
    st[12] = dc_acc; st[13] = dc_miss;
}

/* ---------------------------------------------------------------- */
/* Micro-op emulator.                                                */
/* ---------------------------------------------------------------- */

enum {
    K_ADD, K_MOV, K_CMP, K_SUB, K_AND, K_PREDDEF, K_OR, K_CMOV,
    K_SELECT, K_XOR, K_SHL, K_SHR, K_NOT, K_NEG, K_MUL, K_AND_NOT,
    K_OR_NOT, K_DIV, K_REM, K_FADD, K_FSUB, K_FMUL, K_FDIV, K_FNEG,
    K_FMOV, K_CVT_IF, K_CVT_FI, K_PREDSET, K_NOP,
    K_LOAD, K_LOAD_B, K_FLOAD, K_STORE, K_STORE_B, K_FSTORE,
    K_BRANCH, K_JUMP, K_CALL, K_RET
};

/* run statuses */
#define ST_DONE 0
#define ST_CHUNK 1
#define ST_FAULT 2

/* fault codes (out[4]) */
#define FLT_STEPS 1
#define FLT_FELL_OFF 2
#define FLT_BRANCH_LABEL 3
#define FLT_JUMP_LABEL 4
#define FLT_LOAD 5
#define FLT_LOAD_B 6
#define FLT_LOAD_F 7
#define FLT_STORE 8
#define FLT_IDIV0 9
#define FLT_FDIV0 10

#define NXT_NONE (-10)
#define TGT_UNKNOWN (-2)

typedef struct { int64_t i; double f; uint8_t isf; } Val;

typedef struct {
    int32_t fid;
    int32_t rpc;
    int32_t rdest;
    int64_t rbase;
    int64_t pbase;
} Frame;

typedef struct {
    /* program image (borrowed pointers; Python owns the buffers) */
    const int32_t *fn_nregs, *fn_npregs, *fn_entry_pc, *fn_entry_chain;
    const int32_t *fn_params_off, *params, *fn_const_off;
    const int64_t *const_i; const double *const_f;
    const uint8_t *const_isf;
    const int32_t *kind, *sidx, *dest, *m0, *i0, *m1, *i1, *m2, *i2;
    const int32_t *guard, *cond, *spec, *buid, *tgt_pc, *tgt_chain;
    const int32_t *callee, *cargs_off, *cargs_mode, *cargs_idx;
    const int32_t *pd_off, *pd_pidx;
    const int8_t *pd_table;
    const int32_t *pdp, *nxt_pc, *nxt_chain, *fn_of_pc;
    const int32_t *chain_off, *chain_keys;
    uint8_t *mem;
    int32_t *t_sidx; uint8_t *t_flags; int64_t *t_addr;
    int32_t *t_vidx;
    int64_t *val_i; double *val_f; uint8_t *val_isf;
    int64_t *site_counts; int32_t *site_order;
    int64_t *branch_counts; int32_t *branch_order;
    int64_t *out;
    double *out_f;
    int64_t nfuncs, ncode, memsize, max_steps, chunk_cap, entry_fid;
    int64_t nsites, nbuids;
    /* runtime state */
    int64_t steps, suppressed;
    int64_t tn, nvals;
    int64_t order_n, border_n;
    int32_t fid, pc;
    int64_t rbase, pbase;
    int64_t *ri; double *rf; uint8_t *rtag;
    uint8_t *pl;
    int64_t rtop, rcap, ptop, pcap;
    Frame *frames;
    int64_t nframes, fcap;
    Val *argv;
    int64_t argcap;
    int started, after_chunk;
} Emu;

/* Low 32 bits as a signed value; unsigned intermediate so any int64
   input is handled without signed-overflow UB (mod-2^32 matches the
   Python "(x + 0x80000000 & 0xFFFFFFFF) - 0x80000000" idiom). */
static inline int64_t wrap32u(uint64_t x)
{
    return (int64_t)((x + 0x80000000ULL) & 0xFFFFFFFFULL)
           - 0x80000000LL;
}

static inline double asf(Val v) { return v.isf ? v.f : (double)v.i; }

static inline int istrue(Val v)
{
    return v.isf ? (v.f != 0.0) : (v.i != 0);
}

static inline int docmp(int cond, Val a, Val b)
{
    if (a.isf || b.isf) {
        const double x = asf(a), y = asf(b);
        switch (cond) {
        case 0: return x == y;
        case 1: return x != y;
        case 2: return x < y;
        case 3: return x <= y;
        case 4: return x > y;
        default: return x >= y;
        }
    }
    const int64_t x = a.i, y = b.i;
    switch (cond) {
    case 0: return x == y;
    case 1: return x != y;
    case 2: return x < y;
    case 3: return x <= y;
    case 4: return x > y;
    default: return x >= y;
    }
}

static inline Val getv(Emu *e, int m, int i)
{
    Val v;
    if (m == 0) {
        const int64_t b = e->rbase + i;
        v.i = e->ri[b]; v.f = e->rf[b]; v.isf = e->rtag[b];
    } else if (m == 1) {
        const int64_t c = e->fn_const_off[e->fid] + i;
        v.i = e->const_i[c]; v.f = e->const_f[c];
        v.isf = e->const_isf[c];
    } else {
        v.i = e->pl[e->pbase + i]; v.f = 0.0; v.isf = 0;
    }
    return v;
}

static inline void seti(Emu *e, int d, int64_t x)
{
    const int64_t b = e->rbase + d;
    e->ri[b] = x; e->rtag[b] = 0;
}

static inline void setf(Emu *e, int d, double x)
{
    const int64_t b = e->rbase + d;
    e->rf[b] = x; e->rtag[b] = 1;
}

static inline void setval(Emu *e, int64_t slot, Val v)
{
    e->ri[slot] = v.i; e->rf[slot] = v.f; e->rtag[slot] = v.isf;
}

/* Count every block-profile key in chain ``ci`` (the pre-walked
   fall-through chain), recording first occurrences in order so Python
   can rebuild the dict with serial insertion order. */
static inline void count_chain(Emu *e, int32_t ci)
{
    for (int32_t k = e->chain_off[ci]; k < e->chain_off[ci + 1]; k++) {
        const int32_t s = e->chain_keys[k];
        if (e->site_counts[s]++ == 0)
            e->site_order[e->order_n++] = s;
    }
}

static int ensure_regs(Emu *e, int64_t nr, int64_t np)
{
    if (e->rtop + nr > e->rcap) {
        int64_t nc = e->rcap * 2;
        while (nc < e->rtop + nr)
            nc *= 2;
        int64_t *ri = realloc(e->ri, nc * sizeof(int64_t));
        double *rf = realloc(e->rf, nc * sizeof(double));
        uint8_t *rt = realloc(e->rtag, nc);
        if (!ri || !rf || !rt)
            return 0;
        e->ri = ri; e->rf = rf; e->rtag = rt; e->rcap = nc;
    }
    if (e->ptop + np > e->pcap) {
        int64_t nc = e->pcap * 2;
        while (nc < e->ptop + np)
            nc *= 2;
        uint8_t *pl = realloc(e->pl, nc);
        if (!pl)
            return 0;
        e->pl = pl; e->pcap = nc;
    }
    return 1;
}

/* ptrs layout: see native.py _EMU_PTRS.  cfg:
   0 nfuncs 1 ncode 2 memsize 3 max_steps 4 chunk_cap 5 entry_fid
   6 nsites 7 nbuids 8 max_call_args
   out (i64[16]):
   0 steps 1 suppressed 2 ret_isf 3 ret_i 4 fault_code 5 fault_pc
   6 fault_aux 7 order_n 8 border_n 9 tn 10 nvals 11 fault_fid */

void *emu_new(const int64_t *ptrs, const int64_t *cfg)
{
    Emu *e = calloc(1, sizeof(Emu));
    if (!e)
        return 0;
    e->fn_nregs = (const int32_t *)ptrs[0];
    e->fn_npregs = (const int32_t *)ptrs[1];
    e->fn_entry_pc = (const int32_t *)ptrs[2];
    e->fn_entry_chain = (const int32_t *)ptrs[3];
    e->fn_params_off = (const int32_t *)ptrs[4];
    e->params = (const int32_t *)ptrs[5];
    e->fn_const_off = (const int32_t *)ptrs[6];
    e->const_i = (const int64_t *)ptrs[7];
    e->const_f = (const double *)ptrs[8];
    e->const_isf = (const uint8_t *)ptrs[9];
    e->kind = (const int32_t *)ptrs[10];
    e->sidx = (const int32_t *)ptrs[11];
    e->dest = (const int32_t *)ptrs[12];
    e->m0 = (const int32_t *)ptrs[13];
    e->i0 = (const int32_t *)ptrs[14];
    e->m1 = (const int32_t *)ptrs[15];
    e->i1 = (const int32_t *)ptrs[16];
    e->m2 = (const int32_t *)ptrs[17];
    e->i2 = (const int32_t *)ptrs[18];
    e->guard = (const int32_t *)ptrs[19];
    e->cond = (const int32_t *)ptrs[20];
    e->spec = (const int32_t *)ptrs[21];
    e->buid = (const int32_t *)ptrs[22];
    e->tgt_pc = (const int32_t *)ptrs[23];
    e->tgt_chain = (const int32_t *)ptrs[24];
    e->callee = (const int32_t *)ptrs[25];
    e->cargs_off = (const int32_t *)ptrs[26];
    e->cargs_mode = (const int32_t *)ptrs[27];
    e->cargs_idx = (const int32_t *)ptrs[28];
    e->pd_off = (const int32_t *)ptrs[29];
    e->pd_pidx = (const int32_t *)ptrs[30];
    e->pd_table = (const int8_t *)ptrs[31];
    e->pdp = (const int32_t *)ptrs[32];
    e->nxt_pc = (const int32_t *)ptrs[33];
    e->nxt_chain = (const int32_t *)ptrs[34];
    e->fn_of_pc = (const int32_t *)ptrs[35];
    e->mem = (uint8_t *)ptrs[36];
    e->t_sidx = (int32_t *)ptrs[37];
    e->t_flags = (uint8_t *)ptrs[38];
    e->t_addr = (int64_t *)ptrs[39];
    e->t_vidx = (int32_t *)ptrs[40];
    e->val_i = (int64_t *)ptrs[41];
    e->val_f = (double *)ptrs[42];
    e->val_isf = (uint8_t *)ptrs[43];
    e->site_counts = (int64_t *)ptrs[44];
    e->site_order = (int32_t *)ptrs[45];
    e->branch_counts = (int64_t *)ptrs[46];
    e->branch_order = (int32_t *)ptrs[47];
    e->out = (int64_t *)ptrs[48];
    e->out_f = (double *)ptrs[49];
    e->chain_off = (const int32_t *)ptrs[50];
    e->chain_keys = (const int32_t *)ptrs[51];
    e->nfuncs = cfg[0];
    e->ncode = cfg[1];
    e->memsize = cfg[2];
    e->max_steps = cfg[3];
    e->chunk_cap = cfg[4];
    e->entry_fid = cfg[5];
    e->nsites = cfg[6];
    e->nbuids = cfg[7];
    e->argcap = cfg[8] > 0 ? cfg[8] : 1;
    e->rcap = 1024; e->pcap = 256; e->fcap = 64;
    e->ri = malloc(e->rcap * sizeof(int64_t));
    e->rf = malloc(e->rcap * sizeof(double));
    e->rtag = malloc(e->rcap);
    e->pl = malloc(e->pcap);
    e->frames = malloc(e->fcap * sizeof(Frame));
    e->argv = malloc(e->argcap * sizeof(Val));
    if (!e->ri || !e->rf || !e->rtag || !e->pl || !e->frames
        || !e->argv) {
        free(e->ri); free(e->rf); free(e->rtag); free(e->pl);
        free(e->frames); free(e->argv); free(e);
        return 0;
    }
    return e;
}

void emu_free(void *h)
{
    Emu *e = (Emu *)h;
    if (!e)
        return;
    free(e->ri); free(e->rf); free(e->rtag); free(e->pl);
    free(e->frames); free(e->argv);
    free(e);
}

static int emu_finish(Emu *e, int status, int64_t fault_code,
                      int64_t fault_aux, Val ret)
{
    e->out[0] = e->steps;
    e->out[1] = e->suppressed;
    e->out[2] = ret.isf;
    e->out[3] = ret.i;
    e->out[4] = fault_code;
    e->out[5] = e->pc;
    e->out[6] = fault_aux;
    e->out[7] = e->order_n;
    e->out[8] = e->border_n;
    e->out[9] = e->tn;
    e->out[10] = e->nvals;
    e->out[11] = e->fid;
    e->out_f[0] = ret.f;
    return status;
}

#define EMIT(S, F, A, V) do { \
    e->t_sidx[e->tn] = (S); e->t_flags[e->tn] = (F); \
    e->t_addr[e->tn] = (A); e->t_vidx[e->tn] = (int32_t)(V); \
    e->tn++; } while (0)

#define FAULT(code, aux) \
    return emu_finish(e, ST_FAULT, (code), (aux), zero)

int emu_run(void *h)
{
    Emu *e = (Emu *)h;
    const Val zero = {0, 0.0, 0};

    if (e->after_chunk) {
        e->tn = 0;
        e->nvals = 0;
        e->after_chunk = 0;
    }
    if (!e->started) {
        e->started = 1;
        e->fid = (int32_t)e->entry_fid;
        int64_t nr = e->fn_nregs[e->fid];
        int64_t np = e->fn_npregs[e->fid];
        if (nr < 1) nr = 1;
        if (np < 1) np = 1;
        if (!ensure_regs(e, nr, np))
            FAULT(-1, 0);
        e->rbase = 0; e->rtop = nr;
        e->pbase = 0; e->ptop = np;
        memset(e->ri, 0, nr * sizeof(int64_t));
        memset(e->rf, 0, nr * sizeof(double));
        memset(e->rtag, 0, nr);
        memset(e->pl, 0, np);
        count_chain(e, e->fn_entry_chain[e->fid]);
        e->pc = e->fn_entry_pc[e->fid];
        if (e->pc < 0)
            FAULT(FLT_FELL_OFF, 0);
    }

    for (;;) {
        if (e->tn >= e->chunk_cap) {
            e->after_chunk = 1;
            return emu_finish(e, ST_CHUNK, 0, 0, zero);
        }
        const int32_t pc = e->pc;
        const int32_t kind = e->kind[pc];
        const int32_t sx = e->sidx[pc];
        e->steps++;
        if (e->steps > e->max_steps)
            FAULT(FLT_STEPS, 0);

        const int32_t g = e->guard[pc];
        if (g >= 0 && !e->pl[e->pbase + g]) {
            e->suppressed++;
            EMIT(sx, 0, -1, -1);
            goto advance;
        }

        if (kind < K_LOAD) {
            Val a, b, r;
            switch (kind) {
            case K_ADD:
                a = getv(e, e->m0[pc], e->i0[pc]);
                b = getv(e, e->m1[pc], e->i1[pc]);
                seti(e, e->dest[pc],
                     wrap32u((uint64_t)a.i + (uint64_t)b.i));
                break;
            case K_MOV:
                a = getv(e, e->m0[pc], e->i0[pc]);
                setval(e, e->rbase + e->dest[pc], a);
                break;
            case K_CMP:
                a = getv(e, e->m0[pc], e->i0[pc]);
                b = getv(e, e->m1[pc], e->i1[pc]);
                seti(e, e->dest[pc], docmp(e->cond[pc], a, b) ? 1 : 0);
                break;
            case K_SUB:
                a = getv(e, e->m0[pc], e->i0[pc]);
                b = getv(e, e->m1[pc], e->i1[pc]);
                seti(e, e->dest[pc],
                     wrap32u((uint64_t)a.i - (uint64_t)b.i));
                break;
            case K_AND:
                a = getv(e, e->m0[pc], e->i0[pc]);
                b = getv(e, e->m1[pc], e->i1[pc]);
                seti(e, e->dest[pc], a.i & b.i);
                break;
            case K_PREDDEF: {
                a = getv(e, e->m0[pc], e->i0[pc]);
                b = getv(e, e->m1[pc], e->i1[pc]);
                const int32_t pin = e->pdp[pc];
                int idx = (pin < 0 || e->pl[e->pbase + pin]) ? 2 : 0;
                if (docmp(e->cond[pc], a, b))
                    idx += 1;
                for (int32_t k = e->pd_off[pc]; k < e->pd_off[pc + 1];
                     k++) {
                    const int8_t nv = e->pd_table[4 * k + idx];
                    if (nv >= 0)
                        e->pl[e->pbase + e->pd_pidx[k]] = nv;
                }
                break;
            }
            case K_OR:
                a = getv(e, e->m0[pc], e->i0[pc]);
                b = getv(e, e->m1[pc], e->i1[pc]);
                seti(e, e->dest[pc], a.i | b.i);
                break;
            case K_CMOV:
                b = getv(e, e->m1[pc], e->i1[pc]);
                if ((istrue(b) != 0) == e->spec[pc]) {
                    a = getv(e, e->m0[pc], e->i0[pc]);
                    setval(e, e->rbase + e->dest[pc], a);
                }
                break;
            case K_SELECT: {
                const Val c = getv(e, e->m2[pc], e->i2[pc]);
                a = istrue(c) ? getv(e, e->m0[pc], e->i0[pc])
                              : getv(e, e->m1[pc], e->i1[pc]);
                setval(e, e->rbase + e->dest[pc], a);
                break;
            }
            case K_XOR:
                a = getv(e, e->m0[pc], e->i0[pc]);
                b = getv(e, e->m1[pc], e->i1[pc]);
                seti(e, e->dest[pc], a.i ^ b.i);
                break;
            case K_SHL:
                a = getv(e, e->m0[pc], e->i0[pc]);
                b = getv(e, e->m1[pc], e->i1[pc]);
                seti(e, e->dest[pc],
                     wrap32u((uint64_t)a.i << (b.i & 31)));
                break;
            case K_SHR:
                a = getv(e, e->m0[pc], e->i0[pc]);
                b = getv(e, e->m1[pc], e->i1[pc]);
                seti(e, e->dest[pc], a.i >> (b.i & 31));
                break;
            case K_NOT:
                a = getv(e, e->m0[pc], e->i0[pc]);
                seti(e, e->dest[pc], wrap32u(~(uint64_t)a.i));
                break;
            case K_NEG:
                a = getv(e, e->m0[pc], e->i0[pc]);
                seti(e, e->dest[pc], wrap32u(-(uint64_t)a.i));
                break;
            case K_MUL:
                a = getv(e, e->m0[pc], e->i0[pc]);
                b = getv(e, e->m1[pc], e->i1[pc]);
                seti(e, e->dest[pc],
                     wrap32u((uint64_t)a.i * (uint64_t)b.i));
                break;
            case K_AND_NOT:
                a = getv(e, e->m0[pc], e->i0[pc]);
                b = getv(e, e->m1[pc], e->i1[pc]);
                seti(e, e->dest[pc],
                     (a.i != 0 && b.i == 0) ? 1 : 0);
                break;
            case K_OR_NOT:
                a = getv(e, e->m0[pc], e->i0[pc]);
                b = getv(e, e->m1[pc], e->i1[pc]);
                seti(e, e->dest[pc],
                     (a.i != 0 || b.i == 0) ? 1 : 0);
                break;
            case K_DIV:
            case K_REM: {
                a = getv(e, e->m0[pc], e->i0[pc]);
                b = getv(e, e->m1[pc], e->i1[pc]);
                if (e->spec[pc] && b.i == 0) {
                    seti(e, e->dest[pc], 0);
                } else {
                    if (b.i == 0)
                        FAULT(FLT_IDIV0, 0);
                    int64_t q = (a.i < 0 ? -a.i : a.i)
                                / (b.i < 0 ? -b.i : b.i);
                    if ((a.i < 0) != (b.i < 0))
                        q = -q;
                    if (kind == K_REM)
                        q = a.i - q * b.i;
                    seti(e, e->dest[pc], wrap32u((uint64_t)q));
                }
                break;
            }
            case K_FADD:
                a = getv(e, e->m0[pc], e->i0[pc]);
                b = getv(e, e->m1[pc], e->i1[pc]);
                if (!a.isf && !b.isf)
                    seti(e, e->dest[pc],
                         (int64_t)((uint64_t)a.i + (uint64_t)b.i));
                else
                    setf(e, e->dest[pc], asf(a) + asf(b));
                break;
            case K_FSUB:
                a = getv(e, e->m0[pc], e->i0[pc]);
                b = getv(e, e->m1[pc], e->i1[pc]);
                if (!a.isf && !b.isf)
                    seti(e, e->dest[pc],
                         (int64_t)((uint64_t)a.i - (uint64_t)b.i));
                else
                    setf(e, e->dest[pc], asf(a) - asf(b));
                break;
            case K_FMUL:
                a = getv(e, e->m0[pc], e->i0[pc]);
                b = getv(e, e->m1[pc], e->i1[pc]);
                if (!a.isf && !b.isf)
                    seti(e, e->dest[pc],
                         (int64_t)((uint64_t)a.i * (uint64_t)b.i));
                else
                    setf(e, e->dest[pc], asf(a) * asf(b));
                break;
            case K_FDIV:
                a = getv(e, e->m0[pc], e->i0[pc]);
                b = getv(e, e->m1[pc], e->i1[pc]);
                if (asf(b) == 0.0) {
                    if (!e->spec[pc])
                        FAULT(FLT_FDIV0, 0);
                    setf(e, e->dest[pc], 0.0);
                } else {
                    setf(e, e->dest[pc], asf(a) / asf(b));
                }
                break;
            case K_FNEG:
                a = getv(e, e->m0[pc], e->i0[pc]);
                if (!a.isf)
                    seti(e, e->dest[pc],
                         (int64_t)(0 - (uint64_t)a.i));
                else
                    setf(e, e->dest[pc], -a.f);
                break;
            case K_FMOV:
            case K_CVT_IF:
                a = getv(e, e->m0[pc], e->i0[pc]);
                setf(e, e->dest[pc], asf(a));
                break;
            case K_CVT_FI:
                a = getv(e, e->m0[pc], e->i0[pc]);
                if (!a.isf) {
                    seti(e, e->dest[pc], wrap32u((uint64_t)a.i));
                } else {
                    /* Python int(a) & reduce mod 2^32: reduce in
                       double first so the cast never overflows. */
                    const double m = fmod(trunc(a.f), 4294967296.0);
                    seti(e, e->dest[pc],
                         wrap32u((uint64_t)(int64_t)m));
                }
                break;
            case K_PREDSET: {
                const int32_t np = e->fn_npregs[e->fid];
                memset(e->pl + e->pbase, (int)e->spec[pc], np);
                break;
            }
            default: /* K_NOP */
                break;
            }
            (void)r;
            EMIT(sx, 1, -1, -1);
            goto advance;
        }

        if (kind < K_STORE) {
            const Val a = getv(e, e->m0[pc], e->i0[pc]);
            const Val b = getv(e, e->m1[pc], e->i1[pc]);
            const int64_t addr = a.i + b.i;
            if (kind == K_LOAD) {
                if (addr < 32 || addr + 4 > e->memsize) {
                    if (!e->spec[pc])
                        FAULT(FLT_LOAD, addr);
                    seti(e, e->dest[pc], 0);
                } else {
                    int32_t v;
                    memcpy(&v, e->mem + addr, 4);
                    seti(e, e->dest[pc], v);
                }
            } else if (kind == K_LOAD_B) {
                if (addr < 32 || addr + 1 > e->memsize) {
                    if (!e->spec[pc])
                        FAULT(FLT_LOAD_B, addr);
                    seti(e, e->dest[pc], 0);
                } else {
                    seti(e, e->dest[pc], e->mem[addr]);
                }
            } else {
                if (addr < 32 || addr + 8 > e->memsize) {
                    if (!e->spec[pc])
                        FAULT(FLT_LOAD_F, addr);
                    setf(e, e->dest[pc], 0.0);
                } else {
                    double v;
                    memcpy(&v, e->mem + addr, 8);
                    setf(e, e->dest[pc], v);
                }
            }
            EMIT(sx, 1, addr, -1);
            goto advance;
        }

        if (kind < K_BRANCH) {
            const Val a = getv(e, e->m0[pc], e->i0[pc]);
            const Val b = getv(e, e->m1[pc], e->i1[pc]);
            const Val v = getv(e, e->m2[pc], e->i2[pc]);
            const int64_t addr = a.i + b.i;
            Val sval = zero;
            if (kind == K_STORE) {
                if (addr < 32 || addr + 4 > e->memsize)
                    FAULT(FLT_STORE, addr);
                const uint32_t u = (uint32_t)(v.i & 0xFFFFFFFFLL);
                memcpy(e->mem + addr, &u, 4);
                sval.i = v.i & 0xFFFFFFFFLL;
            } else if (kind == K_STORE_B) {
                if (addr < 32 || addr + 1 > e->memsize)
                    FAULT(FLT_STORE, addr);
                e->mem[addr] = (uint8_t)(v.i & 0xFF);
                sval.i = v.i & 0xFF;
            } else {
                if (addr < 32 || addr + 8 > e->memsize)
                    FAULT(FLT_STORE, addr);
                const double d = asf(v);
                memcpy(e->mem + addr, &d, 8);
                sval.f = d;
                sval.isf = 1;
            }
            e->val_i[e->nvals] = sval.i;
            e->val_f[e->nvals] = sval.f;
            e->val_isf[e->nvals] = sval.isf;
            EMIT(sx, 1, addr, e->nvals);
            e->nvals++;
            goto advance;
        }

        if (kind == K_BRANCH) {
            const Val a = getv(e, e->m0[pc], e->i0[pc]);
            const Val b = getv(e, e->m1[pc], e->i1[pc]);
            const int taken = docmp(e->cond[pc], a, b);
            const int32_t bu = e->buid[pc];
            if (e->branch_counts[2 * bu] == 0
                && e->branch_counts[2 * bu + 1] == 0)
                e->branch_order[e->border_n++] = bu;
            e->branch_counts[2 * bu + (taken ? 1 : 0)]++;
            EMIT(sx, taken ? 3 : 1, -1, -1);
            if (taken) {
                const int32_t t = e->tgt_pc[pc];
                if (t == TGT_UNKNOWN)
                    FAULT(FLT_BRANCH_LABEL, 0);
                count_chain(e, e->tgt_chain[pc]);
                if (t < 0)
                    FAULT(FLT_FELL_OFF, 0);
                e->pc = t;
                continue;
            }
            goto advance;
        }

        if (kind == K_JUMP) {
            EMIT(sx, 3, -1, -1);
            const int32_t t = e->tgt_pc[pc];
            if (t == TGT_UNKNOWN)
                FAULT(FLT_JUMP_LABEL, 0);
            count_chain(e, e->tgt_chain[pc]);
            if (t < 0)
                FAULT(FLT_FELL_OFF, 0);
            e->pc = t;
            continue;
        }

        if (kind == K_CALL) {
            EMIT(sx, 3, -1, -1);
            const int32_t cfid = e->callee[pc];
            const int32_t a0 = e->cargs_off[pc];
            const int32_t na = e->cargs_off[pc + 1] - a0;
            for (int32_t k = 0; k < na; k++)
                e->argv[k] = getv(e, e->cargs_mode[a0 + k],
                                  e->cargs_idx[a0 + k]);
            if (e->nframes >= e->fcap) {
                Frame *nf = realloc(e->frames,
                                    e->fcap * 2 * sizeof(Frame));
                if (!nf)
                    FAULT(-1, 0);
                e->frames = nf;
                e->fcap *= 2;
            }
            Frame *fr = &e->frames[e->nframes++];
            fr->fid = e->fid;
            fr->rpc = pc;
            fr->rdest = e->dest[pc];
            fr->rbase = e->rbase;
            fr->pbase = e->pbase;
            int64_t nr = e->fn_nregs[cfid];
            int64_t np = e->fn_npregs[cfid];
            if (nr < 1) nr = 1;
            if (np < 1) np = 1;
            if (!ensure_regs(e, nr, np))
                FAULT(-1, 0);
            memset(e->ri + e->rtop, 0, nr * sizeof(int64_t));
            memset(e->rf + e->rtop, 0, nr * sizeof(double));
            memset(e->rtag + e->rtop, 0, nr);
            memset(e->pl + e->ptop, 0, np);
            const int32_t p0 = e->fn_params_off[cfid];
            int32_t nparams = e->fn_params_off[cfid + 1] - p0;
            if (nparams > na)
                nparams = na;
            for (int32_t k = 0; k < nparams; k++) {
                const int64_t slot = e->rtop + e->params[p0 + k];
                e->ri[slot] = e->argv[k].i;
                e->rf[slot] = e->argv[k].f;
                e->rtag[slot] = e->argv[k].isf;
            }
            e->rbase = e->rtop; e->rtop += nr;
            e->pbase = e->ptop; e->ptop += np;
            e->fid = cfid;
            count_chain(e, e->fn_entry_chain[cfid]);
            e->pc = e->fn_entry_pc[cfid];
            if (e->pc < 0)
                FAULT(FLT_FELL_OFF, 0);
            continue;
        }

        /* K_RET */
        {
            EMIT(sx, 3, -1, -1);
            Val v = zero;
            if (e->spec[pc])
                v = getv(e, e->m0[pc], e->i0[pc]);
            if (e->nframes == 0)
                return emu_finish(e, ST_DONE, 0, 0, v);
            const Frame fr = e->frames[--e->nframes];
            e->rtop = e->rbase;
            e->ptop = e->pbase;
            e->rbase = fr.rbase;
            e->pbase = fr.pbase;
            e->fid = fr.fid;
            if (fr.rdest >= 0)
                setval(e, e->rbase + fr.rdest, v);
            const int32_t np_ = e->nxt_pc[fr.rpc];
            if (np_ == NXT_NONE) {
                e->pc = fr.rpc + 1;
                continue;
            }
            count_chain(e, e->nxt_chain[fr.rpc]);
            if (np_ < 0)
                FAULT(FLT_FELL_OFF, 0);
            e->pc = np_;
            continue;
        }

advance:
        {
            const int32_t np_ = e->nxt_pc[pc];
            if (np_ == NXT_NONE) {
                e->pc = pc + 1;
                continue;
            }
            count_chain(e, e->nxt_chain[pc]);
            if (np_ < 0)
                FAULT(FLT_FELL_OFF, 0);
            e->pc = np_;
            continue;
        }
    }
}

int native_probe(void) { return 42; }
"""
