"""Vectorized batch simulation backend (the ``vector`` engine).

The fastpath :class:`~repro.fastpath.simulate.StreamSimulator` already
avoids per-event attribute lookups, but it still decides *everything*
per event in Python: cache tag probes, BTB prediction, branch/memory
classification, effective latency.  This module splits one trace chunk
into two halves:

* a **pre-pass** (:func:`prepass_chunk`) that resolves every decision
  that does not depend on issue timing as NumPy array programs over the
  whole chunk — instruction/data cache hits via set-sorted segmented
  scans, branch outcome streams, executed/control/memory
  classification — and
* a **residual scan** (:func:`_scan_perfect` and friends) that walks
  the chunk once with nothing left to do but register interlocks and
  in-order issue-slot packing, consuming the pre-pass results as
  sorted position lists.

Cache and BTB state depend only on the address/outcome streams, never
on issue timing, so the pre-pass is exact — not a heuristic.  The
pre-pass is also *pure* and picklable, which is what makes
intra-workload sharding possible: :func:`simulate_columns_vector` can
fan ``prepass_chunk`` tasks across the engine's process pool (keyed by
``(task_key, chunk_index)``) and stitch the results back in order.
Chunk-local cache probes that depend on state from earlier chunks (the
per-set access prefix before the first in-chunk fill) are kept
symbolic by the pre-pass and resolved against the carried tag state at
stitch time, so results are byte-identical to the serial engines at
any ``--jobs`` level and any chunk size.

The per-program specialization step (:class:`VectorSimPrep`) lifts the
:class:`~repro.fastpath.simulate.SimPrep` tables into dense NumPy
vectors plus per-static scan row tuples once per ``(schedule_digest,
latency table)``, so each chunk pre-pass is pure ufunc work and the
residual scan iterates a single gathered list.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING

import numpy as np

from repro.fastpath.columns import TraceColumns
from repro.fastpath.decode import DecodedProgram, decode_program
from repro.fastpath.simulate import (F_CONTROL, F_DYNBRANCH, F_JUMP,
                                     F_LOAD, F_STORE, SimPrep,
                                     prepare_sim)
from repro.machine.descriptor import MachineDescription
from repro.robustness.errors import NativeKernelCrash
from repro.sim.pipeline import SimulationStats

if TYPE_CHECKING:
    from repro.emu.trace import ExecutionResult
    from repro.ir.function import Program

_F_MEM = F_LOAD | F_STORE


class VectorSimPrep:
    """Per-program specialization: ``SimPrep`` plus dense NumPy vectors
    and pre-built scan rows.

    Built once per decoded program / latency table; every chunk
    pre-pass then indexes these arrays with the chunk's ``sidx``
    column instead of looping over Python lists.  ``exec_rows[s]`` is
    the residual-scan row ``(used, dests, is_control, latency)`` for an
    *executed* event of static instruction ``s``; ``null_rows[s]`` is
    the row for a *nullified* one (guard read only, no writes).
    """

    __slots__ = ("prep", "pc_addr", "flags", "exec_rows", "null_rows",
                 "_nt")

    def __init__(self, prep: SimPrep):
        self.prep = prep
        self.pc_addr = np.asarray(prep.pc_addr, dtype=np.int64)
        self.flags = np.asarray(prep.flags, dtype=np.int64)
        self.exec_rows = tuple(
            (u, d, 1 if f & F_CONTROL else 0, lv)
            for u, d, f, lv in zip(prep.used, prep.dests, prep.flags,
                                   prep.lat))
        self.null_rows = tuple(
            ((p,) if p >= 0 else (), (), 0, 0) for p in prep.pred)
        self._nt = None

    def native_tables(self):
        """Lazily built CSR tables for the native (C) scan kernel."""
        if self._nt is None:
            from repro.fastpath.native import NativeSimTables
            self._nt = NativeSimTables(self.prep)
        return self._nt

    @classmethod
    def from_prep(cls, prep: "SimPrep | VectorSimPrep"
                  ) -> "VectorSimPrep":
        if isinstance(prep, VectorSimPrep):
            return prep
        return cls(prep)

    # Pool workers only need the derivable tables — ship the SimPrep
    # and rebuild, keeping the pickled payload small.
    def __getstate__(self):
        return self.prep

    def __setstate__(self, prep):
        self.__init__(prep)


def prepare_vector(decoded: DecodedProgram, addresses: dict[int, int],
                   machine: MachineDescription | None = None
                   ) -> VectorSimPrep:
    """Specialize a decoded program for the vector backend."""
    return VectorSimPrep(prepare_sim(decoded, addresses, machine))


# ---------------------------------------------------------------------------
# Direct-mapped cache resolution over one chunk (set-sorted, exact).
# ---------------------------------------------------------------------------

def _dm_chunk(lines: np.ndarray, alloc: np.ndarray, num_lines: int):
    """Resolve one chunk of direct-mapped cache probes without state.

    ``lines``/``alloc`` are the accessed line numbers and whether each
    access fills the line on a miss (loads yes, stores no), in access
    order.  Within a set, the tag before access *k* is the line of the
    last allocating access before *k* — except for the per-set prefix
    with no earlier in-chunk allocation, whose hit/miss depends on the
    carried tag state and stays *unresolved* here.  (An allocating
    access leaves its own line as the tag whether it hit or missed, so
    everything after the first in-chunk fill is chunk-local.)

    Returns ``(miss, unresolved, newtag_set, newtag_line)`` in access
    order; ``miss`` is only meaningful where ``~unresolved``.
    """
    n = lines.size
    empty = np.zeros(0, dtype=np.int64)
    if n == 0:
        return np.zeros(0, bool), np.zeros(0, bool), empty, empty
    sets = lines % num_lines
    order = np.argsort(sets, kind="stable")
    ss = sets[order]
    sl = lines[order]
    sa = alloc[order]
    starts = np.empty(n, dtype=bool)
    starts[0] = True
    np.not_equal(ss[1:], ss[:-1], out=starts[1:])
    # Segmented running maximum via per-set monotone bases: within one
    # set the base is constant, across sets it grows by more than any
    # in-chunk position, so a plain accumulate cannot leak backwards.
    pos = np.arange(n, dtype=np.int64)
    base = (np.cumsum(starts) - 1) * (n + 1)
    apos = np.where(sa, pos + base, np.int64(-1))
    excl = np.empty(n, dtype=np.int64)
    excl[0] = -1
    excl[1:] = apos[:-1]
    excl[starts] = -1
    prev = np.maximum.accumulate(excl) - base
    have = prev >= 0
    prev_line = sl[np.clip(prev, 0, n - 1)]
    miss_s = have & (sl != prev_line)
    # Last allocating access per set -> the tag the chunk leaves behind.
    incl = np.maximum.accumulate(apos) - base
    ends = np.flatnonzero(np.concatenate((starts[1:], (True,))))
    end_last = incl[ends]
    filled = end_last >= 0
    newtag_set = ss[ends][filled]
    newtag_line = sl[end_last[filled]]
    miss = np.empty(n, dtype=bool)
    miss[order] = miss_s
    unresolved = np.empty(n, dtype=bool)
    unresolved[order] = ~have
    return miss, unresolved, newtag_set, newtag_line


# ---------------------------------------------------------------------------
# Chunk pre-pass (pure, picklable — the shardable half).
# ---------------------------------------------------------------------------

class ChunkPrepass:
    """Timing-independent resolution of one trace chunk.

    Everything here is derived from the chunk's columns and the static
    tables alone, so instances are order-independent and safe to
    compute on pool workers; only the stitch step consumes them
    serially.
    """

    __slots__ = (
        "n", "si", "null_pos", "executed_n",
        "mem_pos", "b_pos", "b_idx", "b_pc", "b_out",
        "ic_acc", "ic_miss_pos", "ic_unres_pos", "ic_unres_set",
        "ic_unres_line", "ic_newtag_set", "ic_newtag_line",
        "dc_acc", "dc_miss_resolved", "dc_loadmiss_pos",
        "dc_unres_pos", "dc_unres_set", "dc_unres_line",
        "dc_unres_isload", "dc_newtag_set", "dc_newtag_line")

    def __init__(self, **kw):
        for k, v in kw.items():
            setattr(self, k, v)


def prepass_chunk(cols: TraceColumns, vprep: VectorSimPrep,
                  machine: MachineDescription) -> ChunkPrepass:
    """Run the NumPy pre-passes over one chunk (pure function)."""
    n = len(cols)
    si = (np.frombuffer(cols.sidx, dtype=np.int32).astype(np.int64)
          if n else np.zeros(0, dtype=np.int64))
    fl = (np.frombuffer(cols.flags, dtype=np.uint8) if n
          else np.zeros(0, dtype=np.uint8))
    f = vprep.flags[si]
    executed = (fl & 1) != 0
    null_pos = np.flatnonzero(~executed).astype(np.int32)

    # Branch outcome streams (BTB input; the walk itself is stateful
    # and happens at stitch time).
    dyn = (f & F_DYNBRANCH) != 0
    b_pos = np.flatnonzero(dyn).astype(np.int32)
    is_jump = (f[b_pos] & F_JUMP) != 0
    b_exec = executed[b_pos]
    b_out = np.where(is_jump, b_exec, b_exec & ((fl[b_pos] & 2) != 0))
    b_pc = vprep.pc_addr[si[b_pos]]
    b_idx = (b_pc >> 2) % machine.btb.entries

    kw = dict(n=n, si=si.astype(np.int32), null_pos=null_pos,
              executed_n=int(n - null_pos.size),
              b_pos=b_pos, b_idx=b_idx, b_pc=b_pc, b_out=b_out)

    empty32 = np.zeros(0, dtype=np.int32)
    empty64 = np.zeros(0, dtype=np.int64)
    if machine.perfect_caches:
        kw.update(mem_pos=empty32, ic_acc=0, ic_miss_pos=empty32,
                  ic_unres_pos=empty32, ic_unres_set=empty64,
                  ic_unres_line=empty64, ic_newtag_set=empty64,
                  ic_newtag_line=empty64, dc_acc=0, dc_miss_resolved=0,
                  dc_loadmiss_pos=empty32, dc_unres_pos=empty32,
                  dc_unres_set=empty64, dc_unres_line=empty64,
                  dc_unres_isload=np.zeros(0, bool),
                  dc_newtag_set=empty64, dc_newtag_line=empty64)
        return ChunkPrepass(**kw)

    # Instruction cache: every event probes it.
    icc = machine.icache
    pc = vprep.pc_addr[si]
    ilines = pc // icc.line_bytes
    imiss, iunres, int_set, int_line = _dm_chunk(
        ilines, np.ones(n, dtype=bool), icc.num_lines)
    iu = np.flatnonzero(iunres)
    kw.update(ic_acc=n,
              ic_miss_pos=np.flatnonzero(imiss).astype(np.int32),
              ic_unres_pos=iu.astype(np.int32),
              ic_unres_set=(ilines[iu] % icc.num_lines),
              ic_unres_line=ilines[iu],
              ic_newtag_set=int_set, ic_newtag_line=int_line)

    # Data cache: executed loads/stores with a real address probe it;
    # every executed memory op additionally waits out a pending miss.
    dcc = machine.dcache
    addr = np.frombuffer(cols.addr, dtype=np.int64) if n \
        else np.zeros(0, dtype=np.int64)
    em = executed & ((f & _F_MEM) != 0)
    kw["mem_pos"] = np.flatnonzero(em).astype(np.int32)
    acc_pos = np.flatnonzero(em & (addr >= 0))
    dlines = addr[acc_pos] // dcc.line_bytes
    isload = (f[acc_pos] & F_LOAD) != 0
    dmiss, dunres, dnt_set, dnt_line = _dm_chunk(
        dlines, isload, dcc.num_lines)
    du = np.flatnonzero(dunres)
    kw.update(dc_acc=int(acc_pos.size),
              dc_miss_resolved=int(dmiss.sum()),
              dc_loadmiss_pos=acc_pos[dmiss & isload].astype(np.int32),
              dc_unres_pos=acc_pos[du].astype(np.int32),
              dc_unres_set=(dlines[du] % dcc.num_lines),
              dc_unres_line=dlines[du],
              dc_unres_isload=isload[du],
              dc_newtag_set=dnt_set, dc_newtag_line=dnt_line)
    return ChunkPrepass(**kw)


def _vector_prepass_job(cols: TraceColumns, vprep: VectorSimPrep,
                        machine: MachineDescription) -> ChunkPrepass:
    """Module-level pre-pass entry point for the process pool."""
    return prepass_chunk(cols, vprep, machine)


# ---------------------------------------------------------------------------
# Residual scans: interlocks + issue packing only.
# ---------------------------------------------------------------------------
#
# The scans process executed and nullified events uniformly: the
# stitch step rewrites a nullified event's row to its guard singleton
# with no writes, which is exactly the serial simulator's special
# case.  Sparse per-event facts (mispredictions, icache misses, memory
# ops, miss-latency loads) arrive as sorted position lists with an
# ``n`` sentinel, so the common case is one integer compare.

def _scan_perfect(rows, mp_pos, ready,
                  width, blimit, bubble, cur, slots, bslots, fetch):
    mp_i = 0
    mp_next = mp_pos[0]
    j = 0
    for ut, dt, cls, lv in rows:
        e = fetch
        for r in ut:
            t0 = ready[r]
            if t0 > e:
                e = t0
        t = e if e > cur else cur
        if t == cur:
            if slots >= width:
                t += 1
            elif cls and bslots >= blimit:
                t += 1
        if t > cur:
            cur = t
            slots = 0
            bslots = 0
        slots += 1
        if cls:
            bslots += 1
        if j == mp_next:
            mp_i += 1
            mp_next = mp_pos[mp_i]
            st = t + bubble
            if st > fetch:
                fetch = st
        done = t + lv
        for r in dt:
            ready[r] = done
        j += 1
    return cur, slots, bslots, fetch


def _scan_perfect_w1(rows, mp_pos, ready, bubble,
                     cur, slots, bslots, fetch):
    """Single-issue specialization: with one slot per cycle and a
    branch limit of at least one, every event past the first lands at
    ``max(earliest, cur + 1)`` and the slot counters are trivial."""
    mp_i = 0
    mp_next = mp_pos[0]
    j = 0
    it = iter(rows)
    if slots == 0:
        # Only ever the first event of the whole simulation.
        for ut, dt, cls, lv in it:
            e = fetch
            for r in ut:
                t0 = ready[r]
                if t0 > e:
                    e = t0
            if e > cur:
                cur = e
            slots = 1
            bslots = cls
            if j == mp_next:
                mp_i += 1
                mp_next = mp_pos[mp_i]
                st = cur + bubble
                if st > fetch:
                    fetch = st
            done = cur + lv
            for r in dt:
                ready[r] = done
            j += 1
            break
    for ut, dt, cls, lv in it:
        e = fetch
        for r in ut:
            t0 = ready[r]
            if t0 > e:
                e = t0
        cur = e if e > cur else cur + 1
        bslots = cls
        if j == mp_next:
            mp_i += 1
            mp_next = mp_pos[mp_i]
            st = cur + bubble
            if st > fetch:
                fetch = st
        done = cur + lv
        for r in dt:
            ready[r] = done
        j += 1
    return cur, slots, bslots, fetch


def _scan_real(rows, mp_pos, ic_pos, mem_pos, mb_pos,
               ready, width, blimit, bubble, icpen,
               cur, slots, bslots, fetch, membusy):
    mp_i = 0
    mp_next = mp_pos[0]
    ic_i = 0
    ic_next = ic_pos[0]
    mem_i = 0
    mem_next = mem_pos[0]
    mb_i = 0
    mb_next = mb_pos[0]
    j = 0
    for ut, dt, cls, lv in rows:
        e = fetch
        if j == ic_next:
            ic_i += 1
            ic_next = ic_pos[ic_i]
            fill = (cur if cur > e else e) + icpen
            if fill > fetch:
                fetch = fill
            if fill > e:
                e = fill
        for r in ut:
            t0 = ready[r]
            if t0 > e:
                e = t0
        if j == mem_next:
            mem_i += 1
            mem_next = mem_pos[mem_i]
            if membusy > e:
                e = membusy
        t = e if e > cur else cur
        if t == cur:
            if slots >= width:
                t += 1
            elif cls and bslots >= blimit:
                t += 1
        if t > cur:
            cur = t
            slots = 0
            bslots = 0
        slots += 1
        if cls:
            bslots += 1
        if j == mp_next:
            mp_i += 1
            mp_next = mp_pos[mp_i]
            st = t + bubble
            if st > fetch:
                fetch = st
        done = t + lv
        if j == mb_next:
            mb_i += 1
            mb_next = mb_pos[mb_i]
            membusy = done
        for r in dt:
            ready[r] = done
        j += 1
    return cur, slots, bslots, fetch, membusy


# ---------------------------------------------------------------------------
# The incremental simulator: stitch pre-passed chunks in order.
# ---------------------------------------------------------------------------

class VectorSimulator:
    """Vector-backend twin of ``StreamSimulator``: feed chunks, finish.

    ``feed`` pre-passes and stitches inline; ``feed_prepassed``
    consumes a :class:`ChunkPrepass` computed elsewhere (a pool
    worker).  All carried state lives in :meth:`boundary_snapshot`
    form between chunks, which is what makes the sharded path
    byte-identical to the serial engines.
    """

    def __init__(self, prep: "SimPrep | VectorSimPrep",
                 machine: MachineDescription, native: bool = True):
        self.vprep = VectorSimPrep.from_prep(prep)
        self.machine = machine
        nregs = self.vprep.prep.nregs
        self.ready: list[int] = [0] * nregs
        self.cur_cycle = 0
        self.slots = 0
        self.branch_slots = 0
        self.fetch_available = 0
        self.mem_busy_until = 0
        self.dynamic = 0
        self.executed_n = 0
        self.suppressed_n = 0
        self.branches = 0
        self.mispredictions = 0
        self.chunks_fed = 0
        btb = machine.btb
        self.btb_bubble = btb.mispredict_penalty + 1
        self.btb_tags: list[int] = [-1] * btb.entries
        self.btb_counters: list[int] = [1] * btb.entries
        if machine.perfect_caches:
            self.ic_tags = None
            self.dc_tags = None
        else:
            self.ic_tags = np.full(machine.icache.num_lines, -1,
                                   dtype=np.int64)
            self.dc_tags = np.full(machine.dcache.num_lines, -1,
                                   dtype=np.int64)
        self.ic_accesses = 0
        self.ic_misses = 0
        self.dc_accesses = 0
        self.dc_misses = 0

        # Native (C) full-scan mode: all carried state lives in numpy
        # arrays the kernel mutates in place; the Python attributes
        # above are refreshed on demand (snapshot/finish/handoff).
        self._native = False
        if native:
            from repro.fastpath import native as _native_mod
            if _native_mod.available():
                self._native = True
                self._scan = _native_mod.sim_scan_chunk
                self._nt = self.vprep.native_tables()
                self._ready_np = np.zeros(nregs, dtype=np.int64)
                self._btb_tags_np = np.full(btb.entries, -1,
                                            dtype=np.int64)
                self._btb_ctr_np = np.ones(btb.entries, dtype=np.uint8)
                self._st = np.zeros(14, dtype=np.int64)
                dummy = np.zeros(1, dtype=np.int64)
                if machine.perfect_caches:
                    self._cfg = np.array(
                        [0, btb.entries, self.btb_bubble,
                         1, 1, 0, 1, 1, 0, 1,
                         machine.issue_width,
                         machine.branch_issue_limit], dtype=np.int64)
                    self._ic_np = dummy
                    self._dc_np = dummy
                else:
                    icc, dcc = machine.icache, machine.dcache
                    self._cfg = np.array(
                        [0, btb.entries, self.btb_bubble,
                         icc.num_lines, icc.line_bytes,
                         icc.miss_penalty, dcc.num_lines,
                         dcc.line_bytes, dcc.miss_penalty, 0,
                         machine.issue_width,
                         machine.branch_issue_limit], dtype=np.int64)
                    self._ic_np = self.ic_tags
                    self._dc_np = self.dc_tags

    def _sync_from_native(self) -> None:
        """Refresh the Python-side state from the kernel arrays."""
        st = self._st
        self.cur_cycle = int(st[0])
        self.slots = int(st[1])
        self.branch_slots = int(st[2])
        self.fetch_available = int(st[3])
        self.mem_busy_until = int(st[4])
        self.dynamic = int(st[5])
        self.executed_n = int(st[6])
        self.suppressed_n = int(st[7])
        self.branches = int(st[8])
        self.mispredictions = int(st[9])
        self.ic_accesses = int(st[10])
        self.ic_misses = int(st[11])
        self.dc_accesses = int(st[12])
        self.dc_misses = int(st[13])
        self.ready = self._ready_np.tolist()
        self.btb_tags = self._btb_tags_np.tolist()
        self.btb_counters = self._btb_ctr_np.tolist()

    def _disable_native(self) -> None:
        """Hand the carried state to the Python scan path (used when a
        pre-passed chunk arrives, e.g. from the sharded fan-out)."""
        self._sync_from_native()
        self._native = False

    # -- feeding ----------------------------------------------------------

    def feed(self, cols: TraceColumns) -> None:
        if self._native:
            from repro.fastpath import supervisor
            if not supervisor.native_active():
                # The process demoted since this simulator was built
                # (e.g. the emulator side faulted mid-run): hand the
                # carried state to the Python path before the next
                # scan rather than trusting a rung the supervisor
                # already revoked.
                self._disable_native()
                self.feed_prepassed(prepass_chunk(cols, self.vprep,
                                                  self.machine))
                return
            n = len(cols)
            if n == 0:
                self.chunks_fed += 1
                return
            try:
                self._scan(self._nt,
                           np.frombuffer(cols.sidx, dtype=np.int32),
                           np.frombuffer(cols.flags, dtype=np.uint8),
                           np.frombuffer(cols.addr, dtype=np.int64),
                           self._ready_np, self._btb_tags_np,
                           self._btb_ctr_np, self._ic_np, self._dc_np,
                           self._st, self._cfg)
            except NativeKernelCrash as crash:
                # The scan kernel faulted before touching the carried
                # state (it is still at the previous chunk boundary):
                # demote the process, hand the state to the Python
                # path, and reprocess this chunk — mid-workload
                # degradation with byte-identical stitched results.
                from repro.fastpath import supervisor
                supervisor.report_kernel_fault(crash)
                self._disable_native()
                self.feed_prepassed(prepass_chunk(cols, self.vprep,
                                                  self.machine))
                return
            self.chunks_fed += 1
            return
        self.feed_prepassed(prepass_chunk(cols, self.vprep,
                                          self.machine))

    def feed_prepassed(self, cp: ChunkPrepass) -> None:
        if self._native:
            self._disable_native()
        n = cp.n
        self.chunks_fed += 1
        self.dynamic += n
        self.executed_n += cp.executed_n
        self.suppressed_n += n - cp.executed_n
        if n == 0:
            return
        machine = self.machine
        perfect = machine.perfect_caches
        vprep = self.vprep

        # Scan rows: per-event (reads, writes, is_control, latency)
        # tuples via C-level gathers over the per-static tables.
        si_l = cp.si.tolist()
        rows = list(map(vprep.exec_rows.__getitem__, si_l))
        if cp.null_pos.size:
            null_rows = vprep.null_rows
            for p in cp.null_pos.tolist():
                rows[p] = null_rows[si_l[p]]

        if not perfect:
            # Resolve the deferred per-set prefixes against carried
            # tags, then advance the tag state to the chunk's exit.
            mb_pos_np = cp.dc_loadmiss_pos
            ic_miss_pos = cp.ic_miss_pos
            if cp.ic_unres_pos.size:
                im = self.ic_tags[cp.ic_unres_set] != cp.ic_unres_line
                extra = cp.ic_unres_pos[im]
                if extra.size:
                    ic_miss_pos = np.sort(
                        np.concatenate((ic_miss_pos, extra)))
            self.ic_accesses += cp.ic_acc
            self.ic_misses += int(ic_miss_pos.size)
            if cp.ic_newtag_set.size:
                self.ic_tags[cp.ic_newtag_set] = cp.ic_newtag_line
            dc_misses = cp.dc_miss_resolved
            if cp.dc_unres_pos.size:
                dm = self.dc_tags[cp.dc_unres_set] != cp.dc_unres_line
                dc_misses += int(dm.sum())
                extra = cp.dc_unres_pos[dm & cp.dc_unres_isload]
                if extra.size:
                    mb_pos_np = np.sort(
                        np.concatenate((mb_pos_np, extra)))
            self.dc_accesses += cp.dc_acc
            self.dc_misses += dc_misses
            if cp.dc_newtag_set.size:
                self.dc_tags[cp.dc_newtag_set] = cp.dc_newtag_line
            # A missing load's latency grows by the fill penalty.
            pen = machine.dcache.miss_penalty
            for p in mb_pos_np.tolist():
                u, d, c, lv = rows[p]
                rows[p] = (u, d, c, lv + pen)

        # BTB walk over the branch stream (stateful, tiny).
        mp_pos: list[int] = []
        if cp.b_pos.size:
            tags = self.btb_tags
            ctr = self.btb_counters
            mis = mp_pos.append
            for i, a, o, bp in zip(cp.b_idx.tolist(),
                                   cp.b_pc.tolist(),
                                   cp.b_out.tolist(),
                                   cp.b_pos.tolist()):
                if tags[i] == a:
                    c = ctr[i]
                    p = c >= 2
                    if o:
                        if c < 3:
                            ctr[i] = c + 1
                    elif c > 0:
                        ctr[i] = c - 1
                else:
                    p = False
                    if o:
                        tags[i] = a
                        ctr[i] = 2
                if p != o:
                    mis(bp)
            self.branches += cp.b_pos.size
            self.mispredictions += len(mp_pos)
        mp_pos.append(n)

        if perfect:
            if machine.issue_width == 1 \
                    and machine.branch_issue_limit >= 1:
                (self.cur_cycle, self.slots, self.branch_slots,
                 self.fetch_available) = _scan_perfect_w1(
                    rows, mp_pos, self.ready, self.btb_bubble,
                    self.cur_cycle, self.slots, self.branch_slots,
                    self.fetch_available)
            else:
                (self.cur_cycle, self.slots, self.branch_slots,
                 self.fetch_available) = _scan_perfect(
                    rows, mp_pos, self.ready, machine.issue_width,
                    machine.branch_issue_limit, self.btb_bubble,
                    self.cur_cycle, self.slots, self.branch_slots,
                    self.fetch_available)
        else:
            ic_pos = ic_miss_pos.tolist()
            ic_pos.append(n)
            mem_pos = cp.mem_pos.tolist()
            mem_pos.append(n)
            mb_pos = mb_pos_np.tolist()
            mb_pos.append(n)
            (self.cur_cycle, self.slots, self.branch_slots,
             self.fetch_available, self.mem_busy_until) = _scan_real(
                rows, mp_pos, ic_pos, mem_pos, mb_pos, self.ready,
                machine.issue_width, machine.branch_issue_limit,
                self.btb_bubble, machine.icache.miss_penalty,
                self.cur_cycle, self.slots, self.branch_slots,
                self.fetch_available, self.mem_busy_until)

    # -- boundary state ---------------------------------------------------

    def boundary_snapshot(self) -> dict:
        """Canonical inter-chunk state, independent of how the trace
        was chunked.

        Register ready times at or before the current cycle can never
        delay a later event (issue never happens before ``cur``), so
        they are dropped — this is what makes the snapshot identical
        whether the simulator got here in one chunk or many.
        """
        if self._native:
            self._sync_from_native()
        cur = self.cur_cycle
        hot = tuple((r, t) for r, t in enumerate(self.ready) if t > cur)
        return {
            "cur_cycle": cur,
            "slots": self.slots,
            "branch_slots": self.branch_slots,
            "fetch_available": self.fetch_available,
            "mem_busy_until": self.mem_busy_until,
            "ready": hot,
            "btb_tags": tuple(self.btb_tags),
            "btb_counters": tuple(self.btb_counters),
            "ic_tags": None if self.ic_tags is None
            else tuple(self.ic_tags.tolist()),
            "dc_tags": None if self.dc_tags is None
            else tuple(self.dc_tags.tolist()),
            "counters": (self.dynamic, self.executed_n,
                         self.suppressed_n, self.branches,
                         self.mispredictions, self.ic_accesses,
                         self.ic_misses, self.dc_accesses,
                         self.dc_misses),
        }

    def boundary_digest(self) -> str:
        snap = self.boundary_snapshot()
        payload = repr(sorted(snap.items(), key=lambda kv: kv[0]))
        return hashlib.sha256(payload.encode()).hexdigest()

    # -- results ----------------------------------------------------------

    def finish(self) -> SimulationStats:
        if self._native:
            self._sync_from_native()
        stats = SimulationStats(
            cycles=self.cur_cycle + 1,
            dynamic_instructions=self.dynamic,
            executed_instructions=self.executed_n,
            suppressed_instructions=self.suppressed_n,
            branches=self.branches,
            mispredictions=self.mispredictions)
        if not self.machine.perfect_caches:
            stats.icache_accesses = self.ic_accesses
            stats.icache_misses = self.ic_misses
            stats.dcache_accesses = self.dc_accesses
            stats.dcache_misses = self.dc_misses
        return stats


#: Default vector chunk granularity (events per pre-pass task).
DEFAULT_VECTOR_CHUNK = 1 << 16


def simulate_columns_vector(cols: TraceColumns,
                            prep: "SimPrep | VectorSimPrep",
                            machine: MachineDescription,
                            *, chunk_events: int | None = None,
                            jobs: int = 1,
                            task_key: str = "",
                            metrics=None,
                            native: bool | None = None
                            ) -> SimulationStats:
    """Vector-backend equivalent of ``simulate_columns``.

    With ``jobs > 1`` the chunk pre-passes are fanned across the
    engine's process pool (task ids ``vprepass:<task_key>:<index>``)
    and stitched back in order; the result is byte-identical to the
    serial path at any job count or chunk size.  ``native=False``
    (from the :class:`~repro.engine.stages.PipelineContext`'s
    once-per-process resolution) keeps the scan on the Python path.
    """
    size = chunk_events or DEFAULT_VECTOR_CHUNK
    n = len(cols)
    sharded = jobs > 1 and n > size
    sim = VectorSimulator(prep, machine,
                          native=not sharded and native is not False)
    if sharded:
        from repro.engine.scheduler import Job, execute_jobs
        chunks = list(cols.chunks(size))
        job_list = [
            Job(job_id=f"vprepass:{task_key}:{i}",
                fn=_vector_prepass_job,
                args=(chunk, sim.vprep, machine))
            for i, chunk in enumerate(chunks)]
        outcome = execute_jobs(job_list, max_workers=jobs)
        for job in job_list:
            sim.feed_prepassed(outcome.results[job.job_id])
    elif n > size:
        for chunk in cols.chunks(size):
            sim.feed(chunk)
    else:
        sim.feed(cols)
    if metrics is not None:
        metrics.vector_chunks_total += sim.chunks_fed
    return sim.finish()


def emulate_and_simulate_vector(
        program: "Program", addresses: dict[int, int],
        machine: MachineDescription,
        inputs: dict[str, list[int | float] | bytes] | None = None,
        max_steps: int = 50_000_000,
        watchdog=None,
        chunk_events: int | None = None,
        decoded: DecodedProgram | None = None,
        prep: "SimPrep | VectorSimPrep" = None,
        metrics=None,
        native: bool | None = None
) -> "tuple[ExecutionResult, SimulationStats]":
    """Streaming emulate→simulate on the vector backend.

    The emulator side prefers the native (C) kernel, then the
    specialized closure emulator (:mod:`repro.fastpath.jitc`), then
    the flat interpreter (always, when a watchdog is attached); the
    simulator side consumes each chunk through the native full scan
    or the vector pre-pass + residual scan.  Observables are
    byte-identical to the stream engine on every path — including
    after a mid-stream kernel crash, which demotes the process and
    restarts the fused run from scratch on the pure-Python rungs.

    When a :class:`~repro.engine.metrics.PipelineMetrics` is supplied,
    the fused run times every simulator feed separately, credits the
    emulate/simulate split to the matching stages (one invocation
    each), and bumps ``vector_chunks_total``.
    """
    from time import perf_counter

    from repro.fastpath.interp import DEFAULT_CHUNK_EVENTS
    if decoded is None:
        decoded = decode_program(program)
    if prep is None:
        prep = prepare_vector(decoded, addresses, machine)
    sim_seconds = [0.0]

    def _fresh_sink(use_native: bool):
        sim = VectorSimulator(prep, machine, native=use_native)
        sink = sim.feed
        sim_seconds[0] = 0.0
        if metrics is not None:
            def sink(cols, _feed=sim.feed, _acc=sim_seconds):
                start = perf_counter()
                _feed(cols)
                _acc[0] += perf_counter() - start
        return sim, sink

    from repro.fastpath.native import run_program_native
    sim, sink = _fresh_sink(native is not False)
    begin = perf_counter()
    try:
        execution = run_program_native(
            program, inputs=inputs, max_steps=max_steps,
            watchdog=watchdog, sink=sink,
            chunk_events=chunk_events or DEFAULT_CHUNK_EVENTS,
            decoded=decoded, native=native)
    except NativeKernelCrash:
        # The emulator kernel died after chunks already reached the
        # simulator.  The supervisor demoted the process when the
        # crash was caught; rerun the whole fused stream on the
        # Python engines with a fresh simulator — byte-identical.
        from repro.fastpath.jitc import run_program_jit
        sim, sink = _fresh_sink(False)
        execution = run_program_jit(
            program, inputs=inputs, max_steps=max_steps,
            watchdog=watchdog, sink=sink,
            chunk_events=chunk_events or DEFAULT_CHUNK_EVENTS,
            decoded=decoded)
    mid = perf_counter()
    stats = sim.finish()
    if metrics is not None:
        metrics.vector_chunks_total += sim.chunks_fed
        sim_wall = sim_seconds[0] + (perf_counter() - mid)
        metrics.record_stage("emulate", max(mid - begin - sim_seconds[0],
                                            0.0))
        metrics.record_stage("simulate", sim_wall)
    return execution, stats
