"""Columnar dynamic-trace storage.

A :class:`TraceColumns` holds one dynamic trace as four parallel arrays
plus a store-value side table, replacing ``list[TraceEvent]`` in the hot
paths:

* ``sidx``  — static-instruction index into the owning program's
  :attr:`~repro.fastpath.decode.DecodedProgram.instructions` list (the
  program-order position ``assign_addresses`` walks), ``array('i')``;
* ``flags`` — bitfield per event (:data:`FLAG_EXECUTED`,
  :data:`FLAG_TAKEN`), ``array('B')``;
* ``addr``  — effective memory address for loads/stores, else ``-1``,
  ``array('q')``;
* ``vidx``  — index into :attr:`values` for stores, else ``-1``,
  ``array('i')``;
* ``values`` — the exact store values the legacy trace would carry in
  ``TraceEvent.value`` (masked words/bytes, floats).

Appending an event is a few C-level ``array.append`` calls — no object
allocation.  ``to_events`` reconstructs the legacy ``TraceEvent`` view
for the integrity checker, the fault-injection campaign, and old tests.

Pickling goes through :func:`_rebuild_columns` with ``tobytes()``
payloads so the RPRO envelope's restricted unpickler (which refuses the
``array`` module) accepts it and the on-disk artifact stays compact.
"""

from __future__ import annotations

from array import array
from collections.abc import Iterator, Sequence
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.emu.trace import TraceEvent
    from repro.ir.function import Program
    from repro.ir.instruction import Instruction

#: Event executed (guard true); clear means fetched-but-nullified.
FLAG_EXECUTED = 1
#: Control transfer taken (branches; jumps/calls/rets always set it).
FLAG_TAKEN = 2

_SIDX_TYPECODE = "i"
_FLAG_TYPECODE = "B"
_ADDR_TYPECODE = "q"
_VIDX_TYPECODE = "i"


def _rebuild_columns(sidx: bytes, flags: bytes, addr: bytes, vidx: bytes,
                     values: tuple) -> "TraceColumns":
    """Reconstruct a :class:`TraceColumns` from its pickled payload."""
    cols = TraceColumns()
    cols.sidx.frombytes(sidx)
    cols.flags.frombytes(flags)
    cols.addr.frombytes(addr)
    cols.vidx.frombytes(vidx)
    cols.values = list(values)
    return cols


class TraceColumns:
    """Parallel-array dynamic trace (see module docstring)."""

    __slots__ = ("sidx", "flags", "addr", "vidx", "values")

    def __init__(self) -> None:
        self.sidx = array(_SIDX_TYPECODE)
        self.flags = array(_FLAG_TYPECODE)
        self.addr = array(_ADDR_TYPECODE)
        self.vidx = array(_VIDX_TYPECODE)
        self.values: list = []

    # ----- construction --------------------------------------------------

    def append(self, sidx: int, flags: int, addr: int = -1,
               value=None) -> None:
        """Append one event (convenience path; the interpreter appends to
        the arrays directly)."""
        self.sidx.append(sidx)
        self.flags.append(flags)
        self.addr.append(addr)
        if value is None:
            self.vidx.append(-1)
        else:
            self.vidx.append(len(self.values))
            self.values.append(value)

    def extend(self, other: "TraceColumns") -> None:
        base = len(self.values)
        self.sidx.extend(other.sidx)
        self.flags.extend(other.flags)
        self.addr.extend(other.addr)
        self.vidx.extend(v if v < 0 else v + base for v in other.vidx)
        self.values.extend(other.values)

    # ----- basic queries -------------------------------------------------

    def __len__(self) -> int:
        return len(self.sidx)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceColumns):
            return NotImplemented
        return (self.sidx == other.sidx and self.flags == other.flags
                and self.addr == other.addr and self.vidx == other.vidx
                and self.values == other.values)

    def __repr__(self) -> str:
        return (f"TraceColumns(events={len(self.sidx)}, "
                f"stores={len(self.values)})")

    @property
    def nullified_count(self) -> int:
        return sum(1 for f in self.flags if not f & FLAG_EXECUTED)

    @property
    def byte_size(self) -> int:
        """Approximate in-memory payload size of the arrays."""
        return (self.sidx.itemsize * len(self.sidx)
                + self.flags.itemsize * len(self.flags)
                + self.addr.itemsize * len(self.addr)
                + self.vidx.itemsize * len(self.vidx))

    # ----- legacy TraceEvent view ---------------------------------------

    def event(self, i: int,
              instructions: Sequence["Instruction"]) -> "TraceEvent":
        from repro.emu.trace import TraceEvent
        flags = self.flags[i]
        v = self.vidx[i]
        return TraceEvent(instructions[self.sidx[i]],
                          bool(flags & FLAG_EXECUTED),
                          bool(flags & FLAG_TAKEN),
                          self.addr[i],
                          None if v < 0 else self.values[v])

    def iter_events(self, program: "Program | Sequence[Instruction]"
                    ) -> Iterator["TraceEvent"]:
        """Lazily yield legacy ``TraceEvent`` objects.

        ``program`` may be the owning :class:`Program`, an already
        decoded :class:`~repro.fastpath.decode.DecodedProgram`, or the
        static-instruction sequence itself.
        """
        from repro.emu.trace import TraceEvent
        instructions = _instruction_table(program)
        values = self.values
        for s, f, a, v in zip(self.sidx, self.flags, self.addr, self.vidx):
            yield TraceEvent(instructions[s], bool(f & FLAG_EXECUTED),
                             bool(f & FLAG_TAKEN), a,
                             None if v < 0 else values[v])

    def to_events(self, program: "Program | Sequence[Instruction]"
                  ) -> "list[TraceEvent]":
        """Materialize the legacy ``list[TraceEvent]`` view."""
        return list(self.iter_events(program))

    # ----- chunking (streaming support) ---------------------------------

    def slice(self, start: int, stop: int) -> "TraceColumns":
        out = TraceColumns()
        out.sidx = self.sidx[start:stop]
        out.flags = self.flags[start:stop]
        out.addr = self.addr[start:stop]
        vidx = self.vidx[start:stop]
        values = out.values
        remap = array(_VIDX_TYPECODE)
        for v in vidx:
            if v < 0:
                remap.append(-1)
            else:
                remap.append(len(values))
                values.append(self.values[v])
        out.vidx = remap
        return out

    def chunks(self, size: int) -> Iterator["TraceColumns"]:
        """Yield successive fixed-size chunks (the last may be short)."""
        if size <= 0:
            raise ValueError("chunk size must be positive")
        for start in range(0, len(self.sidx), size):
            yield self.slice(start, start + size)

    # ----- pickling ------------------------------------------------------

    def __reduce__(self):
        return (_rebuild_columns,
                (self.sidx.tobytes(), self.flags.tobytes(),
                 self.addr.tobytes(), self.vidx.tobytes(),
                 tuple(self.values)))


def _instruction_table(program) -> Sequence["Instruction"]:
    """Resolve any accepted ``program`` argument to the sidx-indexed
    static instruction sequence."""
    from repro.fastpath.decode import DecodedProgram, decode_program
    if isinstance(program, DecodedProgram):
        return program.instructions
    from repro.ir.function import Program
    if isinstance(program, Program):
        return decode_program(program).instructions
    return program
