"""Native (C) kernels for the fastpath emulate→simulate pipeline.

The pure-Python fastpath pays ~1µs of interpreter overhead per dynamic
event; at millions of events per figure cell that dominates wall time.
This module binds the supervised kernel shared object with
:mod:`ctypes`; building, digest verification, the sacrificial-
subprocess canary, the golden parity replay, and the degradation
ladder all live in :mod:`repro.fastpath.supervisor`.  Every failure is
typed and demotes the process one rung — no compiler, a failed build,
a failed probe, a parity mismatch, a kernel crash, or
``REPRO_NATIVE=0`` all degrade to the pure-Python engines with
byte-identical results.

Two kernels:

* :func:`run_program_native` — full-program emulation producing the
  same observables as ``interp.run_program_fast`` (return value,
  dynamic/suppressed counts, branch outcomes and block counts with
  serial dict insertion order, store-stream signature, memory digest,
  fault messages) and the same :class:`TraceColumns` chunk stream.
  The C side suspends whenever its chunk buffer fills; Python drains
  the buffer (sink flush or trace merge, signature update) and
  resumes, so sink chunk boundaries match the serial engine exactly.
* :func:`sim_scan_chunk` — one ``StreamSimulator.feed`` pass over a
  chunk with all carried state (scoreboard, BTB, cache tags, issue
  counters) in caller-owned numpy arrays, used by the vector engine's
  serial path.

The emulator marshals a :class:`DecodedProgram` once into flat int32/
int64/float64 arrays (:class:`NativeProgram`, cached per decoded
program) — per-pc operand fields, CSR tables for call args, predicate
define tables, params, constants, and the pre-walked fall-through
chains whose block keys the C kernel counts in first-occurrence order
so Python can rebuild ``block_counts`` with serial insertion order.
"""

from __future__ import annotations

import ctypes
import hashlib
import threading
import time
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.emu.interpreter import _CMP, StepLimitExceeded
from repro.emu.memory import (GLOBAL_BASE, SAFE_ADDR, EmulationFault,
                              Memory, layout_globals)
from repro.emu.trace import ExecutionResult
from repro.fastpath.columns import TraceColumns
from repro.fastpath.decode import (
    K_BRANCH, K_CALL, K_CMOV, K_CMP, K_DIV, K_FDIV, K_FLOAD, K_JUMP,
    K_LOAD, K_LOAD_B, K_NOP, K_PREDDEF, K_PREDSET, K_REM, K_RET,
    K_STORE, K_STORE_B, K_FSTORE, DecodedProgram, decode_program)

if TYPE_CHECKING:
    from repro.fastpath.simulate import SimPrep
    from repro.ir.function import Program

_U64 = 0xFFFFFFFFFFFFFFFF
_SIG_PRIME = 1099511628211
#: signature stand-in for NaN store values (quiet-NaN bit
#: pattern); int hashes are deterministic where hash(nan)
#: is id-based on 3.10+
_NAN_KEY = 0x7FF8000000000000

# emu_run statuses / fault codes — keep in sync with _native_src.
_ST_DONE = 0
_ST_CHUNK = 1
_ST_FAULT = 2
_FLT_STEPS = 1
_FLT_FELL_OFF = 2
_FLT_BRANCH_LABEL = 3
_FLT_JUMP_LABEL = 4
_FLT_LOAD = 5
_FLT_LOAD_B = 6
_FLT_LOAD_F = 7
_FLT_STORE = 8
_FLT_IDIV0 = 9
_FLT_FDIV0 = 10

_NXT_NONE = -10
_TGT_UNKNOWN = -2

#: Kinds that write ``regs[dest]`` unconditionally or conditionally —
#: a ``dest == -1`` means the serial engine writes ``regs[-1]`` (the
#: highest dense register), which the flat image reproduces by
#: remapping.  ``K_CALL`` keeps ``-1``: it means "no writeback".
_NO_REG_WRITE = frozenset((K_PREDDEF, K_PREDSET, K_NOP, K_STORE,
                           K_STORE_B, K_FSTORE, K_BRANCH, K_JUMP,
                           K_CALL, K_RET))

# ----------------------------------------------------------------- #
# Library build + load (supervised)                                 #
# ----------------------------------------------------------------- #
#
# Building, digest-verifying, sandbox-validating and parity-checking
# the shared object all live in :mod:`repro.fastpath.supervisor`; this
# module only binds the validated object and caches the handle.

_lock = threading.Lock()
_lib = None
_lib_tried = False


def _enabled() -> bool:
    """Once-per-process ``REPRO_NATIVE`` snapshot (supervisor-owned).

    Resolved a single time so a mid-run env mutation can never produce
    mixed-engine chunks within one workload.
    """
    from repro.fastpath import supervisor
    return supervisor.native_enabled()


def _bind_library(path: str):
    """``CDLL`` + probe + argtype binding for a kernel object.

    Raises :class:`NativeBuildError` when the object cannot be loaded
    or its probe misbehaves — shared by the in-process loader and the
    sacrificial-subprocess canary child.
    """
    from repro.robustness.errors import NativeBuildError
    try:
        lib = ctypes.CDLL(path)
        lib.native_probe.restype = ctypes.c_int
        lib.native_probe.argtypes = ()
        probe = lib.native_probe()
    except (OSError, AttributeError) as exc:
        raise NativeBuildError(
            f"kernel object failed to load: {exc}",
            so_path=path) from exc
    if probe != 42:
        raise NativeBuildError(
            f"kernel probe returned {probe}, expected 42",
            so_path=path)
    p64 = ctypes.POINTER(ctypes.c_int64)
    lib.sim_scan.restype = None
    lib.sim_scan.argtypes = (p64, p64)
    lib.emu_new.restype = ctypes.c_void_p
    lib.emu_new.argtypes = (p64, p64)
    lib.emu_run.restype = ctypes.c_int
    lib.emu_run.argtypes = (ctypes.c_void_p,)
    lib.emu_free.restype = None
    lib.emu_free.argtypes = (ctypes.c_void_p,)
    return lib


def _get_lib():
    """The validated kernel handle, or None once the process demoted.

    First call per process walks the full supervised path: build (or
    digest-verified cache load), sacrificial-subprocess canary for
    never-validated objects, then the in-process golden parity replay.
    Any typed failure demotes the ladder and this returns None forever
    after — byte-identical pure-Python engines take over.
    """
    global _lib, _lib_tried
    from repro.fastpath import supervisor
    from repro.robustness.errors import (NativeEngineError,
                                         NativeParityError)
    if not supervisor.native_active():
        return None
    if _lib is None and not _lib_tried:
        with _lock:
            if _lib is None and not _lib_tried:
                _lib_tried = True
                path = supervisor.acquire_so()
                if path is not None:
                    try:
                        _lib = _bind_library(path)
                    except NativeEngineError as exc:
                        supervisor._record_failure(exc)
                        _lib = None
                    if _lib is not None:
                        try:
                            supervisor.verify_process_parity(path)
                        except NativeParityError:
                            _lib = None
    if not supervisor.native_active():
        return None
    return _lib


def available() -> bool:
    """True when the native kernels built, validated, and probed OK."""
    return _get_lib() is not None


def _as_ptrs(arrays) -> tuple[np.ndarray, "ctypes.pointer"]:
    """Pack buffer addresses into one int64 vector for the C entry
    points (keep the returned array referenced for the call's
    duration)."""
    vec = np.array([a if isinstance(a, int) else a.ctypes.data
                    for a in arrays], dtype=np.int64)
    return vec, vec.ctypes.data_as(ctypes.POINTER(ctypes.c_int64))


# ----------------------------------------------------------------- #
# Comparison-function ordinals                                      #
# ----------------------------------------------------------------- #

def _cmp_ordinals() -> dict[int, int]:
    """Map each ``_CMP`` lambda (by identity) to the C ``docmp``
    ordinal, identified behaviourally so the key type of ``_CMP``
    never matters."""
    probe_to_ord = {
        (True, False, False): 0,   # eq
        (False, True, True): 1,    # ne
        (False, True, False): 2,   # lt
        (True, True, False): 3,    # le
        (False, False, True): 4,   # gt
        (True, False, True): 5,    # ge
    }
    out = {}
    for fn in _CMP.values():
        sig = (bool(fn(0, 0)), bool(fn(0, 1)), bool(fn(1, 0)))
        out[id(fn)] = probe_to_ord[sig]
    return out


_CMP_ORD = _cmp_ordinals()


# ----------------------------------------------------------------- #
# Program marshaling                                                #
# ----------------------------------------------------------------- #

class NativeProgram:
    """Flat array image of a :class:`DecodedProgram` (+ resolved
    constants) shared by every native run of that program."""

    __slots__ = (
        "static_arrays", "chain_off", "chain_keys", "nfuncs", "ncode",
        "entry_fid", "nkeys", "nbuids", "max_call_args", "keys_list",
        "uids", "names", "branch_msgs", "jump_msgs", "decoded")

    def __init__(self, decoded: DecodedProgram, layout: dict[str, int]):
        self.decoded = decoded
        fns = list(decoded.functions.values())
        fid_of = {fn.name: i for i, fn in enumerate(fns)}
        nf = len(fns)
        self.nfuncs = nf
        self.names = [fn.name for fn in fns]
        self.entry_fid = fid_of[decoded.entry]

        pc_base = []
        ncode = 0
        for fn in fns:
            pc_base.append(ncode)
            ncode += len(fn.code)
        self.ncode = ncode

        # Shared namespaces: block-profile keys, chains, branch uids.
        key_id: dict[tuple, int] = {}
        keys_list: list[tuple] = []
        chain_id: dict[tuple, int] = {}
        chain_rows: list[tuple] = []

        def intern_chain(keys: tuple) -> int:
            kids = []
            for k in keys:
                i = key_id.get(k)
                if i is None:
                    i = key_id[k] = len(keys_list)
                    keys_list.append(k)
                kids.append(i)
            row = tuple(kids)
            ci = chain_id.get(row)
            if ci is None:
                ci = chain_id[row] = len(chain_rows)
                chain_rows.append(row)
            return ci

        uid_id: dict[int, int] = {}
        uids: list[int] = []

        i32 = np.int32
        fn_nregs = np.zeros(max(nf, 1), i32)
        fn_npregs = np.zeros(max(nf, 1), i32)
        fn_entry_pc = np.zeros(max(nf, 1), i32)
        fn_entry_chain = np.zeros(max(nf, 1), i32)
        fn_params_off = np.zeros(nf + 1, i32)
        fn_const_off = np.zeros(nf + 1, i32)
        params_flat: list[int] = []
        const_i: list[int] = []
        const_f: list[float] = []
        const_isf: list[int] = []

        col = {name: np.zeros(max(ncode, 1), i32)
               for name in ("kind", "sidx", "dest", "m0", "i0", "m1",
                            "i1", "m2", "i2", "guard", "cond", "spec",
                            "buid", "tgt_pc", "tgt_chain", "callee",
                            "pdp", "nxt_pc", "nxt_chain", "fn_of_pc")}
        cargs_off = np.zeros(ncode + 2, i32)
        cargs_mode: list[int] = []
        cargs_idx: list[int] = []
        pd_off = np.zeros(ncode + 2, i32)
        pd_pidx: list[int] = []
        pd_table: list[int] = []
        branch_msgs: dict[int, str] = {}
        jump_msgs: dict[int, str] = {}
        max_call_args = 1

        for fid, fn in enumerate(fns):
            base = pc_base[fid]
            fn_nregs[fid] = fn.nregs
            fn_npregs[fid] = fn.npregs
            ek, epc = fn.entry
            fn_entry_pc[fid] = base + epc if epc >= 0 else -1
            fn_entry_chain[fid] = intern_chain(ek)
            fn_params_off[fid + 1] = fn_params_off[fid] + len(fn.params)
            params_flat.extend(fn.params)
            fn_const_off[fid + 1] = fn_const_off[fid] \
                + len(fn.consts_spec)
            for spec in fn.consts_spec:
                if spec[0] == "imm":
                    v = spec[1]
                else:
                    v = layout[spec[1]] + spec[2]
                if isinstance(v, float):
                    const_i.append(0)
                    const_f.append(v)
                    const_isf.append(1)
                else:
                    const_i.append(int(v))
                    const_f.append(0.0)
                    const_isf.append(0)

            for lpc, t in enumerate(fn.code):
                pc = base + lpc
                (kind, sidx, dest, m0, i0, m1, i1, m2, i2, guard,
                 aux) = t
                c = col
                c["kind"][pc] = kind
                c["sidx"][pc] = sidx
                c["m0"][pc] = m0
                c["i0"][pc] = i0
                c["m1"][pc] = m1
                c["i1"][pc] = i1
                c["m2"][pc] = m2
                c["i2"][pc] = i2
                c["guard"][pc] = guard
                c["fn_of_pc"][pc] = fid
                if dest < 0 and kind not in _NO_REG_WRITE:
                    dest = max(fn.nregs, 1) - 1
                c["dest"][pc] = dest
                cargs_off[pc + 1] = cargs_off[pc]
                pd_off[pc + 1] = pd_off[pc]

                if kind == K_CMP:
                    c["cond"][pc] = _CMP_ORD[id(aux)]
                elif kind == K_BRANCH:
                    cmpfn, uid, target, label = aux
                    c["cond"][pc] = _CMP_ORD[id(cmpfn)]
                    bi = uid_id.get(uid)
                    if bi is None:
                        bi = uid_id[uid] = len(uids)
                        uids.append(uid)
                    c["buid"][pc] = bi
                    if target is None:
                        c["tgt_pc"][pc] = _TGT_UNKNOWN
                        branch_msgs[pc] = (f"{fn.name}: branch to "
                                           f"unknown label {label!r}")
                    else:
                        tk, tpc = target
                        c["tgt_pc"][pc] = base + tpc if tpc >= 0 else -1
                        c["tgt_chain"][pc] = intern_chain(tk)
                elif kind == K_JUMP:
                    target, label = aux
                    if target is None:
                        c["tgt_pc"][pc] = _TGT_UNKNOWN
                        jump_msgs[pc] = (f"{fn.name}: jump to "
                                         f"unknown label {label!r}")
                    else:
                        tk, tpc = target
                        c["tgt_pc"][pc] = base + tpc if tpc >= 0 else -1
                        c["tgt_chain"][pc] = intern_chain(tk)
                elif kind == K_CALL:
                    callee_name, argspec = aux
                    c["callee"][pc] = fid_of[callee_name]
                    for m, i in argspec:
                        cargs_mode.append(m)
                        cargs_idx.append(i)
                    cargs_off[pc + 1] = cargs_off[pc] + len(argspec)
                    if len(argspec) > max_call_args:
                        max_call_args = len(argspec)
                elif kind == K_RET:
                    c["spec"][pc] = 1 if aux else 0
                elif kind == K_PREDDEF:
                    cmpfn, p_in_idx, pdspec = aux
                    c["cond"][pc] = _CMP_ORD[id(cmpfn)]
                    c["pdp"][pc] = p_in_idx
                    for pidx, table in pdspec:
                        pd_pidx.append(pidx)
                        pd_table.extend(-1 if nv is None else int(nv)
                                        for nv in table)
                    pd_off[pc + 1] = pd_off[pc] + len(pdspec)
                elif kind == K_PREDSET:
                    c["spec"][pc] = aux
                elif kind == K_CMOV:
                    c["spec"][pc] = 1 if aux else 0
                elif kind in (K_DIV, K_REM, K_FDIV, K_LOAD, K_LOAD_B,
                              K_FLOAD):
                    c["spec"][pc] = 1 if aux else 0

                ne = fn.nxt[lpc]
                if ne is None:
                    c["nxt_pc"][pc] = _NXT_NONE
                else:
                    nk, npc = ne
                    c["nxt_pc"][pc] = base + npc if npc >= 0 else -1
                    c["nxt_chain"][pc] = intern_chain(nk)

        chain_off = np.zeros(len(chain_rows) + 1, i32)
        chain_keys: list[int] = []
        for ci, row in enumerate(chain_rows):
            chain_keys.extend(row)
            chain_off[ci + 1] = chain_off[ci] + len(row)

        def arr(seq, dtype):
            return np.array(seq, dtype=dtype) if len(seq) \
                else np.zeros(1, dtype=dtype)

        self.chain_off = chain_off
        self.chain_keys = arr(chain_keys, i32)

        self.keys_list = keys_list
        self.uids = uids
        self.nkeys = len(keys_list)
        self.nbuids = len(uids)
        self.max_call_args = max_call_args
        self.branch_msgs = branch_msgs
        self.jump_msgs = jump_msgs
        # Slot order must match emu_new in the C source.
        self.static_arrays = [
            fn_nregs, fn_npregs, fn_entry_pc, fn_entry_chain,
            fn_params_off, arr(params_flat, i32), fn_const_off,
            arr(const_i, np.int64), arr(const_f, np.float64),
            arr(const_isf, np.uint8),
            col["kind"], col["sidx"], col["dest"], col["m0"],
            col["i0"], col["m1"], col["i1"], col["m2"], col["i2"],
            col["guard"], col["cond"], col["spec"], col["buid"],
            col["tgt_pc"], col["tgt_chain"], col["callee"],
            cargs_off, arr(cargs_mode, i32), arr(cargs_idx, i32),
            pd_off, arr(pd_pidx, i32), arr(pd_table, np.int8),
            col["pdp"], col["nxt_pc"], col["nxt_chain"],
            col["fn_of_pc"],
        ]


_NPROG_CACHE: dict[int, tuple[DecodedProgram, NativeProgram]] = {}
_NPROG_CACHE_MAX = 8


def _native_program(decoded: DecodedProgram,
                    layout: dict[str, int]) -> NativeProgram:
    """Marshal (or fetch the cached image of) ``decoded``.

    ``layout`` is deterministic per program (inputs only change global
    *contents*), so one image serves every run of the same decoded
    program.  The cache holds a strong reference to ``decoded`` to
    keep ``id()`` keys stable.
    """
    key = id(decoded)
    hit = _NPROG_CACHE.get(key)
    if hit is not None and hit[0] is decoded:
        return hit[1]
    nprog = NativeProgram(decoded, layout)
    if len(_NPROG_CACHE) >= _NPROG_CACHE_MAX:
        _NPROG_CACHE.pop(next(iter(_NPROG_CACHE)))
    _NPROG_CACHE[key] = (decoded, nprog)
    return nprog


# ----------------------------------------------------------------- #
# Emulation driver                                                  #
# ----------------------------------------------------------------- #

def _raise_fault(nprog: NativeProgram, out: np.ndarray,
                 max_steps: int) -> None:
    code = int(out[4])
    pc = int(out[5])
    addr = int(out[6])
    name = nprog.names[int(out[11])]
    if code == _FLT_STEPS:
        raise StepLimitExceeded(f"exceeded {max_steps} steps in {name}")
    if code == _FLT_FELL_OFF:
        raise EmulationFault(f"fell off the end of function {name}")
    if code == _FLT_BRANCH_LABEL:
        raise EmulationFault(nprog.branch_msgs[pc])
    if code == _FLT_JUMP_LABEL:
        raise EmulationFault(nprog.jump_msgs[pc])
    if code == _FLT_LOAD:
        raise EmulationFault(f"illegal load at {addr:#x}")
    if code == _FLT_LOAD_B:
        raise EmulationFault(f"illegal byte load at {addr:#x}")
    if code == _FLT_LOAD_F:
        raise EmulationFault(f"illegal float load at {addr:#x}")
    if code == _FLT_STORE:
        raise EmulationFault(f"illegal memory access at {addr:#x}")
    if code == _FLT_IDIV0:
        raise EmulationFault("integer divide by zero")
    if code == _FLT_FDIV0:
        raise EmulationFault("float divide by zero")
    raise MemoryError("native emulator allocation failure")


def run_program_native(program: "Program",
                       inputs: dict | None = None,
                       collect_trace: bool = False,
                       max_steps: int = 50_000_000,
                       watchdog=None,
                       sink: Callable[[TraceColumns], None]
                       | None = None,
                       chunk_events: int | None = None,
                       decoded: DecodedProgram | None = None,
                       native: bool | None = None
                       ) -> ExecutionResult:
    """Native-kernel equivalent of ``interp.run_program_fast``.

    Requires tracing (``collect_trace`` or ``sink``) and no watchdog —
    the watchdog contract needs in-loop heartbeats, which stay on the
    Python engines.  Unsupported modes (and a missing kernel) delegate
    to :func:`repro.fastpath.jitc.run_program_jit`, which itself falls
    back further; results are identical on every path.

    ``native=False`` skips the kernel outright — callers thread the
    :class:`~repro.engine.stages.PipelineContext`'s once-per-process
    engine resolution through here instead of re-reading the
    environment.  A kernel fault mid-run (injected or real) demotes
    the process and either reruns on the next rung (when no chunk
    left this function yet) or re-raises the typed, transient
    :class:`NativeKernelCrash` for the scheduler's retry.
    """
    from repro.fastpath.jitc import run_program_jit
    lib = None if native is False else _get_lib()
    tracing = collect_trace or sink is not None
    if lib is None or watchdog is not None or not tracing:
        return run_program_jit(program, inputs=inputs,
                               collect_trace=collect_trace,
                               max_steps=max_steps, watchdog=watchdog,
                               sink=sink,
                               chunk_events=chunk_events or (1 << 16),
                               decoded=decoded)
    if decoded is None:
        decoded = decode_program(program)
    if chunk_events is None:
        chunk_events = 1 << 16

    memory = Memory()
    layout = layout_globals(program, memory, inputs)
    global_end = max((layout[g.name] + g.byte_size
                      for g in program.globals.values()),
                     default=GLOBAL_BASE)
    nprog = _native_program(decoded, layout)

    # Sink chunk boundaries must match the serial engine (flush at
    # exactly ``chunk_events``); the collect path merges chunks, so a
    # larger buffer just means fewer Python round-trips.
    chunk_cap = chunk_events if sink is not None \
        else max(chunk_events, 1 << 18)

    t_sidx = np.zeros(chunk_cap, np.int32)
    t_flags = np.zeros(chunk_cap, np.uint8)
    t_addr = np.zeros(chunk_cap, np.int64)
    t_vidx = np.zeros(chunk_cap, np.int32)
    val_i = np.zeros(chunk_cap, np.int64)
    val_f = np.zeros(chunk_cap, np.float64)
    val_isf = np.zeros(chunk_cap, np.uint8)
    site_counts = np.zeros(max(nprog.nkeys, 1), np.int64)
    site_order = np.zeros(max(nprog.nkeys, 1), np.int32)
    branch_counts = np.zeros(max(2 * nprog.nbuids, 1), np.int64)
    branch_order = np.zeros(max(nprog.nbuids, 1), np.int32)
    out = np.zeros(16, np.int64)
    out_f = np.zeros(2, np.float64)

    membuf = (ctypes.c_ubyte * len(memory.data)).from_buffer(
        memory.data)
    # Slots 0..35 program image, 36 memory, 37..49 per-run buffers,
    # 50/51 the chain CSR — must match emu_new in the C source.
    ptrs_vec, ptrs = _as_ptrs(list(nprog.static_arrays) + [
        ctypes.addressof(membuf),
        t_sidx, t_flags, t_addr, t_vidx, val_i, val_f, val_isf,
        site_counts, site_order, branch_counts, branch_order,
        out, out_f, nprog.chain_off, nprog.chain_keys,
    ])
    cfg = np.array([nprog.nfuncs, nprog.ncode, len(memory.data),
                    max_steps, chunk_cap, nprog.entry_fid,
                    nprog.nkeys, nprog.nbuids, nprog.max_call_args],
                   dtype=np.int64)

    started = time.monotonic()
    handle = lib.emu_new(ptrs, cfg.ctypes.data_as(
        ctypes.POINTER(ctypes.c_int64)))
    if not handle:
        del membuf
        return run_program_jit(program, inputs=inputs,
                               collect_trace=collect_trace,
                               max_steps=max_steps, watchdog=watchdog,
                               sink=sink, chunk_events=chunk_events,
                               decoded=decoded)

    from repro.fastpath import supervisor
    from repro.robustness.errors import NativeKernelCrash

    signature = 0
    out_count = 0
    flushed = False
    trace = TraceColumns() if collect_trace else None
    try:
        try:
            while True:
                supervisor.maybe_fault_emu()
                rc = lib.emu_run(handle)
                if rc == _ST_FAULT:
                    _raise_fault(nprog, out, max_steps)
                tn = int(out[9])
                nvals = int(out[10])
                if tn:
                    values = [float(val_f[i]) if val_isf[i]
                              else int(val_i[i]) for i in range(nvals)]
                    if nvals:
                        mask = t_vidx[:tn] >= 0
                        for a, v in zip(t_addr[:tn][mask].tolist(),
                                        values):
                            if a != SAFE_ADDR:
                                out_count += 1
                                # NaN folds through _NAN_KEY:
                                # hash(nan) is id-based on 3.10+
                                key = v if v == v else _NAN_KEY
                                signature = ((signature
                                              ^ hash((a, key)))
                                             * _SIG_PRIME) & _U64
                    if sink is not None:
                        cols = TraceColumns()
                        cols.sidx.frombytes(t_sidx[:tn].tobytes())
                        cols.flags.frombytes(t_flags[:tn].tobytes())
                        cols.addr.frombytes(t_addr[:tn].tobytes())
                        cols.vidx.frombytes(t_vidx[:tn].tobytes())
                        cols.values = values
                        sink(cols)
                        flushed = True
                    elif collect_trace:
                        vbase = len(trace.values)
                        trace.sidx.frombytes(t_sidx[:tn].tobytes())
                        trace.flags.frombytes(t_flags[:tn].tobytes())
                        trace.addr.frombytes(t_addr[:tn].tobytes())
                        if vbase:
                            vv = t_vidx[:tn].copy()
                            vv[vv >= 0] += vbase
                            trace.vidx.frombytes(vv.tobytes())
                        else:
                            trace.vidx.frombytes(t_vidx[:tn].tobytes())
                        trace.values.extend(values)
                if rc == _ST_DONE:
                    break
        finally:
            lib.emu_free(handle)
            del membuf
    except NativeKernelCrash as crash:
        # The emulator kernel faulted mid-run.  Demote the process
        # first; then either rerun from scratch on the next rung (no
        # chunk has left this function, so the result is identical) or
        # surface the typed transient error — the sink already
        # consumed chunks, and only the caller can restart the stream.
        supervisor.report_kernel_fault(crash)
        if flushed:
            raise
        return run_program_jit(program, inputs=inputs,
                               collect_trace=collect_trace,
                               max_steps=max_steps, watchdog=watchdog,
                               sink=sink, chunk_events=chunk_events,
                               decoded=decoded)

    wall_time = time.monotonic() - started
    value = float(out_f[0]) if out[2] else int(out[3])

    block_counts: dict[tuple, int] = {}
    keys_list = nprog.keys_list
    for kid in site_order[:int(out[7])].tolist():
        block_counts[keys_list[kid]] = int(site_counts[kid])
    branch_outcomes: dict[int, list[int]] = {}
    uids = nprog.uids
    for bi in branch_order[:int(out[8])].tolist():
        branch_outcomes[uids[bi]] = [int(branch_counts[2 * bi]),
                                     int(branch_counts[2 * bi + 1])]
    digest = hashlib.sha256(
        bytes(memory.data[GLOBAL_BASE:global_end])).hexdigest()
    return ExecutionResult(
        return_value=value,
        dynamic_count=int(out[0]),
        suppressed_count=int(out[1]),
        trace=trace,
        branch_outcomes=branch_outcomes,
        block_counts=block_counts,
        output_signature=signature,
        output_count=out_count,
        memory_digest=digest,
        wall_time_seconds=wall_time,
        heartbeats=[],
    )


# ----------------------------------------------------------------- #
# Simulator scan                                                    #
# ----------------------------------------------------------------- #

class NativeSimTables:
    """Flat per-sidx arrays + CSR reg lists for the C ``sim_scan``."""

    __slots__ = ("pc_addr", "lat", "flags", "pred", "used_off",
                 "used_idx", "dests_off", "dests_idx", "nregs")

    def __init__(self, prep: "SimPrep"):
        n = len(prep.pc_addr)
        self.nregs = prep.nregs
        self.pc_addr = np.array(prep.pc_addr, dtype=np.int64)
        self.lat = np.array(prep.lat, dtype=np.int32)
        self.flags = np.array(prep.flags, dtype=np.uint8)
        self.pred = np.array(prep.pred, dtype=np.int32)
        used_off = np.zeros(n + 1, np.int32)
        used_idx: list[int] = []
        dests_off = np.zeros(n + 1, np.int32)
        dests_idx: list[int] = []
        for i in range(n):
            used_idx.extend(prep.used[i])
            used_off[i + 1] = len(used_idx)
            dests_idx.extend(prep.dests[i])
            dests_off[i + 1] = len(dests_idx)
        self.used_off = used_off
        self.used_idx = np.array(used_idx, dtype=np.int32) \
            if used_idx else np.zeros(1, np.int32)
        self.dests_off = dests_off
        self.dests_idx = np.array(dests_idx, dtype=np.int32) \
            if dests_idx else np.zeros(1, np.int32)


def sim_scan_chunk(tables: NativeSimTables,
                   sidx: np.ndarray, flags: np.ndarray,
                   addr: np.ndarray,
                   ready: np.ndarray,
                   btb_tags: np.ndarray, btb_ctr: np.ndarray,
                   ic_tags: np.ndarray, dc_tags: np.ndarray,
                   st: np.ndarray, cfg: np.ndarray) -> None:
    """One ``StreamSimulator.feed`` pass over a chunk, in C.

    ``cfg[0]`` is overwritten with ``len(sidx)``; all other state
    (scoreboard ``ready``, BTB, cache tags, the 14-slot ``st`` issue
    vector) is read and written in place, so consecutive calls chain
    exactly like consecutive ``feed`` calls.
    """
    from repro.fastpath import supervisor
    lib = _get_lib()
    if lib is None:
        from repro.robustness.errors import NativeEngineError
        raise NativeEngineError("native kernels unavailable")
    # Injected faults fire *before* the C call, so all carried state
    # is still at the previous chunk boundary — the caller hands off
    # to the Python scan and reprocesses this chunk byte-identically.
    supervisor.maybe_fault_scan()
    cfg[0] = len(sidx)
    ptrs_vec, ptrs = _as_ptrs([
        sidx, flags, addr, tables.pc_addr, tables.lat, tables.flags,
        tables.pred, tables.used_off, tables.used_idx,
        tables.dests_off, tables.dests_idx, ready, btb_tags, btb_ctr,
        ic_tags, dc_tags, st])
    lib.sim_scan(ptrs, cfg.ctypes.data_as(
        ctypes.POINTER(ctypes.c_int64)))
