"""Fastpath: pre-decoded micro-ops, columnar traces, and streaming
emulate→simulate.

The legacy object-graph interpreter (``repro.emu.interpreter``) and trace
simulator (``repro.sim.pipeline``) pay per-dynamic-instruction Python
overhead: attribute chasing on ``Instruction`` dataclasses, a
``TraceEvent`` NamedTuple allocated per fetch, and a fully materialized
``list[TraceEvent]`` handed between stages.  This package lowers a
compiled :class:`~repro.ir.function.Program` into flat, integer-indexed
structures once (:mod:`repro.fastpath.decode`), executes it with an
int-dispatched interpreter emitting a columnar trace
(:mod:`repro.fastpath.interp`, :mod:`repro.fastpath.columns`), and
simulates straight off the columns — optionally streaming fixed-size
chunks from emulator to simulator without materializing the full trace
(:mod:`repro.fastpath.simulate`).

The legacy path stays untouched as the differential oracle; see
``repro.robustness.differential.assert_fastpath_equivalent``.
"""

from repro.fastpath.columns import (FLAG_EXECUTED, FLAG_TAKEN,
                                    TraceColumns)
from repro.fastpath.decode import DecodedFunction, DecodedProgram, \
    decode_program
from repro.fastpath.interp import run_program_fast
from repro.fastpath.simulate import (SimPrep, StreamSimulator,
                                     emulate_and_simulate_stream,
                                     prepare_sim, simulate_columns)

__all__ = [
    "FLAG_EXECUTED", "FLAG_TAKEN", "TraceColumns",
    "DecodedFunction", "DecodedProgram", "decode_program",
    "run_program_fast",
    "SimPrep", "StreamSimulator", "prepare_sim", "simulate_columns",
    "emulate_and_simulate_stream",
]
