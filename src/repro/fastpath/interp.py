"""Flat micro-op interpreter — the fastpath emulator.

Executes a :class:`~repro.fastpath.decode.DecodedProgram` with semantics
bit-identical to ``repro.emu.interpreter`` (the differential oracle):
same wrap-to-32-bit arithmetic, guard nullification, predicate truth
tables, store-stream signature, block/branch profiles, memory digest,
step budget, watchdog cadence, and fault messages.  The difference is
mechanical: one non-recursive loop over flat code lists, int-keyed
dispatch, dense list register files, and a columnar trace appended to
with bound ``array.append`` methods instead of per-event NamedTuples.

Streaming: pass ``sink`` to receive :class:`TraceColumns` chunks of at
most ``chunk_events`` events as they are produced (the final
``ExecutionResult.trace`` is then ``None``); the cycle simulator
consumes them without the full trace ever being materialized.
"""

from __future__ import annotations

import hashlib
import time
from typing import TYPE_CHECKING, Callable

from repro.emu.interpreter import StepLimitExceeded, _cdiv, _crem, _w32
from repro.emu.memory import (GLOBAL_BASE, SAFE_ADDR, EmulationFault,
                              Memory, layout_globals)
from repro.emu.trace import ExecutionResult
from repro.fastpath.columns import TraceColumns
from repro.fastpath.decode import (
    K_ADD, K_AND, K_AND_NOT, K_BRANCH, K_CALL, K_CMOV, K_CMP, K_CVT_FI,
    K_CVT_IF, K_DIV, K_FADD, K_FDIV, K_FMUL, K_FMOV, K_FNEG, K_FSUB,
    K_JUMP, K_LOAD, K_LOAD_B, K_MOV, K_MUL, K_NEG, K_NOP, K_NOT, K_OR,
    K_OR_NOT, K_PREDDEF, K_PREDSET, K_REM, K_SELECT, K_SHL, K_SHR,
    K_STORE, K_STORE_B, K_SUB, K_XOR, DecodedProgram, decode_program)
from repro.ir.function import Program

if TYPE_CHECKING:  # avoid an emu <-> robustness import cycle
    from repro.robustness.watchdog import EmulationWatchdog

_U32 = 0xFFFFFFFF
_U64 = 0xFFFFFFFFFFFFFFFF
_SIG_PRIME = 1099511628211
#: signature stand-in for NaN store values (quiet-NaN bit pattern);
#: int hashes are deterministic where hash(nan) is id-based on 3.10+
_NAN_KEY = 0x7FF8000000000000
#: Stores to $safe_addr are the partial-predication nullification
#: trick, excluded from the output signature (as in the legacy loop).
_SAFE_ADDR = SAFE_ADDR

#: Default streaming granularity: large enough to amortize per-chunk
#: simulator overhead, small enough to keep peak trace memory bounded.
DEFAULT_CHUNK_EVENTS = 1 << 16


def run_program_fast(program: Program,
                     inputs: dict[str, list[int | float] | bytes]
                     | None = None,
                     collect_trace: bool = False,
                     max_steps: int = 50_000_000,
                     watchdog: "EmulationWatchdog | None" = None,
                     sink: Callable[[TraceColumns], None] | None = None,
                     chunk_events: int = DEFAULT_CHUNK_EVENTS,
                     decoded: DecodedProgram | None = None
                     ) -> ExecutionResult:
    """Drop-in fast replacement for ``emu.interpreter.run_program``.

    Identical observable results; the trace (when collected) is a
    :class:`TraceColumns` instead of ``list[TraceEvent]``.  Pass an
    already decoded program via ``decoded`` to skip the lowering pass.
    """
    if decoded is None:
        decoded = decode_program(program)
    memory = Memory()
    layout = layout_globals(program, memory, inputs)
    global_end = max((layout[g.name] + g.byte_size
                      for g in program.globals.values()),
                     default=GLOBAL_BASE)
    if watchdog is not None:
        watchdog.start()
    started = time.monotonic()
    (value, steps, suppressed, trace, branch_outcomes, block_counts,
     signature, out_count) = _execute(decoded, memory, layout,
                                      collect_trace, max_steps,
                                      watchdog, sink, chunk_events)
    wall_time = time.monotonic() - started
    digest = hashlib.sha256(
        bytes(memory.data[GLOBAL_BASE:global_end])).hexdigest()
    return ExecutionResult(
        return_value=value,
        dynamic_count=steps,
        suppressed_count=suppressed,
        trace=trace,
        branch_outcomes=branch_outcomes,
        block_counts=block_counts,
        output_signature=signature,
        output_count=out_count,
        memory_digest=digest,
        wall_time_seconds=wall_time,
        heartbeats=list(watchdog.heartbeats)
        if watchdog is not None else [],
    )


def _execute(decoded, memory, layout, collect_trace, max_steps,
             watchdog, sink, chunk_events):
    functions = decoded.functions
    const_cache: dict[str, list] = {}

    def consts_of(d):
        c = const_cache.get(d.name)
        if c is None:
            c = [spec[1] if spec[0] == "imm"
                 else layout[spec[1]] + spec[2]
                 for spec in d.consts_spec]
            const_cache[d.name] = c
        return c

    tracing = collect_trace or sink is not None
    cols = TraceColumns()
    sidx_arr = cols.sidx
    ap_s = sidx_arr.append
    ap_f = cols.flags.append
    ap_a = cols.addr.append
    ap_v = cols.vidx.append
    values = cols.values

    load_word = memory.load_word
    load_byte = memory.load_byte
    load_float = memory.load_float
    store_word = memory.store_word
    store_byte = memory.store_byte
    store_float = memory.store_float

    steps = 0
    suppressed = 0
    signature = 0
    out_count = 0
    branch_outcomes: dict[int, list[int]] = {}
    block_counts: dict[tuple[str, str], int] = {}
    stack: list[tuple] = []

    wd = watchdog
    wd_interval = wd.interval if wd is not None else 0

    dfn = functions[decoded.entry]
    code = dfn.code
    nxt = dfn.nxt
    consts = consts_of(dfn)
    regs: list = [0] * dfn.nregs
    plist: list = [0] * dfn.npregs
    name = dfn.name
    keys, pc = dfn.entry
    for k in keys:
        block_counts[k] = block_counts.get(k, 0) + 1
    if pc < 0:
        raise EmulationFault(f"fell off the end of function {name}")

    while True:
        if sink is not None and len(sidx_arr) >= chunk_events:
            sink(cols)
            cols = TraceColumns()
            sidx_arr = cols.sidx
            ap_s = sidx_arr.append
            ap_f = cols.flags.append
            ap_a = cols.addr.append
            ap_v = cols.vidx.append
            values = cols.values
            # A slow consumer is wall-clock spent inside the emulation
            # budget: charge each flush, not just every wd_interval
            # steps (small chunks can flush many times per interval).
            if wd is not None:
                wd.beat(steps)

        kind, sidx, dest, m0, i0, m1, i1, m2, i2, guard, aux = code[pc]
        steps += 1
        if steps > max_steps:
            raise StepLimitExceeded(
                f"exceeded {max_steps} steps in {name}")
        if wd is not None and not steps % wd_interval:
            wd.beat(steps)

        # Guard check: fetched but nullified when the predicate is 0
        # (predicate defines decoded with guard == -1; see decode).
        if guard >= 0 and not plist[guard]:
            suppressed += 1
            if tracing:
                ap_s(sidx); ap_f(0); ap_a(-1); ap_v(-1)
            ne = nxt[pc]
            if ne is None:
                pc += 1
                continue
            keys, pc = ne
            for k in keys:
                block_counts[k] = block_counts.get(k, 0) + 1
            if pc < 0:
                raise EmulationFault(
                    f"fell off the end of function {name}")
            continue

        if kind < K_LOAD:
            # --- pure register ops: compute, then the shared tail ----
            if kind == K_ADD:
                a = regs[i0] if m0 == 0 else (
                    consts[i0] if m0 == 1 else plist[i0])
                b = regs[i1] if m1 == 0 else (
                    consts[i1] if m1 == 1 else plist[i1])
                regs[dest] = (a + b + 0x80000000 & _U32) - 0x80000000
            elif kind == K_MOV:
                regs[dest] = regs[i0] if m0 == 0 else (
                    consts[i0] if m0 == 1 else plist[i0])
            elif kind == K_CMP:
                a = regs[i0] if m0 == 0 else (
                    consts[i0] if m0 == 1 else plist[i0])
                b = regs[i1] if m1 == 0 else (
                    consts[i1] if m1 == 1 else plist[i1])
                regs[dest] = 1 if aux(a, b) else 0
            elif kind == K_SUB:
                a = regs[i0] if m0 == 0 else (
                    consts[i0] if m0 == 1 else plist[i0])
                b = regs[i1] if m1 == 0 else (
                    consts[i1] if m1 == 1 else plist[i1])
                regs[dest] = (a - b + 0x80000000 & _U32) - 0x80000000
            elif kind == K_AND:
                a = regs[i0] if m0 == 0 else (
                    consts[i0] if m0 == 1 else plist[i0])
                b = regs[i1] if m1 == 0 else (
                    consts[i1] if m1 == 1 else plist[i1])
                regs[dest] = a & b
            elif kind == K_PREDDEF:
                a = regs[i0] if m0 == 0 else (
                    consts[i0] if m0 == 1 else plist[i0])
                b = regs[i1] if m1 == 0 else (
                    consts[i1] if m1 == 1 else plist[i1])
                cmpfn, p_in_idx, pdspec = aux
                idx = 2 if p_in_idx < 0 or plist[p_in_idx] else 0
                if cmpfn(a, b):
                    idx += 1
                for pidx, table in pdspec:
                    nv = table[idx]
                    if nv is not None:
                        plist[pidx] = nv
            elif kind == K_OR:
                a = regs[i0] if m0 == 0 else (
                    consts[i0] if m0 == 1 else plist[i0])
                b = regs[i1] if m1 == 0 else (
                    consts[i1] if m1 == 1 else plist[i1])
                regs[dest] = a | b
            elif kind == K_CMOV:
                cond = regs[i1] if m1 == 0 else (
                    consts[i1] if m1 == 1 else plist[i1])
                if (cond != 0) == aux:
                    regs[dest] = regs[i0] if m0 == 0 else (
                        consts[i0] if m0 == 1 else plist[i0])
            elif kind == K_SELECT:
                cond = regs[i2] if m2 == 0 else (
                    consts[i2] if m2 == 1 else plist[i2])
                if cond != 0:
                    regs[dest] = regs[i0] if m0 == 0 else (
                        consts[i0] if m0 == 1 else plist[i0])
                else:
                    regs[dest] = regs[i1] if m1 == 0 else (
                        consts[i1] if m1 == 1 else plist[i1])
            elif kind == K_XOR:
                a = regs[i0] if m0 == 0 else (
                    consts[i0] if m0 == 1 else plist[i0])
                b = regs[i1] if m1 == 0 else (
                    consts[i1] if m1 == 1 else plist[i1])
                regs[dest] = a ^ b
            elif kind == K_SHL:
                a = regs[i0] if m0 == 0 else (
                    consts[i0] if m0 == 1 else plist[i0])
                b = regs[i1] if m1 == 0 else (
                    consts[i1] if m1 == 1 else plist[i1])
                regs[dest] = ((a << (b & 31)) + 0x80000000
                              & _U32) - 0x80000000
            elif kind == K_SHR:
                a = regs[i0] if m0 == 0 else (
                    consts[i0] if m0 == 1 else plist[i0])
                b = regs[i1] if m1 == 0 else (
                    consts[i1] if m1 == 1 else plist[i1])
                regs[dest] = a >> (b & 31)
            elif kind == K_NOT:
                a = regs[i0] if m0 == 0 else (
                    consts[i0] if m0 == 1 else plist[i0])
                regs[dest] = (~a + 0x80000000 & _U32) - 0x80000000
            elif kind == K_NEG:
                a = regs[i0] if m0 == 0 else (
                    consts[i0] if m0 == 1 else plist[i0])
                regs[dest] = (-a + 0x80000000 & _U32) - 0x80000000
            elif kind == K_MUL:
                a = regs[i0] if m0 == 0 else (
                    consts[i0] if m0 == 1 else plist[i0])
                b = regs[i1] if m1 == 0 else (
                    consts[i1] if m1 == 1 else plist[i1])
                regs[dest] = (a * b + 0x80000000 & _U32) - 0x80000000
            elif kind == K_AND_NOT:
                a = regs[i0] if m0 == 0 else (
                    consts[i0] if m0 == 1 else plist[i0])
                b = regs[i1] if m1 == 0 else (
                    consts[i1] if m1 == 1 else plist[i1])
                regs[dest] = 1 if (a != 0 and b == 0) else 0
            elif kind == K_OR_NOT:
                a = regs[i0] if m0 == 0 else (
                    consts[i0] if m0 == 1 else plist[i0])
                b = regs[i1] if m1 == 0 else (
                    consts[i1] if m1 == 1 else plist[i1])
                regs[dest] = 1 if (a != 0 or b == 0) else 0
            elif kind == K_DIV or kind == K_REM:
                a = regs[i0] if m0 == 0 else (
                    consts[i0] if m0 == 1 else plist[i0])
                b = regs[i1] if m1 == 0 else (
                    consts[i1] if m1 == 1 else plist[i1])
                if aux and b == 0:
                    regs[dest] = 0
                elif kind == K_DIV:
                    regs[dest] = _w32(_cdiv(a, b))
                else:
                    regs[dest] = _w32(_crem(a, b))
            elif kind == K_FADD:
                a = regs[i0] if m0 == 0 else (
                    consts[i0] if m0 == 1 else plist[i0])
                b = regs[i1] if m1 == 0 else (
                    consts[i1] if m1 == 1 else plist[i1])
                regs[dest] = a + b
            elif kind == K_FSUB:
                a = regs[i0] if m0 == 0 else (
                    consts[i0] if m0 == 1 else plist[i0])
                b = regs[i1] if m1 == 0 else (
                    consts[i1] if m1 == 1 else plist[i1])
                regs[dest] = a - b
            elif kind == K_FMUL:
                a = regs[i0] if m0 == 0 else (
                    consts[i0] if m0 == 1 else plist[i0])
                b = regs[i1] if m1 == 0 else (
                    consts[i1] if m1 == 1 else plist[i1])
                regs[dest] = a * b
            elif kind == K_FDIV:
                a = regs[i0] if m0 == 0 else (
                    consts[i0] if m0 == 1 else plist[i0])
                b = regs[i1] if m1 == 0 else (
                    consts[i1] if m1 == 1 else plist[i1])
                if b == 0.0:
                    if aux:
                        regs[dest] = 0.0
                    else:
                        raise EmulationFault("float divide by zero")
                else:
                    regs[dest] = a / b
            elif kind == K_FNEG:
                a = regs[i0] if m0 == 0 else (
                    consts[i0] if m0 == 1 else plist[i0])
                regs[dest] = -a
            elif kind == K_FMOV or kind == K_CVT_IF:
                a = regs[i0] if m0 == 0 else (
                    consts[i0] if m0 == 1 else plist[i0])
                regs[dest] = float(a)
            elif kind == K_CVT_FI:
                a = regs[i0] if m0 == 0 else (
                    consts[i0] if m0 == 1 else plist[i0])
                regs[dest] = _w32(int(a))
            elif kind == K_PREDSET:
                plist[:] = [aux] * len(plist)
            # else: K_NOP — nothing to compute.

            if tracing:
                ap_s(sidx); ap_f(1); ap_a(-1); ap_v(-1)
            ne = nxt[pc]
            if ne is None:
                pc += 1
                continue
            keys, pc = ne
            for k in keys:
                block_counts[k] = block_counts.get(k, 0) + 1
            if pc < 0:
                raise EmulationFault(
                    f"fell off the end of function {name}")
            continue

        if kind < K_STORE:
            # --- loads ------------------------------------------------
            a = regs[i0] if m0 == 0 else (
                consts[i0] if m0 == 1 else plist[i0])
            b = regs[i1] if m1 == 0 else (
                consts[i1] if m1 == 1 else plist[i1])
            addr = a + b
            if kind == K_LOAD:
                regs[dest] = load_word(addr, aux)
            elif kind == K_LOAD_B:
                regs[dest] = load_byte(addr, aux)
            else:
                regs[dest] = load_float(addr, aux)
            if tracing:
                ap_s(sidx); ap_f(1); ap_a(addr); ap_v(-1)
            ne = nxt[pc]
            if ne is None:
                pc += 1
                continue
            keys, pc = ne
            for k in keys:
                block_counts[k] = block_counts.get(k, 0) + 1
            if pc < 0:
                raise EmulationFault(
                    f"fell off the end of function {name}")
            continue

        if kind < K_BRANCH:
            # --- stores -----------------------------------------------
            a = regs[i0] if m0 == 0 else (
                consts[i0] if m0 == 1 else plist[i0])
            b = regs[i1] if m1 == 0 else (
                consts[i1] if m1 == 1 else plist[i1])
            value = regs[i2] if m2 == 0 else (
                consts[i2] if m2 == 1 else plist[i2])
            addr = a + b
            if kind == K_STORE:
                store_word(addr, value)
                sval = value & _U32
            elif kind == K_STORE_B:
                store_byte(addr, value)
                sval = value & 0xFF
            else:
                store_float(addr, value)
                sval = float(value)
            if addr != _SAFE_ADDR:
                out_count += 1
                # NaN folds through _NAN_KEY: hash(nan) is id-based
                key = sval if sval == sval else _NAN_KEY
                signature = ((signature ^ hash((addr, key)))
                             * _SIG_PRIME) & _U64
            if tracing:
                ap_s(sidx); ap_f(1); ap_a(addr)
                ap_v(len(values)); values.append(sval)
            ne = nxt[pc]
            if ne is None:
                pc += 1
                continue
            keys, pc = ne
            for k in keys:
                block_counts[k] = block_counts.get(k, 0) + 1
            if pc < 0:
                raise EmulationFault(
                    f"fell off the end of function {name}")
            continue

        if kind == K_BRANCH:
            a = regs[i0] if m0 == 0 else (
                consts[i0] if m0 == 1 else plist[i0])
            b = regs[i1] if m1 == 0 else (
                consts[i1] if m1 == 1 else plist[i1])
            cmpfn, uid, target, label = aux
            taken = cmpfn(a, b)
            counts = branch_outcomes.get(uid)
            if counts is None:
                counts = [0, 0]
                branch_outcomes[uid] = counts
            counts[1 if taken else 0] += 1
            if tracing:
                ap_s(sidx); ap_f(3 if taken else 1); ap_a(-1); ap_v(-1)
            if taken:
                if target is None:
                    raise EmulationFault(
                        f"{name}: branch to unknown label {label!r}")
                keys, pc = target
                for k in keys:
                    block_counts[k] = block_counts.get(k, 0) + 1
                if pc < 0:
                    raise EmulationFault(
                        f"fell off the end of function {name}")
                continue
            ne = nxt[pc]
            if ne is None:
                pc += 1
                continue
            keys, pc = ne
            for k in keys:
                block_counts[k] = block_counts.get(k, 0) + 1
            if pc < 0:
                raise EmulationFault(
                    f"fell off the end of function {name}")
            continue

        if kind == K_JUMP:
            if tracing:
                ap_s(sidx); ap_f(3); ap_a(-1); ap_v(-1)
            target, label = aux
            if target is None:
                raise EmulationFault(
                    f"{name}: jump to unknown label {label!r}")
            keys, pc = target
            for k in keys:
                block_counts[k] = block_counts.get(k, 0) + 1
            if pc < 0:
                raise EmulationFault(
                    f"fell off the end of function {name}")
            continue

        if kind == K_CALL:
            if tracing:
                ap_s(sidx); ap_f(3); ap_a(-1); ap_v(-1)
            callee_name, argspec = aux
            callee = functions[callee_name]
            args = [regs[i] if m == 0 else (
                consts[i] if m == 1 else plist[i]) for m, i in argspec]
            stack.append((code, nxt, consts, regs, plist, name, pc,
                          dest))
            code = callee.code
            nxt = callee.nxt
            consts = consts_of(callee)
            regs = [0] * callee.nregs
            plist = [0] * callee.npregs
            name = callee.name
            for ridx, v in zip(callee.params, args):
                regs[ridx] = v
            keys, pc = callee.entry
            for k in keys:
                block_counts[k] = block_counts.get(k, 0) + 1
            if pc < 0:
                raise EmulationFault(
                    f"fell off the end of function {name}")
            continue

        # --- K_RET ----------------------------------------------------
        if tracing:
            ap_s(sidx); ap_f(3); ap_a(-1); ap_v(-1)
        if aux:
            value = regs[i0] if m0 == 0 else (
                consts[i0] if m0 == 1 else plist[i0])
        else:
            value = 0
        if not stack:
            trace = None
            if sink is not None:
                if len(sidx_arr):
                    sink(cols)
            elif collect_trace:
                trace = cols
            return (value, steps, suppressed, trace, branch_outcomes,
                    block_counts, signature, out_count)
        code, nxt, consts, regs, plist, name, rpc, rdest = stack.pop()
        if rdest >= 0:
            regs[rdest] = value
        ne = nxt[rpc]
        if ne is None:
            pc = rpc + 1
            continue
        keys, pc = ne
        for k in keys:
            block_counts[k] = block_counts.get(k, 0) + 1
        if pc < 0:
            raise EmulationFault(
                f"fell off the end of function {name}")
        continue
