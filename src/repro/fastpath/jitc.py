"""Closure-specialized emulator — the vector engine's emulate half.

The flat interpreter (:mod:`repro.fastpath.interp`) still pays, per
dynamic instruction, for the 11-tuple unpack, the kind dispatch chain,
the operand-mode tests, and four trace-column appends.  This module
removes all of that with a per-:class:`DecodedProgram` specialization
pass that happens once per run, in Python, with no ``compile()`` or
``exec()``:

* every static instruction becomes a small **closure** with its
  operand modes, constants, register indices, and comparison resolved
  at build time — executing one costs a call plus the op body;
* straight-line stretches of a block become a **run superhandler**
  that extends the trace columns with a precomputed template (one
  C-level ``array.extend`` per column per run instead of one append
  per event) and then calls the bodies in sequence — dynamic facts
  (load/store addresses, taken branches, nullified guards) patch the
  freshly extended tail in place;
* a tiny trampoline (``pc = handlers[pc]()``) runs only at control
  transfers.

Observables are bit-identical to ``run_program_fast``: same wrap
arithmetic, predicate truth tables, store-stream signature, profile
dicts (including insertion order), memory digest, and fault messages.
The step budget is enforced at control transfers, so a run may execute
at most one straight-line stretch past the limit before raising the
same ``StepLimitExceeded`` message; the step *count* reported on
success is exact (every instruction appends exactly one trace event,
so ``steps`` is simply the number of events emitted).

Scope: specialization needs a trace (steps ride on it) and has no
watchdog heartbeat points, so ``run_program_jit`` falls back to
``run_program_fast`` when a watchdog is attached or no trace is
wanted — the fuzz harness therefore always exercises the interpreter,
keeping it a live differential oracle for this module.
"""

from __future__ import annotations

import hashlib
import sys
import time
from array import array
from typing import TYPE_CHECKING, Callable

from repro.emu.interpreter import StepLimitExceeded, _cdiv, _crem, _w32
from repro.emu.memory import (GLOBAL_BASE, SAFE_ADDR, EmulationFault,
                              Memory, layout_globals)
from repro.emu.trace import ExecutionResult
from repro.fastpath.columns import TraceColumns
from repro.fastpath.decode import (
    K_ADD, K_AND, K_AND_NOT, K_BRANCH, K_CALL, K_CMOV, K_CMP, K_CVT_FI,
    K_CVT_IF, K_DIV, K_FADD, K_FDIV, K_FMOV, K_FMUL, K_FNEG, K_FSUB,
    K_JUMP, K_LOAD, K_LOAD_B, K_MOV, K_MUL, K_NEG, K_NOP, K_NOT, K_OR,
    K_OR_NOT, K_PREDDEF, K_PREDSET, K_REM, K_RET, K_SELECT, K_SHL,
    K_SHR, K_STORE, K_STORE_B, K_SUB, K_XOR, M_CONST, M_REG,
    DecodedProgram, decode_program)
from repro.fastpath.interp import DEFAULT_CHUNK_EVENTS, run_program_fast
from repro.ir.function import Program

if TYPE_CHECKING:
    from repro.robustness.watchdog import EmulationWatchdog

_U32 = 0xFFFFFFFF
_U64 = 0xFFFFFFFFFFFFFFFF
_SIG_PRIME = 1099511628211
_SAFE_ADDR = SAFE_ADDR
#: signature stand-in for NaN store values (quiet-NaN bit
#: pattern); int hashes are deterministic where hash(nan)
#: is id-based on 3.10+
_NAN_KEY = 0x7FF8000000000000

#: Maximum instructions per run superhandler; longer stretches are
#: split into chained runs (each with its own trace template).
_MAX_RUN = 16

#: Python recursion headroom: each emulated call costs a few native
#: frames (invoke -> trampoline -> run -> call body).
_RECURSION_LIMIT = 30000

# Trace-state box indices (the box outlives chunk flushes; handlers
# capture the box, never the arrays).
_ES, _EF, _EA, _EV, _VAL, _SX, _FX, _AX, _VX, _FLUSHED = range(10)


def run_program_jit(program: Program,
                    inputs: dict[str, list[int | float] | bytes]
                    | None = None,
                    collect_trace: bool = False,
                    max_steps: int = 50_000_000,
                    watchdog: "EmulationWatchdog | None" = None,
                    sink: Callable[[TraceColumns], None] | None = None,
                    chunk_events: int = DEFAULT_CHUNK_EVENTS,
                    decoded: DecodedProgram | None = None
                    ) -> ExecutionResult:
    """Drop-in replacement for ``run_program_fast``.

    Falls back to the interpreter when a watchdog is attached (the
    specialized handlers have no heartbeat points) or when no trace is
    requested (step accounting rides on the trace columns).
    """
    if watchdog is not None or (not collect_trace and sink is None):
        return run_program_fast(
            program, inputs=inputs, collect_trace=collect_trace,
            max_steps=max_steps, watchdog=watchdog, sink=sink,
            chunk_events=chunk_events, decoded=decoded)
    if decoded is None:
        decoded = decode_program(program)
    memory = Memory()
    layout = layout_globals(program, memory, inputs)
    global_end = max((layout[g.name] + g.byte_size
                      for g in program.globals.values()),
                     default=GLOBAL_BASE)
    started = time.monotonic()
    old_limit = sys.getrecursionlimit()
    if old_limit < _RECURSION_LIMIT:
        sys.setrecursionlimit(_RECURSION_LIMIT)
    try:
        (value, steps, suppressed, trace, branch_outcomes, block_counts,
         signature, out_count) = _execute_jit(
            decoded, memory, layout, collect_trace, max_steps, sink,
            chunk_events)
    finally:
        if old_limit < _RECURSION_LIMIT:
            sys.setrecursionlimit(old_limit)
    wall_time = time.monotonic() - started
    digest = hashlib.sha256(
        bytes(memory.data[GLOBAL_BASE:global_end])).hexdigest()
    return ExecutionResult(
        return_value=value,
        dynamic_count=steps,
        suppressed_count=suppressed,
        trace=trace,
        branch_outcomes=branch_outcomes,
        block_counts=block_counts,
        output_signature=signature,
        output_count=out_count,
        memory_digest=digest,
        wall_time_seconds=wall_time,
        heartbeats=[],
    )


def _execute_jit(decoded, memory, layout, collect_trace, max_steps,
                 sink, chunk_events):
    functions = decoded.functions

    cols = TraceColumns()
    tr = [cols.sidx.extend, cols.flags.extend, cols.addr.extend,
          cols.vidx.extend, cols.values, cols.sidx, cols.flags,
          cols.addr, cols.vidx, 0]
    cbox = [cols]
    chunk = chunk_events if sink is not None else (1 << 62)

    def _flush():
        old = cbox[0]
        tr[_FLUSHED] += len(old.sidx)
        sink(old)
        c = cbox[0] = TraceColumns()
        tr[_ES] = c.sidx.extend
        tr[_EF] = c.flags.extend
        tr[_EA] = c.addr.extend
        tr[_EV] = c.vidx.extend
        tr[_VAL] = c.values
        tr[_SX] = c.sidx
        tr[_FX] = c.flags
        tr[_AX] = c.addr
        tr[_VX] = c.vidx

    load_word = memory.load_word
    load_byte = memory.load_byte
    load_float = memory.load_float
    store_word = memory.store_word
    store_byte = memory.store_byte
    store_float = memory.store_float

    sup = [0]            # suppressed counter
    so = [0, 0]          # output signature, output count
    rb = [0]             # return-value box (RET -> invoke)
    branch_outcomes: dict[int, list[int]] = {}
    block_counts: dict[tuple[str, str], int] = {}
    bo = branch_outcomes
    bc = block_counts
    INV: dict[str, Callable] = {}

    def build_function(dfn):
        code = dfn.code
        nxt = dfn.nxt
        name = dfn.name
        consts = [spec[1] if spec[0] == "imm"
                  else layout[spec[1]] + spec[2]
                  for spec in dfn.consts_spec]
        regs: list = [0] * dfn.nregs
        plist: list = [0] * dfn.npregs
        zr = [0] * dfn.nregs
        zp = [0] * dfn.npregs
        pred_fill = ([0] * dfn.npregs, [1] * dfn.npregs)
        ncode = len(code)
        H: list = [None] * (ncode + 1)

        def src(m, i):
            # Operand accessor closure; constant operands collapse to
            # their resolved value.
            if m == M_REG:
                return lambda: regs[i]
            if m == M_CONST:
                v = consts[i]
                return lambda: v
            return lambda: plist[i]

        def steps_now():
            return tr[_FLUSHED] + len(tr[_SX])

        def limit_exceeded():
            raise StepLimitExceeded(
                f"exceeded {max_steps} steps in {name}")

        def count_keys(keys):
            for k in keys:
                bc[k] = bc.get(k, 0) + 1

        def fell_off():
            raise EmulationFault(
                f"fell off the end of function {name}")

        # -- body closures (no return value; trace entry pre-extended
        #    by the run, K = offset from the current column tail) -----

        def mk_body(t, K):
            (kind, sidx, d, m0, i0, m1, i1, m2, i2, guard, aux) = t
            h = None
            if kind < K_LOAD:
                h = mk_pure(kind, d, m0, i0, m1, i1, m2, i2, aux)
            elif kind < K_STORE:
                ga = src(m0, i0)
                gb = src(m1, i1)
                ld = (load_word if kind == K_LOAD
                      else load_byte if kind == K_LOAD_B else load_float)
                spec = aux

                def h():
                    addr = ga() + gb()
                    regs[d] = ld(addr, spec)
                    tr[_AX][-K] = addr
            elif kind < K_BRANCH:
                ga = src(m0, i0)
                gb = src(m1, i1)
                gv = src(m2, i2)
                if kind == K_STORE:
                    def h():
                        addr = ga() + gb()
                        value = gv()
                        store_word(addr, value)
                        sval = value & _U32
                        if addr != _SAFE_ADDR:
                            so[1] += 1
                            so[0] = ((so[0] ^ hash((addr, sval)))
                                     * _SIG_PRIME) & _U64
                        tr[_AX][-K] = addr
                        tr[_VX][-K] = len(tr[_VAL])
                        tr[_VAL].append(sval)
                elif kind == K_STORE_B:
                    def h():
                        addr = ga() + gb()
                        value = gv()
                        store_byte(addr, value)
                        sval = value & 0xFF
                        if addr != _SAFE_ADDR:
                            so[1] += 1
                            so[0] = ((so[0] ^ hash((addr, sval)))
                                     * _SIG_PRIME) & _U64
                        tr[_AX][-K] = addr
                        tr[_VX][-K] = len(tr[_VAL])
                        tr[_VAL].append(sval)
                else:
                    def h():
                        addr = ga() + gb()
                        value = gv()
                        store_float(addr, value)
                        sval = float(value)
                        if addr != _SAFE_ADDR:
                            so[1] += 1
                            # NaN folds through _NAN_KEY: hash(nan)
                            # is id-based on 3.10+
                            key = sval if sval == sval else _NAN_KEY
                            so[0] = ((so[0] ^ hash((addr, key)))
                                     * _SIG_PRIME) & _U64
                        tr[_AX][-K] = addr
                        tr[_VX][-K] = len(tr[_VAL])
                        tr[_VAL].append(sval)
            else:  # pragma: no cover - control ops end runs
                raise AssertionError("control op in run body")

            if guard >= 0 and h is not None:
                bh = h
                g = guard

                def h():
                    if plist[g]:
                        bh()
                    else:
                        sup[0] += 1
                        tr[_FX][-K] = 0
            elif guard >= 0:
                g = guard

                def h():
                    if not plist[g]:
                        sup[0] += 1
                        tr[_FX][-K] = 0
            return h

        def mk_pure(kind, d, m0, i0, m1, i1, m2, i2, aux):
            # Specialized bodies for the hot integer ops when both
            # operands are register/constant (commutative ops swap a
            # leading constant); everything else goes through operand
            # accessor closures.
            rr = m0 == M_REG and m1 == M_REG
            rc = m0 == M_REG and m1 == M_CONST
            cr = m0 == M_CONST and m1 == M_REG
            if kind == K_ADD or (kind == K_MUL and (rr or rc or cr)):
                mul = kind == K_MUL
                if cr:  # commutative: fold to reg-const
                    m0, i0, m1, i1 = m1, i1, m0, i0
                    rc, cr = True, False
                if rr:
                    if mul:
                        def h():
                            regs[d] = (regs[i0] * regs[i1]
                                       + 0x80000000 & _U32) - 0x80000000
                    else:
                        def h():
                            regs[d] = (regs[i0] + regs[i1]
                                       + 0x80000000 & _U32) - 0x80000000
                    return h
                if rc:
                    cv = consts[i1]
                    if mul:
                        def h():
                            regs[d] = (regs[i0] * cv
                                       + 0x80000000 & _U32) - 0x80000000
                    else:
                        def h():
                            regs[d] = (regs[i0] + cv
                                       + 0x80000000 & _U32) - 0x80000000
                    return h
                ga = src(m0, i0)
                gb = src(m1, i1)
                if mul:
                    def h():
                        regs[d] = (ga() * gb()
                                   + 0x80000000 & _U32) - 0x80000000
                else:
                    def h():
                        regs[d] = (ga() + gb()
                                   + 0x80000000 & _U32) - 0x80000000
                return h
            if kind == K_SUB:
                if rr:
                    def h():
                        regs[d] = (regs[i0] - regs[i1]
                                   + 0x80000000 & _U32) - 0x80000000
                    return h
                if rc:
                    cv = consts[i1]

                    def h():
                        regs[d] = (regs[i0] - cv
                                   + 0x80000000 & _U32) - 0x80000000
                    return h
                ga = src(m0, i0)
                gb = src(m1, i1)

                def h():
                    regs[d] = (ga() - gb()
                               + 0x80000000 & _U32) - 0x80000000
                return h
            if kind == K_MOV:
                if m0 == M_REG:
                    def h():
                        regs[d] = regs[i0]
                    return h
                if m0 == M_CONST:
                    cv = consts[i0]

                    def h():
                        regs[d] = cv
                    return h

                def h():
                    regs[d] = plist[i0]
                return h
            if kind == K_CMP:
                cmpfn = aux
                if rr:
                    def h():
                        regs[d] = 1 if cmpfn(regs[i0], regs[i1]) else 0
                    return h
                if rc:
                    cv = consts[i1]

                    def h():
                        regs[d] = 1 if cmpfn(regs[i0], cv) else 0
                    return h
                ga = src(m0, i0)
                gb = src(m1, i1)

                def h():
                    regs[d] = 1 if cmpfn(ga(), gb()) else 0
                return h
            if kind in (K_AND, K_OR, K_XOR):
                ga = src(m0, i0)
                gb = src(m1, i1)
                if kind == K_AND:
                    def h():
                        regs[d] = ga() & gb()
                elif kind == K_OR:
                    def h():
                        regs[d] = ga() | gb()
                else:
                    def h():
                        regs[d] = ga() ^ gb()
                return h
            if kind == K_PREDDEF:
                cmpfn, p_in_idx, pdspec = aux
                ga = src(m0, i0)
                gb = src(m1, i1)
                if len(pdspec) == 1:
                    pidx, table = pdspec[0]
                    if p_in_idx < 0:
                        def h():
                            nv = table[3 if cmpfn(ga(), gb()) else 2]
                            if nv is not None:
                                plist[pidx] = nv
                    else:
                        def h():
                            idx = 2 if plist[p_in_idx] else 0
                            if cmpfn(ga(), gb()):
                                idx += 1
                            nv = table[idx]
                            if nv is not None:
                                plist[pidx] = nv
                    return h

                def h():
                    idx = 2 if p_in_idx < 0 or plist[p_in_idx] else 0
                    if cmpfn(ga(), gb()):
                        idx += 1
                    for pidx, table in pdspec:
                        nv = table[idx]
                        if nv is not None:
                            plist[pidx] = nv
                return h
            if kind == K_CMOV:
                ga = src(m0, i0)
                gb = src(m1, i1)
                pol = aux

                def h():
                    if (gb() != 0) == pol:
                        regs[d] = ga()
                return h
            if kind == K_SELECT:
                ga = src(m0, i0)
                gb = src(m1, i1)
                gc = src(m2, i2)

                def h():
                    regs[d] = ga() if gc() != 0 else gb()
                return h
            if kind == K_SHL:
                ga = src(m0, i0)
                gb = src(m1, i1)

                def h():
                    regs[d] = ((ga() << (gb() & 31))
                               + 0x80000000 & _U32) - 0x80000000
                return h
            if kind == K_SHR:
                ga = src(m0, i0)
                gb = src(m1, i1)

                def h():
                    regs[d] = ga() >> (gb() & 31)
                return h
            if kind == K_NOT:
                ga = src(m0, i0)

                def h():
                    regs[d] = (~ga() + 0x80000000 & _U32) - 0x80000000
                return h
            if kind == K_NEG:
                ga = src(m0, i0)

                def h():
                    regs[d] = (-ga() + 0x80000000 & _U32) - 0x80000000
                return h
            if kind == K_MUL:
                ga = src(m0, i0)
                gb = src(m1, i1)

                def h():
                    regs[d] = (ga() * gb()
                               + 0x80000000 & _U32) - 0x80000000
                return h
            if kind == K_AND_NOT:
                ga = src(m0, i0)
                gb = src(m1, i1)

                def h():
                    regs[d] = 1 if (ga() != 0 and gb() == 0) else 0
                return h
            if kind == K_OR_NOT:
                ga = src(m0, i0)
                gb = src(m1, i1)

                def h():
                    regs[d] = 1 if (ga() != 0 or gb() == 0) else 0
                return h
            if kind in (K_DIV, K_REM):
                ga = src(m0, i0)
                gb = src(m1, i1)
                spec = aux
                div = kind == K_DIV

                def h():
                    a = ga()
                    b = gb()
                    if spec and b == 0:
                        regs[d] = 0
                    elif div:
                        regs[d] = _w32(_cdiv(a, b))
                    else:
                        regs[d] = _w32(_crem(a, b))
                return h
            if kind in (K_FADD, K_FSUB, K_FMUL):
                ga = src(m0, i0)
                gb = src(m1, i1)
                if kind == K_FADD:
                    def h():
                        regs[d] = ga() + gb()
                elif kind == K_FSUB:
                    def h():
                        regs[d] = ga() - gb()
                else:
                    def h():
                        regs[d] = ga() * gb()
                return h
            if kind == K_FDIV:
                ga = src(m0, i0)
                gb = src(m1, i1)
                spec = aux

                def h():
                    b = gb()
                    if b == 0.0:
                        if spec:
                            regs[d] = 0.0
                        else:
                            raise EmulationFault("float divide by zero")
                    else:
                        regs[d] = ga() / b
                return h
            if kind == K_FNEG:
                ga = src(m0, i0)

                def h():
                    regs[d] = -ga()
                return h
            if kind in (K_FMOV, K_CVT_IF):
                ga = src(m0, i0)

                def h():
                    regs[d] = float(ga())
                return h
            if kind == K_CVT_FI:
                ga = src(m0, i0)

                def h():
                    regs[d] = _w32(int(ga()))
                return h
            if kind == K_PREDSET:
                fill = pred_fill[aux]

                def h():
                    plist[:] = fill
                return h
            if kind == K_NOP:
                return None
            raise EmulationFault(f"unhandled micro-op kind {kind}")

        # -- control closures (return the next run-start pc) ----------

        def succ_of(pc):
            """Fall-through successor: (profile_keys, landing_pc)."""
            ne = nxt[pc]
            if ne is None:
                return (), pc + 1
            return ne

        def mk_branch(t, pc):
            (kind, sidx, d, m0, i0, m1, i1, m2, i2, guard, aux) = t
            cmpfn, uid, target, label = aux
            ga = src(m0, i0)
            gb = src(m1, i1)
            fkeys, fpc = succ_of(pc)

            def h():
                if tr[_FLUSHED] + len(tr[_SX]) > max_steps:
                    limit_exceeded()
                taken = cmpfn(ga(), gb())
                c = bo.get(uid)
                if c is None:
                    c = bo[uid] = [0, 0]
                if taken:
                    c[1] += 1
                    tr[_FX][-1] = 3
                    if target is None:
                        raise EmulationFault(
                            f"{name}: branch to unknown label {label!r}")
                    tkeys, tpc = target
                    count_keys(tkeys)
                    if tpc < 0:
                        fell_off()
                    return tpc
                c[0] += 1
                if fkeys:
                    count_keys(fkeys)
                if fpc < 0:
                    fell_off()
                return fpc

            if guard < 0:
                return h
            bh = h
            g = guard

            def h():
                if plist[g]:
                    return bh()
                sup[0] += 1
                tr[_FX][-1] = 0
                if fkeys:
                    count_keys(fkeys)
                if fpc < 0:
                    fell_off()
                return fpc
            return h

        def mk_jump(t, pc):
            guard = t[9]
            target, label = t[10]

            def h():
                if tr[_FLUSHED] + len(tr[_SX]) > max_steps:
                    limit_exceeded()
                if target is None:
                    raise EmulationFault(
                        f"{name}: jump to unknown label {label!r}")
                tkeys, tpc = target
                count_keys(tkeys)
                if tpc < 0:
                    fell_off()
                return tpc

            if guard < 0:
                return h
            bh = h
            g = guard
            fkeys, fpc = succ_of(pc)

            def h():
                if plist[g]:
                    return bh()
                sup[0] += 1
                tr[_FX][-1] = 0
                if fkeys:
                    count_keys(fkeys)
                if fpc < 0:
                    fell_off()
                return fpc
            return h

        def mk_call(t, pc):
            # Calls end runs: the callee's trace events must land
            # after the call's own event and before any later caller
            # event, so nothing may be pre-extended past the call.
            (kind, sidx, d, m0, i0, m1, i1, m2, i2, guard, aux) = t
            cname, argspec = aux
            gargs = tuple(src(m, i) for m, i in argspec)
            fkeys, fpc = succ_of(pc)

            def h():
                if tr[_FLUSHED] + len(tr[_SX]) > max_steps:
                    limit_exceeded()
                rv = INV[cname]([g() for g in gargs])
                if d >= 0:
                    regs[d] = rv
                if fkeys:
                    count_keys(fkeys)
                if fpc < 0:
                    fell_off()
                return fpc

            if guard < 0:
                return h
            bh = h
            g = guard

            def h():
                if plist[g]:
                    return bh()
                sup[0] += 1
                tr[_FX][-1] = 0
                if fkeys:
                    count_keys(fkeys)
                if fpc < 0:
                    fell_off()
                return fpc
            return h

        def mk_ret(t, pc):
            (kind, sidx, d, m0, i0, m1, i1, m2, i2, guard, aux) = t
            if aux:
                ga = src(m0, i0)

                def h():
                    rb[0] = ga()
                    return -1
            else:
                def h():
                    rb[0] = 0
                    return -1

            if guard < 0:
                return h
            bh = h
            g = guard
            fkeys, fpc = succ_of(pc)

            def h():
                if plist[g]:
                    return bh()
                sup[0] += 1
                tr[_FX][-1] = 0
                if fkeys:
                    count_keys(fkeys)
                if fpc < 0:
                    fell_off()
                return fpc
            return h

        # -- run superhandlers ----------------------------------------

        def mk_run(run_pcs, hc, fall):
            n = len(run_pcs)
            ts = array("i", [code[p][1] for p in run_pcs])
            tf = array("B", [
                3 if code[p][0] in (K_JUMP, K_CALL, K_RET) else 1
                for p in run_pcs])
            ta = array("q", [-1] * n)
            tv = array("i", [-1] * n)
            bodies = []
            for off, p in enumerate(run_pcs):
                t = code[p]
                if t[0] in (K_BRANCH, K_JUMP, K_CALL, K_RET):
                    continue  # trailing control runs via hc
                b = mk_body(t, n - off)
                if b is not None:
                    bodies.append(b)
            bodies = tuple(bodies)
            if hc is not None:
                def h():
                    if len(tr[_SX]) >= chunk:
                        _flush()
                    tr[_ES](ts)
                    tr[_EF](tf)
                    tr[_EA](ta)
                    tr[_EV](tv)
                    for f in bodies:
                        f()
                    return hc()
                return h
            fkeys, fpc = fall
            if fpc < 0:
                def h():
                    if len(tr[_SX]) >= chunk:
                        _flush()
                    tr[_ES](ts)
                    tr[_EF](tf)
                    tr[_EA](ta)
                    tr[_EV](tv)
                    for f in bodies:
                        f()
                    count_keys(fkeys)
                    fell_off()
                return h
            if fkeys:
                def h():
                    if len(tr[_SX]) >= chunk:
                        _flush()
                    tr[_ES](ts)
                    tr[_EF](tf)
                    tr[_EA](ta)
                    tr[_EV](tv)
                    for f in bodies:
                        f()
                    count_keys(fkeys)
                    return fpc
                return h

            def h():
                if len(tr[_SX]) >= chunk:
                    _flush()
                tr[_ES](ts)
                tr[_EF](tf)
                tr[_EA](ta)
                tr[_EV](tv)
                for f in bodies:
                    f()
                return fpc
            return h

        # Partition each block into runs.  Every control-flow landing
        # is a block start (decode resolves chains to non-empty
        # blocks), and every pc after a run break starts a new run, so
        # all dispatched pcs have a handler.
        run_pcs: list[int] = []
        for pc, t in enumerate(code):
            run_pcs.append(pc)
            kind = t[0]
            is_ctl = kind in (K_BRANCH, K_JUMP, K_CALL, K_RET)
            block_end = nxt[pc] is not None
            if is_ctl or block_end or len(run_pcs) >= _MAX_RUN:
                start = run_pcs[0]
                if is_ctl:
                    hc = (mk_branch(t, pc) if kind == K_BRANCH
                          else mk_jump(t, pc) if kind == K_JUMP
                          else mk_call(t, pc) if kind == K_CALL
                          else mk_ret(t, pc))
                    H[start] = mk_run(run_pcs, hc, None)
                else:
                    H[start] = mk_run(run_pcs, None, succ_of(pc))
                run_pcs = []

        entry_keys, entry_pc = dfn.entry
        params = dfn.params

        def invoke(args):
            saved_r = regs[:]
            saved_p = plist[:]
            regs[:] = zr
            plist[:] = zp
            for ridx, v in zip(params, args):
                regs[ridx] = v
            count_keys(entry_keys)
            if entry_pc < 0:
                fell_off()
            pc = entry_pc
            while pc >= 0:
                pc = H[pc]()
            regs[:] = saved_r
            plist[:] = saved_p
            return rb[0]

        return invoke

    for fname, dfn in functions.items():
        INV[fname] = build_function(dfn)

    value = INV[decoded.entry](())

    steps = tr[_FLUSHED] + len(tr[_SX])
    trace = None
    if sink is not None:
        if len(tr[_SX]):
            sink(cbox[0])
    elif collect_trace:
        trace = cbox[0]
    return (value, steps, sup[0], trace, branch_outcomes, block_counts,
            so[0], so[1])
