"""Delta-debugging reducer: shrink a witness to a near-minimal repro.

A raw fuzz witness is typically dozens of lines of which only a handful
matter.  The reducer works on *source lines* (the generator emits one
statement per line, with every ``{`` at end-of-line and every region
closed by a bare ``}`` line, precisely so reduction can operate
syntactically):

1. **Region pass** — try deleting whole balanced ``{ … }`` regions
   (an ``if``/``else`` chain or loop and everything inside it), largest
   first.  One successful deletion here removes more than many line
   probes, so this runs before ddmin.
2. **Line ddmin** — classic ddmin with granularity doubling over the
   brace-free lines (removing a brace line alone would unbalance the
   program; the region pass already handles those).

Both passes repeat until a round makes no progress.  The caller
supplies the *interestingness* predicate — typically "does this
candidate still produce the same triage signature?" — which implicitly
rejects syntactically broken candidates too (they produce a
``frontend-reject`` signature instead).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable


@dataclass
class ReductionStats:
    """Bookkeeping for one reduction run."""

    original_lines: int
    reduced_lines: int
    tests_run: int = 0
    rounds: int = 0

    @property
    def shrink_ratio(self) -> float:
        """Fraction of lines removed (0.0 = no shrink)."""
        if self.original_lines == 0:
            return 0.0
        return 1.0 - self.reduced_lines / self.original_lines

    def to_dict(self) -> dict:
        return {"original_lines": self.original_lines,
                "reduced_lines": self.reduced_lines,
                "tests_run": self.tests_run, "rounds": self.rounds,
                "shrink_ratio": round(self.shrink_ratio, 4)}


def _brace_regions(lines: list[str]) -> list[tuple[int, int]]:
    """Balanced ``{ … }`` regions as inclusive (start, end) line spans.

    A region starts at a line ending in ``{`` and ends where the depth
    returns to the opener's level on a bare ``}`` line — so an entire
    ``if/else`` chain (whose branches are stitched by ``} else {``
    lines at the same depth) is one region.  Largest regions first.
    """
    opens: list[tuple[int, int]] = []  # (depth-before-line, start)
    regions: list[tuple[int, int]] = []
    depth = 0
    for i, line in enumerate(lines):
        stripped = line.strip()
        next_depth = depth + stripped.count("{") - stripped.count("}")
        if stripped.endswith("{") and not stripped.startswith("}"):
            opens.append((depth, i))
        while opens and next_depth <= opens[-1][0]:
            _, start = opens.pop()
            regions.append((start, i))
        depth = next_depth
    regions.sort(key=lambda span: span[0] - span[1])  # largest first
    return regions


def _simple_line_indices(lines: list[str]) -> list[int]:
    """Indices safe to delete individually: no braces, not a return."""
    out = []
    for i, line in enumerate(lines):
        stripped = line.strip()
        if not stripped or "{" in stripped or "}" in stripped:
            continue
        if stripped.startswith("return"):
            continue
        out.append(i)
    return out


def _without(lines: list[str], drop: set[int]) -> list[str]:
    return [line for i, line in enumerate(lines) if i not in drop]


def _region_pass(lines: list[str],
                 interesting: Callable[[str], bool],
                 stats: ReductionStats) -> tuple[list[str], bool]:
    progress = False
    while True:
        for start, end in _brace_regions(lines):
            trial = _without(lines, set(range(start, end + 1)))
            stats.tests_run += 1
            if interesting("\n".join(trial) + "\n"):
                lines = trial
                progress = True
                break
        else:
            return lines, progress


def _ddmin_pass(lines: list[str],
                interesting: Callable[[str], bool],
                stats: ReductionStats) -> tuple[list[str], bool]:
    progress = False
    granularity = 2
    while True:
        removable = _simple_line_indices(lines)
        if not removable:
            return lines, progress
        chunk_size = max(1, -(-len(removable) // granularity))
        removed = False
        for at in range(0, len(removable), chunk_size):
            chunk = set(removable[at:at + chunk_size])
            trial = _without(lines, chunk)
            stats.tests_run += 1
            if interesting("\n".join(trial) + "\n"):
                lines = trial
                removed = progress = True
                granularity = max(2, granularity - 1)
                break
        if not removed:
            if chunk_size == 1:
                return lines, progress
            granularity = min(len(removable), granularity * 2)


def reduce_source(source: str,
                  interesting: Callable[[str], bool],
                  *, max_rounds: int = 8
                  ) -> tuple[str, ReductionStats]:
    """Shrink ``source`` while ``interesting`` stays true.

    ``interesting`` receives a candidate source and returns True when
    the candidate still reproduces the finding (same triage signature).
    Raises ``ValueError`` if the original itself is not interesting —
    that means the finding is flaky and must not be reduced against.
    """
    lines = source.splitlines()
    stats = ReductionStats(original_lines=len(lines),
                           reduced_lines=len(lines))
    stats.tests_run += 1
    if not interesting("\n".join(lines) + "\n"):
        raise ValueError("witness is not reproducible; refusing to "
                         "reduce against a flaky predicate")
    for _ in range(max_rounds):
        stats.rounds += 1
        lines, shrunk_regions = _region_pass(lines, interesting, stats)
        lines, shrunk_lines = _ddmin_pass(lines, interesting, stats)
        if not (shrunk_regions or shrunk_lines):
            break
    stats.reduced_lines = len(lines)
    return "\n".join(lines) + "\n", stats
