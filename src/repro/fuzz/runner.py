"""Campaign orchestration: generate → execute → triage → reduce → save.

A campaign of ``budget`` cases is split into fixed-size chunks, each a
:class:`~repro.engine.scheduler.Job` executed by the engine's parallel
pool (``--jobs``), so fuzzing shares the scheduler's crash quarantine
and retry machinery with the rest of the pipeline.  Determinism is by
construction, not by scheduling: case ``i`` of master seed ``S`` is the
same program regardless of chunking or worker count, and reports are
re-sorted into case order before triage, so two campaigns with the same
``(seed, budget)`` are identical case-for-case at any ``--jobs``.

Findings are deduped by triage signature; the first witness of each
signature is delta-debug-reduced in the parent process and written to
the corpus as a ``fuzz:<case-id>`` entry carrying the signature.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.engine.metrics import PipelineMetrics
from repro.engine.scheduler import Job, execute_jobs
from repro.fuzz.corpus import CorpusEntry, save_entry
from repro.fuzz.executor import CaseReport, ExecutorConfig, run_case
from repro.fuzz.generator import generate_case
from repro.fuzz.reduce import ReductionStats, reduce_source
from repro.fuzz.triage import CrashSignature, TriageBucket, dedupe

#: cases per scheduler job — large enough to amortize worker dispatch,
#: small enough that --jobs 4 balances even a 24-case smoke campaign
CHUNK_SIZE = 4


def shard_ranges(total: int, size: int) -> list[tuple[int, int]]:
    """Deterministic ``(start, count)`` partition of ``total`` items.

    The ``(seed, index)`` work-partitioning template: item ``i`` lands
    in the same shard at any worker count, so fuzz chunking and the
    cluster coordinator's campaign sharding
    (:mod:`repro.service.cluster`) both derive identical work sets in
    every process from ``(identity, index)`` alone.
    """
    size = max(1, int(size))
    return [(start, min(size, total - start))
            for start in range(0, max(0, total), size)]


@dataclass(frozen=True)
class FuzzChunkSpec:
    """Picklable description of one chunk of a campaign."""

    master_seed: int
    start_index: int
    count: int
    config: ExecutorConfig


def fuzz_chunk(spec: FuzzChunkSpec) -> list[dict]:
    """Scheduler worker: run cases ``start..start+count`` of a campaign.

    Module-level and dict-in/dict-out so the process pool can pickle
    it.  Each case is generated inside the worker from ``(master_seed,
    index)`` — chunks carry no program text across the pool boundary.
    """
    reports = []
    for index in range(spec.start_index, spec.start_index + spec.count):
        case = generate_case(spec.master_seed, index)
        reports.append(run_case(case, spec.config).to_dict())
    return reports


@dataclass
class CampaignResult:
    """Everything one ``repro fuzz run`` produced."""

    master_seed: int
    budget: int
    reports: list[CaseReport]
    buckets: dict[str, TriageBucket]
    #: signature key -> (reduced source, reduction stats)
    reductions: dict[str, tuple[str, ReductionStats]] = \
        field(default_factory=dict)
    saved_entries: list[str] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def case_count(self) -> int:
        return len(self.reports)

    @property
    def finding_count(self) -> int:
        return sum(1 for r in self.reports if r.is_finding)

    @property
    def unique_findings(self) -> int:
        return len(self.buckets)

    @property
    def cases_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.case_count / self.wall_seconds


def _reduce_finding(witness_case, signature: CrashSignature,
                    config: ExecutorConfig
                    ) -> tuple[str, ReductionStats]:
    """Shrink a witness while it keeps producing ``signature``."""

    def interesting(candidate: str) -> bool:
        from repro.fuzz.generator import FuzzCase
        probe = FuzzCase(case_id=witness_case.case_id,
                         seed=witness_case.seed,
                         profile=witness_case.profile,
                         source=candidate, inputs=witness_case.inputs)
        report = run_case(probe, config)
        return (report.is_finding
                and report.signature is not None
                and report.signature.get("key") == signature.key)

    return reduce_source(witness_case.source, interesting)


def run_campaign(master_seed: int, budget: int, *, jobs: int = 1,
                 config: ExecutorConfig | None = None,
                 corpus_dir: Path | str | None = None,
                 save_findings: bool = True,
                 reduce_findings: bool = True,
                 metrics: PipelineMetrics | None = None,
                 progress=None) -> CampaignResult:
    """Run ``budget`` differential cases under ``master_seed``.

    Findings are deduped by signature; the first witness per signature
    is reduced (in-process) and saved to the corpus with
    ``expect: "finding"`` provenance so the bug can be fixed against a
    minimal reproducer.  ``progress`` is an optional callable receiving
    one completed chunk's report count at a time.
    """
    if config is None:
        config = ExecutorConfig()
    start = time.perf_counter()

    scheduled = []
    for chunk_start, count in shard_ranges(budget, CHUNK_SIZE):
        spec = FuzzChunkSpec(master_seed=master_seed,
                             start_index=chunk_start, count=count,
                             config=config)
        scheduled.append(Job(
            job_id=f"fuzz-{master_seed:x}-{chunk_start:05d}",
            fn=fuzz_chunk, args=(spec,),
            workload=f"fuzz-chunk-{chunk_start:05d}", stage="fuzz"))

    def on_complete(job: Job, result) -> None:
        if progress is not None:
            progress(len(result))

    outcome = execute_jobs(scheduled, max_workers=jobs,
                           metrics=metrics, on_complete=on_complete)
    reports = [CaseReport.from_dict(d)
               for job in scheduled
               for d in outcome.results.get(job.job_id, [])]
    # A crashed chunk loses its cases; surface the gap as a synthetic
    # finding rather than silently under-reporting the budget.
    for failure in outcome.failures:
        reports.append(CaseReport(
            case_id=failure.job_id, seed=master_seed,
            profile="chunk", verdict="finding",
            signature=CrashSignature(
                "chunk-crash", failure.error_type).to_dict(),
            message=failure.message))
    reports.sort(key=lambda r: r.case_id)

    buckets = dedupe(r for r in reports if r.is_finding)
    result = CampaignResult(master_seed=master_seed, budget=budget,
                            reports=reports, buckets=buckets)

    for key, bucket in buckets.items():
        witness_id = bucket.case_ids[0]
        witness = _case_by_id(master_seed, budget, witness_id)
        if witness is None:
            continue  # synthetic chunk-crash entries have no source
        source, stats = (witness.source,
                         ReductionStats(witness.line_count,
                                        witness.line_count))
        if reduce_findings:
            try:
                source, stats = _reduce_finding(witness,
                                                bucket.signature,
                                                config)
            except ValueError:
                pass  # flaky witness: keep the unreduced source
        result.reductions[key] = (source, stats)
        if save_findings:
            entry = CorpusEntry(
                entry_id=f"finding-{key}",
                source=source, inputs=witness.inputs,
                expect="finding",
                provenance=f"fuzz:{witness.case_id}",
                signature=bucket.signature.to_dict(),
                notes=(f"{bucket.count} witness(es) in campaign "
                       f"seed={master_seed:#x} budget={budget}"))
            save_entry(entry, corpus_dir)
            result.saved_entries.append(entry.entry_id)

    result.wall_seconds = time.perf_counter() - start
    if metrics is not None:
        metrics.record_fuzz(cases=result.case_count,
                            findings=result.finding_count,
                            unique_findings=result.unique_findings,
                            seconds=result.wall_seconds)
    return result


def _case_by_id(master_seed: int, budget: int, case_id: str):
    """Regenerate the campaign case with ``case_id`` (None if absent)."""
    prefix = f"case-{master_seed:x}-"
    if not case_id.startswith(prefix):
        return None
    try:
        index = int(case_id[len(prefix):])
    except ValueError:
        return None
    if not 0 <= index < budget:
        return None
    return generate_case(master_seed, index)
