"""Differential fuzzing harness for the predication toolchain.

The paper's comparison is only meaningful if SUPERBLOCK, CMOV and
FULLPRED compile every program to the *same function* — and predicated
IR transformations (if-conversion, promotion, OR-tree reduction, cmov
lowering) are exactly where semantics bugs hide.  This package
systematically hunts for them:

* :mod:`repro.fuzz.generator` — grammar-based MiniC program generator
  with knob profiles that stress hyperblock formation, predicate
  promotion, OR-tree reduction and cmov lowering;
* :mod:`repro.fuzz.executor` — differential executor: every case is
  compiled under all three models and cross-checked over return value,
  store stream and memory digest, across the legacy, fastpath and
  streaming engines, under the emulation watchdog;
* :mod:`repro.fuzz.triage` — normalized crash signatures (exception
  type + stable frame fingerprint, or divergence kind + first divergent
  store) and finding deduplication;
* :mod:`repro.fuzz.reduce` — delta-debugging reducer that shrinks a
  witness program to a near-minimal reproducer;
* :mod:`repro.fuzz.corpus` — durable on-disk regression corpus
  (``corpus/``), seeded from the workload suite and examples;
* :mod:`repro.fuzz.runner` — campaign orchestration over the engine's
  parallel job scheduler (``repro fuzz run --budget N --jobs J``).
"""

from repro.fuzz.corpus import CorpusEntry, list_entries, load_entry, save_entry
from repro.fuzz.executor import CaseReport, ExecutorConfig, execute_source, run_case
from repro.fuzz.generator import (FUZZ_PROFILES, FuzzCase, FuzzKnobs,
                                  generate_case, profile_for_index)
from repro.fuzz.reduce import ReductionStats, reduce_source
from repro.fuzz.runner import CampaignResult, run_campaign
from repro.fuzz.triage import CrashSignature, signature_of

__all__ = [
    "CampaignResult", "CaseReport", "CorpusEntry", "CrashSignature",
    "ExecutorConfig", "FUZZ_PROFILES", "FuzzCase", "FuzzKnobs",
    "execute_source", "generate_case", "list_entries", "load_entry",
    "profile_for_index", "reduce_source", "ReductionStats", "run_campaign",
    "run_case", "save_entry", "signature_of",
]
