"""Crash triage: normalized signatures and finding deduplication.

A fuzzing campaign is only useful if ten thousand witnesses of the same
bug collapse to one finding.  Every failure is normalized to a
:class:`CrashSignature`:

* **crashes** — the exception type plus a *stable frame fingerprint*:
  the deepest traceback frames inside the ``repro`` package, named as
  ``module:function`` (line numbers are deliberately excluded so the
  signature survives unrelated edits);
* **divergences** — the divergent observable kind
  (``return-value`` / ``output-stream`` / ``memory-state`` / the
  fastpath kinds), the model that diverged, and — for store-stream
  divergences — the first divergent store event, which the executor
  attaches after replaying both traces;
* **hangs** — the watchdog/step-limit budget class, without the
  budget-dependent message text.

``signature.key`` is a short stable digest used for corpus entry names
and cross-run dedupe.
"""

from __future__ import annotations

import hashlib
import traceback
from dataclasses import dataclass, field

from repro.emu.memory import SAFE_ADDR, EmulationFault
from repro.ir.function import IRError
from repro.ir.opcodes import OpCategory
from repro.lang.lexer import LexError
from repro.lang.parser import ParseError
from repro.lang.sema import SemaError
from repro.robustness.errors import (CompileError, EmulationTimeout,
                                     ModelDivergenceError,
                                     PassVerificationError,
                                     TraceIntegrityError)

#: number of in-package frames folded into a crash fingerprint
_FINGERPRINT_FRAMES = 3


@dataclass(frozen=True)
class CrashSignature:
    """Normalized identity of one finding."""

    kind: str
    error_type: str
    detail: tuple[str, ...] = ()

    @property
    def key(self) -> str:
        """Short stable digest (corpus entry names, dedupe maps)."""
        text = "\x1f".join((self.kind, self.error_type) + self.detail)
        return hashlib.sha256(text.encode()).hexdigest()[:12]

    def describe(self) -> str:
        parts = [self.kind, self.error_type]
        parts.extend(self.detail)
        return " | ".join(parts)

    def to_dict(self) -> dict:
        return {"kind": self.kind, "error_type": self.error_type,
                "detail": list(self.detail), "key": self.key}

    @classmethod
    def from_dict(cls, data: dict) -> "CrashSignature":
        return cls(kind=data["kind"], error_type=data["error_type"],
                   detail=tuple(data.get("detail", ())))


def frame_fingerprint(exc: BaseException,
                      limit: int = _FINGERPRINT_FRAMES) -> tuple[str, ...]:
    """The deepest ``repro``-package frames of ``exc``'s traceback.

    Formatted as ``module:function`` — no filenames, no line numbers —
    so the fingerprint is stable across checkouts and unrelated edits.
    """
    frames: list[str] = []
    for fs in traceback.extract_tb(exc.__traceback__):
        path = fs.filename.replace("\\", "/")
        if "/repro/" not in path:
            continue
        module = path.rsplit("/", 1)[-1].removesuffix(".py")
        frames.append(f"{module}:{fs.name}")
    return tuple(frames[-limit:])


def signature_of(exc: BaseException) -> CrashSignature:
    """Normalize any toolchain failure into a :class:`CrashSignature`."""
    name = type(exc).__name__
    if isinstance(exc, ModelDivergenceError):
        detail = [exc.kind or "?", exc.model or "?"]
        first = getattr(exc, "first_event", None)
        if first:
            detail.append(str(first))
        return CrashSignature("divergence", name, tuple(detail))
    if isinstance(exc, EmulationTimeout):
        return CrashSignature("hang", name, ("wall-clock",))
    if isinstance(exc, PassVerificationError):
        return CrashSignature("pass-verify", name,
                              (exc.pass_name or "?",)
                              + frame_fingerprint(exc))
    if isinstance(exc, CompileError):
        return CrashSignature("compile-crash", name,
                              (exc.pass_name or "?",)
                              + frame_fingerprint(exc))
    if isinstance(exc, TraceIntegrityError):
        return CrashSignature("trace-integrity", name,
                              frame_fingerprint(exc))
    if isinstance(exc, EmulationFault):
        # Step-limit overruns carry a budget-dependent message; the
        # raise site (in the fingerprint) identifies them stably.
        return CrashSignature("emulation-fault", name,
                              frame_fingerprint(exc))
    if isinstance(exc, (LexError, ParseError, SemaError, IRError)):
        return CrashSignature("frontend-reject", name,
                              frame_fingerprint(exc))
    return CrashSignature("crash", name, frame_fingerprint(exc))


# ----- store-stream divergence localization ---------------------------


def store_stream(events) -> list[tuple[int, int | float]]:
    """The observable store stream of a trace-event list.

    Mirrors the interpreter's output-signature fold: executed stores
    only, ``$safe_addr`` redirects excluded.
    """
    stream: list[tuple[int, int | float]] = []
    for ev in events:
        if ev.executed and ev.inst.cat is OpCategory.STORE \
                and ev.addr != SAFE_ADDR:
            stream.append((ev.addr, ev.value))
    return stream


def first_store_divergence(candidate_events, reference_events
                           ) -> str | None:
    """Locate the first divergent store between two traces.

    Returns e.g. ``"store#3 @0x1a0 7 vs 9"`` or ``"store-count 12 vs
    14"``, or None when the streams agree (the divergence was
    elsewhere: return value or memory digest).
    """
    cand = store_stream(candidate_events)
    ref = store_stream(reference_events)
    for i, (a, b) in enumerate(zip(cand, ref)):
        if a != b:
            return (f"store#{i} @{a[0]:#x} {a[1]!r} vs "
                    f"@{b[0]:#x} {b[1]!r}")
    if len(cand) != len(ref):
        return f"store-count {len(cand)} vs {len(ref)}"
    return None


# ----- dedupe ---------------------------------------------------------


@dataclass
class TriageBucket:
    """All case reports that share one signature."""

    signature: CrashSignature
    case_ids: list[str] = field(default_factory=list)

    @property
    def count(self) -> int:
        return len(self.case_ids)


def dedupe(reports) -> dict[str, TriageBucket]:
    """Group finding reports by signature key (insertion-ordered)."""
    buckets: dict[str, TriageBucket] = {}
    for report in reports:
        if report.signature is None:
            continue
        sig = CrashSignature.from_dict(report.signature) \
            if isinstance(report.signature, dict) else report.signature
        bucket = buckets.get(sig.key)
        if bucket is None:
            bucket = buckets[sig.key] = TriageBucket(signature=sig)
        bucket.case_ids.append(report.case_id)
    return buckets
