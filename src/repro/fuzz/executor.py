"""Differential executor: one fuzz case through all models and engines.

Each case is compiled under SUPERBLOCK, CMOV and FULLPRED.  Every model
is first self-checked across the four execution engines (legacy
object-graph, columnar fastpath, streaming, vector) by
:func:`~repro.robustness.differential.assert_fastpath_equivalent`, then
cross-checked against the SUPERBLOCK reference over return value, store
stream and memory digest by
:func:`~repro.robustness.differential.assert_equivalent` — twelve
executions per case, every one under a fresh wall-clock watchdog so a
looping miscompile becomes a classified ``hang`` finding instead of a
stuck campaign.

Store-stream divergences are localized before they are reported: the
executor replays both legacy traces and attaches the first divergent
store event to the exception, which makes the triage signature
meaningfully finer than "output-stream differs".
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.analysis.profile import Profile
from repro.fuzz.generator import FuzzCase
from repro.fuzz.triage import first_store_divergence, signature_of
from repro.machine.descriptor import MachineDescription
from repro.robustness.differential import (assert_equivalent,
                                           assert_fastpath_equivalent)
from repro.robustness.errors import ModelDivergenceError
from repro.toolchain import Model, compile_for_model, frontend

#: model order: reference first, then the two predicated models
MODEL_ORDER = (Model.SUPERBLOCK, Model.CMOV, Model.FULLPRED)


@dataclass(frozen=True)
class ExecutorConfig:
    """Per-case budgets and the machine cases are simulated on.

    Generated programs are small (loop trips are bounded by the
    generator), so the step budget is far below the toolchain default —
    a case that exceeds it is itself a finding.  Frozen and
    field-picklable so a config can ride inside a scheduler job spec.
    """

    max_steps: int = 400_000
    #: wall seconds per engine run (twelve runs per case)
    wall_budget: float = 10.0
    issue_width: int = 8
    branch_issue_limit: int = 1

    def machine(self) -> MachineDescription:
        return MachineDescription(
            name=f"fuzz-{self.issue_width}-issue",
            issue_width=self.issue_width,
            branch_issue_limit=self.branch_issue_limit)


@dataclass
class CaseReport:
    """Outcome of one differential case — picklable, dict-friendly."""

    case_id: str
    seed: int
    profile: str
    verdict: str  # "ok" | "finding"
    signature: dict | None = None
    message: str = ""
    wall_seconds: float = 0.0

    @property
    def is_finding(self) -> bool:
        return self.verdict == "finding"

    def to_dict(self) -> dict:
        return {"case_id": self.case_id, "seed": self.seed,
                "profile": self.profile, "verdict": self.verdict,
                "signature": self.signature, "message": self.message,
                "wall_seconds": round(self.wall_seconds, 4)}

    @classmethod
    def from_dict(cls, data: dict) -> "CaseReport":
        return cls(case_id=data["case_id"], seed=data["seed"],
                   profile=data["profile"], verdict=data["verdict"],
                   signature=data.get("signature"),
                   message=data.get("message", ""),
                   wall_seconds=data.get("wall_seconds", 0.0))


def execute_source(source: str, inputs: dict | None = None,
                   config: ExecutorConfig | None = None,
                   *, case_id: str = "?") -> None:
    """Run the full differential check on one program; raise on any
    divergence, crash or hang.

    Raises whatever the toolchain raises — callers wanting a classified
    verdict use :func:`run_case`, which folds exceptions into a
    :class:`CaseReport`.
    """
    if config is None:
        config = ExecutorConfig()
    machine = config.machine()
    base = frontend(source)
    profile = Profile.collect(base, inputs=inputs,
                              max_steps=config.max_steps)

    executions: dict[Model, object] = {}
    for model in MODEL_ORDER:
        compiled = compile_for_model(base, model, profile, machine)
        executions[model] = assert_fastpath_equivalent(
            compiled, inputs=inputs, machine=machine,
            max_steps=config.max_steps, workload=case_id,
            wall_budget=config.wall_budget)

    reference = executions[Model.SUPERBLOCK]
    for model in MODEL_ORDER[1:]:
        candidate = executions[model]
        try:
            assert_equivalent(candidate, reference,
                              workload=case_id, model=model.value,
                              reference_model=Model.SUPERBLOCK.value)
        except ModelDivergenceError as exc:
            if exc.kind == "output-stream" and candidate.trace \
                    and reference.trace:
                exc.first_event = first_store_divergence(
                    candidate.trace, reference.trace)
            raise


def run_case(case: FuzzCase, config: ExecutorConfig | None = None
             ) -> CaseReport:
    """Execute one case and classify the outcome.

    Never raises: every toolchain failure becomes a ``finding`` report
    carrying a normalized triage signature, so a campaign survives any
    single bad case.
    """
    start = time.perf_counter()
    try:
        execute_source(case.source, inputs=case.inputs, config=config,
                       case_id=case.case_id)
    except Exception as exc:  # noqa: BLE001 - classified, not swallowed
        return CaseReport(
            case_id=case.case_id, seed=case.seed, profile=case.profile,
            verdict="finding", signature=signature_of(exc).to_dict(),
            message=f"{type(exc).__name__}: {exc}",
            wall_seconds=time.perf_counter() - start)
    return CaseReport(case_id=case.case_id, seed=case.seed,
                      profile=case.profile, verdict="ok",
                      wall_seconds=time.perf_counter() - start)
