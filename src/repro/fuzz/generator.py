"""Grammar-based MiniC program generator.

Every case is a *well-formed, fault-free, terminating* MiniC program:
array indices are masked to the array size, integer divisors are forced
nonzero, shift amounts are masked to the word width, and every loop
carries an explicit bounded counter.  A generated program that crashes
any stage of the toolchain — or whose three compiled models disagree on
any observable — is therefore always a toolchain bug, never source-level
undefined behavior.

Generation is deterministic: a case is a pure function of its 64-bit
seed and its knob profile (via the same cross-version
:class:`~repro.workloads.base.DeterministicRandom` LCG the workload
inputs use), so a campaign with a fixed ``--seed`` replays
case-for-case on any machine and any ``--jobs`` width.

The knob profiles deliberately stress the paper's sharp edges:

* ``deep-nest`` — deeply nested conditionals: hyperblock formation has
  to merge or reject many-level join points;
* ``diamond-ladder`` — else-if ladders of if/else diamonds: the shape
  that grows OR-trees of predicate defines and exercises comparison
  inversion in the cmov lowering;
* ``empty-branches`` — branches with empty (or one-sided) bodies: CFG
  cleanup, branch combining and superblock tails all see degenerate
  regions;
* ``loop-carried`` — flag variables set under one predicate and tested
  by the next iteration (the paper's ``wc`` in-word flag): promotion
  must not break loop-carried predicate dataflow;
* ``cmov-select`` — ternary chains and float selects: the
  full-to-partial conversion lowers these to conditional moves;
* ``wide-flat`` — long straight-line blocks of independent conditionals:
  big hyperblocks, OR-tree height reduction, scheduler pressure;
* ``call-mix`` — helper calls inside predicated regions: speculation
  and side exits across call boundaries.

Statements are emitted one per line with braces on their own lines, so
the delta-debugging reducer (:mod:`repro.fuzz.reduce`) can treat lines
as atomic grammar units.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.workloads.base import DeterministicRandom

#: reserved identifiers the generator must never shadow
_KEYWORDS = {"int", "char", "float", "if", "else", "while", "for",
             "return", "break", "continue", "main"}


@dataclass(frozen=True)
class FuzzKnobs:
    """Tunable stress knobs for one generation profile."""

    profile: str = "mixed"
    #: maximum statement-nesting depth inside the main loop
    max_depth: int = 3
    #: min/max statements per block
    block_min: int = 2
    block_max: int = 5
    #: probability an ``if`` grows an ``else`` arm (diamond vs triangle)
    else_prob: float = 0.45
    #: probability a branch body is left empty (``{ }``)
    empty_prob: float = 0.08
    #: probability an ``else`` continues into an ``else if`` ladder rung
    ladder_prob: float = 0.25
    #: probability a generated expression is a ``?:`` select
    select_prob: float = 0.12
    #: loop-carried predicate flags threaded through the main loop
    flag_vars: int = 1
    #: probability a statement slot nests an inner loop (depth permitting)
    loop_prob: float = 0.10
    #: probability of a guarded break/continue/early-return inside a loop
    exit_prob: float = 0.06
    #: include float globals/arithmetic (stresses FCMP/FMOV lowering)
    use_floats: bool = False
    #: emit helper functions and calls into them
    use_calls: bool = False
    #: main loop trip count bounds (inclusive)
    min_trip: int = 4
    max_trip: int = 24
    int_arrays: int = 2
    char_arrays: int = 1
    array_size: int = 64  # power of two: indices are masked with size-1
    scalar_globals: int = 3
    locals_count: int = 4
    expr_depth: int = 3


#: the named stress profiles, in campaign rotation order
FUZZ_PROFILES: dict[str, FuzzKnobs] = {
    "mixed": FuzzKnobs(),
    "deep-nest": FuzzKnobs(profile="deep-nest", max_depth=6, block_min=1,
                           block_max=3, else_prob=0.7, ladder_prob=0.1,
                           expr_depth=2),
    "diamond-ladder": FuzzKnobs(profile="diamond-ladder", else_prob=1.0,
                                ladder_prob=0.8, max_depth=2,
                                block_min=1, block_max=3),
    "empty-branches": FuzzKnobs(profile="empty-branches", empty_prob=0.5,
                                else_prob=0.6, block_min=1, block_max=4),
    "loop-carried": FuzzKnobs(profile="loop-carried", flag_vars=3,
                              else_prob=0.6, max_depth=2),
    "cmov-select": FuzzKnobs(profile="cmov-select", select_prob=0.55,
                             use_floats=True, else_prob=0.5, max_depth=2),
    "wide-flat": FuzzKnobs(profile="wide-flat", max_depth=1, block_min=6,
                           block_max=12, else_prob=0.3, empty_prob=0.15),
    "call-mix": FuzzKnobs(profile="call-mix", use_calls=True, max_depth=3,
                          block_min=2, block_max=4),
}

#: rotation order (stable: campaign case N uses PROFILE_ORDER[N % len])
PROFILE_ORDER = tuple(FUZZ_PROFILES)


def profile_for_index(index: int) -> FuzzKnobs:
    """The knob profile campaign case ``index`` is generated with."""
    return FUZZ_PROFILES[PROFILE_ORDER[index % len(PROFILE_ORDER)]]


@dataclass(frozen=True)
class FuzzCase:
    """One generated differential-testing case."""

    case_id: str
    seed: int
    profile: str
    source: str
    inputs: dict[str, list]

    @property
    def line_count(self) -> int:
        return len(self.source.splitlines())


@dataclass
class _Scope:
    """Names visible while generating one function body."""

    int_vars: list[str] = field(default_factory=list)
    float_vars: list[str] = field(default_factory=list)
    int_globals: list[str] = field(default_factory=list)
    float_globals: list[str] = field(default_factory=list)
    int_arrays: list[tuple[str, int]] = field(default_factory=list)
    char_arrays: list[tuple[str, int]] = field(default_factory=list)
    float_arrays: list[tuple[str, int]] = field(default_factory=list)
    flags: list[str] = field(default_factory=list)
    helpers: list[tuple[str, int]] = field(default_factory=list)
    #: nesting stack: "for" entries allow continue, all allow break
    loop_stack: list[str] = field(default_factory=list)
    #: live loop counters: readable but never assignment targets, so
    #: every generated loop terminates by construction
    protected: set[str] = field(default_factory=set)


class _Generator:
    def __init__(self, seed: int, knobs: FuzzKnobs):
        self.rng = DeterministicRandom(seed)
        self.knobs = knobs
        self.lines: list[str] = []
        self.indent = 0
        self.scope = _Scope()
        self.loop_budget = 6  # inner loops per program, to bound steps
        # Each ?: lowers to a CFG diamond and they nest multiplicatively;
        # the budget keeps generated functions in the hundreds of blocks
        # instead of the tens of thousands.
        self.select_budget = 24
        self.tmp_counter = 0

    # ----- emission helpers -------------------------------------------

    def emit(self, text: str) -> None:
        self.lines.append("  " * self.indent + text)

    def chance(self, p: float) -> bool:
        return self.rng.next_u32() < int(p * 0x1_0000_0000)

    # ----- expressions ------------------------------------------------

    def _int_leaf(self) -> str:
        r = self.rng
        choices = ["lit", "lit", "var", "var", "var"]
        if self.scope.int_globals:
            choices.append("glob")
        if self.scope.int_arrays:
            choices += ["arr", "arr"]
        if self.scope.char_arrays:
            choices.append("chararr")
        if self.scope.flags:
            choices.append("flag")
        kind = r.choice(choices)
        if kind == "lit" or (kind == "var" and not self.scope.int_vars):
            return str(r.randint(-9, 31))
        if kind == "var":
            return r.choice(self.scope.int_vars)
        if kind == "glob":
            return r.choice(self.scope.int_globals)
        if kind == "flag":
            return r.choice(self.scope.flags)
        if kind == "chararr":
            name, size = r.choice(self.scope.char_arrays)
        else:
            name, size = r.choice(self.scope.int_arrays)
        return f"{name}[({self.int_expr(0)}) & {size - 1}]"

    def int_expr(self, depth: int | None = None) -> str:
        """A side-effect-free int expression, fault-free by construction."""
        r = self.rng
        if depth is None:
            depth = self.knobs.expr_depth
        if depth <= 0:
            return self._int_leaf()
        if self.select_budget > 0 and self.chance(self.knobs.select_prob):
            self.select_budget -= 1
            return (f"({self.cond_expr(depth - 1)} ? "
                    f"{self.int_expr(depth - 1)} : "
                    f"{self.int_expr(depth - 1)})")
        if self.scope.helpers and self.chance(0.15):
            name, arity = r.choice(self.scope.helpers)
            args = ", ".join(self.int_expr(0) for _ in range(arity))
            return f"{name}({args})"
        op = r.choice(["+", "+", "-", "*", "&", "|", "^", "<<", ">>",
                       "/", "%", "u-", "u!", "u~", "cmp"])
        a = self.int_expr(depth - 1)
        b = self.int_expr(depth - 1)
        if op in ("<<", ">>"):
            return f"(({a}) {op} (({b}) & 15))"
        if op in ("/", "%"):
            # Nonzero divisor by construction: no divide faults.
            return f"(({a}) {op} ((({b}) & 7) + 1))"
        if op == "u-":
            return f"(-({a}))"
        if op == "u!":
            return f"(!({a}))"
        if op == "u~":
            return f"(~({a}))"
        if op == "cmp":
            return f"(({a}) {r.choice(['<', '<=', '>', '>=', '==', '!='])} ({b}))"
        return f"(({a}) {op} ({b}))"

    def float_expr(self, depth: int | None = None) -> str:
        r = self.rng
        if depth is None:
            depth = min(2, self.knobs.expr_depth)
        leaves = []
        if self.scope.float_vars:
            leaves += ["var", "var"]
        if self.scope.float_globals:
            leaves.append("glob")
        if self.scope.float_arrays:
            leaves.append("arr")
        if depth <= 0 or not leaves:
            if leaves and self.chance(0.7):
                kind = r.choice(leaves)
                if kind == "var":
                    return r.choice(self.scope.float_vars)
                if kind == "glob":
                    return r.choice(self.scope.float_globals)
                name, size = r.choice(self.scope.float_arrays)
                return f"{name}[({self.int_expr(0)}) & {size - 1}]"
            return f"{r.randint(-4, 12)}.{r.randint(0, 99):02d}"
        if self.select_budget > 0 and self.chance(self.knobs.select_prob):
            self.select_budget -= 1
            return (f"({self.cond_expr(1)} ? {self.float_expr(depth - 1)} "
                    f": {self.float_expr(depth - 1)})")
        op = r.choice(["+", "-", "*"])
        return f"(({self.float_expr(depth - 1)}) {op} " \
               f"({self.float_expr(depth - 1)}))"

    def cond_expr(self, depth: int = 1) -> str:
        """A branch condition: comparisons joined by && / ||."""
        r = self.rng
        terms = 1
        if depth > 0:
            terms += r.randint(0, 2)
        parts = []
        for _ in range(terms):
            kind = r.next_u32() % 10
            if kind < 5:
                op = r.choice(["<", "<=", ">", ">=", "==", "!="])
                parts.append(f"{self.int_expr(1)} {op} {self.int_expr(1)}")
            elif kind < 6 and self.knobs.use_floats \
                    and (self.scope.float_vars or self.scope.float_globals):
                op = r.choice(["<", ">", "<=", ">="])
                parts.append(f"{self.float_expr(1)} {op} "
                             f"{self.float_expr(1)}")
            elif kind < 8 and self.scope.flags:
                flag = r.choice(self.scope.flags)
                parts.append(flag if kind % 2 else f"!{flag}")
            else:
                parts.append(f"({self.int_expr(1)} & "
                             f"{r.choice([1, 3, 7, 15])})")
        joiner = " && " if r.next_u32() % 2 else " || "
        return joiner.join(parts)

    # ----- statements -------------------------------------------------

    def assign_stmt(self) -> None:
        r = self.rng
        targets = ["local", "local"]
        if self.scope.int_globals:
            targets += ["global", "global"]
        if self.scope.int_arrays:
            targets.append("array")
        if self.scope.float_vars and self.knobs.use_floats:
            targets.append("float")
        kind = r.choice(targets)
        writable = [v for v in self.scope.int_vars
                    if v not in self.scope.protected]
        if kind == "local" and writable:
            name = r.choice(writable)
            self.emit(f"{name} = {self.int_expr()};")
        elif kind == "global":
            name = r.choice(self.scope.int_globals)
            self.emit(f"{name} = {self.int_expr()};")
        elif kind == "array":
            name, size = r.choice(self.scope.int_arrays)
            self.emit(f"{name}[({self.int_expr(1)}) & {size - 1}] = "
                      f"{self.int_expr()};")
        elif kind == "float":
            name = r.choice(self.scope.float_vars
                            + self.scope.float_globals)
            self.emit(f"{name} = {self.float_expr()};")
        else:
            # "local" rolled in a scope with no int locals (helpers with
            # every param shadowed can get here): pure expression stmt.
            self.emit(f"{self.int_expr(1)};")

    def flag_stmt(self) -> None:
        """Loop-carried predicate update (the wc ``inword`` shape)."""
        r = self.rng
        flag = r.choice(self.scope.flags)
        style = r.next_u32() % 3
        if style == 0:
            self.emit(f"if ({self.cond_expr()}) {{")
            self.indent += 1
            self.emit(f"{flag} = {r.randint(0, 1)};")
            self.indent -= 1
            self.emit("} else {")
            self.indent += 1
            self.emit(f"{flag} = {r.randint(0, 1)};")
            self.indent -= 1
            self.emit("}")
        elif style == 1:
            self.emit(f"{flag} = ({self.cond_expr()}) ? 1 : 0;")
        else:
            self.emit(f"{flag} = !{flag};")

    def if_stmt(self, depth: int) -> None:
        self.emit(f"if ({self.cond_expr()}) {{")
        self.indent += 1
        if self.chance(self.knobs.empty_prob):
            pass  # deliberately empty then-branch
        else:
            self.block(depth - 1)
        self.indent -= 1
        if self.chance(self.knobs.else_prob):
            if depth > 1 and self.chance(self.knobs.ladder_prob):
                # else-if ladder rung: re-enter if_stmt on the same line
                # budget, producing the diamond-ladder shape.
                self.emit("} else {")
                self.indent += 1
                self.if_stmt(depth - 1)
                self.indent -= 1
                self.emit("}")
                return
            self.emit("} else {")
            self.indent += 1
            if self.chance(self.knobs.empty_prob):
                pass
            else:
                self.block(depth - 1)
            self.indent -= 1
        self.emit("}")

    def for_stmt(self, depth: int) -> None:
        r = self.rng
        counter = self.fresh_name("t")
        self.emit(f"int {counter};")
        self.scope.int_vars.append(counter)
        self.scope.protected.add(counter)
        trip = r.randint(2, 8)
        self.emit(f"for ({counter} = 0; {counter} < {trip}; "
                  f"{counter} = {counter} + 1) {{")
        self.scope.loop_stack.append("for")
        self.indent += 1
        self.block(depth - 1)
        self.indent -= 1
        self.scope.loop_stack.pop()
        self.emit("}")

    def while_stmt(self, depth: int) -> None:
        r = self.rng
        counter = self.fresh_name("w")
        self.emit(f"int {counter};")
        self.scope.int_vars.append(counter)
        self.scope.protected.add(counter)
        bound = r.randint(2, 8)
        self.emit(f"{counter} = 0;")
        self.emit(f"while ({counter} < {bound} && "
                  f"({self.cond_expr()})) {{")
        self.scope.loop_stack.append("while")
        self.indent += 1
        # Progress first, so a later break can never skip it.
        self.emit(f"{counter} = {counter} + 1;")
        self.block(depth - 1)
        self.indent -= 1
        self.scope.loop_stack.pop()
        self.emit("}")

    def exit_stmt(self) -> None:
        r = self.rng
        options = ["break"]
        if self.scope.loop_stack and self.scope.loop_stack[-1] == "for":
            options.append("continue")
        options.append("return")
        kind = r.choice(options)
        if kind == "return":
            self.emit(f"if ({self.cond_expr(0)}) {{")
            self.indent += 1
            self.emit(f"return {self.int_expr(1)};")
            self.indent -= 1
            self.emit("}")
        else:
            self.emit(f"if ({self.cond_expr(0)}) {{")
            self.indent += 1
            self.emit(f"{kind};")
            self.indent -= 1
            self.emit("}")

    def statement(self, depth: int) -> None:
        r = self.rng
        k = self.knobs
        roll = r.next_u32() % 100
        in_loop = bool(self.scope.loop_stack)
        if depth > 0 and roll < 30:
            self.if_stmt(depth)
        elif depth > 0 and self.loop_budget > 0 \
                and roll < 30 + int(k.loop_prob * 100):
            self.loop_budget -= 1
            if r.next_u32() % 2:
                self.for_stmt(depth)
            else:
                self.while_stmt(depth)
        elif in_loop and roll >= 100 - int(k.exit_prob * 100):
            self.exit_stmt()
        elif self.scope.flags and roll >= 85:
            self.flag_stmt()
        else:
            self.assign_stmt()

    def block(self, depth: int) -> None:
        r = self.rng
        for _ in range(r.randint(self.knobs.block_min,
                                 self.knobs.block_max)):
            self.statement(depth)

    # ----- program assembly -------------------------------------------

    def fresh_name(self, prefix: str) -> str:
        self.tmp_counter += 1
        return f"{prefix}{self.tmp_counter}"

    def helper_function(self, index: int) -> None:
        r = self.rng
        name = f"calc{index}"
        arity = r.randint(1, 2)
        params = [f"p{i}" for i in range(arity)]
        self.emit(f"int {name}("
                  + ", ".join(f"int {p}" for p in params) + ") {")
        self.indent += 1
        outer = self.scope
        self.scope = _Scope(int_vars=list(params),
                            int_globals=outer.int_globals,
                            int_arrays=outer.int_arrays,
                            char_arrays=outer.char_arrays)
        self.block(1)
        self.emit(f"return {self.int_expr()};")
        self.scope = outer
        self.indent -= 1
        self.emit("}")
        self.scope.helpers.append((name, arity))

    def generate(self) -> tuple[str, dict[str, list]]:
        r = self.rng
        k = self.knobs
        inputs: dict[str, list] = {}

        for i in range(k.int_arrays):
            name = f"a{i}"
            self.emit(f"int {name}[{k.array_size}];")
            self.scope.int_arrays.append((name, k.array_size))
            inputs[name] = [r.randint(-16, 31)
                            for _ in range(k.array_size)]
        for i in range(k.char_arrays):
            name = f"c{i}"
            self.emit(f"char {name}[{k.array_size}];")
            self.scope.char_arrays.append((name, k.array_size))
            inputs[name] = [r.randint(0, 127) for _ in range(k.array_size)]
        if k.use_floats:
            self.emit(f"float fa[{k.array_size}];")
            self.scope.float_arrays.append(("fa", k.array_size))
            inputs["fa"] = [round(r.randint(-400, 400) / 16.0, 4)
                            for _ in range(k.array_size)]
            self.emit("float facc;")
            self.scope.float_globals.append("facc")
        self.emit("int n;")
        trip = r.randint(k.min_trip, k.max_trip)
        inputs["n"] = [trip]
        for i in range(k.scalar_globals):
            name = f"g{i}"
            self.emit(f"int {name};")
            self.scope.int_globals.append(name)
            inputs[name] = [r.randint(-8, 24)]
        self.emit("")

        if k.use_calls:
            for i in range(r.randint(1, 2)):
                self.helper_function(i)
                self.emit("")

        self.emit("int main() {")
        self.indent += 1
        for i in range(k.locals_count):
            name = f"v{i}"
            self.emit(f"int {name};")
            self.scope.int_vars.append(name)
        for i in range(k.flag_vars):
            name = f"fl{i}"
            self.emit(f"int {name};")
            self.scope.flags.append(name)
        if k.use_floats:
            self.emit("float fv;")
            self.scope.float_vars.append("fv")
        iv = self.fresh_name("i")
        self.emit(f"int {iv};")
        for name in self.scope.int_vars:
            self.emit(f"{name} = {self.int_expr(1)};")
        for name in self.scope.flags:
            self.emit(f"{name} = {r.randint(0, 1)};")
        if k.use_floats:
            self.emit("fv = 0.0;")

        self.emit(f"for ({iv} = 0; {iv} < n; {iv} = {iv} + 1) {{")
        self.scope.loop_stack.append("for")
        self.indent += 1
        self.scope.int_vars.append(iv)
        self.scope.protected.add(iv)
        self.block(k.max_depth)
        self.indent -= 1
        self.scope.loop_stack.pop()
        self.emit("}")

        # Fold everything observable into globals (store stream) and the
        # return value, so silent corruption anywhere must surface.
        acc = []
        for idx, name in enumerate(self.scope.int_vars[:6]):
            acc.append(f"({name} << {idx % 5})")
        for name in self.scope.flags:
            acc.append(name)
        if self.scope.int_globals:
            sink = self.scope.int_globals[0]
            self.emit(f"{sink} = {' + '.join(acc[:4])};")
        if k.use_floats:
            self.emit("facc = facc + fv;")
        self.emit(f"return {' ^ '.join(acc) if acc else '0'};")
        self.indent -= 1
        self.emit("}")
        return "\n".join(self.lines) + "\n", inputs


def generate_case(master_seed: int, index: int,
                  knobs: FuzzKnobs | None = None) -> FuzzCase:
    """Deterministically generate campaign case ``index``.

    The case seed mixes ``master_seed`` and ``index`` through the LCG's
    own constants, so neighbouring indices produce unrelated streams.
    """
    if knobs is None:
        knobs = profile_for_index(index)
    case_seed = (master_seed * 6364136223846793005
                 + (index + 1) * 1442695040888963407) & ((1 << 64) - 1)
    source, inputs = _Generator(case_seed, knobs).generate()
    case_id = f"case-{master_seed:x}-{index:05d}"
    return FuzzCase(case_id=case_id, seed=case_seed, profile=knobs.profile,
                    source=source, inputs=inputs)


def generate_source(seed: int, knobs: FuzzKnobs | None = None
                    ) -> tuple[str, dict[str, list]]:
    """Generate one (source, inputs) pair directly from a raw seed."""
    if knobs is None:
        knobs = FuzzKnobs()
    return _Generator(seed, knobs).generate()
