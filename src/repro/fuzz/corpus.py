"""Durable on-disk regression corpus.

Every entry is one directory under ``corpus/``::

    corpus/<entry-id>/
        case.c     — the (usually reduced) MiniC reproducer
        meta.json  — inputs, provenance, expected verdict, and — for
                     historical findings — the triage signature the
                     witness originally produced

Entries with ``expect: "ok"`` are semantics regressions: ``repro fuzz
replay --all`` re-runs the full differential check on each and fails on
any finding.  Entries with ``expect: "finding"`` document a bug the
harness once caught; after the fix they are expected to pass, and the
recorded signature preserves what the failure looked like.

The corpus is committed to the repository — it must survive tooling
rewrites, so the format is plain source + plain JSON, no pickles.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

#: repository-level default corpus root (package → src → repo)
DEFAULT_CORPUS_DIR = Path(__file__).resolve().parents[3] / "corpus"

_META_NAME = "meta.json"
_CASE_NAME = "case.c"


@dataclass
class CorpusEntry:
    """One durable reproducer."""

    entry_id: str
    source: str
    inputs: dict[str, list] = field(default_factory=dict)
    #: "ok" (must pass the differential check) — every committed entry;
    #: kept as a field so a triaged-but-not-yet-fixed finding can be
    #: parked in a working corpus without failing replay.
    expect: str = "ok"
    #: where the entry came from: "seed:<workload>", "fuzz:<case-id>"
    provenance: str = ""
    #: triage signature dict of the original finding, if any
    signature: dict | None = None
    notes: str = ""

    def meta_dict(self) -> dict:
        meta = {"entry_id": self.entry_id, "expect": self.expect,
                "provenance": self.provenance, "inputs": self.inputs}
        if self.signature is not None:
            meta["signature"] = self.signature
        if self.notes:
            meta["notes"] = self.notes
        return meta


def entry_dir(entry_id: str, corpus_dir: Path | str | None = None) -> Path:
    root = Path(corpus_dir) if corpus_dir else DEFAULT_CORPUS_DIR
    return root / entry_id


def save_entry(entry: CorpusEntry,
               corpus_dir: Path | str | None = None) -> Path:
    """Write ``entry`` under the corpus root; returns its directory."""
    directory = entry_dir(entry.entry_id, corpus_dir)
    directory.mkdir(parents=True, exist_ok=True)
    (directory / _CASE_NAME).write_text(entry.source)
    (directory / _META_NAME).write_text(
        json.dumps(entry.meta_dict(), indent=2, sort_keys=True) + "\n")
    return directory


def load_entry(entry_id_or_dir: str | Path,
               corpus_dir: Path | str | None = None) -> CorpusEntry:
    """Load one entry by id (within ``corpus_dir``) or by directory."""
    directory = Path(entry_id_or_dir)
    if not directory.is_dir():
        directory = entry_dir(str(entry_id_or_dir), corpus_dir)
    if not directory.is_dir():
        raise FileNotFoundError(
            f"no corpus entry at {directory} (looked for {_CASE_NAME} "
            f"+ {_META_NAME})")
    source = (directory / _CASE_NAME).read_text()
    meta = json.loads((directory / _META_NAME).read_text())
    return CorpusEntry(entry_id=meta.get("entry_id", directory.name),
                       source=source,
                       inputs=meta.get("inputs", {}),
                       expect=meta.get("expect", "ok"),
                       provenance=meta.get("provenance", ""),
                       signature=meta.get("signature"),
                       notes=meta.get("notes", ""))


def list_entries(corpus_dir: Path | str | None = None) -> list[CorpusEntry]:
    """All corpus entries, sorted by id for deterministic replay order."""
    root = Path(corpus_dir) if corpus_dir else DEFAULT_CORPUS_DIR
    if not root.is_dir():
        return []
    entries = []
    for directory in sorted(root.iterdir()):
        if directory.is_dir() and (directory / _META_NAME).is_file():
            entries.append(load_entry(directory))
    return entries
