"""Recursive-descent parser for MiniC."""

from __future__ import annotations

from repro.lang import ast_nodes as ast
from repro.lang.lexer import Token, tokenize


class ParseError(Exception):
    """Syntax error with line information."""


#: binary operator precedence (higher binds tighter); && / || are handled
#: separately because they short-circuit.
_PRECEDENCE = {
    "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_TYPES = {"int": ast.INT, "char": ast.CHAR, "float": ast.FLOAT}


class Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # ----- token helpers ---------------------------------------------------

    @property
    def cur(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        tok = self.cur
        self.pos += 1
        return tok

    def check(self, kind: str, value: object = None) -> bool:
        tok = self.cur
        return tok.kind == kind and (value is None or tok.value == value)

    def accept(self, kind: str, value: object = None) -> Token | None:
        if self.check(kind, value):
            return self.advance()
        return None

    def expect(self, kind: str, value: object = None) -> Token:
        if not self.check(kind, value):
            want = value if value is not None else kind
            raise ParseError(
                f"line {self.cur.line}: expected {want!r}, "
                f"found {self.cur.value!r}")
        return self.advance()

    # ----- top level ----------------------------------------------------------

    def parse(self) -> ast.TranslationUnit:
        unit = ast.TranslationUnit()
        while not self.check("eof"):
            decl_type, name, line = self._type_and_name()
            if self.check("("):
                unit.functions.append(
                    self._function(decl_type, name, line))
            else:
                unit.globals.append(self._global_var(decl_type, name, line))
        return unit

    def _type_and_name(self) -> tuple[ast.ScalarType, str, int]:
        tok = self.expect("kw")
        if tok.value not in _TYPES:
            raise ParseError(f"line {tok.line}: expected type, "
                             f"found {tok.value!r}")
        name = self.expect("id")
        return _TYPES[tok.value], str(name.value), tok.line

    def _array_suffix(self, base: ast.ScalarType) -> ast.Type:
        if self.accept("["):
            size = self.expect("num")
            self.expect("]")
            return ast.ArrayType(base, int(size.value))
        return base

    def _global_var(self, base: ast.ScalarType, name: str,
                    line: int) -> ast.VarDecl:
        var_type = self._array_suffix(base)
        init = None
        if self.accept("="):
            init = self._expression()
        self.expect(";")
        return ast.VarDecl(line=line, name=name, type=var_type, init=init)

    def _function(self, return_type: ast.ScalarType, name: str,
                  line: int) -> ast.FuncDecl:
        self.expect("(")
        params: list[ast.VarDecl] = []
        if not self.check(")"):
            while True:
                ptype, pname, pline = self._type_and_name()
                params.append(ast.VarDecl(line=pline, name=pname,
                                          type=ptype))
                if not self.accept(","):
                    break
        self.expect(")")
        body = self._block()
        return ast.FuncDecl(name=name, return_type=return_type,
                            params=params, body=body, line=line)

    # ----- statements ------------------------------------------------------------

    def _block(self) -> list[ast.Stmt]:
        self.expect("{")
        stmts: list[ast.Stmt] = []
        while not self.accept("}"):
            stmts.append(self._statement())
        return stmts

    def _statement(self) -> ast.Stmt:
        tok = self.cur
        if tok.kind == "kw":
            if tok.value in _TYPES:
                base, name, line = self._type_and_name()
                var_type = self._array_suffix(base)
                init = None
                if self.accept("="):
                    init = self._expression()
                self.expect(";")
                return ast.VarDecl(line=line, name=name, type=var_type,
                                   init=init)
            if tok.value == "if":
                return self._if()
            if tok.value == "while":
                return self._while()
            if tok.value == "for":
                return self._for()
            if tok.value == "return":
                self.advance()
                value = None if self.check(";") else self._expression()
                self.expect(";")
                return ast.Return(line=tok.line, value=value)
            if tok.value == "break":
                self.advance()
                self.expect(";")
                return ast.Break(line=tok.line)
            if tok.value == "continue":
                self.advance()
                self.expect(";")
                return ast.Continue(line=tok.line)
            raise ParseError(f"line {tok.line}: unexpected {tok.value!r}")
        if tok.kind == "{":
            # Anonymous block: flatten into an If(1) is overkill; just use
            # a While(0)?  Simpler: wrap in If with constant-true cond.
            stmts = self._block()
            return ast.If(line=tok.line,
                          cond=ast.IntLit(line=tok.line, value=1),
                          then=stmts, otherwise=[])
        return self._simple_statement()

    def _simple_statement(self) -> ast.Stmt:
        """Assignment or expression statement (no trailing ';' consumed
        by ``_for``)."""
        stmt = self._assignment_or_expr()
        self.expect(";")
        return stmt

    def _assignment_or_expr(self) -> ast.Stmt:
        tok = self.cur
        if tok.kind == "id":
            # Lookahead for `name =` or `name [ expr ] =`.
            save = self.pos
            name = str(self.advance().value)
            if self.accept("="):
                value = self._expression()
                return ast.Assign(line=tok.line, target=name, value=value)
            if self.check("["):
                self.advance()
                index = self._expression()
                self.expect("]")
                if self.accept("="):
                    value = self._expression()
                    return ast.Assign(line=tok.line, target=name,
                                      index=index, value=value)
            self.pos = save
        expr = self._expression()
        return ast.ExprStmt(line=tok.line, expr=expr)

    def _if(self) -> ast.If:
        tok = self.expect("kw", "if")
        self.expect("(")
        cond = self._expression()
        self.expect(")")
        then = self._stmt_or_block()
        otherwise: list[ast.Stmt] = []
        if self.accept("kw", "else"):
            otherwise = self._stmt_or_block()
        return ast.If(line=tok.line, cond=cond, then=then,
                      otherwise=otherwise)

    def _while(self) -> ast.While:
        tok = self.expect("kw", "while")
        self.expect("(")
        cond = self._expression()
        self.expect(")")
        body = self._stmt_or_block()
        return ast.While(line=tok.line, cond=cond, body=body)

    def _for(self) -> ast.For:
        tok = self.expect("kw", "for")
        self.expect("(")
        init = None
        if not self.check(";"):
            init = self._assignment_or_expr()
        self.expect(";")
        cond = None
        if not self.check(";"):
            cond = self._expression()
        self.expect(";")
        step = None
        if not self.check(")"):
            step = self._assignment_or_expr()
        self.expect(")")
        body = self._stmt_or_block()
        return ast.For(line=tok.line, init=init, cond=cond, step=step,
                       body=body)

    def _stmt_or_block(self) -> list[ast.Stmt]:
        if self.check("{"):
            return self._block()
        return [self._statement()]

    # ----- expressions ---------------------------------------------------------

    def _expression(self) -> ast.Expr:
        return self._ternary()

    def _ternary(self) -> ast.Expr:
        cond = self._logical_or()
        if self.accept("?"):
            then = self._expression()
            self.expect(":")
            otherwise = self._ternary()
            return ast.Conditional(line=cond.line, cond=cond, then=then,
                                   otherwise=otherwise)
        return cond

    def _logical_or(self) -> ast.Expr:
        left = self._logical_and()
        while self.check("||"):
            line = self.advance().line
            right = self._logical_and()
            left = ast.Logical(line=line, op="||", left=left, right=right)
        return left

    def _logical_and(self) -> ast.Expr:
        left = self._binary(0)
        while self.check("&&"):
            line = self.advance().line
            right = self._binary(0)
            left = ast.Logical(line=line, op="&&", left=left, right=right)
        return left

    def _binary(self, min_prec: int) -> ast.Expr:
        left = self._unary()
        while True:
            op = self.cur.kind
            prec = _PRECEDENCE.get(op)
            if prec is None or prec < min_prec:
                return left
            line = self.advance().line
            right = self._binary(prec + 1)
            left = ast.Binary(line=line, op=op, left=left, right=right)

    def _unary(self) -> ast.Expr:
        tok = self.cur
        if tok.kind in ("-", "!", "~"):
            self.advance()
            operand = self._unary()
            return ast.Unary(line=tok.line, op=tok.kind, operand=operand)
        return self._primary()

    def _primary(self) -> ast.Expr:
        tok = self.cur
        if tok.kind == "num":
            self.advance()
            return ast.IntLit(line=tok.line, value=int(tok.value))
        if tok.kind == "fnum":
            self.advance()
            return ast.FloatLit(line=tok.line, value=float(tok.value))
        if tok.kind == "(":
            self.advance()
            expr = self._expression()
            self.expect(")")
            return expr
        if tok.kind == "id":
            name = str(self.advance().value)
            if self.accept("("):
                args: list[ast.Expr] = []
                if not self.check(")"):
                    while True:
                        args.append(self._expression())
                        if not self.accept(","):
                            break
                self.expect(")")
                return ast.Call(line=tok.line, callee=name, args=args)
            if self.accept("["):
                index = self._expression()
                self.expect("]")
                return ast.Index(line=tok.line, array=name, index=index)
            return ast.Name(line=tok.line, ident=name)
        raise ParseError(f"line {tok.line}: unexpected token "
                         f"{tok.value!r} in expression")


def parse(source: str) -> ast.TranslationUnit:
    """Parse MiniC source text into an AST."""
    return Parser(tokenize(source)).parse()
