"""Lexer for MiniC, the small C-like language the workloads are written in.

MiniC stands in for the C sources of the paper's benchmarks: it has
``int``/``char``/``float`` scalars and one-dimensional arrays, functions,
full structured control flow, and short-circuit ``&&``/``||`` — enough to
express the control-intensive kernels (wc, grep, qsort, ...) whose branch
behaviour the paper studies.
"""

from __future__ import annotations

from dataclasses import dataclass


class LexError(Exception):
    """Invalid input character or malformed literal."""


KEYWORDS = frozenset({
    "int", "char", "float", "if", "else", "while", "for", "return",
    "break", "continue",
})

#: Multi-character operators, longest first so maximal munch works.
_OPERATORS = ["<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
              "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^",
              "~", "(", ")", "{", "}", "[", "]", ";", ",", "?", ":"]

_ESCAPES = {"n": 10, "t": 9, "0": 0, "r": 13, "\\": 92, "'": 39, '"': 34}


@dataclass(frozen=True, slots=True)
class Token:
    """A lexical token: ``kind`` is 'id', 'num', 'fnum', 'kw', or the
    operator text itself."""

    kind: str
    value: str | int | float
    line: int

    def __repr__(self) -> str:
        return f"{self.kind}({self.value!r})@{self.line}"


def tokenize(source: str) -> list[Token]:
    """Convert MiniC source text into a token list ending with 'eof'."""
    tokens: list[Token] = []
    i = 0
    line = 1
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            continue
        if source.startswith("//", i):
            end = source.find("\n", i)
            i = n if end < 0 else end
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise LexError(f"line {line}: unterminated comment")
            line += source.count("\n", i, end)
            i = end + 2
            continue
        if ch.isalpha() or ch == "_":
            j = i + 1
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            word = source[i:j]
            kind = "kw" if word in KEYWORDS else "id"
            tokens.append(Token(kind, word, line))
            i = j
            continue
        if ch.isdigit():
            j = i
            while j < n and source[j].isdigit():
                j += 1
            if j < n and source[j] == "." and j + 1 < n \
                    and source[j + 1].isdigit():
                j += 1
                while j < n and source[j].isdigit():
                    j += 1
                tokens.append(Token("fnum", float(source[i:j]), line))
            else:
                tokens.append(Token("num", int(source[i:j]), line))
            i = j
            continue
        if ch == "'":
            j = i + 1
            if j >= n:
                raise LexError(f"line {line}: unterminated char literal")
            if source[j] == "\\":
                if j + 1 >= n or source[j + 1] not in _ESCAPES:
                    raise LexError(f"line {line}: bad escape")
                value = _ESCAPES[source[j + 1]]
                j += 2
            else:
                value = ord(source[j])
                j += 1
            if j >= n or source[j] != "'":
                raise LexError(f"line {line}: unterminated char literal")
            tokens.append(Token("num", value, line))
            i = j + 1
            continue
        for op in _OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token(op, op, line))
                i += len(op)
                break
        else:
            raise LexError(f"line {line}: unexpected character {ch!r}")
    tokens.append(Token("eof", "", line))
    return tokens
