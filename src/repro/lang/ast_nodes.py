"""Abstract syntax tree for MiniC."""

from __future__ import annotations

from dataclasses import dataclass, field


# ----- types ---------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class ScalarType:
    name: str  # 'int', 'char', 'float'

    @property
    def is_float(self) -> bool:
        return self.name == "float"

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class ArrayType:
    elem: ScalarType
    size: int

    def __repr__(self) -> str:
        return f"{self.elem}[{self.size}]"


INT = ScalarType("int")
CHAR = ScalarType("char")
FLOAT = ScalarType("float")

Type = ScalarType | ArrayType


# ----- expressions -----------------------------------------------------------

@dataclass(slots=True)
class Expr:
    line: int = 0
    #: filled in by semantic analysis
    type: ScalarType | None = None


@dataclass(slots=True)
class IntLit(Expr):
    value: int = 0


@dataclass(slots=True)
class FloatLit(Expr):
    value: float = 0.0


@dataclass(slots=True)
class Name(Expr):
    ident: str = ""


@dataclass(slots=True)
class Index(Expr):
    array: str = ""
    index: Expr | None = None


@dataclass(slots=True)
class Unary(Expr):
    op: str = ""           # '-', '!', '~'
    operand: Expr | None = None


@dataclass(slots=True)
class Binary(Expr):
    op: str = ""           # arithmetic/comparison/bitwise operator text
    left: Expr | None = None
    right: Expr | None = None


@dataclass(slots=True)
class Logical(Expr):
    op: str = ""           # '&&' or '||'
    left: Expr | None = None
    right: Expr | None = None


@dataclass(slots=True)
class Call(Expr):
    callee: str = ""
    args: list[Expr] = field(default_factory=list)


@dataclass(slots=True)
class Conditional(Expr):
    """C ternary ``cond ? a : b``."""

    cond: Expr | None = None
    then: Expr | None = None
    otherwise: Expr | None = None


# ----- statements -------------------------------------------------------------

@dataclass(slots=True)
class Stmt:
    line: int = 0


@dataclass(slots=True)
class Assign(Stmt):
    """``name = value`` or ``name[index] = value``."""

    target: str = ""
    index: Expr | None = None
    value: Expr | None = None


@dataclass(slots=True)
class ExprStmt(Stmt):
    expr: Expr | None = None


@dataclass(slots=True)
class If(Stmt):
    cond: Expr | None = None
    then: list[Stmt] = field(default_factory=list)
    otherwise: list[Stmt] = field(default_factory=list)


@dataclass(slots=True)
class While(Stmt):
    cond: Expr | None = None
    body: list[Stmt] = field(default_factory=list)


@dataclass(slots=True)
class For(Stmt):
    init: Stmt | None = None
    cond: Expr | None = None
    step: Stmt | None = None
    body: list[Stmt] = field(default_factory=list)


@dataclass(slots=True)
class Return(Stmt):
    value: Expr | None = None


@dataclass(slots=True)
class Break(Stmt):
    pass


@dataclass(slots=True)
class Continue(Stmt):
    pass


# ----- declarations -------------------------------------------------------------

@dataclass(slots=True)
class VarDecl(Stmt):
    """Variable declaration (global, local, or parameter)."""

    name: str = ""
    type: Type = INT
    init: Expr | None = None


@dataclass(slots=True)
class FuncDecl:
    name: str = ""
    return_type: ScalarType = INT
    params: list[VarDecl] = field(default_factory=list)
    body: list[Stmt] = field(default_factory=list)
    line: int = 0


@dataclass(slots=True)
class TranslationUnit:
    globals: list[VarDecl] = field(default_factory=list)
    functions: list[FuncDecl] = field(default_factory=list)
