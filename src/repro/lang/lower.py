"""Lowering from the MiniC AST to the predicate-free baseline IR.

The lowering produces classic branchy code: short-circuit ``&&``/``||``
become separate conditional branches (one per condition), matching how
the paper's source benchmarks present themselves to if-conversion.

Storage mapping:

* global scalars and arrays → :class:`~repro.ir.function.GlobalVar`
  objects (int/char scalars occupy a 4-byte word; char arrays are byte
  arrays; floats occupy 8 bytes);
* local scalars and parameters → virtual registers;
* local arrays → uniquely named static globals (``fn.name``); MiniC
  forbids recursion through local arrays, which no workload needs.
"""

from __future__ import annotations

from repro.ir import (Function, GlobalAddr, GlobalVar, Imm, IRBuilder,
                      Opcode, Operand, Program, RegClass, VReg)
from repro.ir.function import BasicBlock
from repro.ir.instruction import Instruction
from repro.lang import ast_nodes as ast
from repro.lang.parser import parse
from repro.lang.sema import SemaError, SemaInfo, analyze


class LowerError(Exception):
    """Internal lowering failure (should be prevented by sema)."""


def _elem_size(t: ast.ScalarType) -> int:
    if t.is_float:
        return 8
    return 1 if t.name == "char" else 4


class _FunctionLowerer:
    def __init__(self, program: Program, info: SemaInfo,
                 decl: ast.FuncDecl):
        self.program = program
        self.info = info
        self.decl = decl
        self.fn = Function(decl.name,
                           returns_float=decl.return_type.is_float)
        self.builder = IRBuilder(self.fn, self.fn.new_block("entry"))
        self.vars: dict[str, VReg] = {}
        self.label_counter = 0
        #: stack of (break_label, continue_label)
        self.loop_stack: list[tuple[str, str]] = []
        self.return_float = decl.return_type.is_float

    # ----- block helpers ---------------------------------------------------

    def new_label(self, hint: str = "L") -> str:
        self.label_counter += 1
        return f"{hint}{self.label_counter}"

    def start_block(self, label: str) -> BasicBlock:
        block = self.fn.new_block(label)
        self.builder.set_block(block)
        return block

    def goto(self, label: str) -> None:
        """End the current block with a jump unless already terminated."""
        block = self.builder.block
        if not block.instructions or not block.instructions[-1].is_terminator:
            self.builder.jump(label)

    # ----- typed operand helpers -----------------------------------------------

    def to_float(self, op: Operand, is_float: bool) -> Operand:
        if is_float:
            return op
        if isinstance(op, Imm):
            return Imm(float(op.value))
        return self.builder.cvt_if(op)

    def to_int(self, op: Operand, is_float: bool) -> Operand:
        if not is_float:
            return op
        if isinstance(op, Imm):
            return Imm(int(op.value))
        return self.builder.cvt_fi(op)

    def convert(self, op: Operand, from_float: bool,
                to_float_type: bool) -> Operand:
        if to_float_type:
            return self.to_float(op, from_float)
        return self.to_int(op, from_float)

    # ----- variable access -------------------------------------------------------

    def local_reg(self, decl: ast.VarDecl) -> VReg:
        reg = self.vars.get(decl.name)
        if reg is None:
            rclass = RegClass.FLOAT if (isinstance(decl.type,
                                                   ast.ScalarType)
                                        and decl.type.is_float) \
                else RegClass.INT
            reg = self.fn.new_vreg(rclass)
            self.vars[decl.name] = reg
        return reg

    def _is_local(self, name: str) -> bool:
        return name in self.info.functions[self.decl.name].locals

    def _static_name(self, name: str) -> str:
        """Program-level name for a variable (locals arrays are statics)."""
        if self._is_local(name):
            return f"{self.decl.name}.{name}"
        return name

    def read_scalar(self, name: str, line: int) -> tuple[Operand, bool]:
        """Load a scalar variable; returns (operand, is_float)."""
        decl = self._var_decl(name)
        assert isinstance(decl.type, ast.ScalarType)
        is_float = decl.type.is_float
        if self._is_local(name):
            return self.local_reg(decl), is_float
        addr = GlobalAddr(name)
        if is_float:
            return self.builder.fload(addr, Imm(0)), True
        return self.builder.load(addr, Imm(0)), False

    def write_scalar(self, name: str, value: Operand,
                     value_is_float: bool) -> None:
        decl = self._var_decl(name)
        assert isinstance(decl.type, ast.ScalarType)
        is_float = decl.type.is_float
        value = self.convert(value, value_is_float, is_float)
        if self._is_local(name):
            reg = self.local_reg(decl)
            self.builder.mov_to(reg, value)
            return
        addr = GlobalAddr(name)
        if is_float:
            self.builder.fstore(addr, Imm(0), value)
        else:
            self.builder.store(addr, Imm(0), value)

    def _var_decl(self, name: str) -> ast.VarDecl:
        info = self.info.functions[self.decl.name]
        if name in info.locals:
            return info.locals[name]
        return self.info.globals[name]

    def array_address(self, name: str,
                      index: ast.Expr) -> tuple[Operand, Operand, int]:
        """Compute (base, offset_operand, elem_size) for an array access."""
        decl = self._var_decl(name)
        assert isinstance(decl.type, ast.ArrayType)
        elem = _elem_size(decl.type.elem)
        idx = self.lower_expr(index)
        base = GlobalAddr(self._static_name(name))
        if isinstance(idx, Imm):
            return base, Imm(int(idx.value) * elem), elem
        if elem == 1:
            return base, idx, elem
        shift = 2 if elem == 4 else 3
        offset = self.builder.shl(idx, Imm(shift))
        return base, offset, elem

    # ----- expressions --------------------------------------------------------------

    def lower_expr(self, e: ast.Expr | None) -> Operand:
        assert e is not None
        if isinstance(e, ast.IntLit):
            return Imm(e.value)
        if isinstance(e, ast.FloatLit):
            return Imm(e.value)
        if isinstance(e, ast.Name):
            op, _ = self.read_scalar(e.ident, e.line)
            return op
        if isinstance(e, ast.Index):
            base, offset, elem = self.array_address(e.array, e.index)
            decl = self._var_decl(e.array)
            assert isinstance(decl.type, ast.ArrayType)
            if decl.type.elem.is_float:
                return self.builder.fload(base, offset)
            return self.builder.load(base, offset, byte=(elem == 1))
        if isinstance(e, ast.Unary):
            return self._lower_unary(e)
        if isinstance(e, ast.Binary):
            return self._lower_binary(e)
        if isinstance(e, ast.Logical):
            return self._materialize_bool(e)
        if isinstance(e, ast.Conditional):
            return self._lower_conditional(e)
        if isinstance(e, ast.Call):
            return self._lower_call(e)
        raise LowerError(f"cannot lower expression {e!r}")

    def _lower_unary(self, e: ast.Unary) -> Operand:
        operand = self.lower_expr(e.operand)
        assert e.operand is not None and e.operand.type is not None
        if e.op == "-":
            if e.type is ast.FLOAT:
                operand = self.to_float(operand, e.operand.type.is_float)
                dest = self.fn.new_vreg(RegClass.FLOAT)
                self.builder.emit(Instruction(Opcode.FNEG, dest=dest,
                                              srcs=(operand,)))
                return dest
            return self.builder.neg(operand)
        if e.op == "!":
            return self.builder.cmp("eq", operand, Imm(0))
        if e.op == "~":
            return self.builder.not_(operand)
        raise LowerError(f"unknown unary {e.op!r}")

    _INT_OPS = {"+": Opcode.ADD, "-": Opcode.SUB, "*": Opcode.MUL,
                "/": Opcode.DIV, "%": Opcode.REM, "&": Opcode.AND,
                "|": Opcode.OR, "^": Opcode.XOR, "<<": Opcode.SHL,
                ">>": Opcode.SHR}
    _FLOAT_OPS = {"+": Opcode.FADD, "-": Opcode.FSUB, "*": Opcode.FMUL,
                  "/": Opcode.FDIV}
    _CMP_NAMES = {"==": "eq", "!=": "ne", "<": "lt", "<=": "le",
                  ">": "gt", ">=": "ge"}

    def _lower_binary(self, e: ast.Binary) -> Operand:
        assert e.left is not None and e.right is not None
        left = self.lower_expr(e.left)
        right = self.lower_expr(e.right)
        lf = e.left.type.is_float
        rf = e.right.type.is_float
        if e.op in self._CMP_NAMES:
            cond = self._CMP_NAMES[e.op]
            if lf or rf:
                left = self.to_float(left, lf)
                right = self.to_float(right, rf)
                return self.builder.fcmp(cond, left, right)
            return self.builder.cmp(cond, left, right)
        if e.type is ast.FLOAT:
            left = self.to_float(left, lf)
            right = self.to_float(right, rf)
            dest = self.fn.new_vreg(RegClass.FLOAT)
            self.builder.emit(Instruction(self._FLOAT_OPS[e.op], dest=dest,
                                          srcs=(left, right)))
            return dest
        dest = self.fn.new_vreg()
        self.builder.emit(Instruction(self._INT_OPS[e.op], dest=dest,
                                      srcs=(left, right)))
        return dest

    def _materialize_bool(self, e: ast.Expr) -> Operand:
        """Evaluate a short-circuit expression to 0/1 via control flow."""
        true_lbl = self.new_label("Bt")
        false_lbl = self.new_label("Bf")
        join_lbl = self.new_label("Bj")
        result = self.fn.new_vreg()
        self.lower_cond(e, true_lbl, false_lbl)
        self.start_block(true_lbl)
        self.builder.mov_to(result, Imm(1))
        self.goto(join_lbl)
        self.start_block(false_lbl)
        self.builder.mov_to(result, Imm(0))
        self.goto(join_lbl)
        self.start_block(join_lbl)
        return result

    def _lower_conditional(self, e: ast.Conditional) -> Operand:
        assert e.then is not None and e.otherwise is not None
        then_lbl = self.new_label("Ct")
        else_lbl = self.new_label("Ce")
        join_lbl = self.new_label("Cj")
        is_float = e.type is ast.FLOAT
        result = self.fn.new_vreg(RegClass.FLOAT if is_float
                                  else RegClass.INT)
        self.lower_cond(e.cond, then_lbl, else_lbl)
        self.start_block(then_lbl)
        v1 = self.lower_expr(e.then)
        v1 = self.convert(v1, e.then.type.is_float, is_float)
        self.builder.mov_to(result, v1)
        self.goto(join_lbl)
        self.start_block(else_lbl)
        v2 = self.lower_expr(e.otherwise)
        v2 = self.convert(v2, e.otherwise.type.is_float, is_float)
        self.builder.mov_to(result, v2)
        self.goto(join_lbl)
        self.start_block(join_lbl)
        return result

    def _lower_call(self, e: ast.Call) -> Operand:
        callee = self.info.functions[e.callee].decl
        args: list[Operand] = []
        for arg, param in zip(e.args, callee.params):
            value = self.lower_expr(arg)
            assert isinstance(param.type, ast.ScalarType)
            value = self.convert(value, arg.type.is_float,
                                 param.type.is_float)
            args.append(value)
        dest = self.builder.call(e.callee, tuple(args),
                                 returns_float=callee.return_type.is_float)
        assert dest is not None
        return dest

    # ----- conditions ------------------------------------------------------------------

    def lower_cond(self, e: ast.Expr | None, true_lbl: str,
                   false_lbl: str) -> None:
        """Lower ``e`` as a branch condition (short-circuit evaluation).

        Leaves the current block terminated; both labels must be started
        by the caller afterwards.
        """
        assert e is not None
        if isinstance(e, ast.Logical):
            mid = self.new_label("Lm")
            if e.op == "&&":
                self.lower_cond(e.left, mid, false_lbl)
            else:
                self.lower_cond(e.left, true_lbl, mid)
            self.start_block(mid)
            self.lower_cond(e.right, true_lbl, false_lbl)
            return
        if isinstance(e, ast.Unary) and e.op == "!":
            self.lower_cond(e.operand, false_lbl, true_lbl)
            return
        if isinstance(e, ast.Binary) and e.op in self._CMP_NAMES:
            assert e.left is not None and e.right is not None
            left = self.lower_expr(e.left)
            right = self.lower_expr(e.right)
            lf = e.left.type.is_float
            rf = e.right.type.is_float
            cond = self._CMP_NAMES[e.op]
            if lf or rf:
                left = self.to_float(left, lf)
                right = self.to_float(right, rf)
                flag = self.builder.fcmp(cond, left, right)
                self.builder.bne(flag, Imm(0), true_lbl)
            else:
                self.builder.branch(cond, left, right, true_lbl)
            self.builder.jump(false_lbl)
            return
        if isinstance(e, ast.IntLit):
            self.builder.jump(true_lbl if e.value else false_lbl)
            return
        value = self.lower_expr(e)
        if e.type is ast.FLOAT:
            flag = self.builder.fcmp("ne", value, Imm(0.0))
            self.builder.bne(flag, Imm(0), true_lbl)
        else:
            self.builder.bne(value, Imm(0), true_lbl)
        self.builder.jump(false_lbl)

    # ----- statements ------------------------------------------------------------------

    def lower_stmts(self, stmts: list[ast.Stmt]) -> None:
        for s in stmts:
            self.lower_stmt(s)

    def lower_stmt(self, s: ast.Stmt) -> None:
        if isinstance(s, ast.VarDecl):
            if isinstance(s.type, ast.ArrayType):
                # Local arrays become uniquely named static globals.
                static = GlobalVar(self._static_name(s.name),
                                   _elem_size(s.type.elem), s.type.size,
                                   is_float=s.type.elem.is_float)
                if static.name not in self.program.globals:
                    self.program.add_global(static)
            elif s.init is not None:
                value = self.lower_expr(s.init)
                reg = self.local_reg(s)
                value = self.convert(value, s.init.type.is_float,
                                     s.type.is_float)
                self.builder.mov_to(reg, value)
        elif isinstance(s, ast.Assign):
            self._lower_assign(s)
        elif isinstance(s, ast.ExprStmt):
            self.lower_expr(s.expr)
        elif isinstance(s, ast.If):
            self._lower_if(s)
        elif isinstance(s, ast.While):
            self._lower_while(s)
        elif isinstance(s, ast.For):
            self._lower_for(s)
        elif isinstance(s, ast.Return):
            if s.value is not None:
                value = self.lower_expr(s.value)
                value = self.convert(value, s.value.type.is_float,
                                     self.return_float)
            else:
                value = Imm(0.0 if self.return_float else 0)
            self.builder.ret(value)
            self.start_block(self.new_label("dead"))
        elif isinstance(s, ast.Break):
            self.goto(self.loop_stack[-1][0])
            self.start_block(self.new_label("dead"))
        elif isinstance(s, ast.Continue):
            self.goto(self.loop_stack[-1][1])
            self.start_block(self.new_label("dead"))
        else:
            raise LowerError(f"cannot lower statement {s!r}")

    def _lower_assign(self, s: ast.Assign) -> None:
        assert s.value is not None
        if s.index is None:
            value = self.lower_expr(s.value)
            self.write_scalar(s.target, value, s.value.type.is_float)
            return
        decl = self._var_decl(s.target)
        assert isinstance(decl.type, ast.ArrayType)
        base, offset, elem = self.array_address(s.target, s.index)
        value = self.lower_expr(s.value)
        value = self.convert(value, s.value.type.is_float,
                             decl.type.elem.is_float)
        if decl.type.elem.is_float:
            self.builder.fstore(base, offset, value)
        else:
            self.builder.store(base, offset, value, byte=(elem == 1))

    def _lower_if(self, s: ast.If) -> None:
        then_lbl = self.new_label("It")
        join_lbl = self.new_label("Ij")
        else_lbl = self.new_label("Ie") if s.otherwise else join_lbl
        self.lower_cond(s.cond, then_lbl, else_lbl)
        self.start_block(then_lbl)
        self.lower_stmts(s.then)
        self.goto(join_lbl)
        if s.otherwise:
            self.start_block(else_lbl)
            self.lower_stmts(s.otherwise)
            self.goto(join_lbl)
        self.start_block(join_lbl)

    def _lower_while(self, s: ast.While) -> None:
        head_lbl = self.new_label("Wh")
        body_lbl = self.new_label("Wb")
        exit_lbl = self.new_label("Wx")
        self.goto(head_lbl)
        self.start_block(head_lbl)
        self.lower_cond(s.cond, body_lbl, exit_lbl)
        self.start_block(body_lbl)
        self.loop_stack.append((exit_lbl, head_lbl))
        self.lower_stmts(s.body)
        self.loop_stack.pop()
        self.goto(head_lbl)
        self.start_block(exit_lbl)

    def _lower_for(self, s: ast.For) -> None:
        head_lbl = self.new_label("Fh")
        body_lbl = self.new_label("Fb")
        step_lbl = self.new_label("Fs")
        exit_lbl = self.new_label("Fx")
        if s.init is not None:
            self.lower_stmt(s.init)
        self.goto(head_lbl)
        self.start_block(head_lbl)
        if s.cond is not None:
            self.lower_cond(s.cond, body_lbl, exit_lbl)
        else:
            self.goto(body_lbl)
        self.start_block(body_lbl)
        self.loop_stack.append((exit_lbl, step_lbl))
        self.lower_stmts(s.body)
        self.loop_stack.pop()
        self.goto(step_lbl)
        self.start_block(step_lbl)
        if s.step is not None:
            self.lower_stmt(s.step)
        self.goto(head_lbl)
        self.start_block(exit_lbl)

    # ----- function -----------------------------------------------------------------------

    def lower(self) -> Function:
        for p in self.decl.params:
            reg = self.local_reg(p)
            self.fn.params.append(reg)
        self.lower_stmts(self.decl.body)
        # Implicit `return 0` at the end.
        block = self.builder.block
        if not block.instructions \
                or not block.instructions[-1].is_terminator:
            self.builder.ret(Imm(0.0 if self.return_float else 0))
        return self.fn


def lower_unit(info: SemaInfo) -> Program:
    """Lower a checked translation unit to an IR program."""
    program = Program()
    for g in info.unit.globals:
        if isinstance(g.type, ast.ArrayType):
            program.add_global(GlobalVar(g.name, _elem_size(g.type.elem),
                                         g.type.size,
                                         is_float=g.type.elem.is_float))
        else:
            init = None
            if g.init is not None:
                assert isinstance(g.init, (ast.IntLit, ast.FloatLit))
                init = [g.init.value]
            size = 8 if g.type.is_float else 4
            program.add_global(GlobalVar(g.name, size, 1, init=init,
                                         is_float=g.type.is_float))
    for f in info.unit.functions:
        program.add_function(_FunctionLowerer(program, info, f).lower())
    return program


def compile_minic(source: str) -> Program:
    """Front end in one call: MiniC source text → baseline IR program."""
    return lower_unit(analyze(parse(source)))
