"""Semantic analysis for MiniC: scopes, symbols and type annotation.

The analysis annotates every expression node with its value type (``int``
or ``float``; ``char`` values promote to ``int`` when read) and builds the
symbol tables the IR lowering consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang import ast_nodes as ast


class SemaError(Exception):
    """A semantic (type/scope) error."""


@dataclass
class FunctionInfo:
    decl: ast.FuncDecl
    locals: dict[str, ast.VarDecl] = field(default_factory=dict)


@dataclass
class SemaInfo:
    """Symbol tables produced by :func:`analyze`."""

    unit: ast.TranslationUnit
    globals: dict[str, ast.VarDecl] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)

    def var_type(self, fn: str, name: str) -> ast.Type:
        info = self.functions[fn]
        if name in info.locals:
            return info.locals[name].type
        if name in self.globals:
            return self.globals[name].type
        raise SemaError(f"undeclared variable {name!r}")


def _value_type(t: ast.Type, line: int) -> ast.ScalarType:
    if isinstance(t, ast.ArrayType):
        raise SemaError(f"line {line}: array used as a scalar value")
    return ast.FLOAT if t.is_float else ast.INT


class _Checker:
    def __init__(self, info: SemaInfo):
        self.info = info
        self.fn: FunctionInfo | None = None
        self.loop_depth = 0

    # ----- helpers -----------------------------------------------------------

    def _lookup(self, name: str, line: int) -> ast.VarDecl:
        assert self.fn is not None
        if name in self.fn.locals:
            return self.fn.locals[name]
        if name in self.info.globals:
            return self.info.globals[name]
        raise SemaError(f"line {line}: undeclared variable {name!r}")

    # ----- declarations --------------------------------------------------------

    def check_unit(self) -> None:
        unit = self.info.unit
        for g in unit.globals:
            if g.name in self.info.globals:
                raise SemaError(f"line {g.line}: duplicate global "
                                f"{g.name!r}")
            if g.init is not None:
                if isinstance(g.type, ast.ArrayType):
                    raise SemaError(f"line {g.line}: array initializers "
                                    f"are injected at run time, not in "
                                    f"source")
                if not isinstance(g.init, (ast.IntLit, ast.FloatLit)):
                    raise SemaError(f"line {g.line}: global initializer "
                                    f"must be a literal")
            self.info.globals[g.name] = g
        for f in unit.functions:
            if f.name in self.info.functions:
                raise SemaError(f"line {f.line}: duplicate function "
                                f"{f.name!r}")
            if f.name in self.info.globals:
                raise SemaError(f"line {f.line}: {f.name!r} is both a "
                                f"global and a function")
            self.info.functions[f.name] = FunctionInfo(f)
        if "main" not in self.info.functions:
            raise SemaError("program has no main function")
        for f in unit.functions:
            self._check_function(self.info.functions[f.name])

    def _check_function(self, fn: FunctionInfo) -> None:
        self.fn = fn
        self.loop_depth = 0
        for p in fn.decl.params:
            if isinstance(p.type, ast.ArrayType):
                raise SemaError(f"line {p.line}: array parameters are not "
                                f"supported; use a global array")
            if p.name in fn.locals:
                raise SemaError(f"line {p.line}: duplicate parameter "
                                f"{p.name!r}")
            fn.locals[p.name] = p
        self._check_stmts(fn.decl.body)
        self.fn = None

    # ----- statements -------------------------------------------------------------

    def _check_stmts(self, stmts: list[ast.Stmt]) -> None:
        for s in stmts:
            self._check_stmt(s)

    def _check_stmt(self, s: ast.Stmt) -> None:
        assert self.fn is not None
        if isinstance(s, ast.VarDecl):
            if s.name in self.fn.locals:
                raise SemaError(f"line {s.line}: duplicate local "
                                f"{s.name!r}")
            if s.name in self.info.functions:
                raise SemaError(f"line {s.line}: {s.name!r} shadows a "
                                f"function")
            self.fn.locals[s.name] = s
            if s.init is not None:
                if isinstance(s.type, ast.ArrayType):
                    raise SemaError(f"line {s.line}: local array "
                                    f"initializers are not supported")
                self._check_expr(s.init)
        elif isinstance(s, ast.Assign):
            decl = self._lookup(s.target, s.line)
            if s.index is not None:
                if not isinstance(decl.type, ast.ArrayType):
                    raise SemaError(f"line {s.line}: indexing non-array "
                                    f"{s.target!r}")
                itype = self._check_expr(s.index)
                if itype.is_float:
                    raise SemaError(f"line {s.line}: array index must be "
                                    f"integer")
            elif isinstance(decl.type, ast.ArrayType):
                raise SemaError(f"line {s.line}: cannot assign whole "
                                f"array {s.target!r}")
            self._check_expr(s.value)
        elif isinstance(s, ast.ExprStmt):
            self._check_expr(s.expr)
        elif isinstance(s, ast.If):
            self._check_expr(s.cond)
            self._check_stmts(s.then)
            self._check_stmts(s.otherwise)
        elif isinstance(s, ast.While):
            self._check_expr(s.cond)
            self.loop_depth += 1
            self._check_stmts(s.body)
            self.loop_depth -= 1
        elif isinstance(s, ast.For):
            if s.init is not None:
                self._check_stmt(s.init)
            if s.cond is not None:
                self._check_expr(s.cond)
            if s.step is not None:
                self._check_stmt(s.step)
            self.loop_depth += 1
            self._check_stmts(s.body)
            self.loop_depth -= 1
        elif isinstance(s, ast.Return):
            if s.value is not None:
                self._check_expr(s.value)
        elif isinstance(s, (ast.Break, ast.Continue)):
            if self.loop_depth == 0:
                kind = "break" if isinstance(s, ast.Break) else "continue"
                raise SemaError(f"line {s.line}: {kind} outside a loop")
        else:
            raise SemaError(f"unknown statement {s!r}")

    # ----- expressions -----------------------------------------------------------

    def _check_expr(self, e: ast.Expr | None) -> ast.ScalarType:
        assert e is not None and self.fn is not None
        if isinstance(e, ast.IntLit):
            e.type = ast.INT
        elif isinstance(e, ast.FloatLit):
            e.type = ast.FLOAT
        elif isinstance(e, ast.Name):
            decl = self._lookup(e.ident, e.line)
            e.type = _value_type(decl.type, e.line)
        elif isinstance(e, ast.Index):
            decl = self._lookup(e.array, e.line)
            if not isinstance(decl.type, ast.ArrayType):
                raise SemaError(f"line {e.line}: indexing non-array "
                                f"{e.array!r}")
            itype = self._check_expr(e.index)
            if itype.is_float:
                raise SemaError(f"line {e.line}: array index must be "
                                f"integer")
            e.type = ast.FLOAT if decl.type.elem.is_float else ast.INT
        elif isinstance(e, ast.Unary):
            t = self._check_expr(e.operand)
            if e.op in ("!", "~") and t.is_float:
                raise SemaError(f"line {e.line}: {e.op!r} requires an "
                                f"integer operand")
            e.type = ast.INT if e.op in ("!", "~") else t
        elif isinstance(e, ast.Binary):
            lt = self._check_expr(e.left)
            rt = self._check_expr(e.right)
            if e.op in ("%", "<<", ">>", "&", "|", "^"):
                if lt.is_float or rt.is_float:
                    raise SemaError(f"line {e.line}: {e.op!r} requires "
                                    f"integer operands")
                e.type = ast.INT
            elif e.op in ("==", "!=", "<", "<=", ">", ">="):
                e.type = ast.INT
            else:
                e.type = ast.FLOAT if (lt.is_float or rt.is_float) \
                    else ast.INT
        elif isinstance(e, ast.Logical):
            self._check_expr(e.left)
            self._check_expr(e.right)
            e.type = ast.INT
        elif isinstance(e, ast.Conditional):
            self._check_expr(e.cond)
            t1 = self._check_expr(e.then)
            t2 = self._check_expr(e.otherwise)
            e.type = ast.FLOAT if (t1.is_float or t2.is_float) else ast.INT
        elif isinstance(e, ast.Call):
            if e.callee not in self.info.functions:
                raise SemaError(f"line {e.line}: call to undeclared "
                                f"function {e.callee!r}")
            callee = self.info.functions[e.callee].decl
            if len(e.args) != len(callee.params):
                raise SemaError(
                    f"line {e.line}: {e.callee} takes "
                    f"{len(callee.params)} args, got {len(e.args)}")
            for arg in e.args:
                self._check_expr(arg)
            e.type = ast.FLOAT if callee.return_type.is_float else ast.INT
        else:
            raise SemaError(f"unknown expression {e!r}")
        return e.type


def analyze(unit: ast.TranslationUnit) -> SemaInfo:
    """Type-check ``unit`` and return its symbol tables."""
    info = SemaInfo(unit)
    _Checker(info).check_unit()
    return info
