"""MiniC frontend: lexer, parser, semantic analysis, IR lowering."""

from repro.lang.lexer import LexError, Token, tokenize
from repro.lang.lower import LowerError, compile_minic, lower_unit
from repro.lang.parser import ParseError, parse
from repro.lang.sema import SemaError, SemaInfo, analyze

__all__ = [
    "LexError", "LowerError", "ParseError", "SemaError", "SemaInfo",
    "Token", "analyze", "compile_minic", "lower_unit", "parse", "tokenize",
]
