"""Sweep aggregation: canonical result JSON, surfaces, Pareto fronts.

A :class:`SweepResult` holds everything a sweep measured, keyed so the
canonical encoding (:meth:`SweepResult.to_json`) is *byte-identical*
across ``--jobs`` levels, SIGKILL+resume, and server restarts: sorted
keys, fixed separators, floats rounded to six places, no timestamps.
Derived views — mean-speedup surfaces per axis group and per-workload
Pareto frontiers over (issue width minimized, speedup maximized) — are
computed from the per-point measurements at build time, so a stored
result file is self-contained for ``repro sweep report``/``diff``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.engine.keys import SCHEMA_VERSION
from repro.robustness.errors import SpecError

#: axes that identify a surface group (everything but issue width)
GROUP_AXES = ("branch_limit", "caches", "icache_bytes", "dcache_bytes",
              "miss_penalty", "btb_entries", "btb_penalty", "latencies")


def _round(value: float) -> float:
    return round(float(value), 6)


@dataclass
class SweepResult:
    """One sweep's measurements plus derived surface/Pareto views."""

    spec: dict
    sweep_digest: str
    #: workload -> 1-issue superblock baseline cycles
    baseline_cycles: dict[str, int]
    #: one entry per lattice point: {"index", "machine_digest",
    #: "machine", "axes", "workloads": {wl: {model: {"cycles",
    #: "speedup"}}}}
    points: list[dict]
    surfaces: list[dict] = field(default_factory=list)
    pareto: dict[str, dict[str, list[dict]]] = field(default_factory=dict)

    def __post_init__(self):
        if not self.surfaces:
            self.surfaces = build_surfaces(self.points,
                                           self.spec["models"])
        if not self.pareto:
            self.pareto = build_pareto(self.points, self.spec["models"])

    # ----- canonical encoding -------------------------------------------

    def to_dict(self) -> dict:
        return {
            "schema": SCHEMA_VERSION,
            "kind": "sweep",
            "sweep_digest": self.sweep_digest,
            "spec": self.spec,
            "baseline_cycles": dict(sorted(
                self.baseline_cycles.items())),
            "points": self.points,
            "surfaces": self.surfaces,
            "pareto": self.pareto,
        }

    def to_json(self) -> str:
        """Canonical, timestamp-free bytes (plus no trailing newline)."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_dict(cls, data: object) -> "SweepResult":
        if not isinstance(data, dict) or data.get("kind") != "sweep":
            raise SpecError("not a sweep result (expected a JSON object "
                            "with kind='sweep')")
        return cls(spec=data["spec"],
                   sweep_digest=data["sweep_digest"],
                   baseline_cycles=data["baseline_cycles"],
                   points=data["points"],
                   surfaces=data.get("surfaces", []),
                   pareto=data.get("pareto", {}))

    @classmethod
    def from_file(cls, path: str) -> "SweepResult":
        try:
            with open(path, encoding="utf-8") as handle:
                data = json.load(handle)
        except OSError as exc:
            raise SpecError(f"cannot read sweep result {path}: {exc}") \
                from exc
        except ValueError as exc:
            raise SpecError(f"invalid JSON in {path}: {exc}") from exc
        return cls.from_dict(data)


# ----- derived views --------------------------------------------------------

def build_point_entry(point, measurements: dict[str, dict[str, dict]]
                      ) -> dict:
    """One canonical ``points`` entry for a :class:`SweepPoint`."""
    return {
        "index": point.index,
        "machine": point.machine.name,
        "machine_digest": point.machine.digest(),
        "schedule_digest": point.machine.schedule_digest(),
        "axes": point.axes_dict(),
        "workloads": measurements,
    }


def build_surfaces(points: list[dict], models: list[str]) -> list[dict]:
    """Mean-speedup-vs-issue-width tables, one per axis group.

    Groups are every combination of the non-width axes present in the
    lattice; within a group, each model maps issue width (as a string
    key — JSON) to the arithmetic-mean speedup across workloads, the
    paper's averaging.
    """
    groups: dict[tuple, dict] = {}
    for entry in points:
        axes = entry["axes"]
        key = tuple((axis, axes.get(axis)) for axis in GROUP_AXES)
        group = groups.setdefault(key, {
            "group": {axis: value for axis, value in key
                      if value is not None},
            "mean_speedup": {model: {} for model in models}})
        width = str(axes["issue_width"])
        for model in models:
            speedups = [row[model]["speedup"]
                        for row in entry["workloads"].values()
                        if model in row]
            if speedups:
                group["mean_speedup"][model][width] = _round(
                    sum(speedups) / len(speedups))
    return [groups[key] for key in sorted(
        groups, key=lambda k: json.dumps(k, sort_keys=True))]


def build_pareto(points: list[dict], models: list[str]
                 ) -> dict[str, dict[str, list[dict]]]:
    """Per-(workload, model) Pareto frontier: speedup vs issue width.

    A point is on the frontier when no other point achieves at least
    its speedup at a smaller-or-equal issue width.  Points are swept in
    (width ascending, speedup descending) order and kept only when they
    strictly improve the best speedup seen, so each frontier is the
    minimal staircase of "cheapest width achieving this speedup".
    """
    by_workload: dict[str, dict[str, list[tuple]]] = {}
    for entry in points:
        width = entry["axes"]["issue_width"]
        for workload, row in entry["workloads"].items():
            per_model = by_workload.setdefault(workload, {})
            for model in models:
                if model in row:
                    per_model.setdefault(model, []).append(
                        (width, row[model]["speedup"], entry["index"]))
    frontier: dict[str, dict[str, list[dict]]] = {}
    for workload in sorted(by_workload):
        frontier[workload] = {}
        for model, candidates in sorted(by_workload[workload].items()):
            candidates.sort(key=lambda c: (c[0], -c[1], c[2]))
            best = float("-inf")
            front = []
            for width, speedup, index in candidates:
                if speedup > best:
                    best = speedup
                    front.append({"issue_width": width,
                                  "speedup": _round(speedup),
                                  "point": index})
            frontier[workload][model] = front
    return frontier
