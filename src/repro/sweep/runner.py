"""Sweep execution: deterministic point fan-out over the DAG scheduler.

``run_sweep`` expands a :class:`SweepSpec` into its machine lattice and
builds a three-layer job DAG over the existing engine:

* ``prepare:{workload}`` — frontend + profile, once per workload;
* ``compile:{workload}:{model}:{key}`` — compile + emulate, once per
  distinct *schedule digest*: every lattice point differing only in
  caches/BTB shares these jobs (the paper's amortization of one
  emulation across machine configurations);
* ``sweep:{sweep_digest}:{index}`` — one job per lattice point,
  simulating every (workload, model) trace under that point's full
  machine description.

Point task ids are derived from ``(sweep_digest, index)`` — the fuzz
runner's deterministic work-partitioning template — so the same spec
produces the same task set in every process at any ``--jobs`` level,
the run journal makes a SIGKILLed sweep resumable with zero recompute
of completed points, and a warm store turns the whole plan into a
no-op (every artifact present, nothing scheduled).  Aggregation reads
artifacts back in lattice order, so the resulting
:class:`SweepResult` bytes never depend on execution interleaving.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.engine.metrics import PipelineMetrics
from repro.engine.recovery.retry import RetryPolicy
from repro.engine.scheduler import Job
from repro.engine.stages import PipelineContext
from repro.engine.store import ArtifactStore
from repro.engine.workers import compile_emulate, prepare_workload
from repro.experiments.runner import ExperimentSuite
from repro.machine.descriptor import MachineDescription, scalar_machine
from repro.sweep.result import SweepResult, build_point_entry
from repro.sweep.spec import SweepPoint, SweepSpec
from repro.toolchain import Model, ToolchainOptions
from repro.workloads.base import all_workloads, get_workload

_MODEL_BY_NAME = {"superblock": Model.SUPERBLOCK, "cmov": Model.CMOV,
                  "fullpred": Model.FULLPRED}


def point_task_id(sweep_digest: str, index: int) -> str:
    """Journal/task identity of lattice point ``index``."""
    return f"sweep:{sweep_digest[:12]}:{index:05d}"


def baseline_task_id(sweep_digest: str) -> str:
    return f"sweep:{sweep_digest[:12]}:baseline"


@dataclass(frozen=True)
class PointJobSpec:
    """Everything a pool worker needs to simulate one lattice point."""

    cache_dir: str
    workloads: tuple[str, ...]
    model_names: tuple[str, ...]
    machine: MachineDescription
    scale: float
    max_steps: int
    options: ToolchainOptions = field(default_factory=ToolchainOptions)
    wall_clock_budget: float | None = None
    engine: str = "fastpath"


def make_point_spec(spec: SweepSpec, cache_dir: str,
                    machine: MachineDescription,
                    model_names: tuple[str, ...] | None = None, *,
                    options: ToolchainOptions | None = None,
                    wall_clock_budget: float | None = None,
                    engine: str = "fastpath") -> PointJobSpec:
    """The :class:`PointJobSpec` for one machine of a sweep campaign.

    Shared by the in-process plan builder and the cluster workers
    (:mod:`repro.service.cluster`): both derive the exact same spec —
    and therefore the exact same artifact keys — from ``(SweepSpec,
    machine)``, which is what keeps a sharded campaign byte-identical
    to a single-node run.
    """
    names = tuple(spec.workloads) if spec.workloads \
        else tuple(w.name for w in all_workloads())
    return PointJobSpec(
        cache_dir=cache_dir, workloads=names,
        model_names=tuple(model_names) if model_names is not None
        else tuple(spec.models),
        machine=machine, scale=spec.scale, max_steps=spec.max_steps,
        options=options or ToolchainOptions(),
        wall_clock_budget=wall_clock_budget, engine=engine)


def simulate_point(spec: PointJobSpec) -> dict:
    """Pool worker: every (workload, model) summary for one machine.

    Compiled programs and traces are read from the shared store (the
    compile layer of the DAG produced them); only the cycle simulation
    under this point's full machine description is new work.
    """
    ctx = PipelineContext(
        scale=spec.scale, options=spec.options,
        max_steps=spec.max_steps,
        wall_clock_budget=spec.wall_clock_budget,
        store=ArtifactStore(spec.cache_dir),
        engine=spec.engine)
    for name in spec.workloads:
        workload = get_workload(name)
        for model_name in spec.model_names:
            ctx.run_summary(workload, _MODEL_BY_NAME[model_name],
                            spec.machine)
    return ctx.metrics.to_dict()


@dataclass
class SweepOutcome:
    """What ``run_sweep`` hands back to the CLI/service layer."""

    result: SweepResult
    metrics: PipelineMetrics
    run_id: str | None
    points_total: int
    #: points whose artifacts were all warm before the run (zero jobs)
    points_cached: int
    #: journal-verified tasks skipped on resume
    resumed_tasks: int


def run_sweep(spec: SweepSpec, cache_dir: str | None = None,
              jobs: int = 1, run_id: str | None = None,
              resume: bool = False, retry: RetryPolicy | None = None,
              wall_clock_budget: float | None = None,
              metrics: PipelineMetrics | None = None,
              engine: str = "fastpath") -> SweepOutcome:
    """Run one sweep campaign to a :class:`SweepResult`.

    ``cache_dir``/``jobs``/``run_id``/``resume``/``retry`` have the
    same semantics as every other suite entry point: store-backed runs
    are journaled and resumable, ``jobs > 1`` fans points across the
    process pool, and a warm rerun performs zero compiles, emulations
    or simulations.
    """
    start = time.monotonic()
    points = spec.expand()
    digest = spec.sweep_digest()
    workloads = [get_workload(name) for name in spec.workloads] \
        if spec.workloads else all_workloads()
    suite = ExperimentSuite(
        workloads=workloads, scale=spec.scale, max_steps=spec.max_steps,
        cache_dir=cache_dir, jobs=jobs, engine=engine, run_id=run_id,
        resume=resume, retry=retry, wall_clock_budget=wall_clock_budget,
        journal_meta={"kind": "sweep", "sweep": spec.name,
                      "sweep_digest": digest,
                      "tasks_total": len(points) + 1})
    if metrics is not None:
        suite.ctx.metrics = metrics
        if suite.ctx.store is not None:
            suite.ctx.store.metrics = metrics
    try:
        cached = _execute(suite, spec, points, digest)
        result = _aggregate(suite, spec, points, digest)
    except BaseException:
        suite.close_journal(ok=False)
        raise
    suite.close_journal(ok=True)
    suite.metrics.record_sweep(len(points), cached,
                               time.monotonic() - start)
    return SweepOutcome(result=result, metrics=suite.metrics,
                        run_id=suite.run_id, points_total=len(points),
                        points_cached=cached,
                        resumed_tasks=len(suite.resumed_verified))


# ----- plan construction ----------------------------------------------------

def _execute(suite: ExperimentSuite, spec: SweepSpec,
             points: list[SweepPoint], digest: str) -> int:
    """Build and run the sweep's job DAG; returns warm point count.

    Without a store (no cache dir, serial) there is nothing to fan out
    or journal — aggregation computes in-process.
    """
    store = suite.ctx.store
    if store is None:
        return 0
    plan: list[Job] = []
    job_ids: set[str] = set()
    prep_needed: set[str] = set()
    prep_warm: dict[str, bool] = {}

    def prepare_is_warm(workload) -> bool:
        """Frontend + profile already stored (e.g. before a resume)?"""
        warm = prep_warm.get(workload.name)
        if warm is None:
            from repro.engine import keys
            warm = store.contains(
                "frontend", keys.frontend_key(workload.source)) \
                and store.contains("profile", keys.profile_key(
                    workload.name, workload.source, spec.scale,
                    spec.max_steps))
            prep_warm[workload.name] = warm
        return warm

    def ensure_compile(workload, model, machine) -> str | None:
        """Schedule compile+emulate once per distinct schedule digest."""
        ce_key = suite.ctx.compile_key(workload, model, machine)
        ce_id = f"compile:{workload.name}:{model.name}:{ce_key[:12]}"
        if ce_id in job_ids:
            return ce_id
        exec_key = suite.ctx.execution_key(workload, model, machine)
        if store.contains("compiled", ce_key) \
                and store.contains("execution", exec_key):
            return None
        if prepare_is_warm(workload):
            deps = ()
        else:
            prep_needed.add(workload.name)
            deps = (f"prepare:{workload.name}",)
        plan.append(Job(
            job_id=ce_id, fn=compile_emulate,
            args=(suite._job_spec(workload.name, model, machine),),
            deps=deps, workload=workload.name,
            stage="compile+emulate",
            artifacts=(("compiled", ce_key), ("execution", exec_key))))
        job_ids.add(ce_id)
        return ce_id

    def point_job(task_id: str, machine,
                  model_names: tuple[str, ...]) -> bool:
        """Schedule one lattice point; True when served warm."""
        artifacts: list[tuple[str, str]] = []
        deps: list[str] = []
        missing = False
        for workload in suite.workloads:
            for name in model_names:
                model = _MODEL_BY_NAME[name]
                skey = suite.ctx.stats_key(workload, model, machine)
                artifacts.append(("stats", skey))
                if store.contains("stats", skey):
                    continue
                missing = True
                ce_id = ensure_compile(workload, model, machine)
                if ce_id is not None and ce_id not in deps:
                    deps.append(ce_id)
        if not missing:
            return True
        plan.append(Job(
            job_id=task_id, fn=simulate_point,
            args=(make_point_spec(
                spec, suite.cache_dir, machine, model_names,
                options=suite.options,
                wall_clock_budget=suite.wall_clock_budget,
                engine=suite.engine),),
            deps=tuple(deps), workload=None, stage="sweep-point",
            artifacts=tuple(artifacts)))
        job_ids.add(task_id)
        return False

    cached = 0
    baseline_warm = point_job(baseline_task_id(digest),
                              scalar_machine(), ("superblock",))
    for point in points:
        if point_job(point_task_id(digest, point.index),
                     point.machine, tuple(spec.models)):
            cached += 1
    if baseline_warm and cached == len(points):
        return cached
    for name in sorted(prep_needed):
        plan.append(Job(
            job_id=f"prepare:{name}", fn=prepare_workload,
            args=(suite._job_spec(name, Model.SUPERBLOCK,
                                  scalar_machine()),),
            workload=name, stage="prepare"))
    suite.execute_plan(plan)
    return cached


def _aggregate(suite: ExperimentSuite, spec: SweepSpec,
               points: list[SweepPoint], digest: str) -> SweepResult:
    """Read every point's stats back in lattice order.

    After ``_execute`` the store holds every artifact, so this is pure
    cache reads; without a store it is where the (serial) compute
    actually happens.
    """
    baseline: dict[str, int] = {}
    for workload in suite.workloads:
        baseline[workload.name] = suite.ctx.run_summary(
            workload, Model.SUPERBLOCK, scalar_machine()).stats.cycles
    entries: list[dict] = []
    for point in points:
        measurements: dict[str, dict] = {}
        for workload in suite.workloads:
            row: dict[str, dict] = {}
            for name in spec.models:
                summary = suite.ctx.run_summary(
                    workload, _MODEL_BY_NAME[name], point.machine)
                cycles = summary.stats.cycles
                row[name] = {
                    "cycles": cycles,
                    "speedup": round(
                        baseline[workload.name] / cycles, 6),
                    "instructions":
                        summary.stats.executed_instructions,
                }
            measurements[workload.name] = row
        entries.append(build_point_entry(point, measurements))
    return SweepResult(spec=spec.to_dict(), sweep_digest=digest,
                       baseline_cycles=baseline, points=entries)
