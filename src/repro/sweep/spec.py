"""Declarative sweep specifications and their machine lattice.

A :class:`SweepSpec` is a plain JSON/TOML-loadable grid over the
machine parameters the paper sweeps (issue width 1-8, branch issue
limit, cache on/off and geometry, BTB size/penalty) plus named latency
tables, the model set and the workload set.  :meth:`SweepSpec.expand`
walks the cartesian product in a fixed axis order and collapses it
into a deduplicated lattice of :class:`SweepPoint`\\ s — one per
distinct ``MachineDescription.digest()`` — so perfect-cache points do
not multiply across cache-geometry axes and the point index is a
stable, reproducible identity: point ``i`` of sweep digest ``S`` is
the same machine in every process at any ``--jobs`` level (the fuzz
runner's ``(seed, index)`` partitioning, applied to machines).

Every validation failure raises the typed
:class:`~repro.robustness.errors.SpecError` (exit 11) *before* any
digest is computed: a typo can never be silently hashed into a
never-matching cache key.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields, replace

from repro.engine.keys import stable_digest
from repro.machine.descriptor import (BTBConfig, CacheConfig,
                                      MachineDescription,
                                      normalize_latency_overrides)
from repro.robustness.errors import SpecError

#: model names accepted in a sweep, in canonical order
MODEL_NAMES = ("superblock", "cmov", "fullpred")

#: cache modes: "perfect" (no memory stalls) or "real" (direct-mapped
#: I/D caches with the spec's geometry axes)
CACHE_MODES = ("perfect", "real")

#: pre-dedup grid size bound — a runaway axis product fails loudly
#: instead of enqueueing a year of simulation
MAX_GRID = 4096


@dataclass(frozen=True)
class SweepPoint:
    """One machine of the lattice, with its axis coordinates."""

    index: int
    machine: MachineDescription
    #: axis name -> value, for surface grouping and reports
    axes: tuple[tuple[str, object], ...]

    def axes_dict(self) -> dict:
        return dict(self.axes)


def _int_axis(name: str, values, lo: int, hi: int) -> tuple[int, ...]:
    if not isinstance(values, (list, tuple)) or not values:
        raise SpecError(f"{name} must be a non-empty list of integers",
                        field=name)
    out = []
    for v in values:
        if not isinstance(v, int) or isinstance(v, bool) \
                or not lo <= v <= hi:
            raise SpecError(
                f"{name} entries must be integers in [{lo}, {hi}], "
                f"got {v!r}", field=name)
        out.append(v)
    if len(set(out)) != len(out):
        raise SpecError(f"{name} has duplicate entries: {list(values)}",
                        field=name)
    return tuple(out)


@dataclass(frozen=True)
class SweepSpec:
    """A declarative grid over machine parameters and model set.

    All axes default to single points, so a minimal spec (just
    ``issue_widths``) sweeps exactly one dimension.  ``workloads``
    empty means every registered workload.  ``latency_sets`` maps a
    set name to latency-table overrides over the PA-7100 defaults
    (``{}`` for the stock table); names become axis values in reports.
    """

    name: str = "sweep"
    scale: float = 1.0
    max_steps: int = 20_000_000
    workloads: tuple[str, ...] = ()
    models: tuple[str, ...] = MODEL_NAMES
    issue_widths: tuple[int, ...] = (1, 2, 4, 8)
    branch_limits: tuple[int, ...] = (1,)
    caches: tuple[str, ...] = ("perfect",)
    #: real-cache geometry axes (sized for the scaled kernel workloads;
    #: see EXPERIMENTS.md on the 64K -> 1K/2K substitution)
    icache_bytes: tuple[int, ...] = (1024,)
    dcache_bytes: tuple[int, ...] = (2048,)
    cache_line_bytes: int = 64
    miss_penalties: tuple[int, ...] = (12,)
    btb_entries: tuple[int, ...] = (1024,)
    btb_penalties: tuple[int, ...] = (2,)
    #: (set name, canonical latency overrides) pairs
    latency_sets: tuple[tuple[str, tuple[tuple[str, int], ...]], ...] = \
        (("pa7100", ()),)

    def __post_init__(self):
        if not isinstance(self.name, str) or not self.name.strip():
            raise SpecError("sweep name must be a non-empty string",
                            field="name")
        if not isinstance(self.scale, (int, float)) or self.scale <= 0:
            raise SpecError(f"scale must be positive, got {self.scale!r}",
                            field="scale")
        if not isinstance(self.max_steps, int) or self.max_steps <= 0:
            raise SpecError("max_steps must be a positive integer",
                            field="max_steps")
        unknown = [m for m in self.models if m not in MODEL_NAMES]
        if unknown or not self.models:
            raise SpecError(
                f"invalid models {list(self.models)!r} (expected a "
                f"non-empty subset of {list(MODEL_NAMES)})",
                field="models")
        if len(set(self.models)) != len(self.models):
            raise SpecError(f"models has duplicates: {list(self.models)}",
                            field="models")
        # Canonical model order: submissions spelling the same set
        # differently share a digest (and a single-flight slot).
        object.__setattr__(self, "models", tuple(
            m for m in MODEL_NAMES if m in set(self.models)))
        for w in self.workloads:
            from repro.workloads.base import get_workload
            try:
                get_workload(w)
            except KeyError:
                raise SpecError(f"unknown workload {w!r} (see "
                                f"`repro list`)", field="workloads") \
                    from None
        object.__setattr__(self, "issue_widths",
                           _int_axis("issue_widths", self.issue_widths,
                                     1, 16))
        object.__setattr__(self, "branch_limits",
                           _int_axis("branch_limits", self.branch_limits,
                                     1, 8))
        if not self.caches \
                or any(c not in CACHE_MODES for c in self.caches) \
                or len(set(self.caches)) != len(self.caches):
            raise SpecError(
                f"caches must be a non-empty, duplicate-free subset of "
                f"{list(CACHE_MODES)}, got {list(self.caches)!r}",
                field="caches")
        object.__setattr__(self, "icache_bytes",
                           _int_axis("icache_bytes", self.icache_bytes,
                                     64, 1 << 24))
        object.__setattr__(self, "dcache_bytes",
                           _int_axis("dcache_bytes", self.dcache_bytes,
                                     64, 1 << 24))
        if not isinstance(self.cache_line_bytes, int) \
                or not 4 <= self.cache_line_bytes <= 1024:
            raise SpecError("cache_line_bytes must be an integer in "
                            "[4, 1024]", field="cache_line_bytes")
        object.__setattr__(self, "miss_penalties",
                           _int_axis("miss_penalties",
                                     self.miss_penalties, 1, 1000))
        object.__setattr__(self, "btb_entries",
                           _int_axis("btb_entries", self.btb_entries,
                                     1, 1 << 20))
        object.__setattr__(self, "btb_penalties",
                           _int_axis("btb_penalties", self.btb_penalties,
                                     0, 100))
        if not self.latency_sets:
            raise SpecError("latency_sets must name at least one "
                            "latency table (e.g. {'pa7100': {}})",
                            field="latency_sets")
        canonical = []
        seen = set()
        for entry in self.latency_sets:
            try:
                lname, overrides = entry
            except (TypeError, ValueError):
                raise SpecError(
                    f"latency_sets entry {entry!r} is not a (name, "
                    f"overrides) pair", field="latency_sets") from None
            if not isinstance(lname, str) or not lname.strip():
                raise SpecError("latency set names must be non-empty "
                                "strings", field="latency_sets")
            if lname in seen:
                raise SpecError(f"duplicate latency set {lname!r}",
                                field="latency_sets")
            seen.add(lname)
            canonical.append((lname,
                              normalize_latency_overrides(overrides)))
        object.__setattr__(self, "latency_sets", tuple(canonical))
        grid = self.grid_size()
        if grid > MAX_GRID:
            raise SpecError(
                f"grid of {grid} combinations exceeds the {MAX_GRID} "
                f"bound — drop an axis or split the sweep",
                field="issue_widths")

    # ----- lattice ------------------------------------------------------

    def grid_size(self) -> int:
        """Pre-dedup cartesian-product size."""
        geometry = 1
        if "real" in self.caches:
            geometry = (len(self.icache_bytes) * len(self.dcache_bytes)
                        * len(self.miss_penalties))
        per_cache = {"perfect": 1, "real": geometry}
        return (sum(per_cache[c] for c in self.caches)
                * len(self.latency_sets) * len(self.btb_entries)
                * len(self.btb_penalties) * len(self.branch_limits)
                * len(self.issue_widths))

    def _geometries(self, mode: str):
        """(icache, dcache, penalty) combos for one cache mode.

        Perfect-cache machines ignore cache geometry, so the axes
        collapse to the canonical default — that is what dedups a
        perfect x {4 geometries} cross into a single lattice point.
        """
        if mode == "perfect":
            yield None, None, None
            return
        for ic in self.icache_bytes:
            for dc in self.dcache_bytes:
                for penalty in self.miss_penalties:
                    yield ic, dc, penalty

    def expand(self) -> list[SweepPoint]:
        """The deduplicated machine lattice, in stable index order.

        Axis nesting (outer to inner): latency set, cache mode, cache
        geometry, BTB entries, BTB penalty, branch limit, issue width.
        Duplicate machine digests keep their first occurrence.
        """
        points: list[SweepPoint] = []
        seen: set[str] = set()
        for lname, overrides in self.latency_sets:
            for mode in self.caches:
                for ic, dc, penalty in self._geometries(mode):
                    for entries in self.btb_entries:
                        for btb_penalty in self.btb_penalties:
                            for limit in self.branch_limits:
                                for width in self.issue_widths:
                                    m = self._machine(
                                        width, limit, mode, ic, dc,
                                        penalty, entries, btb_penalty,
                                        lname, overrides)
                                    digest = m.digest()
                                    if digest in seen:
                                        continue
                                    seen.add(digest)
                                    axes = (
                                        ("issue_width", width),
                                        ("branch_limit", limit),
                                        ("caches", mode),
                                        ("icache_bytes", ic),
                                        ("dcache_bytes", dc),
                                        ("miss_penalty", penalty),
                                        ("btb_entries", entries),
                                        ("btb_penalty", btb_penalty),
                                        ("latencies", lname),
                                    )
                                    points.append(SweepPoint(
                                        index=len(points), machine=m,
                                        axes=axes))
        return points

    def _machine(self, width, limit, mode, ic, dc, penalty, entries,
                 btb_penalty, lname, overrides) -> MachineDescription:
        name = f"w{width}.b{limit}.{mode}.{lname}"
        machine = MachineDescription(
            name=name, issue_width=width, branch_issue_limit=limit,
            btb=BTBConfig(entries=entries,
                          mispredict_penalty=btb_penalty),
            latency_overrides=overrides)
        if mode == "real":
            machine = replace(
                machine, perfect_caches=False,
                icache=CacheConfig(size_bytes=ic,
                                   line_bytes=self.cache_line_bytes,
                                   miss_penalty=penalty),
                dcache=CacheConfig(size_bytes=dc,
                                   line_bytes=self.cache_line_bytes,
                                   miss_penalty=penalty))
        return machine

    # ----- identity -----------------------------------------------------

    def sweep_digest(self) -> str:
        """Content address of the computation the sweep names.

        ``name`` is a display label and deliberately excluded: two
        differently-named but identical grids partition and dedup the
        same way.
        """
        data = self.to_dict()
        data.pop("name")
        return stable_digest("sweep-spec", data)

    # ----- wire format --------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "scale": self.scale,
            "max_steps": self.max_steps,
            "workloads": list(self.workloads),
            "models": list(self.models),
            "issue_widths": list(self.issue_widths),
            "branch_limits": list(self.branch_limits),
            "caches": list(self.caches),
            "icache_bytes": list(self.icache_bytes),
            "dcache_bytes": list(self.dcache_bytes),
            "cache_line_bytes": self.cache_line_bytes,
            "miss_penalties": list(self.miss_penalties),
            "btb_entries": list(self.btb_entries),
            "btb_penalties": list(self.btb_penalties),
            "latency_sets": {lname: dict(overrides)
                             for lname, overrides in self.latency_sets},
        }

    @classmethod
    def from_dict(cls, data: object) -> "SweepSpec":
        if not isinstance(data, dict):
            raise SpecError(f"sweep spec must be a JSON object, got "
                            f"{type(data).__name__}")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise SpecError(f"unknown sweep spec fields: "
                            f"{', '.join(unknown)} (known: "
                            f"{', '.join(sorted(known))})")
        kwargs = dict(data)
        for key in ("workloads", "models", "caches"):
            if key in kwargs:
                value = kwargs[key]
                if not isinstance(value, (list, tuple)) \
                        or not all(isinstance(v, str) for v in value):
                    raise SpecError(f"{key} must be a list of strings",
                                    field=key)
                kwargs[key] = tuple(value)
        for key in ("issue_widths", "branch_limits", "icache_bytes",
                    "dcache_bytes", "miss_penalties", "btb_entries",
                    "btb_penalties"):
            if key in kwargs:
                value = kwargs[key]
                if not isinstance(value, (list, tuple)):
                    raise SpecError(f"{key} must be a list of integers",
                                    field=key)
                kwargs[key] = tuple(value)
        if "latency_sets" in kwargs:
            sets = kwargs["latency_sets"]
            if not isinstance(sets, dict):
                raise SpecError(
                    "latency_sets must be a table of name -> {op class: "
                    "cycles} overrides", field="latency_sets")
            kwargs["latency_sets"] = tuple(
                (str(lname), tuple(sorted(
                    (str(k), v) for k, v in overrides.items()))
                 if isinstance(overrides, dict) else overrides)
                for lname, overrides in sorted(sets.items()))
        try:
            return cls(**kwargs)
        except TypeError as exc:
            raise SpecError(f"malformed sweep spec: {exc}") from exc

    @classmethod
    def from_file(cls, path: str) -> "SweepSpec":
        """Load a spec from ``.json`` or ``.toml`` (Python 3.11+)."""
        try:
            with open(path, "rb") as handle:
                raw = handle.read()
        except OSError as exc:
            raise SpecError(f"cannot read sweep spec {path}: {exc}") \
                from exc
        if path.endswith(".toml"):
            try:
                import tomllib
            except ImportError:
                raise SpecError(
                    f"TOML sweep specs need Python 3.11+ (no tomllib "
                    f"here) — rewrite {path} as JSON") from None
            try:
                data = tomllib.loads(raw.decode("utf-8"))
            except (tomllib.TOMLDecodeError, UnicodeDecodeError) as exc:
                raise SpecError(f"invalid TOML in {path}: {exc}") \
                    from exc
        else:
            try:
                data = json.loads(raw)
            except ValueError as exc:
                raise SpecError(
                    f"invalid JSON in {path}: {exc} (use a .toml "
                    f"suffix for TOML specs)") from exc
        return cls.from_dict(data)
