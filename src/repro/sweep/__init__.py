"""Design-space exploration: declarative machine grids over one
shared pipeline.

A :class:`~repro.sweep.spec.SweepSpec` names a parameter grid (issue
width, branch issue limit, cache geometry, BTB, latency tables, model
set); :func:`~repro.sweep.runner.run_sweep` expands it into a
deduplicated lattice of frozen :class:`MachineDescription` digests,
fans the points out over the DAG scheduler and artifact store, and
aggregates per-point stats into a
:class:`~repro.sweep.result.SweepResult` with speedup-vs-config
surface tables and per-workload Pareto frontiers.
"""

from repro.sweep.result import SweepResult
from repro.sweep.runner import SweepOutcome, run_sweep
from repro.sweep.spec import SweepPoint, SweepSpec

__all__ = ["SweepSpec", "SweepPoint", "SweepResult", "SweepOutcome",
           "run_sweep"]
