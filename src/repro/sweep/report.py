"""Text rendering for sweep results: surfaces, Pareto fronts, diffs.

Operates on the parsed canonical JSON (``SweepResult.to_dict()``
shape), so ``repro sweep report``/``diff`` work on stored result files
without re-running anything.
"""

from __future__ import annotations


def _fmt_group(group: dict) -> str:
    if not group:
        return "(whole grid)"
    return " ".join(f"{key}={value}" for key, value in sorted(
        group.items()))


def _widths_of(surface: dict) -> list[int]:
    widths: set[int] = set()
    for per_width in surface["mean_speedup"].values():
        widths.update(int(w) for w in per_width)
    return sorted(widths)


def render(result: dict) -> str:
    """Human-readable report for one sweep result dict."""
    spec = result["spec"]
    lines = [
        f"sweep {spec.get('name', 'sweep')}  "
        f"digest {result['sweep_digest'][:12]}",
        f"  {len(result['points'])} points | models: "
        f"{', '.join(spec['models'])} | workloads: "
        f"{', '.join(sorted(result['baseline_cycles']))}",
        "",
        "mean speedup vs 1-issue superblock baseline",
    ]
    for surface in result["surfaces"]:
        widths = _widths_of(surface)
        lines.append(f"  [{_fmt_group(surface['group'])}]")
        header = "    {:<12}".format("model") + "".join(
            f"{'w=' + str(w):>9}" for w in widths)
        lines.append(header)
        for model in spec["models"]:
            per_width = surface["mean_speedup"].get(model, {})
            cells = "".join(
                f"{per_width[str(w)]:>9.3f}" if str(w) in per_width
                else f"{'-':>9}" for w in widths)
            lines.append(f"    {model:<12}{cells}")
    lines.append("")
    lines.append("pareto frontier (cheapest issue width per speedup)")
    for workload in sorted(result["pareto"]):
        per_model = result["pareto"][workload]
        for model in spec["models"]:
            front = per_model.get(model)
            if not front:
                continue
            stairs = " -> ".join(
                f"w{step['issue_width']}:{step['speedup']:.3f}"
                for step in front)
            lines.append(f"  {workload:<10} {model:<12} {stairs}")
    return "\n".join(lines) + "\n"


# ----- diff -----------------------------------------------------------------

def _index_points(result: dict) -> dict[str, dict]:
    return {entry["machine_digest"]: entry
            for entry in result["points"]}


def diff(old: dict, new: dict, epsilon: float = 1e-6) -> str:
    """Compare two sweep results point-for-point.

    Points pair up by machine digest (grid membership), so diffing
    results from overlapping-but-different specs reports added and
    removed configurations rather than misaligning indices.  Speedup
    changes smaller than ``epsilon`` are noise and suppressed.
    """
    lines = [f"sweep diff: {old['sweep_digest'][:12]} -> "
             f"{new['sweep_digest'][:12]}"]
    old_base = old["baseline_cycles"]
    new_base = new["baseline_cycles"]
    for workload in sorted(set(old_base) | set(new_base)):
        before, after = old_base.get(workload), new_base.get(workload)
        if before != after:
            lines.append(f"  baseline {workload}: {before} -> {after} "
                         f"cycles")
    old_points = _index_points(old)
    new_points = _index_points(new)
    for digest in sorted(set(old_points) - set(new_points)):
        lines.append(f"  - removed {old_points[digest]['machine']}")
    for digest in sorted(set(new_points) - set(old_points)):
        lines.append(f"  + added   {new_points[digest]['machine']}")
    common = sorted(set(old_points) & set(new_points))
    changed = 0
    for digest in common:
        a, b = old_points[digest], new_points[digest]
        deltas = []
        for workload in sorted(set(a["workloads"]) & set(b["workloads"])):
            for model in sorted(set(a["workloads"][workload])
                                & set(b["workloads"][workload])):
                before = a["workloads"][workload][model]["speedup"]
                after = b["workloads"][workload][model]["speedup"]
                if abs(after - before) > epsilon:
                    deltas.append(f"{workload}/{model} "
                                  f"{before:.3f} -> {after:.3f}")
        if deltas:
            changed += 1
            lines.append(f"  ~ {a['machine']}: " + "; ".join(deltas))
    if changed == 0 and len(lines) == 1:
        lines.append("  identical")
    else:
        lines.append(f"  {changed} changed, {len(common) - changed} "
                     f"identical, "
                     f"{len(set(new_points) - set(old_points))} added, "
                     f"{len(set(old_points) - set(new_points))} removed")
    return "\n".join(lines) + "\n"
