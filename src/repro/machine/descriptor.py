"""Machine descriptions for the paper's processor models.

A :class:`MachineDescription` bundles every parameter of the simulated
processor: issue width, branch issue limit, the latency table, branch
prediction, and the memory hierarchy (perfect or real caches).  The
paper's configurations (Figures 8-11) are provided as constructors.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import lru_cache

from repro.ir.opcodes import Opcode, OpCategory, category
from repro.machine.latencies import latency as _pa7100_latency

#: op-class names a latency override may target: a coarse category
#: ("load", "falu") or an individual opcode mnemonic ("mul", "div_f").
_CATEGORY_NAMES = {c.value: c for c in OpCategory}
_OPCODE_NAMES = {o.value: o for o in Opcode}


def normalize_latency_overrides(overrides) -> tuple[tuple[str, int], ...]:
    """Validate and canonicalize a latency-override table.

    Accepts a mapping or an iterable of ``(name, cycles)`` pairs and
    returns a sorted tuple — the hashable canonical form embedded in
    :class:`MachineDescription`.  Unknown op-class names and
    non-positive cycle counts raise a typed ``SpecError`` *here*, before
    any digest is computed, so a typo can never be silently hashed into
    a never-matching cache key.
    """
    from repro.robustness.errors import SpecError
    items = overrides.items() if hasattr(overrides, "items") else overrides
    table: dict[str, int] = {}
    for pair in items:
        try:
            name, cycles = pair
        except (TypeError, ValueError):
            raise SpecError(
                f"latency override {pair!r} is not a (name, cycles) pair",
                field="latency_overrides") from None
        if name not in _CATEGORY_NAMES and name not in _OPCODE_NAMES:
            known = ", ".join(sorted(_CATEGORY_NAMES))
            raise SpecError(
                f"unknown op class {name!r} in latency overrides "
                f"(categories: {known}; or any opcode mnemonic)",
                field="latency_overrides")
        if not isinstance(cycles, int) or isinstance(cycles, bool) \
                or not 1 <= cycles <= 1024:
            raise SpecError(
                f"latency override {name!r} must be an integer cycle "
                f"count in [1, 1024], got {cycles!r}",
                field="latency_overrides")
        if name in table and table[name] != cycles:
            raise SpecError(
                f"conflicting latency overrides for {name!r}: "
                f"{table[name]} vs {cycles}", field="latency_overrides")
        table[name] = cycles
    return tuple(sorted(table.items()))


@lru_cache(maxsize=64)
def _split_overrides(overrides: tuple[tuple[str, int], ...]
                     ) -> tuple[dict[Opcode, int], dict[OpCategory, int]]:
    """Partition canonical overrides into opcode- and category-keyed maps.

    Names that are both a category and an opcode mnemonic ("load",
    "cmov", ...) take the *category* meaning — a latency table entry
    named "load" reads as "all loads", matching the paper's tables.
    """
    by_op: dict[Opcode, int] = {}
    by_cat: dict[OpCategory, int] = {}
    for name, cycles in overrides:
        if name in _CATEGORY_NAMES:
            by_cat[_CATEGORY_NAMES[name]] = cycles
        else:
            by_op[_OPCODE_NAMES[name]] = cycles
    return by_op, by_cat


@dataclass(frozen=True)
class CacheConfig:
    """Direct-mapped cache parameters (paper Section 4.1)."""

    size_bytes: int = 64 * 1024
    line_bytes: int = 64
    miss_penalty: int = 12

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_bytes


@dataclass(frozen=True)
class BTBConfig:
    """Branch target buffer: 1K entries, 2-bit counters, 2-cycle penalty."""

    entries: int = 1024
    mispredict_penalty: int = 2


@dataclass(frozen=True)
class MachineDescription:
    """Complete description of a simulated target processor."""

    name: str = "baseline"
    issue_width: int = 8
    branch_issue_limit: int = 1
    #: predicate define -> guarded use minimum distance, in cycles
    #: (suppression happens at decode/issue, so the predicate must be set
    #: at least the previous cycle — paper Section 2.1).
    predicate_use_delay: int = 1
    perfect_caches: bool = True
    icache: CacheConfig = field(default_factory=CacheConfig)
    dcache: CacheConfig = field(default_factory=CacheConfig)
    btb: BTBConfig = field(default_factory=BTBConfig)
    #: bytes per encoded instruction, for I-cache indexing
    instruction_bytes: int = 4
    #: latency-table overrides as canonical ``((name, cycles), ...)``
    #: pairs over PA-7100 defaults; names are op categories or opcode
    #: mnemonics, validated by :func:`normalize_latency_overrides`.
    latency_overrides: tuple[tuple[str, int], ...] = ()

    def __post_init__(self):
        if self.latency_overrides:
            object.__setattr__(
                self, "latency_overrides",
                normalize_latency_overrides(self.latency_overrides))

    def latency(self, op: Opcode) -> int:
        if self.latency_overrides:
            by_op, by_cat = _split_overrides(self.latency_overrides)
            if op in by_op:
                return by_op[op]
            cat = category(op)
            if cat in by_cat:
                return by_cat[cat]
        return _pa7100_latency(op)

    def with_issue(self, width: int, branches: int) -> "MachineDescription":
        return replace(self, issue_width=width, branch_issue_limit=branches,
                       name=f"{width}-issue,{branches}-branch")

    def with_latencies(self, overrides) -> "MachineDescription":
        """Return a copy with ``overrides`` layered on the PA-7100 table."""
        return replace(self, latency_overrides=normalize_latency_overrides(
            overrides))

    def with_real_caches(self, icache: CacheConfig | None = None,
                         dcache: CacheConfig | None = None
                         ) -> "MachineDescription":
        return replace(self, perfect_caches=False,
                       icache=icache or self.icache,
                       dcache=dcache or self.dcache)

    # ----- cache-key digests --------------------------------------------

    def digest(self) -> str:
        """Stable digest of every simulation-relevant parameter.

        ``name`` is a display label and deliberately excluded: two
        differently-named but identical machines must share artifacts.
        """
        from repro.engine.keys import stable_digest
        overrides = normalize_latency_overrides(self.latency_overrides)
        return stable_digest(
            self.issue_width, self.branch_issue_limit,
            self.predicate_use_delay, self.perfect_caches, self.icache,
            self.dcache, self.btb, self.instruction_bytes,
            *((["latencies", overrides],) if overrides else ()))

    def schedule_digest(self) -> str:
        """Digest of the parameters that affect *compilation* only.

        The list scheduler sees issue width, branch issue limit, the
        predicate-use delay, instruction encoding size and the latency
        table (DAG edge weights); the memory hierarchy does not reorder
        code, so machines differing only in caches/BTB share compiled
        programs and traces (the paper's amortization of one emulation
        across machine configurations).
        """
        from repro.engine.keys import stable_digest
        overrides = normalize_latency_overrides(self.latency_overrides)
        return stable_digest(
            self.issue_width, self.branch_issue_limit,
            self.predicate_use_delay, self.instruction_bytes,
            *((["latencies", overrides],) if overrides else ()))


def scalar_machine() -> MachineDescription:
    """The 1-issue baseline processor used as the speedup denominator."""
    return MachineDescription(name="1-issue", issue_width=1,
                              branch_issue_limit=1)


def fig8_machine() -> MachineDescription:
    """8-issue, 1-branch, perfect caches (Figure 8)."""
    return MachineDescription(name="8-issue,1-branch", issue_width=8,
                              branch_issue_limit=1)


def fig9_machine() -> MachineDescription:
    """8-issue, 2-branch, perfect caches (Figure 9)."""
    return MachineDescription(name="8-issue,2-branch", issue_width=8,
                              branch_issue_limit=2)


def fig10_machine() -> MachineDescription:
    """4-issue, 1-branch, perfect caches (Figure 10)."""
    return MachineDescription(name="4-issue,1-branch", issue_width=4,
                              branch_issue_limit=1)


def fig11_machine(icache_bytes: int = 64 * 1024,
                  dcache_bytes: int = 64 * 1024) -> MachineDescription:
    """8-issue, 1-branch with real caches (Figure 11).

    Cache sizes are parameters because the repository's workloads are
    scaled-down kernels: with the paper's 64K caches they fit entirely,
    so the experiment harness uses proportionally scaled caches (see
    EXPERIMENTS.md) while the paper's exact geometry remains the default.
    """
    m = MachineDescription(name="8-issue,1-branch,real-caches",
                           issue_width=8, branch_issue_limit=1)
    return m.with_real_caches(CacheConfig(size_bytes=icache_bytes),
                              CacheConfig(size_bytes=dcache_bytes))
