"""Machine descriptions for the paper's processor models.

A :class:`MachineDescription` bundles every parameter of the simulated
processor: issue width, branch issue limit, the latency table, branch
prediction, and the memory hierarchy (perfect or real caches).  The
paper's configurations (Figures 8-11) are provided as constructors.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.ir.opcodes import Opcode
from repro.machine.latencies import latency as _pa7100_latency


@dataclass(frozen=True)
class CacheConfig:
    """Direct-mapped cache parameters (paper Section 4.1)."""

    size_bytes: int = 64 * 1024
    line_bytes: int = 64
    miss_penalty: int = 12

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_bytes


@dataclass(frozen=True)
class BTBConfig:
    """Branch target buffer: 1K entries, 2-bit counters, 2-cycle penalty."""

    entries: int = 1024
    mispredict_penalty: int = 2


@dataclass(frozen=True)
class MachineDescription:
    """Complete description of a simulated target processor."""

    name: str = "baseline"
    issue_width: int = 8
    branch_issue_limit: int = 1
    #: predicate define -> guarded use minimum distance, in cycles
    #: (suppression happens at decode/issue, so the predicate must be set
    #: at least the previous cycle — paper Section 2.1).
    predicate_use_delay: int = 1
    perfect_caches: bool = True
    icache: CacheConfig = field(default_factory=CacheConfig)
    dcache: CacheConfig = field(default_factory=CacheConfig)
    btb: BTBConfig = field(default_factory=BTBConfig)
    #: bytes per encoded instruction, for I-cache indexing
    instruction_bytes: int = 4

    def latency(self, op: Opcode) -> int:
        return _pa7100_latency(op)

    def with_issue(self, width: int, branches: int) -> "MachineDescription":
        return replace(self, issue_width=width, branch_issue_limit=branches,
                       name=f"{width}-issue,{branches}-branch")

    def with_real_caches(self, icache: CacheConfig | None = None,
                         dcache: CacheConfig | None = None
                         ) -> "MachineDescription":
        return replace(self, perfect_caches=False,
                       icache=icache or self.icache,
                       dcache=dcache or self.dcache)

    # ----- cache-key digests --------------------------------------------

    def digest(self) -> str:
        """Stable digest of every simulation-relevant parameter.

        ``name`` is a display label and deliberately excluded: two
        differently-named but identical machines must share artifacts.
        """
        from repro.engine.keys import stable_digest
        return stable_digest(
            self.issue_width, self.branch_issue_limit,
            self.predicate_use_delay, self.perfect_caches, self.icache,
            self.dcache, self.btb, self.instruction_bytes)

    def schedule_digest(self) -> str:
        """Digest of the parameters that affect *compilation* only.

        The list scheduler sees issue width, branch issue limit, the
        predicate-use delay and instruction encoding size; the memory
        hierarchy does not reorder code, so machines differing only in
        caches/BTB share compiled programs and traces (the paper's
        amortization of one emulation across machine configurations).
        """
        from repro.engine.keys import stable_digest
        return stable_digest(
            self.issue_width, self.branch_issue_limit,
            self.predicate_use_delay, self.instruction_bytes)


def scalar_machine() -> MachineDescription:
    """The 1-issue baseline processor used as the speedup denominator."""
    return MachineDescription(name="1-issue", issue_width=1,
                              branch_issue_limit=1)


def fig8_machine() -> MachineDescription:
    """8-issue, 1-branch, perfect caches (Figure 8)."""
    return MachineDescription(name="8-issue,1-branch", issue_width=8,
                              branch_issue_limit=1)


def fig9_machine() -> MachineDescription:
    """8-issue, 2-branch, perfect caches (Figure 9)."""
    return MachineDescription(name="8-issue,2-branch", issue_width=8,
                              branch_issue_limit=2)


def fig10_machine() -> MachineDescription:
    """4-issue, 1-branch, perfect caches (Figure 10)."""
    return MachineDescription(name="4-issue,1-branch", issue_width=4,
                              branch_issue_limit=1)


def fig11_machine(icache_bytes: int = 64 * 1024,
                  dcache_bytes: int = 64 * 1024) -> MachineDescription:
    """8-issue, 1-branch with real caches (Figure 11).

    Cache sizes are parameters because the repository's workloads are
    scaled-down kernels: with the paper's 64K caches they fit entirely,
    so the experiment harness uses proportionally scaled caches (see
    EXPERIMENTS.md) while the paper's exact geometry remains the default.
    """
    m = MachineDescription(name="8-issue,1-branch,real-caches",
                           issue_width=8, branch_issue_limit=1)
    return m.with_real_caches(CacheConfig(size_bytes=icache_bytes),
                              CacheConfig(size_bytes=dcache_bytes))
