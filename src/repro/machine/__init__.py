"""Machine model: processor descriptions, latencies, predicate semantics."""

from repro.machine.descriptor import (BTBConfig, CacheConfig,
                                      MachineDescription, fig8_machine,
                                      fig9_machine, fig10_machine,
                                      fig11_machine, scalar_machine)
from repro.machine.latencies import latency
from repro.machine.predicates import (UNCHANGED, apply_pred_define,
                                      is_parallel_type, pred_update)

__all__ = [
    "BTBConfig", "CacheConfig", "MachineDescription", "UNCHANGED",
    "apply_pred_define", "fig8_machine", "fig9_machine", "fig10_machine",
    "fig11_machine", "is_parallel_type", "latency", "pred_update",
    "scalar_machine",
]
