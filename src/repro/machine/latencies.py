"""Instruction latency table modelled on the HP PA-RISC 7100.

The paper states: "The instruction latencies assumed are those of the HP
PA-RISC 7100."  The PA-7100 executes integer ALU operations in a single
cycle, loads in two (use-delay of one), floating-point add/multiply in two
cycles, and iterative divide in roughly 8 (single precision).  Integer
multiply runs through the FP unit.
"""

from __future__ import annotations

from repro.ir.opcodes import OpCategory, Opcode, category

#: Cycles from issue until the result may be consumed.
_LATENCY_BY_OPCODE: dict[Opcode, int] = {
    Opcode.MUL: 3,        # integer multiply via the FP unit
    Opcode.DIV: 8,
    Opcode.REM: 8,
    Opcode.FADD: 2,
    Opcode.FSUB: 2,
    Opcode.FMUL: 2,
    Opcode.FDIV: 8,
    Opcode.CVT_IF: 2,
    Opcode.CVT_FI: 2,
}

_LATENCY_BY_CATEGORY: dict[OpCategory, int] = {
    OpCategory.ALU: 1,
    OpCategory.CMP: 1,
    OpCategory.FALU: 2,
    OpCategory.FCMP: 1,
    OpCategory.LOAD: 2,
    OpCategory.STORE: 1,
    OpCategory.BRANCH: 1,
    OpCategory.JUMP: 1,
    OpCategory.CALL: 1,
    OpCategory.RET: 1,
    OpCategory.PREDDEF: 1,
    OpCategory.PREDSET: 1,
    OpCategory.CMOV: 1,
    OpCategory.SELECT: 1,
    OpCategory.NOP: 1,
}


def latency(op: Opcode) -> int:
    """Result latency in cycles of opcode ``op``."""
    if op in _LATENCY_BY_OPCODE:
        return _LATENCY_BY_OPCODE[op]
    return _LATENCY_BY_CATEGORY[category(op)]
