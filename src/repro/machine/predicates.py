"""Predicate define semantics — the truth table of paper Table 1.

A predicate define instruction evaluates a comparison and updates each of
its (up to two) typed destination predicate registers as a function of the
input predicate ``p_in`` and the comparison result.  Six of the 81
possible types are supported, following the HPL PlayDoh semantics the
paper adopts: unconditional (U), OR, AND, and their complements.
"""

from __future__ import annotations

from repro.ir.instruction import PType

#: Marker for "leave the destination predicate unchanged".
UNCHANGED = None


def pred_update(ptype: PType, p_in: int, cmp_result: int) -> int | None:
    """New value for a destination predicate, or ``UNCHANGED``.

    Implements paper Table 1:

    ========  =====  ===  ====  ===  =====  ====  ======
    ``p_in``  *cmp*  U    U~    OR   OR~    AND   AND~
    ========  =====  ===  ====  ===  =====  ====  ======
    0         0      0    0     -    -      -     -
    0         1      0    0     -    -      -     -
    1         0      0    1     -    1      0     -
    1         1      1    0     1    -      -     0
    ========  =====  ===  ====  ===  =====  ====  ======
    """
    p_in = 1 if p_in else 0
    cmp_result = 1 if cmp_result else 0
    if ptype is PType.U:
        return cmp_result if p_in else 0
    if ptype is PType.U_BAR:
        return (cmp_result ^ 1) if p_in else 0
    if ptype is PType.OR:
        return 1 if (p_in and cmp_result) else UNCHANGED
    if ptype is PType.OR_BAR:
        return 1 if (p_in and not cmp_result) else UNCHANGED
    if ptype is PType.AND:
        return 0 if (p_in and not cmp_result) else UNCHANGED
    if ptype is PType.AND_BAR:
        return 0 if (p_in and cmp_result) else UNCHANGED
    raise ValueError(f"unknown predicate type {ptype}")


def apply_pred_define(ptype: PType, old: int, p_in: int,
                      cmp_result: int) -> int:
    """Resulting register value after one define (``old`` if unchanged)."""
    new = pred_update(ptype, p_in, cmp_result)
    return old if new is UNCHANGED else new


#: OR-type defines may issue simultaneously and in any order on the same
#: predicate register (wired-OR); likewise AND-types.  U-types always
#: write, so they may not.
PARALLEL_TYPES = frozenset({PType.OR, PType.OR_BAR,
                            PType.AND, PType.AND_BAR})


def is_parallel_type(ptype: PType) -> bool:
    """True if same-register defines of this type are order-independent."""
    return ptype in PARALLEL_TYPES
