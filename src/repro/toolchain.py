"""End-to-end toolchain: the paper's three processor models.

``SUPERBLOCK`` (baseline), ``CMOV`` (partial predication) and
``FULLPRED`` (full predication) share the frontend, classic optimizer,
profiler, scheduler, emulator and cycle simulator; they differ in region
formation and predication lowering exactly as Section 4.1 describes:

* SUPERBLOCK — superblock formation + speculative scheduling;
* FULLPRED — hyperblock formation (if-conversion), predicate promotion,
  branch combining;
* CMOV — the FULLPRED pipeline followed by the full→partial lowering
  (basic conversions, comparison inversion, post-conversion peephole,
  OR-tree height reduction).

Speedups are reported against the 1-issue SUPERBLOCK configuration, as
in the paper.
"""

from __future__ import annotations

import copy
import enum
from dataclasses import dataclass, field

from repro.analysis.profile import Profile
from repro.emu.interpreter import run_program
from repro.emu.trace import ExecutionResult
from repro.ir.function import IRError, Program
from repro.ir.verifier import ISALevel, VerificationError, verify_program
from repro.lang.lower import compile_minic
from repro.machine.descriptor import MachineDescription, scalar_machine
from repro.opt.cfg_cleanup import normalize_basic_blocks
from repro.opt.licm import hoist_loop_invariants
from repro.opt.pipeline import (CLASSIC_PASSES, optimize_program,
                                run_function_passes)
from repro.partial.conversion import ConversionParams, convert_to_partial
from repro.partial.ortree import reduce_function_or_trees
from repro.regions.branch_combine import (BranchCombineParams,
                                          combine_branches)
from repro.regions.hyperblock import HyperblockParams, form_hyperblocks
from repro.regions.predopt import optimize_hyperblock_predicates
from repro.regions.promotion import promote_all
from repro.regions.superblock import SuperblockParams, form_superblocks
from repro.regions.unroll import UnrollParams, unroll_function_loops
from repro.robustness.errors import (CompileError, PassVerificationError,
                                     ReproError, TraceIntegrityError)
from repro.robustness.passgate import Degradation, PassGate
from repro.robustness.watchdog import EmulationWatchdog
from repro.schedule.list_scheduler import ScheduleResult, schedule_program
from repro.sim.pipeline import (SimulationStats, assign_addresses,
                                simulate_trace)

#: classic passes minus CFG restructuring, for post-formation cleanup
#: (hyperblocks must not be re-split or re-laid-out once formed).
PEEPHOLE_PASSES = [p for p in CLASSIC_PASSES if p[0] != "cfg"]


class Model(enum.Enum):
    """The paper's three architectural/compilation models."""

    SUPERBLOCK = "Superblock"
    CMOV = "Conditional Move"
    FULLPRED = "Full Predication"

    @property
    def isa_level(self) -> ISALevel:
        return {Model.SUPERBLOCK: ISALevel.BASELINE,
                Model.CMOV: ISALevel.PARTIAL,
                Model.FULLPRED: ISALevel.FULL}[self]


@dataclass(frozen=True)
class ToolchainOptions:
    """Knobs for ablation experiments; defaults match the paper.

    Frozen and hashable so option sets can serve directly as cache-key
    components (every nested params object is a frozen dataclass too);
    :meth:`digest` is the stable form the artifact cache uses.
    """

    superblock: SuperblockParams = field(default_factory=SuperblockParams)
    hyperblock: HyperblockParams = field(default_factory=HyperblockParams)
    conversion: ConversionParams = field(default_factory=ConversionParams)
    branch_combine: BranchCombineParams | None = \
        field(default_factory=BranchCombineParams)
    unroll: UnrollParams | None = field(default_factory=UnrollParams)
    enable_promotion: bool = True
    enable_or_tree: bool = True
    verify: bool = True
    #: re-verify the IR after every compilation stage; failures name the
    #: offending pass and dump an IR snapshot to ``artifact_dir``
    paranoid: bool = False
    #: on a pass failure, restore the pre-pass IR and keep compiling
    #: (graceful degradation, recorded in CompiledProgram.degradations)
    rollback: bool = False
    #: where pass-failure IR snapshots go (None = system temp dir)
    artifact_dir: str | None = None

    def digest(self) -> str:
        """Stable digest of every field that can change compiled code.

        ``verify``/``paranoid``/``artifact_dir`` are observability knobs
        that never alter a *successful* compilation's output, so they
        are excluded — toggling them must not cold-start the artifact
        cache.  ``rollback`` *can* change the output (it skips failing
        passes) and is included.
        """
        from repro.engine.keys import stable_digest
        return stable_digest(
            self.superblock, self.hyperblock, self.conversion,
            self.branch_combine, self.unroll, self.enable_promotion,
            self.enable_or_tree, self.rollback)


@dataclass
class CompiledProgram:
    """A program compiled for one model/machine pair."""

    program: Program
    model: Model
    machine: MachineDescription
    schedule: ScheduleResult
    addresses: dict[int, int]
    #: passes skipped by rollback-and-continue (empty on clean compiles)
    degradations: list[Degradation] = field(default_factory=list)

    @property
    def static_size(self) -> int:
        return self.program.static_size()


def frontend(source: str) -> Program:
    """MiniC source → optimized, normalized baseline IR."""
    program = compile_minic(source)
    optimize_program(program)
    for fn in program.functions.values():
        hoist_loop_invariants(fn)
    optimize_program(program)
    for fn in program.functions.values():
        normalize_basic_blocks(fn)
    return program


def compile_for_model(base: Program, model: Model, profile: Profile,
                      machine: MachineDescription,
                      options: ToolchainOptions | None = None
                      ) -> CompiledProgram:
    """Clone ``base`` and compile it for ``model`` on ``machine``.

    ``base`` must come from :func:`frontend` and ``profile`` must have
    been collected on it (training run).
    """
    if options is None:
        options = ToolchainOptions()
    program = copy.deepcopy(base)
    gate = PassGate(program, paranoid=options.paranoid,
                    rollback=options.rollback,
                    artifact_dir=options.artifact_dir, model=model.value)

    for fn in program.functions.values():
        if model is Model.SUPERBLOCK:
            level = ISALevel.BASELINE
            gate.run(fn, "superblock-formation",
                     lambda fn=fn: form_superblocks(fn, profile,
                                                    options.superblock),
                     level)
            if options.unroll is not None:
                gate.run(fn, "loop-unroll",
                         lambda fn=fn: unroll_function_loops(
                             fn, options.unroll), level)
            gate.run(fn, "peephole",
                     lambda fn=fn: run_function_passes(fn, PEEPHOLE_PASSES),
                     level)
        else:
            # Until the full->partial lowering runs, both predicated
            # models carry full-predication IR.
            level = ISALevel.FULL
            formed = gate.run(fn, "hyperblock-formation",
                              lambda fn=fn: form_hyperblocks(
                                  fn, profile, options.hyperblock),
                              level) or []
            gate.run(fn, "predicate-optimization",
                     lambda fn=fn, formed=formed: [
                         optimize_hyperblock_predicates(fn, fn.block(label))
                         for label, _info in formed], level)
            if options.enable_promotion:
                gate.run(fn, "predicate-promotion",
                         lambda fn=fn, formed=formed: promote_all(fn, formed),
                         level)
            if options.branch_combine is not None:
                gate.run(fn, "branch-combine",
                         lambda fn=fn, formed=formed: _combine_all(
                             fn, formed, profile, options.branch_combine),
                         level)
            # The paper's compiler applies superblock techniques to the
            # remaining code; traces may flow through formed hyperblocks
            # (normalization keeps predicated blocks whole).
            gate.run(fn, "superblock-formation",
                     lambda fn=fn: form_superblocks(fn, profile,
                                                    options.superblock),
                     level)
            if options.unroll is not None:
                gate.run(fn, "loop-unroll",
                         lambda fn=fn: unroll_function_loops(
                             fn, options.unroll), level)
            if model is Model.CMOV:
                level = ISALevel.PARTIAL
                gate.run(fn, "partial-conversion",
                         lambda fn=fn: convert_to_partial(
                             fn, options.conversion), level)
                if options.enable_or_tree:
                    gate.run(fn, "or-tree-reduction",
                             lambda fn=fn: reduce_function_or_trees(fn),
                             level)
            gate.run(fn, "peephole",
                     lambda fn=fn: run_function_passes(fn, PEEPHOLE_PASSES),
                     level)

    if options.verify:
        try:
            verify_program(program, model.isa_level)
        except VerificationError as exc:
            raise PassVerificationError(
                f"compiled {model.value} program failed final "
                f"verification: {exc}", pass_name="final-verify") from exc
    try:
        schedule = schedule_program(program, machine)
        addresses = assign_addresses(program, machine.instruction_bytes)
    except ReproError:
        # Already classified (e.g. a CompileError out of the
        # scheduler's own invariants) — never double-wrap.
        raise
    except Exception as exc:
        raise CompileError(
            f"scheduling {model.value} program failed: {exc}",
            pass_name="schedule") from exc
    return CompiledProgram(program=program, model=model, machine=machine,
                           schedule=schedule, addresses=addresses,
                           degradations=list(gate.degradations))


def _combine_all(fn, formed, profile, params) -> None:
    """Branch-combine every formed hyperblock that still exists.

    Later formation stages may have merged a hyperblock away; only a
    *missing block* is expected here — any other error is a real pass
    bug and must surface.
    """
    for label, _info in formed:
        try:
            block = fn.block(label)
        except IRError:
            continue
        combine_branches(fn, block, profile, params)


@dataclass
class RunResult:
    """Emulation + simulation of one compiled program on one machine."""

    compiled: CompiledProgram
    execution: ExecutionResult
    stats: SimulationStats

    @property
    def return_value(self):
        return self.execution.return_value

    @property
    def cycles(self) -> int:
        return self.stats.cycles


def run_compiled(compiled: CompiledProgram,
                 inputs: dict | None = None,
                 machine: MachineDescription | None = None,
                 max_steps: int = 50_000_000,
                 watchdog: EmulationWatchdog | None = None,
                 fastpath: bool = True,
                 stream: bool = False,
                 engine: str | None = None) -> RunResult:
    """Emulate the compiled program and simulate its trace.

    ``machine`` may differ from the compile-time machine in memory
    hierarchy (the schedule is unaffected by caches), enabling
    perfect-vs-real-cache comparisons without recompiling.  An optional
    ``watchdog`` bounds emulation wall-clock time on top of ``max_steps``.

    ``engine`` picks the execution backend by name — ``"legacy"``,
    ``"fastpath"``, ``"stream"``, or ``"vector"`` — and overrides the
    older ``fastpath``/``stream`` flags when given.  All engines
    produce bit-identical observables; they differ only in speed and
    whether the full trace is materialized (``stream`` and ``vector``
    leave ``RunResult.execution.trace`` as None).
    """
    if machine is None:
        machine = compiled.machine
    if engine is None:
        engine = "stream" if stream else (
            "fastpath" if fastpath else "legacy")
    if engine == "vector":
        from repro.fastpath.vector import emulate_and_simulate_vector
        execution, stats = emulate_and_simulate_vector(
            compiled.program, compiled.addresses, machine, inputs=inputs,
            max_steps=max_steps, watchdog=watchdog)
        return RunResult(compiled=compiled, execution=execution,
                         stats=stats)
    if engine == "stream":
        from repro.fastpath.simulate import emulate_and_simulate_stream
        execution, stats = emulate_and_simulate_stream(
            compiled.program, compiled.addresses, machine, inputs=inputs,
            max_steps=max_steps, watchdog=watchdog)
        return RunResult(compiled=compiled, execution=execution,
                         stats=stats)
    if engine not in ("fastpath", "legacy"):
        raise ValueError(f"unknown engine {engine!r}")
    if engine == "fastpath":
        from repro.fastpath.decode import decode_program
        from repro.fastpath.interp import run_program_fast
        from repro.fastpath.simulate import prepare_sim, simulate_columns
        decoded = decode_program(compiled.program)
        execution = run_program_fast(compiled.program, inputs=inputs,
                                     collect_trace=True,
                                     max_steps=max_steps,
                                     watchdog=watchdog, decoded=decoded)
        if execution.trace is None:
            raise TraceIntegrityError(
                f"emulation of {compiled.model.value} produced no trace")
        stats = simulate_columns(
            execution.trace,
            prepare_sim(decoded, compiled.addresses, machine), machine)
        return RunResult(compiled=compiled, execution=execution,
                         stats=stats)
    execution = run_program(compiled.program, inputs=inputs,
                            collect_trace=True, max_steps=max_steps,
                            watchdog=watchdog)
    if execution.trace is None:
        raise TraceIntegrityError(
            f"emulation of {compiled.model.value} produced no trace")
    stats = simulate_trace(execution.trace, compiled.addresses, machine)
    return RunResult(compiled=compiled, execution=execution, stats=stats)


def compile_and_simulate(source: str, model: Model,
                         machine: MachineDescription,
                         inputs: dict | None = None,
                         train_inputs: dict | None = None,
                         options: ToolchainOptions | None = None
                         ) -> RunResult:
    """One-call pipeline: MiniC source → simulated run for ``model``.

    ``train_inputs`` drive profiling (defaults to the evaluation
    ``inputs``, matching the paper's measured-run methodology).
    """
    base = frontend(source)
    profile = Profile.collect(base, inputs=train_inputs or inputs)
    compiled = compile_for_model(base, model, profile, machine, options)
    return run_compiled(compiled, inputs=inputs)


def baseline_cycles(source: str, inputs: dict | None = None,
                    train_inputs: dict | None = None,
                    options: ToolchainOptions | None = None) -> int:
    """Cycle count of the 1-issue SUPERBLOCK processor (the paper's
    speedup denominator)."""
    result = compile_and_simulate(source, Model.SUPERBLOCK,
                                  scalar_machine(), inputs=inputs,
                                  train_inputs=train_inputs,
                                  options=options)
    return result.cycles
