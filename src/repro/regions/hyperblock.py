"""Hyperblock formation: profile-driven block selection + if-conversion.

Implements the paper's Section 3.1: basic blocks from many control-flow
paths are grouped into a single-entry region based on execution
frequency, size, and hazard heuristics; the region is then if-converted
into one linear hyperblock of predicated instructions with explicit
(possibly predicated) exit branches.

Formation targets innermost loop bodies — the paper's case studies (the
wc and grep loops) and its speedups are dominated by hot loops — plus
simple acyclic diamonds elsewhere via the same machinery.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.cfg import predecessors_map, successors_map
from repro.analysis.loops import find_loops
from repro.analysis.profile import Profile
from repro.ir.function import Function
from repro.ir.opcodes import OpCategory, Opcode
from repro.opt.cfg_cleanup import (normalize_basic_blocks, relayout,
                                   remove_unreachable)
from repro.regions.ifconvert import (IfConversionError, PredInfo,
                                     if_convert)


@dataclass(frozen=True)
class HyperblockParams:
    """Block-selection heuristics (paper Section 3.1).

    Inclusion weighs execution frequency against size: blocks executed
    rarely relative to the region entry are excluded *unless* they are
    small (cheap to predicate); essentially-never-executed blocks are
    always excluded; ``max_instructions`` bounds resource consumption so
    the hyperblock does not over-saturate the processor; blocks
    containing hazardous instructions (subroutine calls) are always
    excluded.
    """

    min_ratio: float = 0.05
    #: blocks at or below this size join regardless of frequency
    small_block_size: int = 10
    #: below this entry-relative frequency a block never joins (0.0:
    #: any block that executed at least once may join if small)
    min_exec_ratio: float = 0.0
    max_instructions: int = 220
    min_entry_count: int = 50
    #: skip loops averaging fewer header visits per outside entry
    min_iteration_ratio: float = 2.0
    #: bound on fetched-vs-useful instructions per entry: dropping cold
    #: blocks when static size exceeds this multiple of the average
    #: dynamic instructions prevents issue-width oversaturation (the
    #: paper's resource heuristic, Section 3.1)
    max_expansion_ratio: float = 2.6


def _is_hazardous(fn: Function, label: str) -> bool:
    for inst in fn.block(label).instructions:
        if inst.cat is OpCategory.CALL:
            return True
        if inst.pred is not None or inst.pdests:
            return True  # already predicated (previously formed region)
    return False


def select_blocks(fn: Function, entry: str, candidates: set[str],
                  profile: Profile,
                  params: HyperblockParams) -> set[str]:
    """Choose the subset of ``candidates`` to include in a hyperblock.

    The returned set is closed under reachability from ``entry`` within
    the selection and contains no side entrances.
    """
    entry_count = max(profile.block_count(fn.name, entry), 1)
    selected = {entry}
    for label in candidates:
        if label == entry:
            continue
        if _is_hazardous(fn, label):
            continue
        count = profile.block_count(fn.name, label)
        if count == 0:
            continue  # never executed on the measured run
        ratio = count / entry_count
        if ratio < params.min_exec_ratio:
            continue
        size = len(fn.block(label).instructions)
        if ratio < params.min_ratio and size > params.small_block_size:
            continue
        selected.add(label)

    succs = successors_map(fn)
    preds = predecessors_map(fn)

    def close(sel: set[str]) -> set[str]:
        """Blocks reachable from entry inside ``sel``."""
        reach = {entry}
        stack = [entry]
        while stack:
            cur = stack.pop()
            for nxt in succs[cur]:
                if nxt in sel and nxt != entry and nxt not in reach:
                    reach.add(nxt)
                    stack.append(nxt)
        return reach

    # Iteratively drop side-entered blocks and re-close.
    while True:
        selected = close(selected)
        side_entered = [b for b in selected if b != entry
                        and any(p not in selected for p in preds[b])]
        if not side_entered:
            break
        for b in side_entered:
            selected.discard(b)

    # Resource bounds: drop the least-frequent blocks while the region
    # is too large, or while it would fetch far more instructions than
    # it executes on average (issue-width oversaturation), keeping
    # closure/side-entrance invariants.
    def total_size(sel: set[str]) -> int:
        return sum(len(fn.block(b).instructions) for b in sel)

    def dynamic_avg(sel: set[str]) -> float:
        weighted = sum(len(fn.block(b).instructions)
                       * profile.block_count(fn.name, b) for b in sel)
        return weighted / entry_count

    def oversaturated(sel: set[str]) -> bool:
        if len(sel) <= 1:
            return False
        useful = max(dynamic_avg(sel), 1.0)
        return total_size(sel) > params.max_expansion_ratio * useful

    while len(selected) > 1 and (total_size(selected)
                                 > params.max_instructions
                                 or oversaturated(selected)):
        # Tie-break by name: iterating the set would break count ties
        # in str-hash order, which varies per process (PYTHONHASHSEED)
        # and would make compiled figures differ across CLI invocations.
        coldest = min((b for b in selected if b != entry),
                      key=lambda b: (profile.block_count(fn.name, b), b))
        selected.discard(coldest)
        while True:
            selected = close(selected)
            side = [b for b in selected if b != entry
                    and any(p not in selected for p in preds[b])]
            if not side:
                break
            for b in side:
                selected.discard(b)
    return selected


def form_hyperblocks(fn: Function, profile: Profile,
                     params: HyperblockParams | None = None
                     ) -> list[tuple[str, PredInfo]]:
    """Form hyperblocks over hot innermost loops of ``fn`` in place.

    Returns ``(hyperblock label, PredInfo)`` pairs for each region
    formed; the PredInfo feeds predicate promotion.
    """
    if params is None:
        params = HyperblockParams()
    normalize_basic_blocks(fn)
    remove_unreachable(fn)
    formed: list[tuple[str, PredInfo]] = []
    loops = [l for l in find_loops(fn) if l.is_innermost]
    loops.sort(key=lambda l: profile.block_count(fn.name, l.header),
               reverse=True)
    converted: set[str] = set()
    edge_counts = profile.edge_counts(fn)
    for loop in loops:
        header_count = profile.block_count(fn.name, loop.header)
        if header_count < params.min_entry_count:
            continue
        # Loops that rarely iterate are not worth predicating: the
        # converted body would be fetched on every (non-)entry.  Average
        # header visits per outside entry approximates the trip count.
        entries = sum(count for (src, dst), count in edge_counts.items()
                      if dst == loop.header and src not in loop.body)
        trips = header_count / max(entries, 1)
        if trips < params.min_iteration_ratio:
            continue
        if loop.body & converted:
            continue
        present = {b.name for b in fn.blocks}
        if not loop.body <= present:
            continue
        region = select_blocks(fn, loop.header, set(loop.body), profile,
                               params)
        if len(region) < 2:
            continue
        try:
            _hyper, info = if_convert(fn, region, loop.header)
        except IfConversionError:
            continue
        converted |= region
        formed.append((loop.header, info))
    relayout(fn)
    return formed
