"""Branch combining: merge unlikely hyperblock exits into one branch.

The paper (Section 4.2, Table 3 discussion of grep) describes a
transformation that combines unlikely-taken exit branches of a
hyperblock into a single exit: each original exit condition contributes
to one OR-type predicate, and a single predicated jump transfers to a
recovery block that re-executes the original (predicated) branches to
dispatch to the correct target.  This reduces dynamic branch count —
often dramatically, as in grep — at the cost of making the combined
branch harder to predict (the paper's misprediction anomaly).

Safety: moving exit branch ``E_i`` down to the combine point makes the
instructions between ``E_i`` and the combine point execute even when
``E_i`` would have been taken.  The group is therefore grown only while
the intervening instructions contain no stores or calls, do not redefine
any combined branch's operands or guard, and do not write a register
that is live-in at any combined branch's target; potentially excepting
intervening instructions are made speculative (silent).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.liveness import liveness
from repro.analysis.profile import Profile
from repro.ir.function import BasicBlock, Function
from repro.ir.instruction import Instruction, PredDest, PType
from repro.ir.opcodes import MAY_EXCEPT, OpCategory, Opcode
from repro.ir.operands import Imm, PReg, VReg
from repro.regions.ifconvert import _PRED_FOR_BRANCH


@dataclass(frozen=True)
class BranchCombineParams:
    #: maximum taken probability for an exit branch to be combined
    max_taken_probability: float = 0.04
    #: minimum number of branches worth combining
    min_group: int = 2


def _group_safe(insts: list[Instruction], start: int, end: int,
                operands: set, live_targets: set,
                skip: set[int]) -> bool:
    """Check instructions in (start, end) against the motion rules.

    Positions in ``skip`` are group members already accepted (they will
    become OR-type predicate defines, which write only the combined
    predicate).
    """
    for k in range(start + 1, end):
        if k in skip:
            continue
        inst = insts[k]
        cat = inst.cat
        if cat is OpCategory.STORE or cat is OpCategory.CALL:
            return False
        if inst.is_control:
            return False
        for d in inst.defined_regs():
            if d in operands or d in live_targets:
                return False
    return True


def combine_branches(fn: Function, block: BasicBlock, profile: Profile,
                     params: BranchCombineParams | None = None) -> int:
    """Combine unlikely conditional exits of one hyperblock in place.

    Returns the number of branches combined (0 if no group was found).
    """
    if params is None:
        params = BranchCombineParams()
    live = liveness(fn)
    insts = block.instructions

    # Candidate exits: predicated-or-not conditional branches with low
    # taken probability.  Group = maximal run of candidates such that the
    # span between each member and the group's last member is safe.
    candidates: list[int] = []
    for i, inst in enumerate(insts):
        if inst.cat is not OpCategory.BRANCH:
            continue
        if profile.taken_probability(inst.uid) \
                <= params.max_taken_probability:
            candidates.append(i)
    if len(candidates) < params.min_group:
        return 0

    # Grow the group ending at the last candidate backwards.
    end = candidates[-1]
    group = [end]
    for i in reversed(candidates[:-1]):
        inst = insts[i]
        operands = set(r for r in inst.used_regs())
        live_targets = set(live.live_in.get(inst.target, frozenset()))
        if _group_safe(insts, i, end, operands, live_targets,
                       set(group)):
            group.insert(0, i)
        else:
            break
    if len(group) < params.min_group:
        return 0

    p_combined = fn.new_preg()
    recovery_name = f"{block.name}.recover"
    counter = 0
    while any(b.name == recovery_name for b in fn.blocks):
        counter += 1
        recovery_name = f"{block.name}.recover{counter}"

    recovery = BasicBlock(recovery_name)
    new_insts: list[Instruction] = []
    group_set = set(group)
    for i, inst in enumerate(insts):
        if i in group_set:
            # Contribute guard ∧ condition to the combined predicate.
            op = _PRED_FOR_BRANCH[inst.op]
            new_insts.append(Instruction(
                op, srcs=inst.srcs,
                pdests=(PredDest(p_combined, PType.OR),),
                pred=inst.pred))
            # Recovery re-executes the original branch (rare path).
            recovery.append(inst.fresh_copy())
            if i == group[-1]:
                new_insts.append(Instruction(Opcode.JUMP,
                                             target=recovery_name,
                                             pred=p_combined))
        else:
            if group[0] < i < group[-1] and inst.op in MAY_EXCEPT \
                    and not inst.speculative:
                inst = inst.copy(speculative=True)
            new_insts.append(inst)

    # Initialize the combined predicate: reuse the hyperblock's
    # pred_clear if present, otherwise clear explicitly via a U-type
    # define of a false comparison.
    has_clear = any(inst.op is Opcode.PRED_CLEAR for inst in new_insts)
    if not has_clear:
        new_insts.insert(0, Instruction(
            Opcode.PRED_NE, srcs=(Imm(0), Imm(0)),
            pdests=(PredDest(p_combined, PType.U),)))

    # Recovery must never fall through: the combined predicate is only
    # true when one of the re-executed branches fires, but terminate
    # defensively by jumping to the first branch's target.
    first_target = insts[group[0]].target
    assert first_target is not None
    recovery.append(Instruction(Opcode.JUMP, target=first_target))

    block.instructions = new_insts
    fn.blocks.append(recovery)
    return len(group)
