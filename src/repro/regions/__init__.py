"""Region formation: superblocks, hyperblocks (if-conversion), predicate
promotion, branch combining."""

from repro.regions.branch_combine import (BranchCombineParams,
                                          combine_branches)
from repro.regions.hyperblock import (HyperblockParams, form_hyperblocks,
                                      select_blocks)
from repro.regions.ifconvert import (IfConversionError, PredInfo,
                                     if_convert)
from repro.regions.promotion import promote_all, promote_predicates
from repro.regions.superblock import (SuperblockParams, form_superblocks,
                                      select_traces)

__all__ = [
    "BranchCombineParams", "HyperblockParams", "IfConversionError",
    "PredInfo", "SuperblockParams", "combine_branches", "form_hyperblocks",
    "form_superblocks", "if_convert", "promote_all", "promote_predicates",
    "select_blocks", "select_traces",
]
