"""Superblock formation: profile-driven trace selection + tail duplication.

This implements the baseline ILP compilation technique of the paper
(Hwu et al., "The Superblock", 1993): hot traces are selected along the
most likely control-flow edges, side entrances are removed by tail
duplication, and the trace is merged into a single extended block whose
interior branches all exit the trace.  The scheduler may then speculate
instructions above those exit branches.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.profile import Profile
from repro.ir import inverse
from repro.ir.function import BasicBlock, Function
from repro.ir.instruction import Instruction
from repro.ir.opcodes import OpCategory, Opcode
from repro.opt.cfg_cleanup import (make_jumps_explicit,
                                   normalize_basic_blocks, relayout,
                                   remove_unreachable)


@dataclass(frozen=True)
class SuperblockParams:
    """Trace-growing heuristics."""

    #: minimum execution count for a block to seed or join a trace
    min_count: int = 2
    #: minimum branch probability to extend the trace along an edge
    min_probability: float = 0.6
    #: maximum blocks per trace
    max_blocks: int = 32


def _edge_maps(fn: Function, profile: Profile):
    edges = profile.edge_counts(fn)
    best_succ: dict[str, tuple[str, int, int]] = {}
    out_total: dict[str, int] = {}
    in_edges: dict[str, list[tuple[str, int]]] = {b.name: []
                                                  for b in fn.blocks}
    for (src, dst), count in edges.items():
        out_total[src] = out_total.get(src, 0) + count
        in_edges[dst].append((src, count))
        cur = best_succ.get(src)
        if cur is None or count > cur[1]:
            best_succ[src] = (dst, count, 0)
    return edges, best_succ, out_total, in_edges


def select_traces(fn: Function, profile: Profile,
                  params: SuperblockParams,
                  protect: frozenset[str] | set[str] = frozenset()
                  ) -> list[list[str]]:
    """Profile-driven trace selection; returns block-label traces.

    Blocks in ``protect`` (already-formed regions or predicated code)
    never join a trace.
    """
    edges, best_succ, out_total, in_edges = _edge_maps(fn, profile)
    visited: set[str] = set(protect)
    # Self-looping blocks are complete regions (formed loop bodies);
    # merging one into a trace would orphan its backedge label.
    for block in fn.blocks:
        if any(inst.target == block.name for inst in block.instructions
               if inst.is_control and inst.cat is not OpCategory.CALL):
            visited.add(block.name)

    def final_edge_only(src: str, dst: str) -> bool:
        """True if every src->dst edge is in src's final control pair.

        Mid-block (hyperblock) exits to ``dst`` cannot be rewired by
        trace merging, so such a dst may not follow src in a trace.
        """
        insts = fn.block(src).instructions
        for k, inst in enumerate(insts):
            if inst.is_control and inst.target == dst \
                    and inst.cat is not OpCategory.CALL \
                    and k < len(insts) - 2:
                return False
        return True

    traces: list[list[str]] = []
    blocks_by_count = sorted(
        fn.blocks,
        key=lambda b: profile.block_count(fn.name, b.name),
        reverse=True)
    for seed in blocks_by_count:
        if seed.name in visited:
            continue
        if profile.block_count(fn.name, seed.name) < params.min_count:
            break
        trace = [seed.name]
        visited.add(seed.name)
        # Grow forward along the most likely edge.
        while len(trace) < params.max_blocks:
            tail = trace[-1]
            nxt = best_succ.get(tail)
            if nxt is None:
                break
            dst, count = nxt[0], nxt[1]
            total = out_total.get(tail, 0)
            if dst in visited or total == 0 \
                    or count / total < params.min_probability \
                    or count < params.min_count \
                    or not final_edge_only(tail, dst):
                break
            trace.append(dst)
            visited.add(dst)
        # Grow backward along the most likely incoming edge.
        while len(trace) < params.max_blocks:
            head = trace[0]
            candidates = in_edges.get(head, [])
            if not candidates:
                break
            src, count = max(candidates, key=lambda e: e[1])
            total = out_total.get(src, 0)
            if src in visited or total == 0 \
                    or count / total < params.min_probability \
                    or count < params.min_count \
                    or best_succ.get(src, ("",))[0] != head \
                    or not final_edge_only(src, head):
                break
            trace.insert(0, src)
            visited.add(src)
        if len(trace) > 1:
            traces.append(trace)
    return traces


def _duplicate_tail(fn: Function, trace: list[str]) -> bool:
    """Remove side entrances by duplicating the trace tail.

    For the first trace block (after the head) with an external
    predecessor, the rest of the trace is copied; external predecessors
    are redirected to the copies.  Returns False if side entrances
    could not be eliminated (the trace must then be abandoned).
    """
    from repro.analysis.cfg import predecessors_map

    # Side entrances move strictly earlier each round, so this is
    # bounded by the trace length; the cap is a defensive backstop.
    for _round in range(4 * len(trace) + 8):
        preds = predecessors_map(fn)
        cut = None
        for i, name in enumerate(trace[1:], start=1):
            external = [p for p in preds[name] if p != trace[i - 1]]
            if external:
                cut = i
                break
        if cut is None:
            return True
        suffix = trace[cut:]
        copies: dict[str, str] = {}
        for name in suffix:
            original = fn.block(name)
            copy_name = f"{name}.d"
            counter = 0
            while any(b.name == copy_name for b in fn.blocks):
                counter += 1
                copy_name = f"{name}.d{counter}"
            copies[name] = copy_name
            copy = BasicBlock(copy_name)
            for inst in original.instructions:
                copy.append(inst.fresh_copy())
            fn.blocks.append(copy)
        # Copies branch among themselves for intra-suffix edges.
        for name in suffix:
            copy = fn.block(copies[name])
            for inst in copy.instructions:
                if inst.target in copies \
                        and inst.cat is not OpCategory.CALL:
                    # Keep backedges to the trace head pointing at the
                    # original (the head has no side-entrance problem),
                    # but only intra-suffix targets are in `copies`.
                    inst.target = copies[inst.target]
        # Redirect external predecessors of the cut block to its copy.
        cut_name = trace[cut]
        for pred_name in preds[cut_name]:
            if pred_name == trace[cut - 1]:
                continue
            pred_block = fn.block(pred_name)
            for inst in pred_block.instructions:
                if inst.target == cut_name \
                        and inst.cat is not OpCategory.CALL:
                    inst.target = copies[cut_name]
        # The trace itself is now side-entrance free up to `cut`; loop to
        # check the remaining tail again (copies may still expose later
        # side entrances, but those belong to the duplicated cold path).
    return False


def _merge_trace(fn: Function, trace: list[str]) -> None:
    """Concatenate trace blocks into one superblock (the head block)."""
    head = fn.block(trace[0])
    merged: list[Instruction] = []
    for i, name in enumerate(trace):
        block = fn.block(name)
        insts = list(block.instructions)
        is_last = i == len(trace) - 1
        if not is_last:
            nxt = trace[i + 1]
            # After make_jumps_explicit the block ends with a jump or a
            # return, with an optional conditional branch right before
            # it.  Rewire so the trace continues by fall-through within
            # the merged block.
            last = insts[-1]
            assert last.pred is None and last.op in (Opcode.JUMP,
                                                     Opcode.RET), \
                f"trace block {name} lacks an explicit terminator"
            branch = insts[-2] if len(insts) >= 2 \
                and insts[-2].cat is OpCategory.BRANCH else None
            if last.op is Opcode.JUMP and last.target == nxt:
                # The conditional branch (if any) exits the trace.
                insts.pop()
                if branch is not None and branch.target == nxt:
                    # Branch and jump converged on the trace successor
                    # (the then-block optimized away): the branch is a
                    # transfer to its own fall-through.  Drop it, or it
                    # would dangle once ``nxt`` is merged and removed.
                    insts.pop()
            elif branch is not None and branch.target == nxt:
                if last.op is Opcode.RET:
                    # The off-trace path returns: outline the return so
                    # the inverted branch has a target.
                    ret_name = f"{name}.ret"
                    counter = 0
                    while any(b.name == ret_name for b in fn.blocks):
                        counter += 1
                        ret_name = f"{name}.ret{counter}"
                    ret_block = BasicBlock(ret_name)
                    ret_block.append(last)
                    fn.blocks.append(ret_block)
                    off_trace = ret_name
                else:
                    off_trace = last.target
                # Invert the branch: the off-trace path becomes the taken
                # target, the trace continues by fall-through.
                inverted = branch.copy(op=inverse(branch.op),
                                       target=off_trace)
                insts[-2] = inverted
                insts.pop()
            else:
                raise AssertionError(
                    f"trace successor {nxt} unreachable from {name}")
        merged.extend(insts)
        if i > 0:
            fn.blocks.remove(block)
    head.instructions = merged


def form_superblocks(fn: Function, profile: Profile,
                     params: SuperblockParams | None = None,
                     protect: frozenset[str] | set[str] = frozenset()
                     ) -> list[str]:
    """Form superblocks in ``fn``; returns the superblock labels."""
    if params is None:
        params = SuperblockParams()
    normalize_basic_blocks(fn, protect)
    remove_unreachable(fn)
    traces = select_traces(fn, profile, params, protect)
    formed: list[str] = []
    for trace in traces:
        make_jumps_explicit(fn)
        if not _duplicate_tail(fn, trace):
            continue
        _merge_trace(fn, trace)
        formed.append(trace[0])
    relayout(fn)
    return formed
