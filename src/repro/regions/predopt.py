"""Predicate-level optimizations on hyperblocks.

Two transformations make the full-predication code reach the paper's
parallel-define behaviour (Sections 2.1 and 3.3):

**Predicate copy propagation** — if-conversion emits constant-comparison
defines (``pred_eq F<U>, #0, #0 (g)``) for unconditional in-region
edges; such an ``F`` is identically ``g``, so uses of ``F`` are rewired
to ``g`` and the copy dies.

**Define-chain parallelization** — short-circuit conditionals lower to
a serial chain of two-destination defines::

    pred_eq T<OR>, F1<U~>, a, K1 (q)
    pred_eq T<OR>, F2<U~>, a, K2 (F1)
    pred_eq T<OR>, F3<U~>, a, K3 (F2)

where each ``F_k`` is used only as the next define's input predicate.
Because OR-type contributions absorb overlapping conditions
(``∨(q∧¬c1..¬c_{k-1}∧c_k) = ∨(q∧c_k)``), every define may take ``q``
directly, and the final fall-through predicate is accumulated with
parallel AND-type destinations::

    pred_eq T<OR>, F3<U~>,  a, K1 (q)     ; F3 initialized by the head
    pred_eq T<OR>, F3<AND~>, a, K2 (q)    ; wired-AND, issue together
    pred_eq T<OR>, F3<AND~>, a, K3 (q)

This reduces the predicate computation's dependence height to a
constant — the property partial predication cannot replicate, which the
OR-tree optimization only partially recovers (paper Section 3.2).
"""

from __future__ import annotations

from repro.ir.function import BasicBlock, Function
from repro.ir.instruction import Instruction, PredDest, PType
from repro.ir.opcodes import OpCategory
from repro.ir.operands import Imm, PReg


def _is_constant_true_copy(inst: Instruction) -> bool:
    """``pred_eq F<U>, #0, #0 (g)``: F becomes a copy of g."""
    return (inst.cat is OpCategory.PREDDEF
            and inst.condition == "eq"
            and len(inst.pdests) == 1
            and inst.pdests[0].ptype is PType.U
            and inst.pred is not None
            and all(isinstance(s, Imm) and s.value == 0 for s in inst.srcs))


def propagate_pred_copies(block: BasicBlock) -> int:
    """Rewire uses of predicate copies to their sources; returns count.

    Applied within one hyperblock: safe when the copied-from predicate
    is not redefined after the copy and the copy target has no other
    definition in the block.
    """
    insts = block.instructions
    def_counts: dict[PReg, int] = {}
    last_def_pos: dict[PReg, int] = {}
    for i, inst in enumerate(insts):
        for r in inst.defined_regs():
            if isinstance(r, PReg):
                def_counts[r] = def_counts.get(r, 0) + 1
                last_def_pos[r] = i
        if inst.cat is OpCategory.PREDSET:
            # pred_clear/set redefines everything; treat as a barrier by
            # inflating counts for all known predicates.
            for r in list(def_counts):
                def_counts[r] += 1

    replaced = 0
    mapping: dict[PReg, PReg] = {}
    for i, inst in enumerate(insts):
        if _is_constant_true_copy(inst):
            target = inst.pdests[0].reg
            source = inst.pred
            assert source is not None
            source = mapping.get(source, source)
            if def_counts.get(target, 0) == 1 \
                    and last_def_pos.get(source, -1) < i:
                mapping[target] = source
                replaced += 1
    if not mapping:
        return 0

    def resolve(p: PReg) -> PReg:
        seen = set()
        while p in mapping and p not in seen:
            seen.add(p)
            p = mapping[p]
        return p

    for inst in insts:
        if inst.pred is not None and inst.pred in mapping:
            inst.pred = resolve(inst.pred)
        if any(isinstance(s, PReg) and s in mapping for s in inst.srcs):
            inst.srcs = tuple(resolve(s) if isinstance(s, PReg)
                              and s in mapping else s for s in inst.srcs)
    # The copies themselves are now dead if nothing else reads their
    # targets; leave removal to DCE.
    return replaced


def _chain_shape(inst: Instruction) -> tuple[PReg, PType, PReg, PReg | None] | None:
    """Match ``pred_X T<OR/OR~>, F<U/U~> ...`` two-destination defines.

    Returns (or_target, or_type's chain complement info) via the tuple
    (T, F_type, F, pin) or None.
    """
    if inst.cat is not OpCategory.PREDDEF or len(inst.pdests) != 2:
        return None
    a, b = inst.pdests
    or_dest = None
    u_dest = None
    for pd in (a, b):
        if pd.ptype in (PType.OR, PType.OR_BAR):
            or_dest = pd
        elif pd.ptype in (PType.U, PType.U_BAR):
            u_dest = pd
    if or_dest is None or u_dest is None:
        return None
    return (or_dest.reg, u_dest.ptype, u_dest.reg, inst.pred)


def parallelize_define_chains(fn: Function, block: BasicBlock) -> int:
    """Flatten serial define chains into parallel OR/AND defines.

    Returns the number of defines rewritten.
    """
    insts = block.instructions
    n = len(insts)
    # Use counts for each predicate register (as guard or source).
    use_positions: dict[PReg, list[int]] = {}
    for i, inst in enumerate(insts):
        seen_here: set[PReg] = set()
        if inst.pred is not None:
            seen_here.add(inst.pred)
        for s in inst.srcs:
            if isinstance(s, PReg):
                seen_here.add(s)
        for pd in inst.pdests:
            if pd.ptype not in (PType.U, PType.U_BAR):
                seen_here.add(pd.reg)  # read-modify-write
        for r in seen_here:
            use_positions.setdefault(r, []).append(i)

    def_positions: dict[PReg, list[int]] = {}
    for i, inst in enumerate(insts):
        for r in inst.defined_regs():
            if isinstance(r, PReg):
                def_positions.setdefault(r, []).append(i)

    rewritten = 0
    i = 0
    consumed: set[int] = set()
    while i < n:
        if i in consumed:
            i += 1
            continue
        shape = _chain_shape(insts[i])
        if shape is None:
            i += 1
            continue
        or_target, f_type, f_reg, pin = shape
        or_type = next(pd.ptype for pd in insts[i].pdests
                       if pd.ptype in (PType.OR, PType.OR_BAR))
        chain = [i]
        cur_f = f_reg
        while True:
            uses = use_positions.get(cur_f, [])
            defs = def_positions.get(cur_f, [])
            # Intermediate link: F used exactly once (as next pin),
            # defined exactly once (by this chain's define).
            if len(uses) != 1 or len(defs) != 1:
                break
            j = uses[0]
            if j <= chain[-1] or j in consumed:
                break
            nxt = _chain_shape(insts[j])
            if nxt is None:
                break
            n_target, n_ftype, n_f, n_pin = nxt
            next_or_type = next(pd.ptype for pd in insts[j].pdests
                                if pd.ptype in (PType.OR, PType.OR_BAR))
            if n_target != or_target or n_pin != cur_f \
                    or n_ftype is not f_type or next_or_type is not or_type:
                break
            chain.append(j)
            cur_f = n_f
        if len(chain) < 2:
            i += 1
            continue
        # The final fall-through predicate must be defined only by the
        # chain's last define and read only after it (AND accumulation
        # completes at the last link's position).
        final_defs = def_positions.get(cur_f, [])
        final_uses = use_positions.get(cur_f, [])
        if final_defs != [chain[-1]] \
                or any(u <= chain[-1] for u in final_uses):
            i += 1
            continue
        # Rewrite: head keeps its U-type destination, retargeted to the
        # final fall-through predicate; the rest accumulate with the
        # matching AND type and take the head's input predicate.
        final_f = cur_f
        acc_type = PType.AND_BAR if f_type is PType.U_BAR else PType.AND
        head = insts[chain[0]]
        head_pdests = tuple(
            PredDest(final_f, pd.ptype) if pd.ptype is f_type
            else pd for pd in head.pdests)
        insts[chain[0]] = head.copy(pdests=head_pdests)
        for j in chain[1:]:
            link = insts[j]
            new_pdests = tuple(
                PredDest(final_f, acc_type) if pd.ptype is f_type
                else pd for pd in link.pdests)
            insts[j] = link.copy(pdests=new_pdests, pred=pin)
            rewritten += 1
        consumed.update(chain)
        # Positions/use counts are stale after a rewrite; stop this pass
        # and let the fixpoint driver rescan.
        return rewritten
    return rewritten


def optimize_hyperblock_predicates(fn: Function,
                                   block: BasicBlock) -> int:
    """Run both predicate optimizations until quiescent."""
    total = 0
    for _ in range(64):
        changed = propagate_pred_copies(block)
        changed += parallelize_define_chains(fn, block)
        total += changed
        if not changed:
            break
    return total
