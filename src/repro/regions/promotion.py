"""Predicate promotion: speculation by predicate removal (paper Fig. 2).

A predicated instruction whose result can only be observed when its
guard is true may drop the guard and execute unconditionally
(speculatively).  This both shortens the critical dependence from the
predicate define (full predication) and — crucially for partial
predication — removes the need to emit a conditional move for the
instruction during lowering.

Safety conditions for promoting instruction ``I`` (guard ``p``, dest
``d``) inside a linear hyperblock:

* ``I`` is pure (no stores, no control, no predicate defines) and either
  cannot except or has a silent version (loads/divides get the
  ``speculative`` flag);
* ``d`` is not live at any hyperblock exit at or after ``I``'s position
  (a promoted write must not clobber a value the outside world reads);
* every read of ``d`` between ``I`` and the next definite redefinition
  is guarded by a predicate that implies ``p`` (readers that execute
  only when ``p`` is true cannot observe the speculative garbage).
"""

from __future__ import annotations

from repro.analysis.cfg import successors_map
from repro.analysis.liveness import liveness
from repro.ir.function import BasicBlock, Function
from repro.ir.instruction import Instruction
from repro.ir.opcodes import MAY_EXCEPT, OpCategory
from repro.ir.operands import PReg, VReg
from repro.regions.ifconvert import PredInfo

_PROMOTABLE = (OpCategory.ALU, OpCategory.CMP, OpCategory.FALU,
               OpCategory.FCMP, OpCategory.LOAD, OpCategory.CMOV,
               OpCategory.SELECT)


def _exit_live_sets(fn: Function, block: BasicBlock):
    """For each instruction index, registers live at exits at-or-after it.

    Returns a list ``after_live`` parallel to the block where
    ``after_live[i]`` is the union of live-in sets of every exit target
    of a control instruction at index >= i, plus the function's
    live-out contribution for the block's implicit fall-through.
    """
    live = liveness(fn)
    succs = successors_map(fn)
    n = len(block.instructions)
    after: list[set] = [set() for _ in range(n + 1)]
    # Fall-through at the very end of the block (if any).
    fall_live: set = set()
    layout_next = fn.layout_next(block)
    last = block.instructions[-1] if block.instructions else None
    falls = not (last is not None and last.is_terminator)
    if falls and layout_next is not None and layout_next in live.live_in:
        fall_live = set(live.live_in[layout_next])
    acc = set(fall_live)
    after[n] = set(acc)
    for i in range(n - 1, -1, -1):
        inst = block.instructions[i]
        if inst.is_control and inst.target is not None \
                and inst.cat is not OpCategory.CALL \
                and inst.target in live.live_in:
            acc |= live.live_in[inst.target]
        after[i] = set(acc)
    # `succs` retained for interface symmetry; liveness already folds in
    # successor information.
    del succs
    return after


def promote_predicates(fn: Function, block: BasicBlock,
                       info: PredInfo) -> int:
    """Promote eligible predicated instructions in ``block`` in place.

    Returns the number of promotions performed.
    """
    insts = block.instructions
    n = len(insts)
    promoted = 0
    changed = True
    while changed:
        changed = False
        after_live = _exit_live_sets(fn, block)
        for i, inst in enumerate(insts):
            if inst.pred is None or inst.cat not in _PROMOTABLE:
                continue
            if inst.pdests:
                continue
            dest = inst.dest
            if dest is None:
                continue
            # Conditional moves read their destination implicitly; a
            # promoted cmov would change semantics.  (They only appear
            # after partial lowering, where promotion already ran.)
            if inst.cat in (OpCategory.CMOV, OpCategory.SELECT):
                continue
            if inst.dest in inst.srcs:
                # d = f(d, ...): promoting clobbers the old value that a
                # false guard preserves; only safe if no one reads d
                # afterwards, which DCE would have caught already.
                continue
            p = inst.pred
            if dest in after_live[i + 1]:
                continue
            safe = True
            for j in range(i + 1, n):
                later = insts[j]
                if dest in later.used_regs():
                    if not info.implies(later.pred, p):
                        safe = False
                        break
                if not later.is_conditional_write \
                        and dest in later.defined_regs():
                    break  # definite redefinition: later reads see that
            if not safe:
                continue
            new = inst.copy(pred=None)
            if new.op in MAY_EXCEPT:
                new.speculative = True
            insts[i] = new
            promoted += 1
            changed = True
    return promoted


def promote_all(fn: Function,
                formed: list[tuple[str, PredInfo]]) -> int:
    """Run promotion over every formed hyperblock of ``fn``."""
    total = 0
    by_label = {label: info for label, info in formed}
    for block in fn.blocks:
        info = by_label.get(block.name)
        if info is not None:
            total += promote_predicates(fn, block, info)
    return total
