"""RK-style if-conversion of a single-entry acyclic region into a
hyperblock (paper Sections 2.1 and 3.1).

Given a selected set of basic blocks with a unique entry, control flow
between the selected blocks is eliminated: every block receives a guard
predicate, intra-region conditional branches become predicate define
instructions (with U/OR-type destinations per the number of control
dependences), and branches to unselected blocks remain as (possibly
predicated) exit branches.  The result is one linear block of predicated
code, as in the paper's Figure 1.

Blocks must be normalized first (``normalize_basic_blocks``): each block
is [body..., optional conditional branch, explicit jump/ret terminator].

Case analysis for a block with guard ``g``, conditional branch ``c -> T``
and terminator ``jump F`` (``entry`` counts as outside, so loop backedges
are exits):

* T in region, F in region: one predicate define sets ``pT`` from ``c``
  and ``pF`` from its complement (two typed destinations, as in Figure 1).
* T in region, F outside: define sets ``pT`` (type per contribution
  count) and a fresh exit predicate ``pX`` as U-complement; the exit
  becomes ``jump F (pX)``.
* T outside, F in region: the branch stays as a predicated exit branch
  ``b<cmp> T (g)``; F's contribution is simply ``g`` (reaching the point
  after a not-taken exit implies the exit did not fire), expressed with a
  constant-true define.
* T outside, F outside: both stay, predicated on ``g`` (a taken exit
  leaves the hyperblock, so the trailing jump cannot misfire).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.cfg import successors_map
from repro.ir.function import BasicBlock, Function
from repro.ir.instruction import Instruction, PredDest, PType
from repro.ir.opcodes import OpCategory, Opcode
from repro.ir.operands import Imm, PReg


class IfConversionError(Exception):
    """The region cannot be if-converted."""


@dataclass
class PredInfo:
    """Predicate bookkeeping produced by if-conversion.

    ``parents`` records, for each predicate, the guards it was derived
    under; ``block_pred`` maps original block labels to their guards.
    Promotion uses the (transitive) parent relation to reason about
    predicate implication.
    """

    parents: dict[PReg, set[PReg]] = field(default_factory=dict)
    block_pred: dict[str, PReg | None] = field(default_factory=dict)
    uses_or_types: bool = False

    def implies(self, q: PReg | None, p: PReg | None) -> bool:
        """True if q=1 guarantees p=1 (conservative, via parent chain)."""
        if p is None:
            return True
        if q is None:
            return False
        seen: set[PReg] = set()
        stack = [q]
        while stack:
            cur = stack.pop()
            if cur == p:
                return True
            if cur in seen:
                continue
            seen.add(cur)
            stack.extend(self.parents.get(cur, ()))
        return False


_PRED_FOR_BRANCH = {
    Opcode.BEQ: Opcode.PRED_EQ,
    Opcode.BNE: Opcode.PRED_NE,
    Opcode.BLT: Opcode.PRED_LT,
    Opcode.BLE: Opcode.PRED_LE,
    Opcode.BGT: Opcode.PRED_GT,
    Opcode.BGE: Opcode.PRED_GE,
}


def _topological_order(region: set[str], entry: str,
                       succs: dict[str, list[str]]) -> list[str]:
    """Topological order of the region DAG (edges to ``entry`` are
    backedges and ignored)."""
    order: list[str] = []
    state: dict[str, int] = {}

    def visit(name: str) -> None:
        stack = [(name, iter(succs[name]))]
        state[name] = 1
        while stack:
            label, it = stack[-1]
            advanced = False
            for nxt in it:
                if nxt not in region or nxt == entry:
                    continue
                if state.get(nxt) == 1:
                    raise IfConversionError(
                        f"region containing {nxt} is cyclic")
                if nxt not in state:
                    state[nxt] = 1
                    stack.append((nxt, iter(succs[nxt])))
                    advanced = True
                    break
            if not advanced:
                state[label] = 2
                order.append(label)
                stack.pop()

    visit(entry)
    order.reverse()
    return order


def _split_block(insts: list[Instruction]):
    """Split normalized block contents into (body, cond_branch, term)."""
    if not insts:
        raise IfConversionError("empty block in region")
    term = insts[-1]
    if not (term.op in (Opcode.JUMP, Opcode.RET) and term.pred is None):
        raise IfConversionError(
            f"region block not normalized: terminator is {term!r}")
    rest = insts[:-1]
    cbr = None
    if rest and rest[-1].cat is OpCategory.BRANCH:
        cbr = rest[-1]
        rest = rest[:-1]
    for inst in rest:
        if inst.is_control:
            raise IfConversionError(
                f"region block not normalized: interior control {inst!r}")
    return rest, cbr, term


def if_convert(fn: Function, region: set[str],
               entry: str) -> tuple[BasicBlock, PredInfo]:
    """If-convert ``region`` (entered only at ``entry``) in place.

    The region blocks are replaced by a single hyperblock named after the
    entry.  Returns the hyperblock and the predicate bookkeeping.
    """
    succs = successors_map(fn)
    order = _topological_order(region, entry, succs)
    info = PredInfo()

    def in_region(label: str | None) -> bool:
        return label is not None and label in region and label != entry

    # Count intra-region contributions per block to choose U vs OR types.
    contributions: dict[str, int] = {name: 0 for name in order}
    for name in order:
        _body, cbr, term = _split_block(fn.block(name).instructions)
        if cbr is not None and in_region(cbr.target):
            contributions[cbr.target] += 1
        if term.op is Opcode.JUMP and in_region(term.target):
            contributions[term.target] += 1

    # Blocks reached on *every* surviving path need no guard: if control
    # reaches such a block's position in the linearized hyperblock, no
    # earlier exit fired, and — because the block dominates every block
    # placed after it — the original path necessarily passed through it.
    # This keeps join blocks (e.g. a loop's induction update) unguarded,
    # exactly as control-dependence-based if-conversion would.
    pos = {name: k for k, name in enumerate(order)}
    dom: dict[str, set[str]] = {entry: {entry}}
    for name in order[1:]:
        region_preds = [p for p in order
                        if name in succs[p] and pos[p] < pos[name]]
        common: set[str] | None = None
        for p in region_preds:
            common = set(dom[p]) if common is None else common & dom[p]
        dom[name] = (common or set()) | {name}
    unguarded = {name for k, name in enumerate(order)
                 if all(name in dom[other] for other in order[k + 1:])}

    pred_of: dict[str, PReg | None] = {entry: None}
    for name in order[1:]:
        pred_of[name] = None if name in unguarded else fn.new_preg()
    info.block_pred = dict(pred_of)

    def ptype_for(target: str, complement: bool) -> PType:
        if contributions[target] > 1:
            info.uses_or_types = True
            return PType.OR_BAR if complement else PType.OR
        return PType.U_BAR if complement else PType.U

    def note_parent(child: str, guard: PReg | None) -> None:
        preg = pred_of[child]
        if preg is not None and guard is not None:
            info.parents.setdefault(preg, set()).add(guard)

    out: list[Instruction] = []
    exit_indices: list[int] = []

    def emit_exit(inst: Instruction, guard: PReg | None) -> None:
        exit_indices.append(len(out))
        out.append(inst.copy(pred=guard))

    def emit_contribution(target: str, guard: PReg | None) -> None:
        """Set pred(target) from an unconditional in-region edge."""
        if pred_of[target] is None:
            return
        out.append(Instruction(
            Opcode.PRED_EQ, srcs=(Imm(0), Imm(0)),
            pdests=(PredDest(pred_of[target], ptype_for(target, False)),),
            pred=guard))
        note_parent(target, guard)

    for name in order:
        guard = pred_of[name]
        body, cbr, term = _split_block(fn.block(name).instructions)
        for inst in body:
            if inst.pred is not None:
                raise IfConversionError(
                    f"block {name} already contains predicated code")
            out.append(inst.copy(pred=guard))

        if cbr is not None and in_region(cbr.target):
            target = cbr.target
            pdests = []
            if pred_of[target] is not None:
                pdests.append(PredDest(pred_of[target],
                                       ptype_for(target, False)))
                note_parent(target, guard)
            if term.op is Opcode.JUMP and in_region(term.target):
                # Both paths stay in the region: one define, two dests.
                fall = term.target
                if pred_of[fall] is not None:
                    pdests.append(PredDest(pred_of[fall],
                                           ptype_for(fall, True)))
                    note_parent(fall, guard)
                if pdests:
                    out.append(Instruction(_PRED_FOR_BRANCH[cbr.op],
                                           srcs=cbr.srcs,
                                           pdests=tuple(pdests),
                                           pred=guard))
            else:
                # Fall-through exits: guard it with a fresh U-complement
                # exit predicate from the same define.
                p_exit = fn.new_preg()
                pdests.append(PredDest(p_exit, PType.U_BAR))
                out.append(Instruction(_PRED_FOR_BRANCH[cbr.op],
                                       srcs=cbr.srcs,
                                       pdests=tuple(pdests), pred=guard))
                emit_exit(term, p_exit)
        else:
            if cbr is not None:
                # Conditional exit branch (target outside or backedge).
                emit_exit(cbr, guard)
            if term.op is Opcode.JUMP and in_region(term.target):
                # Reaching here after any exits means they did not fire,
                # so the contribution is simply the block guard.
                emit_contribution(term.target, guard)
            else:
                emit_exit(term, guard)

    # The last exit fires whenever control reaches it (see module doc):
    # make it unpredicated so the hyperblock always terminates.
    if not exit_indices:
        raise IfConversionError("region has no exits")
    last_idx = exit_indices[-1]
    if last_idx != len(out) - 1:
        raise IfConversionError("final instruction is not an exit")
    out[last_idx] = out[last_idx].copy(pred=None)

    # OR-type predicates must be initialized to 0 (paper Figure 1).
    if info.uses_or_types:
        out.insert(0, Instruction(Opcode.PRED_CLEAR))

    # Replace the region blocks with the hyperblock.
    hyper = BasicBlock(entry)
    hyper.instructions = out
    new_blocks: list[BasicBlock] = []
    replaced = False
    for block in fn.blocks:
        if block.name == entry:
            new_blocks.append(hyper)
            replaced = True
        elif block.name not in region:
            new_blocks.append(block)
    assert replaced
    fn.blocks = new_blocks
    return hyper, info
