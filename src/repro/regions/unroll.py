"""Loop unrolling for single-block loops (superblocks and hyperblocks).

Superblock ILP compilation (the paper's baseline, Hwu et al. 1993)
includes superblock loop unrolling, and hyperblock loops unroll the same
way: the loop body is replicated, intermediate backedges fall through
into the next copy, and per-copy temporaries are renamed so copies can
overlap in the schedule.  Loop-carried and live-out registers keep their
names — the renaming only touches values produced and consumed within
one iteration.

A block qualifies when its final instruction is an unpredicated jump to
the block itself; early (predicated or conditional) exits inside each
copy keep working because every copy re-tests its exit conditions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.liveness import liveness
from repro.ir.function import BasicBlock, Function
from repro.ir.instruction import Instruction, PredDest
from repro.ir.opcodes import Opcode
from repro.ir.operands import PReg, VReg


@dataclass(frozen=True)
class UnrollParams:
    """Unroll factor selection heuristics."""

    max_factor: int = 4
    #: do not let the unrolled body exceed this many instructions
    max_instructions: int = 260
    #: loops already longer than this are left alone
    max_body_size: int = 110


def choose_factor(body_size: int, params: UnrollParams) -> int:
    if body_size == 0 or body_size > params.max_body_size:
        return 1
    factor = min(params.max_factor,
                 params.max_instructions // max(body_size, 1))
    return max(factor, 1)


def _is_self_loop(block: BasicBlock) -> bool:
    if not block.instructions:
        return False
    last = block.instructions[-1]
    return (last.op is Opcode.JUMP and last.pred is None
            and last.target == block.name)


def _renamable_regs(fn: Function, block: BasicBlock) -> set:
    """Registers private to one iteration: defined in the block and not
    live into or out of it."""
    live = liveness(fn)
    keep = set(live.live_in.get(block.name, frozenset()))
    keep |= set(live.live_out.get(block.name, frozenset()))
    defined = set()
    for inst in block.instructions:
        defined.update(inst.defined_regs())
    return {r for r in defined if r not in keep}


def unroll_self_loop(fn: Function, block: BasicBlock,
                     params: UnrollParams | None = None) -> int:
    """Unroll ``block`` in place if it is a self-loop; returns the
    factor used (1 means unchanged)."""
    if params is None:
        params = UnrollParams()
    if not _is_self_loop(block):
        return 1
    body = block.instructions[:-1]
    backedge = block.instructions[-1]
    factor = choose_factor(len(body), params)
    if factor <= 1:
        return 1

    renamable = _renamable_regs(fn, block)
    out: list[Instruction] = list(body)
    for _copy in range(1, factor):
        mapping: dict = {}
        for reg in renamable:
            if isinstance(reg, PReg):
                mapping[reg] = fn.new_preg()
            elif isinstance(reg, VReg):
                mapping[reg] = fn.new_vreg(reg.rclass)
        for inst in body:
            new = inst.fresh_copy()
            new.srcs = tuple(mapping.get(s, s) for s in new.srcs)
            if new.pred is not None:
                new.pred = mapping.get(new.pred, new.pred)
            if new.dest is not None:
                new.dest = mapping.get(new.dest, new.dest)
            if new.pdests:
                new.pdests = tuple(
                    PredDest(mapping.get(pd.reg, pd.reg), pd.ptype)
                    for pd in new.pdests)
            out.append(new)
    out.append(backedge)
    block.instructions = out
    return factor


def unroll_function_loops(fn: Function,
                          params: UnrollParams | None = None) -> int:
    """Unroll every self-loop block of ``fn``; returns loops unrolled."""
    count = 0
    for block in fn.blocks:
        if unroll_self_loop(fn, block, params) > 1:
            count += 1
    return count
