"""Functional IR interpreter — the emulation half of emulation-driven
simulation.

The interpreter executes any ISA level (baseline, cmov, full predication)
with exact semantics: guarded instructions are fetched and nullified when
their predicate is false, speculative (silent) instructions never fault,
predicate defines follow the Table 1 truth table, and conditional
moves/selects behave per Section 2.2.  It produces the dynamic trace the
cycle simulator consumes, plus profile data for region formation.
"""

from __future__ import annotations

import hashlib
import time
from typing import TYPE_CHECKING

from repro.emu.memory import (GLOBAL_BASE, SAFE_ADDR, EmulationFault,
                              Memory, layout_globals)
from repro.emu.trace import ExecutionResult, TraceEvent

if TYPE_CHECKING:  # avoid an emu <-> robustness import cycle
    from repro.robustness.watchdog import EmulationWatchdog
from repro.ir.function import Function, Program
from repro.ir.instruction import Instruction
from repro.ir.opcodes import OpCategory, Opcode
from repro.ir.operands import GlobalAddr, Imm, PReg, VReg
from repro.machine.predicates import apply_pred_define

_U32 = 0xFFFFFFFF
_U64 = 0xFFFFFFFFFFFFFFFF
#: FNV-1a 64-bit prime — folds the store stream into an order-sensitive
#: signature without hashing the full trace.
_SIG_PRIME = 1099511628211
#: signature stand-in for NaN store values (quiet-NaN bit pattern);
#: int hashes are deterministic where hash(nan) is id-based on 3.10+
_NAN_KEY = 0x7FF8000000000000


def _w32(x: int) -> int:
    """Wrap to signed 32-bit."""
    return ((x + 0x80000000) & _U32) - 0x80000000


def _cdiv(a: int, b: int) -> int:
    """C-style truncating division."""
    if b == 0:
        raise EmulationFault("integer divide by zero")
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def _crem(a: int, b: int) -> int:
    return a - _cdiv(a, b) * b


_CMP = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "lt": lambda a, b: a < b,
    "le": lambda a, b: a <= b,
    "gt": lambda a, b: a > b,
    "ge": lambda a, b: a >= b,
}


class StepLimitExceeded(EmulationFault):
    """The program ran longer than the configured step budget."""


class Interpreter:
    """Executes a :class:`Program` and gathers trace/profile data."""

    def __init__(self, program: Program, memory: Memory | None = None,
                 inputs: dict[str, list[int | float] | bytes] | None = None,
                 collect_trace: bool = False,
                 max_steps: int = 50_000_000,
                 watchdog: "EmulationWatchdog | None" = None):
        self.program = program
        self.memory = memory if memory is not None else Memory()
        self.layout = layout_globals(program, self.memory, inputs)
        self.collect_trace = collect_trace
        self.max_steps = max_steps
        self.watchdog = watchdog
        self.steps = 0
        self.suppressed = 0
        self.output_signature = 0
        self.output_count = 0
        self.trace: list[TraceEvent] | None = [] if collect_trace else None
        self.branch_outcomes: dict[int, list[int]] = {}
        self.block_counts: dict[tuple[str, str], int] = {}
        self._code: dict[str, tuple[list[list[Instruction]],
                                    dict[str, int]]] = {}
        self._global_end = max(
            (self.layout[g.name] + g.byte_size
             for g in program.globals.values()), default=GLOBAL_BASE)

    # ----- program preprocessing -----------------------------------------

    def _function_code(self, fn: Function):
        cached = self._code.get(fn.name)
        if cached is None:
            blocks = [list(b.instructions) for b in fn.blocks]
            label2idx = {b.name: i for i, b in enumerate(fn.blocks)}
            cached = (blocks, label2idx)
            self._code[fn.name] = cached
        return cached

    # ----- entry point -----------------------------------------------------

    def run(self) -> ExecutionResult:
        main = self.program.main
        if self.watchdog is not None:
            self.watchdog.start()
        started = time.monotonic()
        value = self._run_function(main, [])
        wall_time = time.monotonic() - started
        digest = hashlib.sha256(
            bytes(self.memory.data[GLOBAL_BASE:self._global_end])
        ).hexdigest()
        return ExecutionResult(
            return_value=value,
            dynamic_count=self.steps,
            suppressed_count=self.suppressed,
            trace=self.trace,
            branch_outcomes=self.branch_outcomes,
            block_counts=self.block_counts,
            output_signature=self.output_signature,
            output_count=self.output_count,
            memory_digest=digest,
            wall_time_seconds=wall_time,
            heartbeats=list(self.watchdog.heartbeats)
            if self.watchdog is not None else [],
        )

    # ----- core loop --------------------------------------------------------

    def _run_function(self, fn: Function, args: list[int | float]):
        blocks, label2idx = self._function_code(fn)
        regs: dict[VReg | PReg, int | float] = {}
        preg_default = 0
        pregs: dict[PReg, int] = {}
        for param, arg in zip(fn.params, args):
            regs[param] = arg
        memory = self.memory
        layout = self.layout
        trace = self.trace
        fn_name = fn.name
        block_counts = self.block_counts
        branch_outcomes = self.branch_outcomes
        watchdog = self.watchdog
        wd_interval = watchdog.interval if watchdog is not None else 0

        def val(op):
            t = type(op)
            if t is VReg:
                return regs.get(op, 0)
            if t is Imm:
                return op.value
            if t is PReg:
                return pregs.get(op, preg_default)
            if t is GlobalAddr:
                return layout[op.name] + op.offset
            raise EmulationFault(f"bad operand {op!r}")

        bi = 0
        ii = 0
        nblocks = len(blocks)
        while True:
            if ii == 0:
                key = (fn_name, fn.blocks[bi].name)
                block_counts[key] = block_counts.get(key, 0) + 1
            block = blocks[bi]
            if ii >= len(block):
                # Fall through to the next block in layout order.
                bi += 1
                ii = 0
                if bi >= nblocks:
                    raise EmulationFault(
                        f"fell off the end of function {fn_name}")
                continue
            inst = block[ii]
            self.steps += 1
            if self.steps > self.max_steps:
                raise StepLimitExceeded(
                    f"exceeded {self.max_steps} steps in {fn_name}")
            if watchdog is not None and not self.steps % wd_interval:
                watchdog.beat(self.steps)
            op = inst.op
            cat = inst.cat

            # Guard check: fetched but nullified when the predicate is 0.
            # Predicate defines are exempt: their input predicate is a
            # truth-table operand, not a nullifying guard — a U-type
            # destination must still be written 0 when P_in is false
            # (paper Table 1), so stale values cannot leak across loop
            # iterations.
            if inst.pred is not None and cat is not OpCategory.PREDDEF \
                    and not pregs.get(inst.pred, preg_default):
                self.suppressed += 1
                if trace is not None:
                    trace.append(TraceEvent(inst, False, False, -1))
                ii += 1
                continue

            taken = False
            addr = -1
            sval = None

            if cat is OpCategory.ALU:
                a = val(inst.srcs[0])
                if op is Opcode.MOV:
                    regs[inst.dest] = a
                elif op is Opcode.NEG:
                    regs[inst.dest] = _w32(-a)
                elif op is Opcode.NOT:
                    regs[inst.dest] = _w32(~a)
                else:
                    b = val(inst.srcs[1])
                    if op is Opcode.ADD:
                        regs[inst.dest] = _w32(a + b)
                    elif op is Opcode.SUB:
                        regs[inst.dest] = _w32(a - b)
                    elif op is Opcode.MUL:
                        regs[inst.dest] = _w32(a * b)
                    elif op is Opcode.DIV:
                        if inst.speculative and b == 0:
                            regs[inst.dest] = 0
                        else:
                            regs[inst.dest] = _w32(_cdiv(a, b))
                    elif op is Opcode.REM:
                        if inst.speculative and b == 0:
                            regs[inst.dest] = 0
                        else:
                            regs[inst.dest] = _w32(_crem(a, b))
                    elif op is Opcode.AND:
                        regs[inst.dest] = a & b
                    elif op is Opcode.OR:
                        regs[inst.dest] = a | b
                    elif op is Opcode.XOR:
                        regs[inst.dest] = a ^ b
                    elif op is Opcode.SHL:
                        regs[inst.dest] = _w32(a << (b & 31))
                    elif op is Opcode.SHR:
                        regs[inst.dest] = a >> (b & 31)
                    elif op is Opcode.AND_NOT:
                        # Logical: dest = src1 & !src2 (0/1 result domain).
                        regs[inst.dest] = 1 if (a != 0 and b == 0) else 0
                    elif op is Opcode.OR_NOT:
                        regs[inst.dest] = 1 if (a != 0 or b == 0) else 0
                    else:
                        raise EmulationFault(f"unhandled ALU op {op}")

            elif cat is OpCategory.CMP or cat is OpCategory.FCMP:
                a = val(inst.srcs[0])
                b = val(inst.srcs[1])
                regs[inst.dest] = 1 if _CMP[inst.condition](a, b) else 0

            elif cat is OpCategory.FALU:
                a = val(inst.srcs[0])
                if op is Opcode.FMOV:
                    regs[inst.dest] = float(a)
                elif op is Opcode.FNEG:
                    regs[inst.dest] = -a
                elif op is Opcode.CVT_IF:
                    regs[inst.dest] = float(a)
                elif op is Opcode.CVT_FI:
                    regs[inst.dest] = _w32(int(a))
                else:
                    b = val(inst.srcs[1])
                    if op is Opcode.FADD:
                        regs[inst.dest] = a + b
                    elif op is Opcode.FSUB:
                        regs[inst.dest] = a - b
                    elif op is Opcode.FMUL:
                        regs[inst.dest] = a * b
                    elif op is Opcode.FDIV:
                        if b == 0.0:
                            if inst.speculative:
                                regs[inst.dest] = 0.0
                            else:
                                raise EmulationFault("float divide by zero")
                        else:
                            regs[inst.dest] = a / b
                    else:
                        raise EmulationFault(f"unhandled FALU op {op}")

            elif cat is OpCategory.LOAD:
                addr = val(inst.srcs[0]) + val(inst.srcs[1])
                if op is Opcode.LOAD:
                    regs[inst.dest] = memory.load_word(addr,
                                                       inst.speculative)
                elif op is Opcode.LOAD_B:
                    regs[inst.dest] = memory.load_byte(addr,
                                                       inst.speculative)
                else:
                    regs[inst.dest] = memory.load_float(addr,
                                                        inst.speculative)

            elif cat is OpCategory.STORE:
                addr = val(inst.srcs[0]) + val(inst.srcs[1])
                value = val(inst.srcs[2])
                if op is Opcode.STORE:
                    memory.store_word(addr, value)
                    sval = value & _U32
                elif op is Opcode.STORE_B:
                    memory.store_byte(addr, value)
                    sval = value & 0xFF
                else:
                    memory.store_float(addr, value)
                    sval = float(value)
                # Stores redirected to $safe_addr are the partial
                # predication nullification trick, not program output.
                if addr != SAFE_ADDR:
                    self.output_count += 1
                    # hash(nan) is id-based on 3.10+, so NaN stores
                    # fold through a fixed int key to keep signatures
                    # identical across engines, runs and processes.
                    key = sval if sval == sval else _NAN_KEY
                    self.output_signature = (
                        (self.output_signature ^ hash((addr, key)))
                        * _SIG_PRIME) & _U64

            elif cat is OpCategory.BRANCH:
                a = val(inst.srcs[0])
                b = val(inst.srcs[1])
                taken = _CMP[inst.condition](a, b)
                counts = branch_outcomes.get(inst.uid)
                if counts is None:
                    counts = [0, 0]
                    branch_outcomes[inst.uid] = counts
                counts[1 if taken else 0] += 1
                if trace is not None:
                    trace.append(TraceEvent(inst, True, taken, -1))
                if taken:
                    bi = label2idx.get(inst.target, -1)
                    if bi < 0:
                        raise EmulationFault(
                            f"{fn.name}: branch to unknown label "
                            f"{inst.target!r}")
                    ii = 0
                else:
                    ii += 1
                continue

            elif cat is OpCategory.JUMP:
                if trace is not None:
                    trace.append(TraceEvent(inst, True, True, -1))
                bi = label2idx.get(inst.target, -1)
                if bi < 0:
                    raise EmulationFault(
                        f"{fn.name}: jump to unknown label "
                        f"{inst.target!r}")
                ii = 0
                continue

            elif cat is OpCategory.CALL:
                if trace is not None:
                    trace.append(TraceEvent(inst, True, True, -1))
                callee = self.program.functions[inst.target]
                call_args = [val(s) for s in inst.srcs]
                result = self._run_function(callee, call_args)
                if inst.dest is not None:
                    regs[inst.dest] = result if result is not None else 0
                ii += 1
                continue

            elif cat is OpCategory.RET:
                if trace is not None:
                    trace.append(TraceEvent(inst, True, True, -1))
                if inst.srcs:
                    return val(inst.srcs[0])
                return 0

            elif cat is OpCategory.PREDDEF:
                a = val(inst.srcs[0])
                b = val(inst.srcs[1])
                cmp_result = 1 if _CMP[inst.condition](a, b) else 0
                p_in = 1 if inst.pred is None else \
                    (1 if pregs.get(inst.pred, preg_default) else 0)
                for pd in inst.pdests:
                    old = pregs.get(pd.reg, preg_default)
                    pregs[pd.reg] = apply_pred_define(pd.ptype, old, p_in,
                                                      cmp_result)

            elif cat is OpCategory.PREDSET:
                pregs.clear()
                preg_default = 1 if op is Opcode.PRED_SET else 0

            elif cat is OpCategory.CMOV:
                cond = val(inst.srcs[1])
                want = (cond != 0) if op in (Opcode.CMOV, Opcode.FCMOV) \
                    else (cond == 0)
                if want:
                    regs[inst.dest] = val(inst.srcs[0])

            elif cat is OpCategory.SELECT:
                cond = val(inst.srcs[2])
                regs[inst.dest] = val(inst.srcs[0]) if cond != 0 \
                    else val(inst.srcs[1])

            elif cat is OpCategory.NOP:
                pass

            else:
                raise EmulationFault(f"unhandled opcode {op}")

            if trace is not None:
                trace.append(TraceEvent(inst, True, taken, addr, sval))
            ii += 1


def run_program(program: Program,
                inputs: dict[str, list[int | float] | bytes] | None = None,
                collect_trace: bool = False,
                max_steps: int = 50_000_000,
                watchdog: "EmulationWatchdog | None" = None
                ) -> ExecutionResult:
    """Execute ``program`` from its entry function and return the result."""
    interp = Interpreter(program, inputs=inputs, collect_trace=collect_trace,
                         max_steps=max_steps, watchdog=watchdog)
    return interp.run()
