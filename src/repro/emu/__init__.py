"""Functional emulation: IR interpreter, memory model, trace capture."""

from repro.emu.interpreter import Interpreter, StepLimitExceeded, run_program
from repro.emu.memory import (EmulationFault, GLOBAL_BASE, Memory, SAFE_ADDR,
                              layout_globals)
from repro.emu.trace import ExecutionResult, TraceEvent

__all__ = [
    "EmulationFault", "ExecutionResult", "GLOBAL_BASE", "Interpreter",
    "Memory", "SAFE_ADDR", "StepLimitExceeded", "TraceEvent",
    "layout_globals", "run_program",
]
