"""Sparse flat memory for the functional emulator.

Layout (byte addresses):

* ``[0, 32)``   — trap page: any access faults (speculative loads return 0).
* ``32``        — ``$safe_addr``: the reserved scratch word used by the
  partial-predication store conversion (paper Figure 3).
* ``[64, ...)`` — global data objects, 8-byte aligned.
* top of memory — downward-growing stack for local arrays.

Integers are 32-bit two's-complement words; floats occupy 8 bytes.
"""

from __future__ import annotations

import struct

from repro.ir.function import GlobalVar, Program

SAFE_ADDR = 32
GLOBAL_BASE = 64
DEFAULT_SIZE = 1 << 21


class EmulationFault(Exception):
    """A program-terminating exception (illegal address, divide by zero)."""


class Memory:
    """Byte-addressed memory with typed word accessors."""

    def __init__(self, size: int = DEFAULT_SIZE):
        self.size = size
        self.data = bytearray(size)
        self.stack_pointer = size

    def _check(self, addr: int, nbytes: int) -> None:
        if addr < SAFE_ADDR or addr + nbytes > self.size:
            raise EmulationFault(f"illegal memory access at {addr:#x}")

    # ----- integer words --------------------------------------------------

    def load_word(self, addr: int, speculative: bool = False) -> int:
        if addr < SAFE_ADDR or addr + 4 > self.size:
            if speculative:
                return 0
            raise EmulationFault(f"illegal load at {addr:#x}")
        return int.from_bytes(self.data[addr:addr + 4], "little",
                              signed=True)

    def store_word(self, addr: int, value: int) -> None:
        self._check(addr, 4)
        self.data[addr:addr + 4] = (value & 0xFFFFFFFF).to_bytes(
            4, "little")

    # ----- bytes ------------------------------------------------------------

    def load_byte(self, addr: int, speculative: bool = False) -> int:
        if addr < SAFE_ADDR or addr + 1 > self.size:
            if speculative:
                return 0
            raise EmulationFault(f"illegal byte load at {addr:#x}")
        return self.data[addr]

    def store_byte(self, addr: int, value: int) -> None:
        self._check(addr, 1)
        self.data[addr] = value & 0xFF

    # ----- floats -----------------------------------------------------------

    def load_float(self, addr: int, speculative: bool = False) -> float:
        if addr < SAFE_ADDR or addr + 8 > self.size:
            if speculative:
                return 0.0
            raise EmulationFault(f"illegal float load at {addr:#x}")
        return struct.unpack_from("<d", self.data, addr)[0]

    def store_float(self, addr: int, value: float) -> None:
        self._check(addr, 8)
        struct.pack_into("<d", self.data, addr, value)

    # ----- stack ------------------------------------------------------------

    def alloc_stack(self, nbytes: int) -> int:
        """Allocate a stack region; returns its base address."""
        aligned = (nbytes + 7) & ~7
        self.stack_pointer -= aligned
        if self.stack_pointer <= GLOBAL_BASE:
            raise EmulationFault("stack overflow")
        return self.stack_pointer

    def free_stack(self, nbytes: int) -> None:
        aligned = (nbytes + 7) & ~7
        self.stack_pointer += aligned


def layout_globals(program: Program, memory: Memory,
                   inputs: dict[str, list[int | float] | bytes] | None = None
                   ) -> dict[str, int]:
    """Assign addresses to globals, write initial/injected values.

    ``inputs`` maps global names to initial contents, overriding any
    initializer in the program; this is how workload input data is
    injected deterministically.
    """
    inputs = inputs or {}
    layout: dict[str, int] = {}
    addr = GLOBAL_BASE
    for g in program.globals.values():
        addr = (addr + 7) & ~7
        layout[g.name] = addr
        values = inputs.get(g.name, g.init)
        if values is not None:
            _write_values(memory, addr, g, values)
        addr += g.byte_size
    if addr >= memory.size // 2:
        raise EmulationFault("global data does not fit in memory")
    return layout


def _write_values(memory: Memory, base: int, g: GlobalVar,
                  values: list[int | float] | bytes) -> None:
    if len(values) > g.count:
        raise EmulationFault(
            f"initializer for {g.name} has {len(values)} elements, "
            f"declared {g.count}")
    for i, v in enumerate(values):
        if g.is_float:
            memory.store_float(base + 8 * i, float(v))
        elif g.elem_size == 1:
            memory.store_byte(base + i, int(v))
        else:
            memory.store_word(base + 4 * i, int(v))
