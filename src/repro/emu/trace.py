"""Dynamic trace structures produced by emulation (paper Section 4.1).

The paper's *emulation-driven simulation* executes the compiled code
functionally and records an instruction trace containing memory address
information, predicate register contents, and branch directions; the
trace is then fed to the cycle-level simulator.  A :class:`TraceEvent`
carries exactly that information for one dynamic instruction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, NamedTuple

from repro.ir.instruction import Instruction

if TYPE_CHECKING:  # fastpath imports emu.trace; keep runtime acyclic
    from repro.fastpath.columns import TraceColumns


class TraceEvent(NamedTuple):
    """One dynamic instruction.

    ``executed`` is False when the instruction's guard predicate was
    false (the instruction was fetched but nullified).  ``taken`` is
    meaningful for control instructions; ``addr`` is the effective
    memory address for executed memory instructions, else -1.
    ``value`` is the normalized value written by an executed store
    (None otherwise) — the differential oracle and trace-integrity
    checker read it.
    """

    inst: Instruction
    executed: bool
    taken: bool
    addr: int
    value: int | float | None = None


@dataclass
class ExecutionResult:
    """Everything produced by one emulation run."""

    return_value: int | float
    dynamic_count: int
    #: fetched-but-nullified dynamic instructions (subset of dynamic_count)
    suppressed_count: int
    #: the dynamic trace: a ``list[TraceEvent]`` from the legacy
    #: interpreter, a columnar ``TraceColumns`` from the fastpath, or
    #: None when tracing was off (or the trace was streamed to a sink)
    trace: list[TraceEvent] | TraceColumns | None
    #: uid -> [not_taken_count, taken_count] for conditional branches
    branch_outcomes: dict[int, list[int]] = field(default_factory=dict)
    #: (function, block) -> entry count
    block_counts: dict[tuple[str, str], int] = field(default_factory=dict)
    #: order-sensitive signature of the dynamic output (store) stream,
    #: excluding $safe_addr redirects; identical across correct models
    output_signature: int = 0
    #: number of observable stores folded into ``output_signature``
    output_count: int = 0
    #: hex digest of the final global-data memory region, or None
    memory_digest: str | None = None
    #: wall-clock emulation time in seconds
    wall_time_seconds: float = 0.0
    #: (steps, elapsed_seconds) heartbeats from the watchdog, if any
    heartbeats: list[tuple[int, float]] = field(default_factory=list)

    @property
    def executed_count(self) -> int:
        return self.dynamic_count - self.suppressed_count

    def trace_events(self, program) -> list[TraceEvent] | None:
        """The trace as ``TraceEvent`` objects whatever its storage.

        Columnar traces need ``program`` (or a ``DecodedProgram``) to
        resolve static-instruction indices; legacy traces are returned
        as-is.
        """
        trace = self.trace
        if trace is None or isinstance(trace, list):
            return trace
        return trace.to_events(program)

    def verify_integrity(self, program) -> None:
        """Check this result's trace invariants against ``program``.

        Delegates to :func:`repro.robustness.integrity.check_trace_integrity`
        (imported lazily to keep ``emu`` free of ``robustness`` imports);
        raises :class:`repro.robustness.errors.TraceIntegrityError`.
        """
        from repro.robustness.integrity import check_trace_integrity
        check_trace_integrity(self, program)
