"""The asyncio experiment job server (``python -m repro serve``).

One process, one shared artifact store, a JSON-lines protocol over a
localhost TCP socket.  Robustness is the architecture, not a wrapper:

* **bounded admission** — the queue never grows past ``queue_depth``;
  an overflowing submission is *shed* with the typed
  :class:`ServiceOverloadedError` and a Retry-After hint instead of
  growing memory without bound;
* **per-tenant quotas** — token-bucket submission rate plus a
  concurrent-job cap (:mod:`repro.service.quota`);
* **single-flight dedup** — submissions coalesce on the CAS request
  digest (:mod:`repro.service.singleflight`): N identical submissions
  cost one execution, every observer reads the same bytes;
* **circuit breaker** — crash-evidence storms from the worker pool
  trip the breaker and jobs degrade to serial in-process execution
  (:mod:`repro.service.breaker`) rather than the server dying;
* **graceful drain** — SIGTERM stops admission, finishes what it can
  inside ``drain_grace`` seconds and leaves everything else journaled
  and persisted, so a restarted server re-admits and *resumes* it with
  zero recompute.

Protocol (one JSON object per line; every response carries ``ok``)::

    {"op": "submit", "tenant": "t", "spec": {...}}
    {"op": "status", "job_id": "J..."}
    {"op": "watch",  "job_id": "J...", "from_index": 0}  # streams events
    {"op": "stats"} | {"op": "ping"} | {"op": "drain"}

Campaign workers (``repro worker --endpoint``) speak four more ops —
``register``, ``claim``, ``heartbeat``, ``complete`` (plus ``release``
for typed shard failures) — thin wrappers over
:class:`repro.service.cluster.ClusterOps`: the authoritative lease
state lives on the shared store, so a worker talking through the
socket and a worker mutating the store directly are interchangeable.

Errors come back typed: ``{"ok": false, "error": "<taxonomy class>",
"message": ..., "exit_code": N, "retry_after": seconds}``.
"""

from __future__ import annotations

import asyncio
import json
import logging
import os
import signal
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.engine.metrics import PipelineMetrics
from repro.engine.recovery.journal import journal_path, tail_records
from repro.robustness.errors import (ReproError, ServiceOverloadedError,
                                     classify_exception)
from repro.service.breaker import BreakerConfig, CircuitBreaker
from repro.service.cluster import ClusterOps, live_worker_ids
from repro.service.executor import ExecutionOutcome, execute_job
from repro.service.quota import QuotaConfig, QuotaManager
from repro.service.singleflight import (DONE, FAILED, QUEUED, RUNNING,
                                        JobRecord, SingleFlight,
                                        job_id_for, load_records,
                                        run_id_for, save_record)
from repro.service.spec import ServiceJobSpec

logger = logging.getLogger("repro.service.server")

#: journal record types forwarded to watch streams
_WATCH_TYPES = ("run-start", "run-resume", "task-start", "task-finish",
                "task-fail", "run-finish")


def _is_progress(task: str) -> bool:
    """Tasks that advance the watch progress counter: one per
    simulated triple (bench/figures) or per sweep point."""
    return task.startswith(("simulate:", "sweep:"))


@dataclass(frozen=True)
class ServiceConfig:
    """Everything ``repro serve`` configures."""

    cache_dir: str
    host: str = "127.0.0.1"
    port: int = 0
    #: process-pool width per job execution (breaker-closed mode)
    jobs: int = 1
    #: concurrent job executions (server-side worker coroutines)
    workers: int = 2
    #: admission queue bound; submissions beyond it are shed
    queue_depth: int = 16
    quota: QuotaConfig = field(default_factory=QuotaConfig)
    breaker: BreakerConfig = field(default_factory=BreakerConfig)
    #: seconds a drain waits for in-flight jobs before giving up
    drain_grace: float = 30.0
    #: completed-job records kept for dedup/status lookups
    done_limit: int = 256
    #: merge + write pipeline metrics here on drain
    bench_json: str | None = None


def endpoint_path(cache_dir: str | os.PathLike) -> Path:
    return Path(cache_dir) / "service" / "service.json"


def read_endpoint(cache_dir: str | os.PathLike) -> tuple[str, int]:
    """Resolve the served host/port from the cache dir's state file."""
    path = endpoint_path(cache_dir)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
        return str(data["host"]), int(data["port"])
    except (OSError, ValueError, KeyError):
        raise ReproError(
            f"no experiment service endpoint at {path} — is "
            f"`repro serve --cache-dir {cache_dir}` running?") from None


class ExperimentService:
    """The server: admission, quotas, dedup, breaker, drain."""

    def __init__(self, config: ServiceConfig,
                 executor: Callable[..., ExecutionOutcome] = execute_job,
                 clock: Callable[[], float] = time.monotonic):
        self.config = config
        self.metrics = PipelineMetrics()
        self.registry = SingleFlight(done_limit=config.done_limit)
        self.quotas = QuotaManager(config=config.quota, clock=clock)
        self.breaker = CircuitBreaker(config=config.breaker, clock=clock)
        self.cluster = ClusterOps(config.cache_dir)
        self._executor = executor
        self._queue: asyncio.Queue[JobRecord | None] = asyncio.Queue()
        self._inflight: set[str] = set()
        self._draining = False
        self._drain_event = asyncio.Event()
        self._workers: list[asyncio.Task] = []
        self._conn_tasks: set[asyncio.Task] = set()
        self._conn_writers: set[asyncio.StreamWriter] = set()
        self._server: asyncio.AbstractServer | None = None
        self.port: int | None = None

    # ----- lifecycle ----------------------------------------------------

    async def start(self) -> None:
        """Recover persisted jobs, start workers and the listener."""
        self._recover()
        for _ in range(max(1, self.config.workers)):
            self._workers.append(asyncio.create_task(self._worker()))
        self._server = await asyncio.start_server(
            self._handle_conn, self.config.host, self.config.port)
        self.port = self._server.sockets[0].getsockname()[1]
        path = endpoint_path(self.config.cache_dir)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(
            {"host": self.config.host, "port": self.port,
             "pid": os.getpid()}, sort_keys=True) + "\n",
            encoding="utf-8")
        logger.info("experiment service listening on %s:%d",
                    self.config.host, self.port)

    def _recover(self) -> None:
        """Re-admit jobs a previous server left queued or running.

        Their run journals (keyed by request digest) already hold every
        completed task, so re-execution resumes instead of restarting.
        """
        recovered = 0
        for record in load_records(self.config.cache_dir):
            if record.terminal:
                record.done_event.set()
                self.registry.finish(record)
                continue
            record.state = QUEUED
            self.registry.admit(record)
            self.quotas.restore(record.tenant)
            self.metrics.jobs_admitted += 1
            self._queue.put_nowait(record)
            recovered += 1
        if recovered:
            logger.warning("re-admitted %d interrupted job(s) for "
                           "journal resume", recovered)

    def begin_drain(self) -> None:
        """Stop admitting; wake the drain loop.  Signal-handler safe."""
        if not self._draining:
            logger.warning("drain requested: admission closed")
        self._draining = True
        self._drain_event.set()

    async def run_until_drained(self) -> bool:
        """Serve until drain is requested, then wind down.

        Returns True when every admitted job reached a terminal state
        inside the grace period; False when jobs were left behind —
        journaled and persisted, ready for the next server to resume.
        """
        await self._drain_event.wait()
        deadline = time.monotonic() + self.config.drain_grace
        while (self._queue.qsize() or self._inflight) \
                and time.monotonic() < deadline:
            await asyncio.sleep(0.05)
        clean = not self._queue.qsize() and not self._inflight
        if not clean:
            logger.warning(
                "drain grace expired with %d queued and %d running "
                "job(s); they are journaled and will resume on the "
                "next start", self._queue.qsize(), len(self._inflight))
        for task in self._workers:
            task.cancel()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Nudge lingering connections to EOF so their handlers exit
        # cleanly instead of being cancelled at loop teardown.
        for writer in list(self._conn_writers):
            writer.close()
        if self._conn_tasks:
            await asyncio.wait(self._conn_tasks, timeout=2.0)
        self._write_bench()
        try:
            endpoint_path(self.config.cache_dir).unlink()
        except OSError:
            pass
        return clean

    def _write_bench(self) -> None:
        if not self.config.bench_json:
            return
        try:
            with open(self.config.bench_json) as handle:
                self.metrics.merge_dict(json.load(handle))
        except (OSError, ValueError):
            pass
        self.metrics.write_json(self.config.bench_json)

    # ----- admission ----------------------------------------------------

    def _retry_after_hint(self) -> float:
        """Rough time for one queue slot to free up."""
        done = self.metrics.service_jobs_done
        avg = (self.metrics.service_seconds / done) if done else 2.0
        return max(0.5, round(
            avg * (self._queue.qsize() + 1)
            / max(1, self.config.workers), 2))

    def submit(self, tenant: str, spec_data: object
               ) -> tuple[JobRecord, bool]:
        """Admit (or coalesce) one submission; raises typed on reject.

        Runs synchronously on the event loop — admission is pure
        bookkeeping, the heavy work happens in the worker coroutines.
        """
        if self._draining:
            raise ServiceOverloadedError(
                "service is draining and admits no new jobs — retry "
                "against the restarted instance",
                retry_after=self.config.drain_grace,
                queue_depth=self.config.queue_depth)
        spec = spec_data if isinstance(spec_data, ServiceJobSpec) \
            else ServiceJobSpec.from_dict(spec_data)
        digest = spec.request_digest()
        existing = self.registry.coalesce(digest)
        if existing is not None:
            existing.observers += 1
            self.metrics.jobs_deduped += 1
            return existing, True
        # A genuinely new execution: quota first (so a rate-limited
        # tenant cannot consume queue slots), then the bounded queue.
        self.quotas.admit(tenant)
        if self._queue.qsize() >= self.config.queue_depth:
            self.quotas.release(tenant)
            self.metrics.jobs_shed += 1
            raise ServiceOverloadedError(
                f"admission queue is full ({self.config.queue_depth} "
                f"jobs) — load shed",
                retry_after=self._retry_after_hint(),
                queue_depth=self.config.queue_depth)
        record = JobRecord(job_id=job_id_for(digest), digest=digest,
                           tenant=tenant, spec=spec,
                           run_id=run_id_for(digest),
                           submitted_at=time.time())
        save_record(self.config.cache_dir, record)
        self.registry.admit(record)
        self.metrics.jobs_admitted += 1
        self._queue.put_nowait(record)
        return record, False

    # ----- execution ----------------------------------------------------

    async def _worker(self) -> None:
        while True:
            record = await self._queue.get()
            if record is None:
                return
            self._inflight.add(record.job_id)
            try:
                await self._run_record(record)
            finally:
                self._inflight.discard(record.job_id)
                self._queue.task_done()

    async def _run_record(self, record: JobRecord) -> None:
        remaining = record.remaining_deadline()
        mode = self.breaker.acquire_mode()
        jobs = self.config.jobs if mode == "pool" else 1
        record.state = RUNNING
        record.started_at = time.time()
        record.mode = mode
        save_record(self.config.cache_dir, record)
        start = time.monotonic()
        crash_evidence = False
        try:
            outcome: ExecutionOutcome = await asyncio.to_thread(
                self._executor, record.spec, self.config.cache_dir,
                record.run_id, jobs, remaining)
        except Exception as raw:
            exc = classify_exception(raw)
            crash_evidence = "BrokenProcessPool" in type(raw).__name__
            record.state = FAILED
            record.error = {
                "type": type(exc).__name__, "message": str(exc)[:500],
                "exit_code": getattr(exc, "exit_code",
                                     ReproError.exit_code)}
            logger.warning("job %s failed: %s: %s", record.job_id,
                           type(exc).__name__, exc)
        else:
            record.state = DONE
            record.result_json = outcome.result_json
            self.metrics.merge_dict(outcome.counters)
            crash_evidence = outcome.crash_evidence
        finally:
            self.breaker.record(mode, crash_evidence)
            self.metrics.breaker_trips = self.breaker.trips
            record.finished_at = time.time()
            self.metrics.record_service_job(time.monotonic() - start)
            save_record(self.config.cache_dir, record)
            self.registry.finish(record)
            self.quotas.release(record.tenant)
            record.done_event.set()

    # ----- protocol -----------------------------------------------------

    @staticmethod
    def _error_payload(exc: BaseException) -> dict:
        exc = classify_exception(exc)
        payload = {"ok": False, "error": type(exc).__name__,
                   "message": str(exc),
                   "exit_code": getattr(exc, "exit_code",
                                        ReproError.exit_code)}
        for attr in ("retry_after", "kind", "tenant"):
            value = getattr(exc, attr, None)
            if value is not None:
                payload[attr] = value
        return payload

    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        async def send(payload: dict) -> None:
            writer.write(json.dumps(payload, sort_keys=True).encode()
                         + b"\n")
            await writer.drain()

        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        self._conn_writers.add(writer)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    return
                try:
                    request = json.loads(line)
                    if not isinstance(request, dict):
                        raise ValueError("request must be an object")
                except ValueError as exc:
                    await send(self._error_payload(
                        ReproError(f"malformed request: {exc}")))
                    continue
                try:
                    await self._dispatch(request, send)
                except Exception as exc:  # noqa: BLE001 — classified
                    await send(self._error_payload(exc))
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            self._conn_writers.discard(writer)
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(self, request: dict, send) -> None:
        op = request.get("op")
        if op == "ping":
            await send({"ok": True, "draining": self._draining,
                        "pid": os.getpid()})
        elif op == "submit":
            tenant = str(request.get("tenant") or "default")
            record, deduped = self.submit(tenant, request.get("spec"))
            await send({"ok": True, "deduped": deduped,
                        "job": record.to_dict()})
        elif op == "status":
            record = self._record_for(request)
            await send({"ok": True, "job": record.to_dict()})
        elif op == "watch":
            try:
                from_index = max(0, int(request.get("from_index") or 0))
            except (TypeError, ValueError):
                from_index = 0
            await self._watch(self._record_for(request), send,
                              from_index)
        elif op == "stats":
            await send({"ok": True, "metrics": self.metrics.to_dict(),
                        "service": {
                            "queued": self._queue.qsize(),
                            "queue_depth": self.config.queue_depth,
                            "running": len(self._inflight),
                            "active": self.registry.active_count,
                            "draining": self._draining,
                            "breaker": self.breaker.state,
                            "breaker_trips": self.breaker.trips,
                            "cluster_workers": await asyncio.to_thread(
                                live_worker_ids,
                                self.config.cache_dir)}})
        elif op == "drain":
            self.begin_drain()
            await send({"ok": True, "draining": True})
        elif op == "register":
            worker_id = await asyncio.to_thread(
                self.cluster.register, request.get("worker_id"),
                request.get("pid"))
            await send({"ok": True, "worker_id": worker_id})
        elif op == "claim":
            worker_id = str(request.get("worker_id") or "")
            work = await asyncio.to_thread(self.cluster.claim, worker_id)
            await send({"ok": True, "work": work})
        elif op == "heartbeat":
            if request.get("worker_id"):
                await asyncio.to_thread(self.cluster.beat_worker,
                                        str(request["worker_id"]))
            lease = request.get("lease")
            if lease is not None:
                lease = await asyncio.to_thread(
                    self.cluster.heartbeat,
                    str(request.get("campaign") or ""), lease)
            await send({"ok": True, "lease": lease})
        elif op == "complete":
            won = await asyncio.to_thread(
                self.cluster.complete,
                str(request.get("campaign") or ""),
                request.get("lease") or {}, request.get("payload") or {})
            await send({"ok": True, "won": won})
        elif op == "release":
            if request.get("unregister"):
                await asyncio.to_thread(
                    self.cluster.unregister,
                    str(request.get("worker_id") or ""))
            elif request.get("lease") is not None:
                await asyncio.to_thread(
                    self.cluster.fail,
                    str(request.get("campaign") or ""),
                    request.get("lease"),
                    str(request.get("error") or "ReproError"),
                    str(request.get("message") or ""),
                    bool(request.get("transient", True)))
            await send({"ok": True})
        else:
            await send(self._error_payload(
                ReproError(f"unknown op {op!r}")))

    def _record_for(self, request: dict) -> JobRecord:
        job_id = str(request.get("job_id") or "")
        record = self.registry.by_job_id(job_id)
        if record is None:
            raise ReproError(f"unknown job id {job_id!r}")
        return record

    async def _watch(self, record: JobRecord, send,
                     from_index: int = 0) -> None:
        """Stream a job's progress by tailing its run journal.

        Beyond the raw journal records, the stream carries progress
        events at *task granularity*: the run-start meta declares
        ``tasks_total`` (sweep points, simulate tasks) and every
        progress-bearing task-finish bumps ``tasks_done``.  The tail
        starts at offset 0, so a resumed job's earlier completions
        replay through the same counter and the bar never restarts
        from zero.

        Every journal event carries a 1-based stream ``index``; a
        reconnecting watcher passes the last index it saw as
        ``from_index`` and the replay is suppressed up to there (the
        progress counters still advance silently, so the first visible
        progress event is numerically correct).
        """
        jpath = journal_path(
            Path(self.config.cache_dir) / "runs", record.run_id)
        offset = 0
        sent = 0
        tasks_done = 0
        tasks_total: int | None = None
        await send({"ok": True, "event": "job", "job": record.to_dict(),
                    "from_index": from_index})
        while True:
            records, offset = tail_records(jpath, offset)
            for entry in records:
                if entry.get("type") not in _WATCH_TYPES:
                    continue
                sent += 1
                visible = sent > from_index
                if visible:
                    await send({"ok": True, "event": "journal",
                                "record": entry, "index": sent})
                if entry["type"] == "run-start":
                    total = entry.get("meta", {}).get("tasks_total")
                    if isinstance(total, int) and total > 0:
                        tasks_total = total
                elif entry["type"] == "task-finish" and _is_progress(
                        entry.get("task", "")):
                    tasks_done += 1
                    if visible:
                        await send({"ok": True, "event": "progress",
                                    "tasks_done": tasks_done,
                                    "tasks_total": tasks_total,
                                    "task": entry.get("task", "")})
            if record.terminal:
                await send({"ok": True, "event": "end",
                            "job": record.to_dict()})
                return
            try:
                await asyncio.wait_for(record.done_event.wait(),
                                       timeout=0.1)
            except asyncio.TimeoutError:
                pass


# ----- entry points ---------------------------------------------------------

def serve_forever(config: ServiceConfig) -> int:
    """Blocking server entry for the CLI: run until SIGTERM/SIGINT."""
    service = ExperimentService(config)

    async def _main() -> bool:
        await service.start()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, service.begin_drain)
            except (NotImplementedError, RuntimeError):
                pass
        print(f"experiment service on {service.config.host}:"
              f"{service.port} (cache {config.cache_dir}) — "
              f"SIGTERM drains gracefully", file=sys.stderr, flush=True)
        return await service.run_until_drained()

    clean = asyncio.run(_main())
    if not clean:
        # Interrupted jobs are journaled + persisted; the executor
        # threads cannot be cancelled, so leave hard rather than hang
        # on a stuck non-daemon thread.  The next `repro serve`
        # re-admits and resumes them.
        sys.stderr.flush()
        os._exit(0)
    return 0


class ServiceRunner:
    """Run an :class:`ExperimentService` on a background thread.

    The harness tests and the chaos campaign drive a real server
    (listener, workers, drain) without owning the main thread.
    """

    def __init__(self, config: ServiceConfig,
                 executor: Callable[..., ExecutionOutcome] = execute_job,
                 clock: Callable[[], float] = time.monotonic):
        self.service = ExperimentService(config, executor=executor,
                                         clock=clock)
        self._started = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        asyncio.run(self._amain())

    async def _amain(self) -> None:
        self._loop = asyncio.get_running_loop()
        await self.service.start()
        self._started.set()
        await self.service.run_until_drained()

    def start(self, timeout: float = 10.0) -> "ServiceRunner":
        self._thread.start()
        if not self._started.wait(timeout):
            raise RuntimeError("service failed to start in time")
        return self

    @property
    def port(self) -> int:
        assert self.service.port is not None
        return self.service.port

    def stop(self, timeout: float = 30.0) -> None:
        if self._loop is not None and self._thread.is_alive():
            self._loop.call_soon_threadsafe(self.service.begin_drain)
        self._thread.join(timeout)

    def __enter__(self) -> "ServiceRunner":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()
