"""Single-flight job records: one execution per request digest.

Every submission resolves to a :class:`JobRecord` keyed by its spec's
CAS request digest.  The registry guarantees at most one *live*
execution per digest: concurrent identical submissions attach to the
existing record as observers (counted in
``PipelineMetrics.jobs_deduped``) and all read the same byte-identical
``result_json`` when it completes.  Completed records stay in a
bounded done-cache so an identical submission arriving later is served
with zero compute; a *failed* record is retried by the next
submission instead of poisoning the digest forever.

Records are persisted as JSON files under
``<cache-dir>/service/jobs/`` at every state transition (atomic
tmp+rename), which is what lets a restarted server re-admit jobs that
were queued or running when it died — their run journals then resume
the actual pipeline work with zero recompute.
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path

from repro.service.spec import ServiceJobSpec

#: JobRecord.state values; "done" and "failed" are terminal
QUEUED, RUNNING, DONE, FAILED = "queued", "running", "done", "failed"
TERMINAL = (DONE, FAILED)


def job_id_for(digest: str) -> str:
    return "J" + digest[:16]


def run_id_for(digest: str) -> str:
    """Deterministic run id: a restarted server resumes the same
    journal for the same request."""
    return "S" + digest[:16]


@dataclass
class JobRecord:
    """One request digest's lifecycle through the service."""

    job_id: str
    digest: str
    tenant: str
    spec: ServiceJobSpec
    state: str = QUEUED
    run_id: str = ""
    submitted_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    #: canonical JSON string — byte-identical for every observer
    result_json: str | None = None
    #: {"type", "message", "exit_code"} of a typed failure
    error: dict | None = None
    #: total submissions that resolved to this record
    observers: int = 1
    #: execution mode the breaker granted ("pool" | "serial")
    mode: str = "pool"
    #: signals observers when the record reaches a terminal state
    done_event: asyncio.Event = field(default_factory=asyncio.Event,
                                      repr=False, compare=False)

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL

    def remaining_deadline(self) -> float | None:
        """Seconds of deadline left, measured from submission."""
        if self.spec.deadline is None:
            return None
        return self.spec.deadline - (time.time() - self.submitted_at)

    def to_dict(self) -> dict:
        data = {
            "job_id": self.job_id, "digest": self.digest,
            "tenant": self.tenant, "spec": self.spec.to_dict(),
            "state": self.state, "run_id": self.run_id,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "observers": self.observers, "mode": self.mode,
        }
        if self.result_json is not None:
            data["result_json"] = self.result_json
        if self.error is not None:
            data["error"] = self.error
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "JobRecord":
        return cls(job_id=data["job_id"], digest=data["digest"],
                   tenant=data.get("tenant", "default"),
                   spec=ServiceJobSpec.from_dict(data["spec"]),
                   state=data.get("state", QUEUED),
                   run_id=data.get("run_id", ""),
                   submitted_at=data.get("submitted_at", 0.0),
                   started_at=data.get("started_at"),
                   finished_at=data.get("finished_at"),
                   result_json=data.get("result_json"),
                   error=data.get("error"),
                   observers=data.get("observers", 1),
                   mode=data.get("mode", "pool"))


# ----- persistence ----------------------------------------------------------

def jobs_dir(cache_dir: str | os.PathLike) -> Path:
    return Path(cache_dir) / "service" / "jobs"


def save_record(cache_dir: str | os.PathLike, record: JobRecord) -> None:
    """Durable state transition: atomic tmp+rename, like the store."""
    directory = jobs_dir(cache_dir)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{record.job_id}.json"
    tmp = path.with_suffix(f".tmp-{os.getpid()}")
    tmp.write_text(json.dumps(record.to_dict(), sort_keys=True,
                              indent=1) + "\n", encoding="utf-8")
    os.replace(tmp, path)


def load_records(cache_dir: str | os.PathLike) -> list[JobRecord]:
    """Every persisted job record, unparsable files skipped."""
    directory = jobs_dir(cache_dir)
    records: list[JobRecord] = []
    if not directory.is_dir():
        return records
    for path in sorted(directory.glob("J*.json")):
        try:
            records.append(JobRecord.from_dict(
                json.loads(path.read_text(encoding="utf-8"))))
        except (OSError, ValueError, KeyError):
            continue
    return records


# ----- registry -------------------------------------------------------------

class SingleFlight:
    """Digest -> record registry enforcing one live execution each."""

    def __init__(self, done_limit: int = 256):
        self.done_limit = done_limit
        self._active: dict[str, JobRecord] = {}
        self._done: "OrderedDict[str, JobRecord]" = OrderedDict()

    # Lookup order matters: a live execution always wins, then the
    # done-cache.  Only successful cached records satisfy a *new*
    # submission — a failed one is evicted so the submission retries.

    def lookup(self, digest: str) -> JobRecord | None:
        record = self._active.get(digest)
        if record is not None:
            return record
        return self._done.get(digest)

    def coalesce(self, digest: str) -> JobRecord | None:
        """Record a new submission may attach to, or None to execute.

        Attachable: a queued/running record (shares the execution) or
        a successfully completed one (shares the cached result).  A
        failed cached record is evicted and None returned — the new
        submission gets a fresh attempt.
        """
        record = self._active.get(digest)
        if record is not None:
            return record
        record = self._done.get(digest)
        if record is None:
            return None
        if record.state == DONE:
            return record
        del self._done[digest]
        return None

    def admit(self, record: JobRecord) -> None:
        self._active[record.digest] = record

    def finish(self, record: JobRecord) -> None:
        """Move a terminal record into the bounded done-cache."""
        self._active.pop(record.digest, None)
        self._done[record.digest] = record
        self._done.move_to_end(record.digest)
        while len(self._done) > self.done_limit:
            self._done.popitem(last=False)

    def by_job_id(self, job_id: str) -> JobRecord | None:
        for record in self._active.values():
            if record.job_id == job_id:
                return record
        for record in self._done.values():
            if record.job_id == job_id:
                return record
        return None

    @property
    def active_count(self) -> int:
        return len(self._active)
