"""Service chaos campaign: prove the server degrades, never dies.

Extends the engine campaign (:mod:`repro.robustness.chaos`) one layer
up — the injections attack the *service* (admission, quotas, breaker,
drain/restart) and demand the same two clean endings: **recover** or a
**typed-failure**.  Run via ``python -m repro selftest --chaos``.

===========================  ==============================  ==============
injection                    mechanism                       expected
===========================  ==============================  ==============
``service-queue-             submissions past the bounded    typed-failure
saturation``                 queue are shed
``service-quota-             tenant exceeds the concurrency  typed-failure
exhaustion``                 cap and the token bucket
``service-breaker-trip``     crash-evidence storm trips the  recover
                             breaker; serial mode; half-open
                             trial closes it again
``service-kill-resume``      SIGKILL mid-job; re-execution   recover
                             resumes the journal to
                             byte-identical output with
                             zero recompute
``service-dedup-storm``      N concurrent identical          recover
                             submissions -> one execution,
                             identical bytes for all
===========================  ==============================  ==============

A second campaign, :func:`run_cluster_chaos_campaign`, attacks the
distributed sweep layer (:mod:`repro.service.cluster`) with the same
contract:

===========================  ==============================  ==============
injection                    mechanism                       expected
===========================  ==============================  ==============
``cluster-worker-loss``      SIGKILL a worker mid-shard;     recover
                             coordinator breaks the lease,
                             reassigns, result stays
                             byte-identical to single-node
``cluster-zombie-fencing``   a fenced zombie tries to        typed-failure
                             commit a stale lease; rejected
                             typed, successor untouched
``cluster-hedge-dedup``      hedge and primary race to       recover
                             commit one shard; exactly one
                             done marker survives
===========================  ==============================  ==============
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time

from repro.engine.recovery.journal import journal_path, replay_journal
from repro.robustness.chaos import _DEADLINE_SECONDS, ChaosReport
from repro.robustness.errors import (QuotaExceededError,
                                     ServiceOverloadedError)
from repro.service.breaker import CLOSED, OPEN, BreakerConfig
from repro.service.client import ServiceClient
from repro.service.executor import (ExecutionOutcome, execute_job,
                                    result_to_json)
from repro.service.quota import QuotaConfig, QuotaManager
from repro.service.server import ServiceConfig, ServiceRunner
from repro.service.singleflight import run_id_for
from repro.service.spec import ServiceJobSpec


def _report(injection: str, description: str, expected: str,
            ok: bool, outcome: str, message: str = "") -> ChaosReport:
    return ChaosReport(injection=injection, description=description,
                       expected=expected, outcome=outcome, ok=ok,
                       message=message)


class _ManualClock:
    """Injectable monotonic clock the breaker/quota injections drive."""

    def __init__(self, start: float = 1000.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _spec(i: int = 0) -> ServiceJobSpec:
    """Distinct digests per ``i`` (max_steps is digest-relevant)."""
    return ServiceJobSpec(kind="bench", workload="wc", scale=0.25,
                          max_steps=1_000_000 + i)


def _stub_executor(delay: float = 0.0, sick=None, calls=None):
    """A fake ``execute_job``: no pipeline, deterministic output.

    ``sick`` (a mutable ``{"value": bool}``) makes pooled executions
    report crash evidence while set — the breaker injections' storm.
    """
    def run(spec, cache_dir, run_id, jobs=1, deadline_remaining=None):
        if calls is not None:
            calls.append(run_id)
        if delay:
            time.sleep(delay)
        crash = bool(sick and sick["value"] and jobs > 1)
        return ExecutionOutcome(
            result_json=result_to_json(
                {"digest": spec.request_digest()}),
            counters={}, crash_evidence=crash, resumed_tasks=0,
            wall_seconds=delay)
    return run


def _open_quota() -> QuotaConfig:
    """Quotas wide enough to never interfere with an injection."""
    return QuotaConfig(rate=10_000.0, burst=10_000,
                       max_concurrent=10_000)


# ----- injections -----------------------------------------------------------

def _inject_queue_saturation() -> ChaosReport:
    description = "submissions past the bounded admission queue must " \
                  "be shed with the typed overload error and a " \
                  "Retry-After hint"
    with tempfile.TemporaryDirectory(prefix="repro-svc-chaos-") as tmp:
        config = ServiceConfig(cache_dir=tmp, queue_depth=2, workers=1,
                               quota=_open_quota(), drain_grace=30.0)
        shed_errors: list[ServiceOverloadedError] = []
        admitted = 0
        with ServiceRunner(config,
                           executor=_stub_executor(delay=0.5)) as runner:
            client = ServiceClient("127.0.0.1", runner.port)
            for i in range(8):
                try:
                    client.submit(_spec(i))
                    admitted += 1
                except ServiceOverloadedError as exc:
                    shed_errors.append(exc)
            stats = client.stats()
        shed = stats["metrics"]["jobs_shed"]
        hints_ok = all(getattr(e, "retry_after", 0) > 0
                       for e in shed_errors)
        ok = bool(shed_errors) and shed == len(shed_errors) \
            and hints_ok and ServiceOverloadedError.exit_code == 19
    return _report(
        "service-queue-saturation", description, "typed-failure", ok,
        "typed-failure" if ok else "NOT shed cleanly",
        f"{admitted} admitted, {len(shed_errors)} shed typed "
        f"(ServiceOverloadedError, exit 19), retry_after hints "
        f"{'present' if hints_ok else 'MISSING'}")


def _inject_quota_exhaustion() -> ChaosReport:
    description = "a tenant exceeding its concurrency cap or token " \
                  "bucket must be rejected with the typed quota error"
    clock = _ManualClock()
    with tempfile.TemporaryDirectory(prefix="repro-svc-chaos-") as tmp:
        config = ServiceConfig(
            cache_dir=tmp, queue_depth=100, workers=1,
            quota=QuotaConfig(rate=0.5, burst=100, max_concurrent=2),
            drain_grace=30.0)
        concurrency_hits: list[QuotaExceededError] = []
        with ServiceRunner(config, executor=_stub_executor(delay=0.5),
                           clock=clock) as runner:
            client = ServiceClient("127.0.0.1", runner.port)
            for i in range(4):
                try:
                    client.submit(_spec(i), tenant="greedy")
                except QuotaExceededError as exc:
                    concurrency_hits.append(exc)
        concurrency_ok = len(concurrency_hits) == 2 and all(
            e.kind == "concurrency" for e in concurrency_hits)
        # Token-bucket exhaustion, driven deterministically.
        quotas = QuotaManager(
            config=QuotaConfig(rate=0.5, burst=2, max_concurrent=100),
            clock=clock)
        quotas.admit("bursty")
        quotas.admit("bursty")
        rate_hit = None
        try:
            quotas.admit("bursty")
        except QuotaExceededError as exc:
            rate_hit = exc
        refilled = False
        if rate_hit is not None:
            clock.advance(rate_hit.retry_after + 0.01)
            quotas.admit("bursty")  # refilled bucket must admit again
            refilled = True
        rate_ok = rate_hit is not None and rate_hit.kind == "rate" \
            and rate_hit.retry_after > 0 and refilled
        ok = concurrency_ok and rate_ok \
            and QuotaExceededError.exit_code == 20
    return _report(
        "service-quota-exhaustion", description, "typed-failure", ok,
        "typed-failure" if ok else "NOT rejected cleanly",
        f"concurrency cap: {len(concurrency_hits)}/2 typed rejections; "
        f"token bucket: {'rejected then refilled after retry_after' if rate_ok else 'FAILED'}"
        f" (QuotaExceededError, exit 20)")


def _inject_breaker_trip() -> ChaosReport:
    description = "a crash-evidence storm must trip the breaker to " \
                  "serial execution, then recover via a clean " \
                  "half-open trial"
    clock = _ManualClock()
    sick = {"value": True}
    with tempfile.TemporaryDirectory(prefix="repro-svc-chaos-") as tmp:
        config = ServiceConfig(
            cache_dir=tmp, jobs=2, workers=1, queue_depth=100,
            quota=_open_quota(),
            breaker=BreakerConfig(threshold=3, window=60.0,
                                  cooldown=5.0),
            drain_grace=30.0)
        with ServiceRunner(config, executor=_stub_executor(sick=sick),
                           clock=clock) as runner:
            client = ServiceClient("127.0.0.1", runner.port)

            def run_one(i: int) -> dict:
                job = client.submit(_spec(i))["job"]
                return client.wait(job["job_id"], timeout=30.0)

            storm = [run_one(i) for i in range(3)]
            after_trip = client.stats()["service"]
            serial_job = run_one(10)      # open -> serial mode
            sick["value"] = False         # the pool "heals"
            clock.advance(config.breaker.cooldown + 0.1)
            trial_job = run_one(11)       # half-open pooled trial
            after_trial = client.stats()["service"]
            closed_job = run_one(12)      # breaker closed again
        ok = (all(j["mode"] == "pool" for j in storm)
              and after_trip["breaker"] == OPEN
              and after_trip["breaker_trips"] == 1
              and serial_job["mode"] == "serial"
              and trial_job["mode"] == "pool"
              and after_trial["breaker"] == CLOSED
              and closed_job["mode"] == "pool")
    return _report(
        "service-breaker-trip", description, "recover", ok,
        "recovered" if ok else "NOT recovered",
        f"3 pooled crash-evidence jobs tripped the breaker "
        f"(state {after_trip['breaker']}, trips "
        f"{after_trip['breaker_trips']}), degraded job ran "
        f"{serial_job['mode']}, half-open trial ran "
        f"{trial_job['mode']} and {'closed' if ok else 'did NOT close'} "
        f"the breaker")


def _kill_child(cache_dir: str, run_id: str, spec_dict: dict) -> None:
    spec = ServiceJobSpec.from_dict(spec_dict)
    execute_job(spec, cache_dir, run_id, jobs=1)


def _inject_kill_resume() -> ChaosReport:
    description = "a job SIGKILLed mid-execution must resume from its " \
                  "journal to byte-identical output with zero " \
                  "recompute of completed tasks"
    spec = _spec(0)
    run_id = run_id_for(spec.request_digest())
    with tempfile.TemporaryDirectory(prefix="repro-svc-chaos-") as tmp:
        cache_dir = os.path.join(tmp, "killed-cache")
        ref_dir = os.path.join(tmp, "reference-cache")
        child = multiprocessing.Process(
            target=_kill_child,
            args=(cache_dir, run_id, spec.to_dict()), daemon=True)
        child.start()
        jpath = journal_path(os.path.join(cache_dir, "runs"), run_id)
        deadline = time.monotonic() + _DEADLINE_SECONDS
        while time.monotonic() < deadline and child.is_alive():
            try:
                if jpath.read_bytes().count(b'"type":"task-finish"'):
                    break
            except OSError:
                pass
            time.sleep(0.005)
        killed_midway = child.is_alive()
        if killed_midway:
            os.kill(child.pid, signal.SIGKILL)
        child.join(timeout=_DEADLINE_SECONDS)

        completed = len(replay_journal(jpath).completed)
        outcome = execute_job(spec, cache_dir, run_id, jobs=1)
        reference = execute_job(spec, ref_dir, "REF", jobs=1)
        # 3 models + the 1-issue baseline = 4 simulate tasks total.
        recomputed = outcome.counters["stages"] \
            .get("simulate", {}).get("invocations", 0)
        identical = outcome.result_json == reference.result_json
        ok = identical and outcome.resumed_tasks == completed \
            and recomputed == 4 - outcome.resumed_tasks
    return _report(
        "service-kill-resume", description, "recover", ok,
        "recovered" if ok else "NOT recovered",
        f"{'killed mid-job' if killed_midway else 'finished early'}, "
        f"{outcome.resumed_tasks} tasks journal-verified (zero "
        f"recompute), {recomputed} recomputed, output "
        f"{'byte-identical' if identical else 'DIVERGED'} vs cold "
        f"reference")


def _inject_dedup_storm() -> ChaosReport:
    description = "N concurrent identical submissions must coalesce " \
                  "into exactly one execution with byte-identical " \
                  "results for every observer"
    n = 6
    calls: list[str] = []
    with tempfile.TemporaryDirectory(prefix="repro-svc-chaos-") as tmp:
        config = ServiceConfig(cache_dir=tmp, workers=2,
                               queue_depth=100, quota=_open_quota(),
                               drain_grace=30.0)
        executor = _stub_executor(delay=0.3, calls=calls)
        with ServiceRunner(config, executor=executor) as runner:
            client = ServiceClient("127.0.0.1", runner.port)
            barrier = threading.Barrier(n)
            responses: list[dict] = [None] * n

            def storm(i: int) -> None:
                barrier.wait()
                responses[i] = client.submit(_spec(0), tenant=f"t{i}")

            threads = [threading.Thread(target=storm, args=(i,))
                       for i in range(n)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=_DEADLINE_SECONDS)
            job_ids = {r["job"]["job_id"] for r in responses if r}
            final = client.wait(job_ids.pop(), timeout=30.0) \
                if len(job_ids) == 1 else None
            stats = client.stats()["metrics"]
        deduped = sum(1 for r in responses if r and r["deduped"])
        results = {json.dumps(r["job"]["spec"], sort_keys=True)
                   for r in responses if r}
        ok = (all(responses) and not job_ids and final is not None
              and len(calls) == 1 and deduped == n - 1
              and stats["jobs_admitted"] == 1
              and stats["jobs_deduped"] == n - 1
              and len(results) == 1
              and final["state"] == "done"
              and final["observers"] == n)
    return _report(
        "service-dedup-storm", description, "recover", ok,
        "recovered" if ok else "NOT coalesced",
        f"{n} concurrent submissions -> {len(calls)} execution(s), "
        f"{deduped} deduped, {stats['jobs_admitted']} admitted, "
        f"observers={final['observers'] if final else '?'}; all "
        f"observers share one record and its result bytes")


# ----- cluster injections ---------------------------------------------------

_CLUSTER_SPEC_KWARGS = dict(name="chaos-cluster", scale=0.05,
                            max_steps=2_000_000, workloads=("wc",),
                            models=("superblock",), issue_widths=(2, 4))

_VICTIM_WORKER = """
import sys, time
sys.path.insert(0, {src!r})
from repro.service.cluster import ClusterOps
ops = ClusterOps({cache!r})
worker_id = ops.register()
work = None
deadline = time.monotonic() + 30
while work is None and time.monotonic() < deadline:
    work = ops.claim(worker_id)
    time.sleep(0.05)
assert work is not None, "never saw the campaign"
print("CLAIMED", work["shard"], flush=True)
time.sleep(300)  # hang mid-shard, never heartbeating, until SIGKILL
"""


def _repro_src_dir() -> str:
    import repro
    return os.path.dirname(os.path.dirname(os.path.abspath(
        repro.__file__)))


def _inject_cluster_worker_loss() -> ChaosReport:
    description = "a worker SIGKILLed mid-shard must have its lease " \
                  "broken and the shard reassigned; the campaign " \
                  "result stays byte-identical to single-node"
    from repro.engine.metrics import PipelineMetrics
    from repro.service.cluster import (ClusterConfig, ClusterOps,
                                       campaign_dir, open_campaign,
                                       run_cluster_sweep)
    from repro.sweep.runner import run_sweep
    from repro.sweep.spec import SweepSpec

    spec = SweepSpec(**_CLUSTER_SPEC_KWARGS)
    with tempfile.TemporaryDirectory(prefix="repro-clu-chaos-") as tmp:
        cache = os.path.join(tmp, "cache")
        config = ClusterConfig(worker_grace=5.0, lease_timeout=2.0)
        open_campaign(cache, spec, config, "fastpath")
        victim = subprocess.Popen(
            [sys.executable, "-c",
             _VICTIM_WORKER.format(src=_repro_src_dir(), cache=cache)],
            stdout=subprocess.PIPE, text=True)
        claimed = victim.stdout.readline().startswith("CLAIMED")
        victim.send_signal(signal.SIGKILL)
        victim.wait(timeout=_DEADLINE_SECONDS)

        # A stand-in registration keeps the coordinator monitoring
        # until the loss is on record; then it retires and the
        # coordinator finishes the remaining shards itself.
        ops = ClusterOps(cache)
        stand_in = ops.register(worker_id="stand-in", pid=os.getpid())
        cdir = campaign_dir(cache, spec.sweep_digest())

        def retire_after_loss() -> None:
            deadline = time.monotonic() + _DEADLINE_SECONDS
            while time.monotonic() < deadline:
                if list((cdir / "events").glob("lost-*.json")):
                    ops.unregister(stand_in)
                    return
                time.sleep(0.05)

        retirer = threading.Thread(target=retire_after_loss,
                                   daemon=True)
        retirer.start()
        metrics = PipelineMetrics()
        out = run_cluster_sweep(spec, cache, config, metrics=metrics)
        retirer.join(timeout=_DEADLINE_SECONDS)
        reference = run_sweep(spec, cache_dir=os.path.join(tmp, "ref"),
                              jobs=2)
        identical = out.result.to_json() == reference.result.to_json()
        ok = claimed and identical and metrics.shards_reassigned >= 1 \
            and metrics.workers_lost >= 1
    return _report(
        "cluster-worker-loss", description, "recover", ok,
        "recovered" if ok else "NOT recovered",
        f"victim {'claimed then SIGKILLed' if claimed else 'NEVER claimed'}, "
        f"{metrics.shards_reassigned} shard(s) reassigned, "
        f"{metrics.workers_lost} worker(s) lost, result "
        f"{'byte-identical' if identical else 'DIVERGED'} vs "
        f"single-node")


def _inject_cluster_zombie_fencing() -> ChaosReport:
    description = "a fenced zombie committing a stale lease must be " \
                  "rejected with the typed fencing error and must not " \
                  "disturb the successor's commit"
    from repro.engine.recovery.leases import ShardLeaseStore
    from repro.robustness.errors import LeaseFencedError

    with tempfile.TemporaryDirectory(prefix="repro-clu-chaos-") as tmp:
        store = ShardLeaseStore(os.path.join(tmp, "campaign"))
        zombie = store.claim(0, owner="zombie")
        broken = store.break_lease(0, zombie.epoch)
        successor = store.claim(0, owner="successor")
        fenced = None
        try:
            store.complete(zombie, {"points": [0], "by": "zombie"})
        except LeaseFencedError as exc:
            fenced = exc
        untouched = store.done(0) is None
        committed = store.complete(successor,
                                   {"points": [0], "by": "successor"})
        marker = store.done(0)
        ok = (broken and fenced is not None
              and fenced.exit_code == 27
              and fenced.holder_epoch == successor.epoch
              and untouched and committed
              and marker["by"] == "successor"
              and store.count_events("fenced") == 1)
    return _report(
        "cluster-zombie-fencing", description, "typed-failure", ok,
        "typed-failure" if ok else "NOT fenced cleanly",
        f"zombie commit {'rejected typed' if fenced else 'NOT rejected'} "
        f"(LeaseFencedError, exit 27), done marker held by "
        f"{marker['by'] if marker else 'NOBODY'}")


def _inject_cluster_hedge_dedup() -> ChaosReport:
    description = "a hedge and its primary racing to commit one shard " \
                  "must produce exactly one done marker " \
                  "(first commit wins, loser loses cleanly)"
    from repro.engine.recovery.leases import ShardLeaseStore

    with tempfile.TemporaryDirectory(prefix="repro-clu-chaos-") as tmp:
        store = ShardLeaseStore(os.path.join(tmp, "campaign"))
        primary = store.claim(0, owner="slow")
        hedge = store.claim(0, owner="fast", hedge=True)
        no_second_hedge = store.claim(0, owner="late", hedge=True) is None
        hedge_won = store.complete(hedge, {"points": [0], "by": "fast"})
        primary_lost = store.complete(
            primary, {"points": [0], "by": "slow"}) is False
        marker = store.done(0)
        slots_clear = store.read(0) is None \
            and store.read(0, hedge=True) is None
        ok = (hedge is not None and no_second_hedge and hedge_won
              and primary_lost and marker["by"] == "fast"
              and slots_clear)
    return _report(
        "cluster-hedge-dedup", description, "recover", ok,
        "recovered" if ok else "NOT deduped",
        f"hedge committed first, primary "
        f"{'lost cleanly' if primary_lost else 'DOUBLE-committed'}, "
        f"one done marker by {marker['by'] if marker else 'NOBODY'}, "
        f"lease slots {'cleared' if slots_clear else 'LEAKED'}")


# ----- the campaign ---------------------------------------------------------

def run_cluster_chaos_campaign() -> list[ChaosReport]:
    """Run every cluster injection; parent never crashes."""
    injections = [
        ("cluster-worker-loss", _inject_cluster_worker_loss),
        ("cluster-zombie-fencing", _inject_cluster_zombie_fencing),
        ("cluster-hedge-dedup", _inject_cluster_hedge_dedup),
    ]
    reports: list[ChaosReport] = []
    for name, injector in injections:
        start = time.monotonic()
        try:
            report = injector()
        except Exception as exc:  # noqa: BLE001 — campaign must finish
            report = _report(name, "injection harness", "recover",
                             False, f"unhandled {type(exc).__name__}",
                             str(exc)[:300])
        elapsed = time.monotonic() - start
        if elapsed > _DEADLINE_SECONDS:
            report.ok = False
            report.message += f" [exceeded {_DEADLINE_SECONDS:g}s " \
                              f"deadline]"
        reports.append(report)
    return reports


def run_service_chaos_campaign() -> list[ChaosReport]:
    """Run every service injection; parent never crashes."""
    injections = [
        ("service-queue-saturation", _inject_queue_saturation),
        ("service-quota-exhaustion", _inject_quota_exhaustion),
        ("service-breaker-trip", _inject_breaker_trip),
        ("service-kill-resume", _inject_kill_resume),
        ("service-dedup-storm", _inject_dedup_storm),
    ]
    reports: list[ChaosReport] = []
    for name, injector in injections:
        start = time.monotonic()
        try:
            report = injector()
        except Exception as exc:  # noqa: BLE001 — campaign must finish
            report = _report(name, "injection harness", "recover",
                             False, f"unhandled {type(exc).__name__}",
                             str(exc)[:300])
        elapsed = time.monotonic() - start
        if elapsed > _DEADLINE_SECONDS:
            report.ok = False
            report.message += f" [exceeded {_DEADLINE_SECONDS:g}s " \
                              f"deadline]"
        reports.append(report)
    return reports
