"""Service chaos campaign: prove the server degrades, never dies.

Extends the engine campaign (:mod:`repro.robustness.chaos`) one layer
up — the injections attack the *service* (admission, quotas, breaker,
drain/restart) and demand the same two clean endings: **recover** or a
**typed-failure**.  Run via ``python -m repro selftest --chaos``.

===========================  ==============================  ==============
injection                    mechanism                       expected
===========================  ==============================  ==============
``service-queue-             submissions past the bounded    typed-failure
saturation``                 queue are shed
``service-quota-             tenant exceeds the concurrency  typed-failure
exhaustion``                 cap and the token bucket
``service-breaker-trip``     crash-evidence storm trips the  recover
                             breaker; serial mode; half-open
                             trial closes it again
``service-kill-resume``      SIGKILL mid-job; re-execution   recover
                             resumes the journal to
                             byte-identical output with
                             zero recompute
``service-dedup-storm``      N concurrent identical          recover
                             submissions -> one execution,
                             identical bytes for all
===========================  ==============================  ==============
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import tempfile
import threading
import time

from repro.engine.recovery.journal import journal_path, replay_journal
from repro.robustness.chaos import _DEADLINE_SECONDS, ChaosReport
from repro.robustness.errors import (QuotaExceededError,
                                     ServiceOverloadedError)
from repro.service.breaker import CLOSED, OPEN, BreakerConfig
from repro.service.client import ServiceClient
from repro.service.executor import (ExecutionOutcome, execute_job,
                                    result_to_json)
from repro.service.quota import QuotaConfig, QuotaManager
from repro.service.server import ServiceConfig, ServiceRunner
from repro.service.singleflight import run_id_for
from repro.service.spec import ServiceJobSpec


def _report(injection: str, description: str, expected: str,
            ok: bool, outcome: str, message: str = "") -> ChaosReport:
    return ChaosReport(injection=injection, description=description,
                       expected=expected, outcome=outcome, ok=ok,
                       message=message)


class _ManualClock:
    """Injectable monotonic clock the breaker/quota injections drive."""

    def __init__(self, start: float = 1000.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _spec(i: int = 0) -> ServiceJobSpec:
    """Distinct digests per ``i`` (max_steps is digest-relevant)."""
    return ServiceJobSpec(kind="bench", workload="wc", scale=0.25,
                          max_steps=1_000_000 + i)


def _stub_executor(delay: float = 0.0, sick=None, calls=None):
    """A fake ``execute_job``: no pipeline, deterministic output.

    ``sick`` (a mutable ``{"value": bool}``) makes pooled executions
    report crash evidence while set — the breaker injections' storm.
    """
    def run(spec, cache_dir, run_id, jobs=1, deadline_remaining=None):
        if calls is not None:
            calls.append(run_id)
        if delay:
            time.sleep(delay)
        crash = bool(sick and sick["value"] and jobs > 1)
        return ExecutionOutcome(
            result_json=result_to_json(
                {"digest": spec.request_digest()}),
            counters={}, crash_evidence=crash, resumed_tasks=0,
            wall_seconds=delay)
    return run


def _open_quota() -> QuotaConfig:
    """Quotas wide enough to never interfere with an injection."""
    return QuotaConfig(rate=10_000.0, burst=10_000,
                       max_concurrent=10_000)


# ----- injections -----------------------------------------------------------

def _inject_queue_saturation() -> ChaosReport:
    description = "submissions past the bounded admission queue must " \
                  "be shed with the typed overload error and a " \
                  "Retry-After hint"
    with tempfile.TemporaryDirectory(prefix="repro-svc-chaos-") as tmp:
        config = ServiceConfig(cache_dir=tmp, queue_depth=2, workers=1,
                               quota=_open_quota(), drain_grace=30.0)
        shed_errors: list[ServiceOverloadedError] = []
        admitted = 0
        with ServiceRunner(config,
                           executor=_stub_executor(delay=0.5)) as runner:
            client = ServiceClient("127.0.0.1", runner.port)
            for i in range(8):
                try:
                    client.submit(_spec(i))
                    admitted += 1
                except ServiceOverloadedError as exc:
                    shed_errors.append(exc)
            stats = client.stats()
        shed = stats["metrics"]["jobs_shed"]
        hints_ok = all(getattr(e, "retry_after", 0) > 0
                       for e in shed_errors)
        ok = bool(shed_errors) and shed == len(shed_errors) \
            and hints_ok and ServiceOverloadedError.exit_code == 19
    return _report(
        "service-queue-saturation", description, "typed-failure", ok,
        "typed-failure" if ok else "NOT shed cleanly",
        f"{admitted} admitted, {len(shed_errors)} shed typed "
        f"(ServiceOverloadedError, exit 19), retry_after hints "
        f"{'present' if hints_ok else 'MISSING'}")


def _inject_quota_exhaustion() -> ChaosReport:
    description = "a tenant exceeding its concurrency cap or token " \
                  "bucket must be rejected with the typed quota error"
    clock = _ManualClock()
    with tempfile.TemporaryDirectory(prefix="repro-svc-chaos-") as tmp:
        config = ServiceConfig(
            cache_dir=tmp, queue_depth=100, workers=1,
            quota=QuotaConfig(rate=0.5, burst=100, max_concurrent=2),
            drain_grace=30.0)
        concurrency_hits: list[QuotaExceededError] = []
        with ServiceRunner(config, executor=_stub_executor(delay=0.5),
                           clock=clock) as runner:
            client = ServiceClient("127.0.0.1", runner.port)
            for i in range(4):
                try:
                    client.submit(_spec(i), tenant="greedy")
                except QuotaExceededError as exc:
                    concurrency_hits.append(exc)
        concurrency_ok = len(concurrency_hits) == 2 and all(
            e.kind == "concurrency" for e in concurrency_hits)
        # Token-bucket exhaustion, driven deterministically.
        quotas = QuotaManager(
            config=QuotaConfig(rate=0.5, burst=2, max_concurrent=100),
            clock=clock)
        quotas.admit("bursty")
        quotas.admit("bursty")
        rate_hit = None
        try:
            quotas.admit("bursty")
        except QuotaExceededError as exc:
            rate_hit = exc
        refilled = False
        if rate_hit is not None:
            clock.advance(rate_hit.retry_after + 0.01)
            quotas.admit("bursty")  # refilled bucket must admit again
            refilled = True
        rate_ok = rate_hit is not None and rate_hit.kind == "rate" \
            and rate_hit.retry_after > 0 and refilled
        ok = concurrency_ok and rate_ok \
            and QuotaExceededError.exit_code == 20
    return _report(
        "service-quota-exhaustion", description, "typed-failure", ok,
        "typed-failure" if ok else "NOT rejected cleanly",
        f"concurrency cap: {len(concurrency_hits)}/2 typed rejections; "
        f"token bucket: {'rejected then refilled after retry_after' if rate_ok else 'FAILED'}"
        f" (QuotaExceededError, exit 20)")


def _inject_breaker_trip() -> ChaosReport:
    description = "a crash-evidence storm must trip the breaker to " \
                  "serial execution, then recover via a clean " \
                  "half-open trial"
    clock = _ManualClock()
    sick = {"value": True}
    with tempfile.TemporaryDirectory(prefix="repro-svc-chaos-") as tmp:
        config = ServiceConfig(
            cache_dir=tmp, jobs=2, workers=1, queue_depth=100,
            quota=_open_quota(),
            breaker=BreakerConfig(threshold=3, window=60.0,
                                  cooldown=5.0),
            drain_grace=30.0)
        with ServiceRunner(config, executor=_stub_executor(sick=sick),
                           clock=clock) as runner:
            client = ServiceClient("127.0.0.1", runner.port)

            def run_one(i: int) -> dict:
                job = client.submit(_spec(i))["job"]
                return client.wait(job["job_id"], timeout=30.0)

            storm = [run_one(i) for i in range(3)]
            after_trip = client.stats()["service"]
            serial_job = run_one(10)      # open -> serial mode
            sick["value"] = False         # the pool "heals"
            clock.advance(config.breaker.cooldown + 0.1)
            trial_job = run_one(11)       # half-open pooled trial
            after_trial = client.stats()["service"]
            closed_job = run_one(12)      # breaker closed again
        ok = (all(j["mode"] == "pool" for j in storm)
              and after_trip["breaker"] == OPEN
              and after_trip["breaker_trips"] == 1
              and serial_job["mode"] == "serial"
              and trial_job["mode"] == "pool"
              and after_trial["breaker"] == CLOSED
              and closed_job["mode"] == "pool")
    return _report(
        "service-breaker-trip", description, "recover", ok,
        "recovered" if ok else "NOT recovered",
        f"3 pooled crash-evidence jobs tripped the breaker "
        f"(state {after_trip['breaker']}, trips "
        f"{after_trip['breaker_trips']}), degraded job ran "
        f"{serial_job['mode']}, half-open trial ran "
        f"{trial_job['mode']} and {'closed' if ok else 'did NOT close'} "
        f"the breaker")


def _kill_child(cache_dir: str, run_id: str, spec_dict: dict) -> None:
    spec = ServiceJobSpec.from_dict(spec_dict)
    execute_job(spec, cache_dir, run_id, jobs=1)


def _inject_kill_resume() -> ChaosReport:
    description = "a job SIGKILLed mid-execution must resume from its " \
                  "journal to byte-identical output with zero " \
                  "recompute of completed tasks"
    spec = _spec(0)
    run_id = run_id_for(spec.request_digest())
    with tempfile.TemporaryDirectory(prefix="repro-svc-chaos-") as tmp:
        cache_dir = os.path.join(tmp, "killed-cache")
        ref_dir = os.path.join(tmp, "reference-cache")
        child = multiprocessing.Process(
            target=_kill_child,
            args=(cache_dir, run_id, spec.to_dict()), daemon=True)
        child.start()
        jpath = journal_path(os.path.join(cache_dir, "runs"), run_id)
        deadline = time.monotonic() + _DEADLINE_SECONDS
        while time.monotonic() < deadline and child.is_alive():
            try:
                if jpath.read_bytes().count(b'"type":"task-finish"'):
                    break
            except OSError:
                pass
            time.sleep(0.005)
        killed_midway = child.is_alive()
        if killed_midway:
            os.kill(child.pid, signal.SIGKILL)
        child.join(timeout=_DEADLINE_SECONDS)

        completed = len(replay_journal(jpath).completed)
        outcome = execute_job(spec, cache_dir, run_id, jobs=1)
        reference = execute_job(spec, ref_dir, "REF", jobs=1)
        # 3 models + the 1-issue baseline = 4 simulate tasks total.
        recomputed = outcome.counters["stages"] \
            .get("simulate", {}).get("invocations", 0)
        identical = outcome.result_json == reference.result_json
        ok = identical and outcome.resumed_tasks == completed \
            and recomputed == 4 - outcome.resumed_tasks
    return _report(
        "service-kill-resume", description, "recover", ok,
        "recovered" if ok else "NOT recovered",
        f"{'killed mid-job' if killed_midway else 'finished early'}, "
        f"{outcome.resumed_tasks} tasks journal-verified (zero "
        f"recompute), {recomputed} recomputed, output "
        f"{'byte-identical' if identical else 'DIVERGED'} vs cold "
        f"reference")


def _inject_dedup_storm() -> ChaosReport:
    description = "N concurrent identical submissions must coalesce " \
                  "into exactly one execution with byte-identical " \
                  "results for every observer"
    n = 6
    calls: list[str] = []
    with tempfile.TemporaryDirectory(prefix="repro-svc-chaos-") as tmp:
        config = ServiceConfig(cache_dir=tmp, workers=2,
                               queue_depth=100, quota=_open_quota(),
                               drain_grace=30.0)
        executor = _stub_executor(delay=0.3, calls=calls)
        with ServiceRunner(config, executor=executor) as runner:
            client = ServiceClient("127.0.0.1", runner.port)
            barrier = threading.Barrier(n)
            responses: list[dict] = [None] * n

            def storm(i: int) -> None:
                barrier.wait()
                responses[i] = client.submit(_spec(0), tenant=f"t{i}")

            threads = [threading.Thread(target=storm, args=(i,))
                       for i in range(n)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=_DEADLINE_SECONDS)
            job_ids = {r["job"]["job_id"] for r in responses if r}
            final = client.wait(job_ids.pop(), timeout=30.0) \
                if len(job_ids) == 1 else None
            stats = client.stats()["metrics"]
        deduped = sum(1 for r in responses if r and r["deduped"])
        results = {json.dumps(r["job"]["spec"], sort_keys=True)
                   for r in responses if r}
        ok = (all(responses) and not job_ids and final is not None
              and len(calls) == 1 and deduped == n - 1
              and stats["jobs_admitted"] == 1
              and stats["jobs_deduped"] == n - 1
              and len(results) == 1
              and final["state"] == "done"
              and final["observers"] == n)
    return _report(
        "service-dedup-storm", description, "recover", ok,
        "recovered" if ok else "NOT coalesced",
        f"{n} concurrent submissions -> {len(calls)} execution(s), "
        f"{deduped} deduped, {stats['jobs_admitted']} admitted, "
        f"observers={final['observers'] if final else '?'}; all "
        f"observers share one record and its result bytes")


# ----- the campaign ---------------------------------------------------------

def run_service_chaos_campaign() -> list[ChaosReport]:
    """Run every service injection; parent never crashes."""
    injections = [
        ("service-queue-saturation", _inject_queue_saturation),
        ("service-quota-exhaustion", _inject_quota_exhaustion),
        ("service-breaker-trip", _inject_breaker_trip),
        ("service-kill-resume", _inject_kill_resume),
        ("service-dedup-storm", _inject_dedup_storm),
    ]
    reports: list[ChaosReport] = []
    for name, injector in injections:
        start = time.monotonic()
        try:
            report = injector()
        except Exception as exc:  # noqa: BLE001 — campaign must finish
            report = _report(name, "injection harness", "recover",
                             False, f"unhandled {type(exc).__name__}",
                             str(exc)[:300])
        elapsed = time.monotonic() - start
        if elapsed > _DEADLINE_SECONDS:
            report.ok = False
            report.message += f" [exceeded {_DEADLINE_SECONDS:g}s " \
                              f"deadline]"
        reports.append(report)
    return reports
