"""Synchronous job execution: one service job -> one journaled run.

``execute_job`` is the bridge between a :class:`ServiceJobSpec` and
the existing pipeline.  It builds an :class:`ExperimentSuite` over the
server's shared artifact store, which buys the service everything the
CLI already has for free:

* **warm-cache sharing** — N distinct jobs over the same sources share
  compile/emulate/simulate artifacts through the CAS store;
* **journaled resume** — the run id is *derived from the request
  digest*, so a job interrupted by a crash or drain leaves a journal
  that the next execution of the same digest resumes (journal-verified
  tasks are never recomputed);
* **deadline -> watchdog** — the job's remaining deadline becomes the
  suite's per-emulation wall-clock budget; an expiry surfaces as the
  typed :class:`DeadlineExceededError`;
* **pool degradation** — ``jobs`` comes from the circuit breaker: a
  healthy pool fans work out, a tripped breaker passes 1 (serial).

The returned result dict is converted to a *canonical JSON string*
(sorted keys, fixed separators, floats rounded) by ``result_to_json``
— the byte-identical artifact every observer of a deduped job reads.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass

from repro.engine.recovery.journal import journal_path
from repro.experiments.runner import ExperimentSuite
from repro.machine.descriptor import scalar_machine
from repro.robustness.errors import (DeadlineExceededError,
                                     EmulationTimeout)
from repro.service.spec import MODEL_NAMES, ServiceJobSpec
from repro.sweep.runner import run_sweep
from repro.sweep.spec import SweepSpec
from repro.toolchain import Model

#: spec model identifiers <-> toolchain models (Model.value is a
#: display string, not a wire name)
_MODEL_BY_NAME = {"superblock": Model.SUPERBLOCK, "cmov": Model.CMOV,
                  "fullpred": Model.FULLPRED}
_NAME_BY_MODEL = {m: n for n, m in _MODEL_BY_NAME.items()}


@dataclass
class ExecutionOutcome:
    """What the server learns from one completed execution."""

    result_json: str
    #: worker counters to merge into the service's PipelineMetrics
    counters: dict
    #: pool-sickness signal for the circuit breaker
    crash_evidence: bool
    #: journal-verified tasks skipped on resume (zero recompute)
    resumed_tasks: int
    wall_seconds: float


def result_to_json(result: dict) -> str:
    """Canonical, timestamp-free encoding — byte-identical across
    executions of the same digest."""
    return json.dumps(result, sort_keys=True, separators=(",", ":"))


def _crash_evidence(counters: dict) -> bool:
    """Pool-sickness signal for the circuit breaker.

    Worker crashes and pool rebuilds are the classic evidence; native
    kernel crashes count too, so a crash-storming kernel trips the
    breaker pool→serial exactly like a sick worker pool does.
    """
    return bool(counters.get("pool_rebuilds", 0)
                or counters.get("worker_crashes", 0)
                or counters.get("native_kernel_crashes", 0)
                or counters.get("workers_lost", 0))


def _models(spec: ServiceJobSpec) -> list[Model]:
    # Canonical order regardless of submission order: the result JSON
    # must not depend on how the client spelled the list.
    requested = set(spec.models)
    return [_MODEL_BY_NAME[name] for name in MODEL_NAMES
            if name in requested]


def _measure(suite: ExperimentSuite, spec: ServiceJobSpec) -> dict:
    machine = spec.machine()
    if spec.kind == "figures":
        table = suite.speedups(machine)
        return {"kind": "figures", "machine": machine.name,
                "scale": spec.scale,
                "speedups": {name: {_NAME_BY_MODEL[model]:
                                    round(value, 6)
                                    for model, value in row.items()}
                             for name, row in sorted(table.items())}}
    rows: dict[str, dict] = {}
    for w in spec.workloads():
        base = suite.run(w.name, Model.SUPERBLOCK,
                         scalar_machine()).cycles
        per_model: dict[str, dict] = {}
        for model in _models(spec):
            run = suite.run(w.name, model, machine)
            stats = run.stats
            per_model[_NAME_BY_MODEL[model]] = {
                "cycles": stats.cycles,
                "speedup": round(base / stats.cycles, 6),
                "instructions": stats.executed_instructions,
                "branches": stats.branches,
                "mispredictions": stats.mispredictions,
                "return_value": run.return_value,
                "static_size": run.static_size,
            }
        rows[w.name] = {"baseline_cycles": base, "models": per_model}
    return {"kind": spec.kind, "machine": machine.name,
            "scale": spec.scale, "workloads": rows}


def _tasks_total(spec: ServiceJobSpec) -> int:
    """Expected progress-bearing task count for ``repro watch``.

    Counts the simulate-granularity tasks the run journals: the
    figures suite simulates all three models plus the scalar baseline
    per workload; bench/source runs simulate the requested models plus
    the baseline per workload.
    """
    n_workloads = len(spec.workloads())
    if spec.kind == "figures":
        return (len(MODEL_NAMES) + 1) * n_workloads
    return (len(_models(spec)) + 1) * n_workloads


def execute_job(spec: ServiceJobSpec, cache_dir: str, run_id: str,
                jobs: int = 1,
                deadline_remaining: float | None = None
                ) -> ExecutionOutcome:
    """Run one job to completion against the shared store.

    Raises typed taxonomy errors only (the suite's handlers classify);
    an emulation-watchdog expiry under a job deadline is re-raised as
    :class:`DeadlineExceededError`.
    """
    if deadline_remaining is not None and deadline_remaining <= 0:
        raise DeadlineExceededError(
            f"deadline of {spec.deadline:g}s expired before execution "
            f"started", deadline=spec.deadline or 0.0,
            elapsed=(spec.deadline or 0.0) - deadline_remaining)
    resume = journal_path(f"{cache_dir}/runs", run_id).exists()
    start = time.monotonic()
    if spec.kind == "sweep":
        return _execute_sweep(spec, cache_dir, run_id, jobs,
                              deadline_remaining, resume, start)
    suite = ExperimentSuite(
        workloads=spec.workloads(), scale=spec.scale,
        max_steps=spec.max_steps, cache_dir=cache_dir, jobs=jobs,
        run_id=run_id, resume=resume,
        wall_clock_budget=deadline_remaining,
        journal_meta={"kind": spec.kind,
                      "tasks_total": _tasks_total(spec)})
    try:
        result = _measure(suite, spec)
    except BaseException as exc:
        suite.close_journal(ok=False)
        mapped = _map_deadline(exc, spec, deadline_remaining)
        if mapped is exc:
            raise
        raise mapped from exc
    suite.close_journal(ok=True)
    counters = suite.metrics.to_dict()
    return ExecutionOutcome(
        result_json=result_to_json(result),
        counters=counters,
        crash_evidence=_crash_evidence(counters),
        resumed_tasks=len(suite.resumed_verified),
        wall_seconds=time.monotonic() - start)


def _map_deadline(exc: BaseException, spec: ServiceJobSpec,
                  deadline_remaining: float | None) -> BaseException:
    """An emulation-watchdog expiry under a job deadline is the job's
    deadline expiring."""
    if isinstance(exc, EmulationTimeout) \
            and deadline_remaining is not None:
        return DeadlineExceededError(
            f"deadline of {spec.deadline:g}s expired during "
            f"emulation: {exc}", deadline=spec.deadline or 0.0,
            elapsed=exc.elapsed)
    return exc


def _execute_sweep(spec: ServiceJobSpec, cache_dir: str, run_id: str,
                   jobs: int, deadline_remaining: float | None,
                   resume: bool, start: float) -> ExecutionOutcome:
    """Sweep jobs delegate to the sweep runner (which owns its own
    suite, journal and plan) and return the canonical SweepResult.

    When registered cluster workers are alive on this store, the sweep
    routes through the cluster coordinator instead — the workers
    execute the shards, and the final aggregation pass over the warm
    store keeps the result byte-identical to the in-process path.
    """
    from repro.service.cluster import (ClusterConfig, live_worker_ids,
                                       run_cluster_sweep)
    sweep_spec = SweepSpec.from_dict(spec.sweep)
    try:
        if live_worker_ids(cache_dir):
            outcome = run_cluster_sweep(
                sweep_spec, cache_dir,
                ClusterConfig(expect_workers=0, worker_grace=0.0),
                jobs=jobs, run_id=run_id, resume=resume,
                wall_clock_budget=deadline_remaining)
        else:
            outcome = run_sweep(
                sweep_spec, cache_dir=cache_dir, jobs=jobs,
                run_id=run_id, resume=resume,
                wall_clock_budget=deadline_remaining)
    except BaseException as exc:
        mapped = _map_deadline(exc, spec, deadline_remaining)
        if mapped is exc:
            raise
        raise mapped from exc
    counters = outcome.metrics.to_dict()
    return ExecutionOutcome(
        result_json=outcome.result.to_json(),
        counters=counters,
        crash_evidence=_crash_evidence(counters),
        resumed_tasks=outcome.resumed_tasks,
        wall_seconds=time.monotonic() - start)
