"""Per-tenant admission quotas: token-bucket rate + concurrency caps.

Two independent limits per tenant:

* a **token bucket** (``rate`` tokens/second refill, ``burst``
  capacity) charged once per *new execution* admitted — single-flight
  observers attach to an existing execution for free, since they cost
  the service nothing;
* a **concurrent-job cap**: queued + running executions charged to the
  tenant.  Released when the job reaches a terminal state.

Both failures raise the typed :class:`QuotaExceededError` with a
``retry_after`` hint (time until the bucket refills one token; 0 for
the concurrency cap — retry when one of your jobs finishes).

The clock is injectable so tests control refill deterministically.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from repro.robustness.errors import QuotaExceededError


@dataclass(frozen=True)
class QuotaConfig:
    """Per-tenant limits; one config applies to every tenant."""

    rate: float = 2.0          # token refill per second
    burst: int = 8             # bucket capacity (max stored tokens)
    max_concurrent: int = 4    # queued + running executions per tenant

    def __post_init__(self):
        if self.rate <= 0 or self.burst < 1 or self.max_concurrent < 1:
            raise ValueError(f"invalid quota config {self!r}")


class TokenBucket:
    """Classic token bucket with a monotonic, injectable clock."""

    def __init__(self, rate: float, burst: int,
                 clock: Callable[[], float] = time.monotonic):
        self.rate = rate
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._last = clock()

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(self.burst,
                           self._tokens + (now - self._last) * self.rate)
        self._last = now

    def take(self) -> bool:
        """Consume one token; False when the bucket is empty."""
        self._refill()
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    def retry_after(self) -> float:
        """Seconds until one full token is available."""
        self._refill()
        deficit = max(0.0, 1.0 - self._tokens)
        return deficit / self.rate


@dataclass
class QuotaManager:
    """Admission-side quota enforcement for all tenants."""

    config: QuotaConfig = field(default_factory=QuotaConfig)
    clock: Callable[[], float] = time.monotonic

    def __post_init__(self):
        self._buckets: dict[str, TokenBucket] = {}
        self._active: dict[str, int] = {}

    def _bucket(self, tenant: str) -> TokenBucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = self._buckets[tenant] = TokenBucket(
                self.config.rate, self.config.burst, self.clock)
        return bucket

    def active_jobs(self, tenant: str) -> int:
        return self._active.get(tenant, 0)

    def admit(self, tenant: str) -> None:
        """Charge one new execution to ``tenant`` or raise typed.

        Checks the concurrency cap first (cheap, and a rate token must
        not be burned on a submission that the cap rejects anyway),
        then the token bucket.
        """
        if self.active_jobs(tenant) >= self.config.max_concurrent:
            raise QuotaExceededError(
                f"tenant {tenant!r} has {self.active_jobs(tenant)} "
                f"jobs in flight (limit "
                f"{self.config.max_concurrent}) — retry when one "
                f"finishes", tenant=tenant, retry_after=0.0,
                kind="concurrency")
        bucket = self._bucket(tenant)
        if not bucket.take():
            after = bucket.retry_after()
            raise QuotaExceededError(
                f"tenant {tenant!r} exceeded its submission rate "
                f"({self.config.rate:g}/s, burst {self.config.burst}) "
                f"— retry in {after:.2f}s", tenant=tenant,
                retry_after=after, kind="rate")
        self._active[tenant] = self.active_jobs(tenant) + 1

    def restore(self, tenant: str) -> None:
        """Re-charge a recovered job's concurrency slot without
        consuming a rate token — it was already paid for when the
        previous server admitted it."""
        self._active[tenant] = self.active_jobs(tenant) + 1

    def release(self, tenant: str) -> None:
        """One of ``tenant``'s executions reached a terminal state."""
        count = self.active_jobs(tenant)
        if count > 0:
            self._active[tenant] = count - 1
