"""Multi-tenant experiment service over the execution engine.

The engine underneath (content-addressed store, journaled resumable
runs, DAG scheduler, typed failures) was only reachable as a one-shot
CLI; this package wraps it in a long-lived asyncio front end:

* :mod:`repro.service.spec` — canonical job specs and the CAS request
  digest everything else keys on;
* :mod:`repro.service.quota` — per-tenant token buckets and
  concurrent-job limits;
* :mod:`repro.service.singleflight` — request coalescing: N identical
  submissions share one execution and one byte-identical result;
* :mod:`repro.service.breaker` — circuit breaker around the worker
  pool, degrading to serial execution on crash storms;
* :mod:`repro.service.executor` — the synchronous bridge onto the
  existing pipeline (journal + resume, deadline -> watchdog);
* :mod:`repro.service.server` — the asyncio job server
  (``python -m repro serve``) with bounded admission, load shedding
  and graceful SIGTERM drain;
* :mod:`repro.service.client` — the thin client behind
  ``repro submit/status/watch``;
* :mod:`repro.service.chaos` — service-level chaos injections for
  ``repro selftest --chaos``.
"""

from repro.service.spec import ServiceJobSpec  # noqa: F401
