"""Fault-tolerant multi-worker campaign execution.

One coordinator, N interchangeable workers, one shared artifact store.
The coordinator partitions a sweep campaign into deterministic shards
keyed ``(campaign_digest, shard_index)`` — the fuzz runner's
``(seed, index)`` work-partitioning template
(:func:`repro.fuzz.runner.shard_ranges`) — and publishes a campaign
manifest under ``<cache>/cluster/campaigns/<digest>/``.  Workers
(``repro worker``) claim shards via fencing-token leases
(:mod:`repro.engine.recovery.leases`), heartbeat while executing, and
publish every simulation artifact straight into the shared CAS.  The
coordinator's final reduce is the ordinary ``run_sweep`` over the
now-warm store, so the ``SweepResult`` bytes are identical to a
single-node run at any worker count, with any interleaving, through
any number of failures.

Robustness properties, each backed by a durable on-store record:

* **orphan recovery** — a worker that dies mid-shard (SIGKILL included)
  stops heartbeating; the coordinator breaks the lease after the lease
  window on its *own monotonic clock* (no cross-host wall-clock
  comparison) and the shard is re-claimed by any worker.  Every break
  leaves a typed ``WorkerLostError`` event and bumps the
  ``shards_reassigned`` / ``workers_lost`` counters.
* **zombie fencing** — a paused-then-resumed worker holds a lease with
  a superseded fencing epoch; its heartbeat and commit both raise
  :class:`LeaseFencedError` and write nothing (``leases_fenced``).
* **straggler hedging** — near the end of the campaign an idle worker
  duplicates the slowest in-flight shard under a hedge lease; the first
  commit wins, the loser's marker is never written (``hedged_shards``).
* **crash quarantine** — a shard that keeps failing is retried up to
  ``max_attempts`` times (transient errors only); the failure records
  feed the service circuit breaker through the merged counters.
* **graceful degradation** — zero registered workers means the
  coordinator simply runs the campaign through the existing in-process
  pool; mid-campaign worker extinction makes the coordinator execute
  the remaining shards itself through the same claim path.
"""

from __future__ import annotations

import logging
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.engine.metrics import PipelineMetrics
from repro.engine.recovery.leases import (ShardLease, ShardLeaseStore,
                                          atomic_write_json, read_json)
from repro.engine.recovery.locks import (FileLock, LeaseObserver,
                                         _pid_alive, new_owner_token)
from repro.engine.recovery.retry import RetryPolicy, is_transient
from repro.fuzz.runner import shard_ranges
from repro.machine.descriptor import scalar_machine
from repro.robustness import errors as _errors
from repro.robustness.errors import (DeadlineExceededError,
                                     LeaseFencedError, ReproError,
                                     classify_exception)
from repro.sweep.runner import (SweepOutcome, make_point_spec, run_sweep,
                                simulate_point)
from repro.sweep.spec import SweepSpec

logger = logging.getLogger("repro.service.cluster")

DEFAULT_SHARD_SIZE = 2
DEFAULT_LEASE_TIMEOUT = 6.0
DEFAULT_HEARTBEAT_INTERVAL = 0.5


@dataclass(frozen=True)
class ClusterConfig:
    """Coordinator-side knobs for one distributed campaign."""

    #: lattice points per shard (shard 0 also carries the baseline)
    shard_size: int = DEFAULT_SHARD_SIZE
    #: workers to wait for before starting; 0 means "take what's there"
    expect_workers: int = 0
    #: seconds to wait for workers to register before degrading
    worker_grace: float = 5.0
    #: seconds without an observed heartbeat before a lease is broken
    lease_timeout: float = DEFAULT_LEASE_TIMEOUT
    #: holder-side heartbeat cadence (well inside ``lease_timeout``)
    heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL
    #: duplicate the slowest in-flight shard near the end of the run
    hedge: bool = True
    #: hedging arms only when this few shards remain
    hedge_window: int = 2
    #: transient attempts per shard before the campaign fails typed
    max_attempts: int = 3
    #: coordinator monitor cadence
    poll: float = 0.1
    #: fail instead of degrading when no worker registers in the grace
    require_workers: bool = False


# ----- store layout ---------------------------------------------------------

def cluster_root(cache_dir: str | os.PathLike) -> Path:
    return Path(cache_dir) / "cluster"


def campaign_dir(cache_dir: str | os.PathLike, digest: str) -> Path:
    return cluster_root(cache_dir) / "campaigns" / digest[:12]


def workers_dir(cache_dir: str | os.PathLike) -> Path:
    return cluster_root(cache_dir) / "workers"


def manifest_path(cdir: Path) -> Path:
    return cdir / "campaign.json"


def _campaign_lock(cdir: Path) -> FileLock:
    return FileLock(cdir / "campaign.lock", lease_seconds=5.0)


def read_manifest(cdir: Path) -> dict | None:
    return read_json(manifest_path(cdir))


def set_campaign_state(cdir: Path, state: str) -> None:
    with _campaign_lock(cdir):
        manifest = read_manifest(cdir)
        if manifest is not None:
            manifest["state"] = state
            atomic_write_json(manifest_path(cdir), manifest)


def open_campaign(cache_dir: str, spec: SweepSpec,
                  config: ClusterConfig, engine: str) -> dict:
    """Create — or adopt — the campaign manifest for ``spec``.

    Adoption is what makes the coordinator SIGKILL-safe: a restarted
    coordinator finds the manifest, the done markers and the leases
    exactly where its predecessor left them and resumes monitoring.
    """
    digest = spec.sweep_digest()
    cdir = campaign_dir(cache_dir, digest)
    cdir.mkdir(parents=True, exist_ok=True)
    points = len(spec.expand())
    with _campaign_lock(cdir):
        manifest = read_manifest(cdir)
        if manifest is not None and manifest.get("digest") == digest \
                and manifest.get("state") in ("open", "done"):
            return manifest
        # A manifest stuck in "local"/"failed" (coordinator died
        # mid-transition) is re-opened fresh: workers only claim from
        # "open" campaigns, so adopting it verbatim would deadlock.
        manifest = {
            "kind": "sweep", "name": spec.name, "digest": digest,
            "campaign": cdir.name, "spec": spec.to_dict(),
            "points": points, "shard_size": max(1, config.shard_size),
            "shards": len(shard_ranges(points, config.shard_size)),
            "engine": engine, "state": "open",
            "lease_timeout": config.lease_timeout,
            "heartbeat_interval": config.heartbeat_interval,
            "hedge": config.hedge, "hedge_window": config.hedge_window,
            "max_attempts": config.max_attempts,
        }
        atomic_write_json(manifest_path(cdir), manifest)
    return manifest


def shard_points(manifest: dict, shard: int) -> list[int]:
    """The lattice point indices shard ``shard`` executes."""
    ranges = shard_ranges(manifest["points"], manifest["shard_size"])
    if not 0 <= shard < len(ranges):
        raise ReproError(f"campaign {manifest['campaign']} has no "
                         f"shard {shard}")
    start, count = ranges[shard]
    return list(range(start, start + count))


# ----- worker registry ------------------------------------------------------

def live_worker_ids(cache_dir: str) -> list[str]:
    """Registered workers whose recorded pid is alive on this host."""
    out = []
    wdir = workers_dir(cache_dir)
    if wdir.is_dir():
        for path in sorted(wdir.glob("*.json")):
            entry = read_json(path)
            if entry is None:
                continue
            pid = entry.get("pid")
            if isinstance(pid, int) and _pid_alive(pid):
                out.append(str(entry.get("worker_id", path.stem)))
            else:
                path.unlink(missing_ok=True)
    return out


class ClusterOps:
    """register/claim/heartbeat/complete against one shared store.

    The server exposes these verbatim as protocol ops for
    ``repro worker --endpoint``; a store-local worker calls them
    directly.  Either way the authority is the on-store lease state,
    never process memory.
    """

    def __init__(self, cache_dir: str):
        self.cache_dir = str(cache_dir)

    # -- registration --

    def register(self, worker_id: str | None = None,
                 pid: int | None = None) -> str:
        worker_id = worker_id or f"w{new_owner_token()}"
        atomic_write_json(workers_dir(self.cache_dir)
                          / f"{worker_id}.json",
                          {"worker_id": worker_id,
                           "pid": pid or os.getpid(), "beats": 0})
        return worker_id

    def beat_worker(self, worker_id: str) -> None:
        path = workers_dir(self.cache_dir) / f"{worker_id}.json"
        entry = read_json(path)
        if entry is not None:
            entry["beats"] = int(entry.get("beats", 0)) + 1
            atomic_write_json(path, entry)

    def unregister(self, worker_id: str) -> None:
        (workers_dir(self.cache_dir)
         / f"{worker_id}.json").unlink(missing_ok=True)

    # -- shard lifecycle --

    def _campaigns(self) -> list[Path]:
        root = cluster_root(self.cache_dir) / "campaigns"
        return sorted(p for p in root.glob("*")
                      if p.is_dir()) if root.is_dir() else []

    def _store(self, campaign: str) -> ShardLeaseStore:
        return ShardLeaseStore(cluster_root(self.cache_dir)
                               / "campaigns" / campaign)

    @staticmethod
    def _shard_blocked(store: ShardLeaseStore, shard: int,
                       max_attempts: int) -> bool:
        """Retries exhausted or a permanent failure recorded?"""
        fails = [e for e in store.events("fail")
                 if e.get("shard") == shard]
        if any(not e.get("transient", True) for e in fails):
            return True
        return len(fails) >= max_attempts

    def claim(self, worker_id: str) -> dict | None:
        """Lease one shard for ``worker_id``; None when nothing claimable.

        Scans open campaigns in name order; within one campaign, free
        shards are claimed lowest-index first.  When every remaining
        shard is already leased and few enough remain, the slowest
        in-flight shard is duplicated under a hedge lease.
        """
        for cdir in self._campaigns():
            manifest = read_manifest(cdir)
            if manifest is None or manifest.get("state") != "open":
                continue
            store = self._store(cdir.name)
            done = store.done_shards()
            max_attempts = int(manifest.get("max_attempts", 3))
            remaining = [i for i in range(manifest["shards"])
                         if i not in done
                         and not self._shard_blocked(store, i,
                                                     max_attempts)]
            in_flight = []
            for shard in remaining:
                lease = store.read(shard)
                if lease is None:
                    lease = store.claim(shard, owner=worker_id)
                    if lease is not None:
                        return {"campaign": cdir.name,
                                "manifest": manifest,
                                "shard": shard,
                                "lease": lease.to_dict()}
                    lease = store.read(shard)  # observe the winner
                if lease is not None:
                    in_flight.append(lease)
            if manifest.get("hedge") and in_flight and not any(
                    store.read(l.shard) is None for l in in_flight) \
                    and len(remaining) <= int(
                        manifest.get("hedge_window", 2)):
                # Straggler hedging: duplicate the longest-running
                # shard someone *else* holds, once.
                for primary in sorted(in_flight,
                                      key=lambda l: (-l.beats, l.shard)):
                    if primary.owner == worker_id \
                            or store.read(primary.shard,
                                          hedge=True) is not None:
                        continue
                    hedge = store.claim(primary.shard, owner=worker_id,
                                        hedge=True)
                    if hedge is not None:
                        store.record_event("hedge", hedge.shard,
                                           hedge.epoch,
                                           worker=worker_id,
                                           primary_epoch=primary.epoch)
                        return {"campaign": cdir.name,
                                "manifest": manifest,
                                "shard": hedge.shard,
                                "lease": hedge.to_dict()}
        return None

    def heartbeat(self, campaign: str, lease: dict) -> dict:
        parsed = ShardLease.from_dict(lease)
        if parsed is None:
            raise ReproError(f"malformed lease for campaign {campaign}")
        return self._store(campaign).heartbeat(parsed).to_dict()

    def complete(self, campaign: str, lease: dict,
                 payload: dict) -> bool:
        parsed = ShardLease.from_dict(lease)
        if parsed is None:
            raise ReproError(f"malformed lease for campaign {campaign}")
        return self._store(campaign).complete(parsed, dict(payload or {}))

    def fail(self, campaign: str, lease: dict, error: str,
             message: str, transient: bool) -> None:
        parsed = ShardLease.from_dict(lease)
        if parsed is None:
            return
        store = self._store(campaign)
        store.record_failure(parsed.shard, parsed.epoch, error, message,
                             transient)
        store.release(parsed)


class _RemoteOps:
    """The same operations spoken over a service endpoint.

    Leases still live on the shared store (the server mutates them on
    the worker's behalf); only the coordination hops cross the socket.
    """

    def __init__(self, cache_dir: str, endpoint: str):
        from repro.service.client import ServiceClient
        host, _, port = endpoint.rpartition(":")
        try:
            self.client = ServiceClient(host=host or "127.0.0.1",
                                        port=int(port))
        except ValueError:
            raise ReproError(
                f"bad --endpoint {endpoint!r}: expected HOST:PORT") \
                from None
        self.cache_dir = cache_dir

    def register(self, worker_id=None, pid=None) -> str:
        return self.client.register_worker(worker_id=worker_id,
                                           pid=pid or os.getpid())

    def beat_worker(self, worker_id: str) -> None:
        self.client.worker_beat(worker_id)

    def unregister(self, worker_id: str) -> None:
        try:
            self.client.unregister_worker(worker_id)
        except ReproError:
            pass  # server already gone: the pid probe reaps the entry

    def claim(self, worker_id: str) -> dict | None:
        return self.client.claim_shard(worker_id)

    def heartbeat(self, campaign: str, lease: dict) -> dict:
        return self.client.shard_heartbeat(campaign, lease)

    def complete(self, campaign: str, lease: dict,
                 payload: dict) -> bool:
        return self.client.shard_complete(campaign, lease, payload)

    def fail(self, campaign: str, lease: dict, error: str,
             message: str, transient: bool) -> None:
        self.client.shard_fail(campaign, lease, error=error,
                               message=message, transient=transient)


# ----- worker ---------------------------------------------------------------

class _HeartbeatPump(threading.Thread):
    """Renews one shard lease (and the worker registration) on a timer.

    A fencing rejection is latched, never raised here — the executing
    thread observes :attr:`fence` between points and aborts the shard.
    """

    def __init__(self, ops, campaign: str, lease: dict, worker_id: str,
                 interval: float):
        super().__init__(daemon=True)
        self.ops, self.campaign, self.worker_id = ops, campaign, worker_id
        self.lease = dict(lease)
        self.interval = max(0.05, interval)
        self.fence: LeaseFencedError | None = None
        # not `_stop`: that name is a Thread-internal method join() uses
        self._halt = threading.Event()

    def run(self) -> None:
        while not self._halt.wait(self.interval):
            try:
                self.lease = self.ops.heartbeat(self.campaign, self.lease)
                self.ops.beat_worker(self.worker_id)
            except LeaseFencedError as exc:
                self.fence = exc
                return
            except Exception:  # noqa: BLE001 — lease expiry is the net
                continue  # transient (lock contention, dropped RPC)

    def stop(self) -> None:
        self._halt.set()
        self.join(timeout=5.0)


@dataclass
class WorkerOutcome:
    """What one ``repro worker`` process did before exiting."""

    worker_id: str
    shards_completed: int = 0
    hedges_lost: int = 0
    shards_failed: int = 0
    campaigns: set[str] = field(default_factory=set)


def execute_shard(cache_dir: str, work: dict, ops,
                  worker_id: str) -> dict:
    """Run every point of one claimed shard; returns the done payload.

    Raises :class:`LeaseFencedError` as soon as the pump observes the
    lease was superseded — the shard's remaining points are the
    successor's problem, and nothing gets committed.
    """
    manifest = work["manifest"]
    spec = SweepSpec.from_dict(manifest["spec"])
    by_index = {p.index: p for p in spec.expand()}
    indices = shard_points(manifest, work["shard"])
    engine = manifest.get("engine", "fastpath")
    pump = _HeartbeatPump(ops, work["campaign"], work["lease"],
                          worker_id,
                          float(manifest.get("heartbeat_interval",
                                             DEFAULT_HEARTBEAT_INTERVAL)))
    pump.start()
    merged = PipelineMetrics()
    try:
        if work["shard"] == 0:
            # Shard 0 carries the campaign's scalar baseline.
            merged.merge_dict(simulate_point(make_point_spec(
                spec, cache_dir, scalar_machine(), ("superblock",),
                engine=engine)))
        for index in indices:
            if pump.fence is not None:
                raise pump.fence
            merged.merge_dict(simulate_point(make_point_spec(
                spec, cache_dir, by_index[index].machine,
                engine=engine)))
        if pump.fence is not None:
            raise pump.fence
    finally:
        pump.stop()
    work["lease"] = pump.lease
    return {"points": indices, "baseline": work["shard"] == 0,
            "worker": worker_id, "counters": merged.to_dict()}


def run_worker(cache_dir: str, *, endpoint: str | None = None,
               once: bool = False, idle_timeout: float = 60.0,
               drain_idle: float = 6.0, poll: float = 0.25,
               max_shards: int = 0) -> WorkerOutcome:
    """The worker loop: register, claim, execute, commit, repeat.

    Exits cleanly when idle past ``idle_timeout`` before ever seeing
    work (``drain_idle`` once it has participated — after its campaign
    finishes there is nothing left to claim), after the first shard
    with ``once``, or after ``max_shards`` shards.  A fencing rejection
    propagates as :class:`LeaseFencedError` (CLI exit 27): a fenced
    worker is a zombie by definition and must not keep executing.
    """
    ops = _RemoteOps(cache_dir, endpoint) if endpoint \
        else ClusterOps(cache_dir)
    worker_id = ops.register(pid=os.getpid())
    outcome = WorkerOutcome(worker_id=worker_id)
    idle_deadline = time.monotonic() + idle_timeout
    try:
        while True:
            work = ops.claim(worker_id)
            if work is None:
                if time.monotonic() >= idle_deadline:
                    return outcome
                ops.beat_worker(worker_id)
                time.sleep(poll)
                continue
            outcome.campaigns.add(work["campaign"])
            try:
                payload = execute_shard(cache_dir, work, ops, worker_id)
            except LeaseFencedError:
                outcome.shards_failed += 1
                raise
            except Exception as raw:  # noqa: BLE001 — recorded typed
                exc = classify_exception(raw)
                outcome.shards_failed += 1
                ops.fail(work["campaign"], work["lease"],
                         error=type(exc).__name__,
                         message=str(exc), transient=is_transient(exc))
                logger.warning("shard %d of %s failed (%s): %s",
                               work["shard"], work["campaign"],
                               type(exc).__name__, exc)
            else:
                if ops.complete(work["campaign"], work["lease"],
                                payload):
                    outcome.shards_completed += 1
                else:
                    outcome.hedges_lost += 1
            if once or (max_shards and
                        outcome.shards_completed >= max_shards):
                return outcome
            idle_deadline = time.monotonic() + drain_idle
    finally:
        ops.unregister(worker_id)


# ----- coordinator ----------------------------------------------------------

def _raise_campaign_failure(cdir: Path, store: ShardLeaseStore,
                            shard: int) -> None:
    set_campaign_state(cdir, "failed")
    fails = [e for e in store.events("fail") if e.get("shard") == shard]
    worst = next((e for e in fails if not e.get("transient", True)),
                 fails[-1] if fails else None)
    name = (worst or {}).get("error", "ReproError")
    message = (worst or {}).get("message", "shard failed")
    cls = getattr(_errors, str(name), None)
    if not (isinstance(cls, type) and issubclass(cls, ReproError)):
        cls = ReproError
    try:
        exc = cls(f"campaign shard {shard} failed after "
                  f"{len(fails)} attempt(s): {message}")
    except TypeError:
        exc = ReproError(f"campaign shard {shard} failed: {message}")
    raise exc


def _break_stale_leases(store: ShardLeaseStore, observer: LeaseObserver,
                        lease_timeout: float) -> None:
    """Coordinator-side orphan recovery, one sweep of the lease dir."""
    leases_dir = store.root / "leases"
    if not leases_dir.is_dir():
        return
    for path in sorted(leases_dir.glob("shard-*.json")):
        hedge = path.name.endswith(".hedge.json")
        lease = ShardLease.from_dict(read_json(path) or {})
        if lease is None:
            continue
        key = (lease.shard, hedge)
        pid_dead = lease.pid and not _pid_alive(lease.pid)
        if not pid_dead and not observer.stale(
                key, (lease.epoch, lease.beats), lease_timeout):
            continue
        if store.break_lease(lease.shard, lease.epoch, hedge=hedge):
            observer.forget(key)
            store.record_event(
                "lost", lease.shard, lease.epoch,
                worker=lease.owner, hedge=hedge,
                error="WorkerLostError",
                message=(f"worker {lease.owner} lost shard "
                         f"{lease.shard} (epoch {lease.epoch}): "
                         + ("pid dead" if pid_dead
                            else "heartbeats stopped")))
            logger.warning(
                "WorkerLostError: reassigning shard %d (epoch %d) "
                "held by %s", lease.shard, lease.epoch, lease.owner)


def _wait_for_workers(cache_dir: str, config: ClusterConfig) -> int:
    deadline = time.monotonic() + max(0.0, config.worker_grace)
    while True:
        live = len(live_worker_ids(cache_dir))
        if live >= max(1, config.expect_workers):
            return live
        if time.monotonic() >= deadline:
            return live
        time.sleep(min(0.1, config.poll))


def run_cluster_sweep(spec: SweepSpec, cache_dir: str,
                      config: ClusterConfig | None = None, *,
                      jobs: int = 1, run_id: str | None = None,
                      resume: bool = False,
                      retry: RetryPolicy | None = None,
                      wall_clock_budget: float | None = None,
                      metrics: PipelineMetrics | None = None,
                      engine: str = "fastpath") -> SweepOutcome:
    """Coordinate one sweep campaign across registered workers.

    Publishes the manifest, waits up to ``worker_grace`` for workers,
    then monitors: breaking stale leases, arming hedges (worker-side),
    failing typed on exhausted shards, and executing shards itself if
    every worker vanishes.  With zero workers it degrades to the plain
    in-process ``run_sweep``.  Either way the returned
    :class:`SweepOutcome` comes from the same lattice-order aggregation
    over the same store — byte-identical bytes, any topology.
    """
    config = config or ClusterConfig()
    metrics = metrics or PipelineMetrics()
    digest = spec.sweep_digest()
    cdir = campaign_dir(cache_dir, digest)
    manifest = open_campaign(cache_dir, spec, config, engine)

    def finish() -> SweepOutcome:
        set_campaign_state(cdir, "done")
        return run_sweep(spec, cache_dir=cache_dir, jobs=jobs,
                         run_id=run_id, resume=resume, retry=retry,
                         wall_clock_budget=wall_clock_budget,
                         metrics=metrics, engine=engine)

    if manifest.get("state") == "done":
        return finish()

    live = _wait_for_workers(cache_dir, config)
    if live == 0:
        if config.require_workers:
            set_campaign_state(cdir, "failed")
            raise ReproError(
                f"no campaign worker registered within "
                f"{config.worker_grace:g}s (start some with "
                f"`repro worker --cache-dir {cache_dir}`)")
        logger.info("no workers registered: degrading to the "
                    "in-process pool (jobs=%d)", jobs)
        set_campaign_state(cdir, "local")
        return finish()

    store = ShardLeaseStore(cdir)
    ops = ClusterOps(cache_dir)
    observer = LeaseObserver()
    coordinator_id = f"coord-{new_owner_token()}"
    shards = int(manifest["shards"])
    deadline = None if wall_clock_budget is None \
        else time.monotonic() + wall_clock_budget
    while True:
        done = store.done_shards()
        if len(done) >= shards:
            break
        if deadline is not None and time.monotonic() >= deadline:
            raise DeadlineExceededError(
                f"campaign {cdir.name} exceeded its "
                f"{wall_clock_budget:g}s budget with "
                f"{shards - len(done)} shard(s) outstanding",
                deadline=wall_clock_budget)
        for shard in range(shards):
            if shard not in done and ClusterOps._shard_blocked(
                    store, shard, config.max_attempts):
                _raise_campaign_failure(cdir, store, shard)
        _break_stale_leases(store, observer, config.lease_timeout)
        if not live_worker_ids(cache_dir):
            # Every worker is gone: the coordinator takes the claim
            # path itself so the campaign still finishes exactly once.
            work = ops.claim(coordinator_id)
            if work is not None and work["campaign"] != cdir.name:
                # Another campaign's shard: give the lease straight
                # back (no failure record) — its own coordinator owns
                # that work.
                lease = ShardLease.from_dict(work["lease"])
                if lease is not None:
                    ops._store(work["campaign"]).release(lease)
                work = None
            if work is not None:
                try:
                    payload = execute_shard(cache_dir, work, ops,
                                            coordinator_id)
                    ops.complete(work["campaign"], work["lease"],
                                 payload)
                except LeaseFencedError:
                    pass  # a worker returned and out-fenced us: fine
                except Exception as raw:  # noqa: BLE001
                    exc = classify_exception(raw)
                    ops.fail(work["campaign"], work["lease"],
                             error=type(exc).__name__, message=str(exc),
                             transient=is_transient(exc))
                continue
        time.sleep(config.poll)

    # Fold the campaign's durable evidence into the metrics the caller
    # serializes to BENCH_pipeline.json.
    lost = store.events("lost")
    metrics.shards_reassigned += sum(1 for e in lost
                                     if not e.get("hedge"))
    metrics.workers_lost += len({e.get("worker") for e in lost})
    metrics.leases_fenced += store.count_events("fenced")
    metrics.hedged_shards += store.count_events("hedge")
    for shard in range(shards):
        marker = store.done(shard)
        if marker and isinstance(marker.get("counters"), dict):
            metrics.merge_dict(marker["counters"])
    return finish()
