"""Synchronous client for the experiment service.

One plain TCP connection per request (the protocol is stateless except
for ``watch``, which streams on its own connection).  Server-side
errors come back typed and are re-raised here as the *same* taxonomy
class — a shed submission raises :class:`ServiceOverloadedError` with
its ``retry_after`` hint on the client exactly as it did on the
server, so ``repro submit`` exits with the documented code.
"""

from __future__ import annotations

import json
import socket
import time
from typing import Iterator

from repro.robustness import errors as _errors
from repro.robustness.errors import ReproError
from repro.service.server import read_endpoint
from repro.service.spec import ServiceJobSpec


def _raise_remote(payload: dict) -> None:
    """Re-raise a ``{"ok": false, ...}`` response as its taxonomy class."""
    name = str(payload.get("error") or "ReproError")
    message = str(payload.get("message") or "service error")
    cls = getattr(_errors, name, None)
    if not (isinstance(cls, type) and issubclass(cls, ReproError)):
        cls = ReproError
    try:
        exc = cls(message)
    except TypeError:
        exc = ReproError(message)
    if payload.get("retry_after") is not None:
        exc.retry_after = float(payload["retry_after"])
    for attr in ("kind", "tenant"):
        if payload.get(attr) is not None:
            setattr(exc, attr, payload[attr])
    raise exc


class ServiceClient:
    """Talks the JSON-lines protocol to one server endpoint."""

    def __init__(self, host: str | None = None, port: int | None = None,
                 cache_dir: str | None = None, timeout: float = 30.0):
        if host is None or port is None:
            if cache_dir is None:
                raise ReproError("service endpoint unknown: pass "
                                 "host/port or a cache dir holding "
                                 "service/service.json")
            host, port = read_endpoint(cache_dir)
        self.host, self.port, self.timeout = host, int(port), timeout

    # ----- transport ----------------------------------------------------

    def _connect(self) -> socket.socket:
        try:
            return socket.create_connection(
                (self.host, self.port), timeout=self.timeout)
        except OSError as exc:
            raise ReproError(
                f"cannot reach experiment service at {self.host}:"
                f"{self.port} ({exc}) — is `repro serve` "
                f"running?") from exc

    def _request(self, payload: dict) -> dict:
        with self._connect() as sock:
            sock.sendall(json.dumps(payload).encode() + b"\n")
            response = self._read_line(sock.makefile("rb"))
        if response is None:
            raise ReproError("experiment service closed the connection "
                             "without answering")
        if not response.get("ok"):
            _raise_remote(response)
        return response

    @staticmethod
    def _read_line(stream) -> dict | None:
        line = stream.readline()
        if not line:
            return None
        try:
            data = json.loads(line)
        except ValueError as exc:
            raise ReproError(f"malformed service response: {exc}") \
                from None
        return data if isinstance(data, dict) else None

    # ----- operations ---------------------------------------------------

    def ping(self) -> dict:
        return self._request({"op": "ping"})

    def stats(self) -> dict:
        return self._request({"op": "stats"})

    def drain(self) -> dict:
        return self._request({"op": "drain"})

    def submit(self, spec: ServiceJobSpec | dict,
               tenant: str = "default") -> dict:
        """Submit one job; returns the response with ``job`` and
        ``deduped``.  Raises the typed rejection on shed/quota."""
        spec_dict = spec.to_dict() if isinstance(spec, ServiceJobSpec) \
            else spec
        return self._request({"op": "submit", "tenant": tenant,
                              "spec": spec_dict})

    def status(self, job_id: str) -> dict:
        """The job record dict for ``job_id``."""
        return self._request({"op": "status", "job_id": job_id})["job"]

    def watch(self, job_id: str) -> Iterator[dict]:
        """Stream a job's journal events; ends after the ``end`` event."""
        with self._connect() as sock:
            sock.settimeout(None)  # journal gaps outlast the default
            sock.sendall(json.dumps({"op": "watch", "job_id": job_id})
                         .encode() + b"\n")
            stream = sock.makefile("rb")
            while True:
                event = self._read_line(stream)
                if event is None:
                    return
                if not event.get("ok"):
                    _raise_remote(event)
                yield event
                if event.get("event") == "end":
                    return

    def wait(self, job_id: str, timeout: float | None = None,
             poll: float = 0.2) -> dict:
        """Poll until the job is terminal; returns the final record.

        Raises :class:`ReproError` on timeout (the job keeps running —
        this only stops waiting for it).
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            job = self.status(job_id)
            if job["state"] in ("done", "failed"):
                return job
            if deadline is not None and time.monotonic() >= deadline:
                raise ReproError(
                    f"timed out after {timeout:g}s waiting for job "
                    f"{job_id} (still {job['state']})")
            time.sleep(poll)

    def result(self, job_id: str, timeout: float | None = None) -> str:
        """Wait for the job and return its canonical result JSON.

        A failed job re-raises its recorded typed error.
        """
        job = self.wait(job_id, timeout=timeout)
        if job["state"] == "failed":
            error = job.get("error") or {}
            _raise_remote({"error": error.get("type"),
                           "message": error.get("message")})
        return job["result_json"]
