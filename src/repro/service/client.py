"""Synchronous client for the experiment service.

One plain TCP connection per request (the protocol is stateless except
for ``watch``, which streams on its own connection).  Server-side
errors come back typed and are re-raised here as the *same* taxonomy
class — a shed submission raises :class:`ServiceOverloadedError` with
its ``retry_after`` hint on the client exactly as it did on the
server, so ``repro submit`` exits with the documented code.
"""

from __future__ import annotations

import json
import socket
import time
from typing import Iterator

from repro.robustness import errors as _errors
from repro.robustness.errors import ReproError
from repro.service.server import read_endpoint
from repro.service.spec import ServiceJobSpec


def _raise_remote(payload: dict) -> None:
    """Re-raise a ``{"ok": false, ...}`` response as its taxonomy class."""
    name = str(payload.get("error") or "ReproError")
    message = str(payload.get("message") or "service error")
    cls = getattr(_errors, name, None)
    if not (isinstance(cls, type) and issubclass(cls, ReproError)):
        cls = ReproError
    try:
        exc = cls(message)
    except TypeError:
        exc = ReproError(message)
    if payload.get("retry_after") is not None:
        exc.retry_after = float(payload["retry_after"])
    for attr in ("kind", "tenant"):
        if payload.get(attr) is not None:
            setattr(exc, attr, payload[attr])
    raise exc


class _WatchDropped(Exception):
    """Internal: a watch connection died mid-stream (retryable)."""


class ServiceClient:
    """Talks the JSON-lines protocol to one server endpoint."""

    def __init__(self, host: str | None = None, port: int | None = None,
                 cache_dir: str | None = None, timeout: float = 30.0):
        if host is None or port is None:
            if cache_dir is None:
                raise ReproError("service endpoint unknown: pass "
                                 "host/port or a cache dir holding "
                                 "service/service.json")
            host, port = read_endpoint(cache_dir)
        self.host, self.port, self.timeout = host, int(port), timeout
        #: kept so a reconnecting watch can re-read the endpoint file
        #: after a server restart rebinds the port
        self.cache_dir = cache_dir

    # ----- transport ----------------------------------------------------

    def _connect(self) -> socket.socket:
        try:
            return socket.create_connection(
                (self.host, self.port), timeout=self.timeout)
        except OSError as exc:
            raise ReproError(
                f"cannot reach experiment service at {self.host}:"
                f"{self.port} ({exc}) — is `repro serve` "
                f"running?") from exc

    def _request(self, payload: dict) -> dict:
        with self._connect() as sock:
            sock.sendall(json.dumps(payload).encode() + b"\n")
            response = self._read_line(sock.makefile("rb"))
        if response is None:
            raise ReproError("experiment service closed the connection "
                             "without answering")
        if not response.get("ok"):
            _raise_remote(response)
        return response

    @staticmethod
    def _read_line(stream) -> dict | None:
        line = stream.readline()
        if not line:
            return None
        try:
            data = json.loads(line)
        except ValueError as exc:
            raise ReproError(f"malformed service response: {exc}") \
                from None
        return data if isinstance(data, dict) else None

    # ----- operations ---------------------------------------------------

    def ping(self) -> dict:
        return self._request({"op": "ping"})

    def stats(self) -> dict:
        return self._request({"op": "stats"})

    def drain(self) -> dict:
        return self._request({"op": "drain"})

    def submit(self, spec: ServiceJobSpec | dict,
               tenant: str = "default") -> dict:
        """Submit one job; returns the response with ``job`` and
        ``deduped``.  Raises the typed rejection on shed/quota."""
        spec_dict = spec.to_dict() if isinstance(spec, ServiceJobSpec) \
            else spec
        return self._request({"op": "submit", "tenant": tenant,
                              "spec": spec_dict})

    def status(self, job_id: str) -> dict:
        """The job record dict for ``job_id``."""
        return self._request({"op": "status", "job_id": job_id})["job"]

    def watch(self, job_id: str, *, reconnect: bool = True,
              max_attempts: int = 8, backoff_base: float = 0.2,
              backoff_cap: float = 5.0) -> Iterator[dict]:
        """Stream a job's journal events; ends after the ``end`` event.

        A dropped connection (server restart, network blip) is retried
        with capped exponential backoff instead of losing the stream:
        the client re-reads the endpoint file when it knows the cache
        dir, then resumes with ``from_index`` set to the last journal
        index it saw, so no event is replayed and none is lost.  Typed
        server errors (unknown job, shed) still raise immediately.
        ``max_attempts`` counts *consecutive* failed reconnects; any
        successfully received event resets the budget.
        """
        last_index = 0
        attempts = 0
        while True:
            try:
                for event in self._watch_once(job_id, last_index):
                    attempts = 0
                    index = event.get("index")
                    if isinstance(index, int) and index > last_index:
                        last_index = index
                    yield event
                    if event.get("event") == "end":
                        return
                # Server closed mid-stream without the terminal event.
                raise _WatchDropped("stream closed before job end")
            except _WatchDropped as drop:
                attempts += 1
                if not reconnect or attempts > max_attempts:
                    raise ReproError(
                        f"watch stream for job {job_id} dropped "
                        f"({drop}) and could not be re-established "
                        f"after {attempts} attempt(s)") from None
                time.sleep(min(backoff_cap,
                               backoff_base * (2 ** (attempts - 1))))
                self._refresh_endpoint()

    def _watch_once(self, job_id: str,
                    from_index: int) -> Iterator[dict]:
        """One watch connection; :class:`_WatchDropped` on transport loss."""
        try:
            sock = self._connect()
        except ReproError as exc:
            raise _WatchDropped(str(exc)) from None
        with sock:
            sock.settimeout(None)  # journal gaps outlast the default
            try:
                sock.sendall(json.dumps(
                    {"op": "watch", "job_id": job_id,
                     "from_index": from_index}).encode() + b"\n")
                stream = sock.makefile("rb")
                while True:
                    line = stream.readline()
                    if not line:
                        return
                    try:
                        event = json.loads(line)
                    except ValueError as exc:
                        # torn line from a dying server, not a protocol
                        # violation — reconnect rather than raise
                        raise _WatchDropped(
                            f"malformed event: {exc}") from None
                    if not isinstance(event, dict):
                        return
                    if not event.get("ok"):
                        _raise_remote(event)
                    yield event
                    if event.get("event") == "end":
                        return
            except OSError as exc:
                raise _WatchDropped(str(exc)) from None

    def _refresh_endpoint(self) -> None:
        """Re-read the endpoint file — a restarted server rebinds."""
        if self.cache_dir is None:
            return
        try:
            host, port = read_endpoint(self.cache_dir)
        except ReproError:
            return
        self.host, self.port = host, int(port)

    def wait(self, job_id: str, timeout: float | None = None,
             poll: float = 0.2) -> dict:
        """Poll until the job is terminal; returns the final record.

        Raises :class:`ReproError` on timeout (the job keeps running —
        this only stops waiting for it).
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            job = self.status(job_id)
            if job["state"] in ("done", "failed"):
                return job
            if deadline is not None and time.monotonic() >= deadline:
                raise ReproError(
                    f"timed out after {timeout:g}s waiting for job "
                    f"{job_id} (still {job['state']})")
            time.sleep(poll)

    def result(self, job_id: str, timeout: float | None = None) -> str:
        """Wait for the job and return its canonical result JSON.

        A failed job re-raises its recorded typed error.
        """
        job = self.wait(job_id, timeout=timeout)
        if job["state"] == "failed":
            error = job.get("error") or {}
            _raise_remote({"error": error.get("type"),
                           "message": error.get("message")})
        return job["result_json"]

    # ----- cluster worker operations ------------------------------------

    def register_worker(self, worker_id: str | None = None,
                        pid: int | None = None) -> str:
        """Join the worker registry; returns the (possibly assigned) id."""
        return self._request({"op": "register", "worker_id": worker_id,
                              "pid": pid})["worker_id"]

    def worker_beat(self, worker_id: str) -> None:
        self._request({"op": "heartbeat", "worker_id": worker_id})

    def unregister_worker(self, worker_id: str) -> None:
        self._request({"op": "release", "worker_id": worker_id,
                       "unregister": True})

    def claim_shard(self, worker_id: str) -> dict | None:
        """Claim the next available shard; None when nothing to do."""
        return self._request({"op": "claim",
                              "worker_id": worker_id}).get("work")

    def shard_heartbeat(self, campaign: str, lease: dict) -> dict:
        """Renew a shard lease; raises LeaseFencedError when superseded."""
        return self._request({"op": "heartbeat", "campaign": campaign,
                              "lease": lease})["lease"]

    def shard_complete(self, campaign: str, lease: dict,
                       payload: dict) -> bool:
        """Commit a shard result; False when a hedge twin won the race."""
        return self._request({"op": "complete", "campaign": campaign,
                              "lease": lease,
                              "payload": payload})["won"]

    def shard_fail(self, campaign: str, lease: dict, *, error: str,
                   message: str, transient: bool) -> None:
        """Record a typed shard failure and give the lease back."""
        self._request({"op": "release", "campaign": campaign,
                       "lease": lease, "error": error,
                       "message": message, "transient": transient})
