"""Service job specifications and the CAS request digest.

A submission is a plain JSON object naming *what to compute*: a MiniC
source (``kind="source"``), a registered workload (``kind="bench"``)
or the whole figure suite (``kind="figures"``), plus the machine and
scale knobs the pipeline already keys its artifacts on.

``request_digest`` hashes exactly the compute-relevant fields through
the same canonical encoding the artifact store uses
(:func:`repro.engine.keys.stable_digest`), so two submissions that
would produce byte-identical artifacts share one digest — the key
single-flight dedup coalesces on.  Delivery knobs (tenant, deadline)
are deliberately excluded: a million users asking for the same figure
with different deadlines still cost one execution.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.engine.keys import stable_digest
from repro.machine.descriptor import MachineDescription
from repro.robustness.errors import ReproError
from repro.workloads.base import Workload, get_workload

#: job kinds the service executes
KINDS = ("source", "bench", "figures", "sweep")

#: model names accepted in a spec, in canonical order
MODEL_NAMES = ("superblock", "cmov", "fullpred")


@dataclass(frozen=True)
class ServiceJobSpec:
    """One request's compute-relevant parameters.

    ``deadline`` (seconds of wall clock from admission) and ``tenant``
    ride along for scheduling but never enter the request digest.
    """

    kind: str = "bench"
    #: MiniC source text (kind="source")
    source: str | None = None
    #: registered workload name (kind="bench")
    workload: str | None = None
    #: sweep grid as a :class:`repro.sweep.spec.SweepSpec` dict
    #: (kind="sweep"); normalized to canonical form at validation
    sweep: dict | None = None
    models: tuple[str, ...] = MODEL_NAMES
    width: int = 8
    branches: int = 1
    real_caches: bool = False
    scale: float = 0.5
    max_steps: int = 20_000_000
    #: wall-clock budget in seconds, measured from admission
    deadline: float | None = field(default=None, compare=False)

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ReproError(f"unknown job kind {self.kind!r} "
                             f"(expected one of {', '.join(KINDS)})")
        if self.kind == "source" and not (self.source or "").strip():
            raise ReproError("kind='source' requires MiniC source text")
        if self.kind == "sweep":
            if not isinstance(self.sweep, dict):
                raise ReproError("kind='sweep' requires a sweep spec "
                                 "object (see EXPERIMENTS.md)")
            from repro.sweep.spec import SweepSpec
            # Normalize through the sweep validator so two submissions
            # spelling the same grid differently share one digest.
            object.__setattr__(
                self, "sweep", SweepSpec.from_dict(self.sweep).to_dict())
        elif self.sweep is not None:
            raise ReproError("'sweep' is only valid with kind='sweep'")
        if self.kind == "bench":
            if not self.workload:
                raise ReproError("kind='bench' requires a workload name")
            try:
                get_workload(self.workload)
            except KeyError:
                raise ReproError(
                    f"unknown workload {self.workload!r} "
                    f"(see `repro list`)") from None
        unknown = [m for m in self.models if m not in MODEL_NAMES]
        if unknown or not self.models:
            raise ReproError(
                f"invalid models {list(self.models)!r} (expected a "
                f"non-empty subset of {list(MODEL_NAMES)})")
        if not 1 <= self.width <= 16:
            raise ReproError(f"issue width {self.width} out of range "
                             f"[1, 16]")
        if self.scale <= 0:
            raise ReproError(f"scale must be positive, got {self.scale}")
        if self.max_steps <= 0:
            raise ReproError("max_steps must be positive")
        if self.deadline is not None and self.deadline <= 0:
            raise ReproError("deadline must be positive seconds")

    # ----- identity -----------------------------------------------------

    def request_digest(self) -> str:
        """Content address of the computation this spec names.

        Covers every field that changes the produced artifacts and
        nothing else — notably *not* ``deadline``: identical
        computations with different delivery constraints coalesce.
        """
        return stable_digest(
            "service-request", self.kind, self.source, self.workload,
            tuple(sorted(set(self.models))), self.width, self.branches,
            self.real_caches, self.scale, self.max_steps,
            *((self.sweep,) if self.sweep is not None else ()))

    # ----- wire format --------------------------------------------------

    def to_dict(self) -> dict:
        data = {
            "kind": self.kind, "models": list(self.models),
            "width": self.width, "branches": self.branches,
            "real_caches": self.real_caches, "scale": self.scale,
            "max_steps": self.max_steps,
        }
        if self.source is not None:
            data["source"] = self.source
        if self.workload is not None:
            data["workload"] = self.workload
        if self.sweep is not None:
            data["sweep"] = self.sweep
        if self.deadline is not None:
            data["deadline"] = self.deadline
        return data

    @classmethod
    def from_dict(cls, data: object) -> "ServiceJobSpec":
        if not isinstance(data, dict):
            raise ReproError(f"job spec must be a JSON object, got "
                             f"{type(data).__name__}")
        known = {"kind", "source", "workload", "sweep", "models",
                 "width", "branches", "real_caches", "scale",
                 "max_steps", "deadline"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ReproError(f"unknown job spec fields: "
                             f"{', '.join(unknown)}")
        kwargs = dict(data)
        if "models" in kwargs:
            models = kwargs["models"]
            if not isinstance(models, (list, tuple)):
                raise ReproError("models must be a list of model names")
            kwargs["models"] = tuple(str(m) for m in models)
        try:
            return cls(**kwargs)
        except TypeError as exc:
            raise ReproError(f"malformed job spec: {exc}") from exc

    # ----- execution inputs ---------------------------------------------

    def machine(self) -> MachineDescription:
        machine = MachineDescription(
            issue_width=self.width, branch_issue_limit=self.branches,
            name=f"{self.width}-issue,{self.branches}-branch")
        if self.real_caches:
            machine = machine.with_real_caches()
        return machine

    def workloads(self) -> list[Workload]:
        """The workload objects this spec's execution runs over."""
        if self.kind == "bench":
            return [get_workload(self.workload)]
        if self.kind == "source":
            name = "svc-" + hashlib.sha256(
                self.source.encode()).hexdigest()[:12]
            return [Workload(name=name,
                             description="service source submission",
                             source=self.source,
                             build_inputs=lambda _scale: {})]
        from repro.workloads.base import all_workloads
        return all_workloads()
