"""Circuit breaker around the worker pool: degrade, don't die.

The DAG scheduler already contains individual worker crashes (pool
rebuild, crash-suspect quarantine, per-job blame).  A *storm* of them —
every pooled job rebuilding the pool — is a sign the pool itself is
sick (fork bomb protection, cgroup OOM, a poisoned import), and the
service must not keep feeding it.  This breaker watches crash evidence
per executed job and switches execution mode:

* **closed** — healthy; jobs run with the configured process pool;
* **open** — ``threshold`` crash-evidence jobs inside ``window``
  seconds tripped it (counted in ``PipelineMetrics.breaker_trips``);
  jobs run *serially in-process* instead — degraded throughput, but
  the service keeps answering;
* **half-open** — after ``cooldown`` seconds open, exactly one trial
  job is given the pool again.  A clean trial closes the breaker; more
  crash evidence reopens it and restarts the cooldown.

The clock is injectable so tests drive the cooldown deterministically.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field
from typing import Callable

logger = logging.getLogger("repro.service.breaker")

CLOSED, OPEN, HALF_OPEN = "closed", "open", "half-open"


@dataclass(frozen=True)
class BreakerConfig:
    threshold: int = 3      # crash-evidence jobs within window to trip
    window: float = 60.0    # seconds the evidence counts for
    cooldown: float = 30.0  # open duration before the half-open trial

    def __post_init__(self):
        if self.threshold < 1 or self.window <= 0 or self.cooldown <= 0:
            raise ValueError(f"invalid breaker config {self!r}")


@dataclass
class CircuitBreaker:
    """Tracks pool health; hands out the execution mode per job."""

    config: BreakerConfig = field(default_factory=BreakerConfig)
    clock: Callable[[], float] = time.monotonic

    def __post_init__(self):
        self.state = CLOSED
        self.trips = 0
        self._evidence: list[float] = []
        self._opened_at = 0.0
        self._trial_out = False

    # ----- decisions ----------------------------------------------------

    def acquire_mode(self) -> str:
        """Execution mode for the next job: ``"pool"`` or ``"serial"``.

        Must be paired with exactly one :meth:`record` call carrying
        the same mode once the job finishes.
        """
        if self.state == CLOSED:
            return "pool"
        now = self.clock()
        if self.state == OPEN \
                and now - self._opened_at >= self.config.cooldown:
            self.state = HALF_OPEN
            self._trial_out = False
        if self.state == HALF_OPEN and not self._trial_out:
            self._trial_out = True
            logger.info("breaker half-open: issuing one pooled trial")
            return "pool"
        return "serial"

    # ----- outcomes -----------------------------------------------------

    def record(self, mode: str, crash_evidence: bool) -> None:
        """Feed one finished job's outcome back into the breaker."""
        if mode != "pool":
            return  # serial jobs never exercise the pool
        now = self.clock()
        if not crash_evidence:
            if self.state == HALF_OPEN:
                logger.warning("breaker closed: pooled trial ran clean")
                self.state = CLOSED
                self._evidence.clear()
                self._trial_out = False
            return
        if self.state == HALF_OPEN:
            logger.warning("breaker reopened: trial job showed crash "
                           "evidence")
            self.state = OPEN
            self._opened_at = now
            self._trial_out = False
            return
        self._evidence = [t for t in self._evidence
                          if now - t < self.config.window]
        self._evidence.append(now)
        if self.state == CLOSED \
                and len(self._evidence) >= self.config.threshold:
            self.state = OPEN
            self._opened_at = now
            self.trips += 1
            logger.warning(
                "breaker tripped after %d crash-evidence jobs in "
                "%.0fs: degrading to serial execution",
                len(self._evidence), self.config.window)
