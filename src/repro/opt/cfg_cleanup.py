"""CFG cleanup: jump canonicalization, unreachable code removal, block
merging/threading, and fall-through re-layout."""

from __future__ import annotations

from repro.analysis.cfg import predecessors_map, successors_map
from repro.ir.function import BasicBlock, Function, IRError
from repro.ir.instruction import Instruction
from repro.ir.opcodes import OpCategory, Opcode


def make_jumps_explicit(fn: Function) -> None:
    """Terminate every block explicitly so layout order carries no
    control-flow meaning (prerequisite for reordering transforms)."""
    for i, block in enumerate(fn.blocks):
        last = block.instructions[-1] if block.instructions else None
        if last is not None and last.is_terminator:
            continue
        if i + 1 < len(fn.blocks):
            block.append(Instruction(Opcode.JUMP,
                                     target=fn.blocks[i + 1].name))


def remove_unreachable(fn: Function) -> bool:
    succs = successors_map(fn)
    reachable: set[str] = set()
    stack = [fn.entry.name]
    while stack:
        name = stack.pop()
        if name in reachable:
            continue
        reachable.add(name)
        stack.extend(succs[name])
    if len(reachable) == len(fn.blocks):
        return False
    fn.blocks = [b for b in fn.blocks if b.name in reachable]
    return True


def _retarget(fn: Function, mapping: dict[str, str]) -> None:
    """Rewrite branch targets through ``mapping`` (transitively)."""

    def resolve(label: str) -> str:
        seen = set()
        while label in mapping and label not in seen:
            seen.add(label)
            label = mapping[label]
        return label

    for block in fn.blocks:
        for inst in block.instructions:
            if inst.target is not None and inst.cat is not OpCategory.CALL:
                inst.target = resolve(inst.target)


def thread_trivial_jumps(fn: Function) -> bool:
    """Redirect edges that land on blocks containing only a jump."""
    mapping: dict[str, str] = {}
    for block in fn.blocks:
        if len(block.instructions) == 1:
            inst = block.instructions[0]
            if inst.op is Opcode.JUMP and inst.pred is None \
                    and inst.target != block.name:
                mapping[block.name] = inst.target
    # Avoid remapping a label to itself through a cycle of empty blocks.
    mapping = {k: v for k, v in mapping.items() if k != v}
    if not mapping:
        return False
    # Never remap the entry label (it may also be a jump target).
    entry = fn.entry.name
    mapping.pop(entry, None)
    _retarget(fn, mapping)
    return True


def merge_straightline(fn: Function) -> bool:
    """Merge B into A when A ends `jump B` and B has exactly one pred.

    Requires explicit jumps (run :func:`make_jumps_explicit` first).

    Each merge is edge-local (it needs B to have exactly one incoming
    reference, which no *other* merge can change), so whole chains
    A→B→C→… collapse against one predecessor-map snapshot instead of
    rescanning the function per merged block — the difference between
    milliseconds and nearly a minute on the multi-thousand-block
    functions the fuzzer generates.  The fixpoint is identical to the
    old one-merge-per-scan loop; only the asymptotics changed.
    """
    changed = False
    while True:
        preds = predecessors_map(fn)
        by_name = {b.name: b for b in fn.blocks}
        # A target is mergeable only when the final jump is the *only*
        # edge into it: a block may both conditionally branch and jump
        # to the same label, and merging would strand the branch.
        references: dict[str, int] = {}
        for b in fn.blocks:
            for inst in b.instructions:
                if inst.target is not None \
                        and inst.cat is not OpCategory.CALL:
                    references[inst.target] = \
                        references.get(inst.target, 0) + 1
        merged_away: set[str] = set()
        for block in fn.blocks:
            if block.name in merged_away:
                continue
            while True:
                last = block.instructions[-1] if block.instructions \
                    else None
                if last is None or last.op is not Opcode.JUMP \
                        or last.pred is not None:
                    break
                target = last.target
                if target == block.name or target == fn.entry.name \
                        or target in merged_away:
                    break
                if target not in by_name:
                    raise IRError(f"no block named {target!r} in "
                                  f"{fn.name}")
                if len(preds[target]) != 1 \
                        or references.get(target, 0) != 1:
                    break
                block.instructions.pop()
                block.instructions.extend(by_name[target].instructions)
                merged_away.add(target)
                changed = True
                # The merged tail may itself end in a mergeable jump:
                # keep following the chain.
        if not merged_away:
            return changed
        fn.blocks = [b for b in fn.blocks if b.name not in merged_away]


def relayout(fn: Function) -> None:
    """Greedy fall-through layout; drops jumps to the next block.

    Chains blocks along their unconditional jump targets so hot paths
    become fall-throughs, then removes jumps made redundant by layout.
    """
    make_jumps_explicit(fn)
    remaining = {b.name: b for b in fn.blocks}
    order: list[BasicBlock] = []
    chain_start = fn.entry.name
    while remaining:
        if chain_start not in remaining:
            chain_start = next(iter(remaining))
        name = chain_start
        while name in remaining:
            block = remaining.pop(name)
            order.append(block)
            last = block.instructions[-1] if block.instructions else None
            if last is not None and last.op is Opcode.JUMP \
                    and last.pred is None:
                name = last.target
            else:
                break
        chain_start = ""
    fn.blocks = order
    # Remove jump-to-next instructions.
    for i, block in enumerate(fn.blocks[:-1]):
        last = block.instructions[-1] if block.instructions else None
        if last is not None and last.op is Opcode.JUMP \
                and last.pred is None \
                and last.target == fn.blocks[i + 1].name:
            block.instructions.pop()


def normalize_basic_blocks(fn: Function,
                           protect: frozenset[str] | set[str] = frozenset()
                           ) -> None:
    """Split blocks so control instructions appear only at block ends.

    After aggressive merging, blocks may contain interior conditional
    branches (extended blocks).  Region formation needs canonical basic
    blocks: at most one conditional branch, followed only by an optional
    terminator.  Splits reuse deterministic derived labels.  Blocks named
    in ``protect`` (formed hyperblocks/superblocks) are kept whole.
    """
    make_jumps_explicit(fn)
    taken_names = {b.name for b in fn.blocks}

    def fresh_name(base: str, counter: int) -> tuple[str, int]:
        while True:
            counter += 1
            candidate = f"{base}.n{counter}"
            if candidate not in taken_names:
                taken_names.add(candidate)
                return candidate, counter

    result: list[BasicBlock] = []
    for block in fn.blocks:
        has_predication = any(
            inst.pred is not None or inst.pdests
            or inst.cat is OpCategory.PREDSET
            for inst in block.instructions)
        if block.name in protect or has_predication:
            # Formed hyperblocks stay whole: their interior exits are
            # part of the region, not block boundaries.
            result.append(block)
            continue
        current = BasicBlock(block.name)
        result.append(current)
        split_count = 0
        insts = block.instructions
        for i, inst in enumerate(insts):
            current.append(inst)
            is_last = i == len(insts) - 1
            if inst.is_control and not is_last:
                # Calls always return to the next instruction; they do
                # not end a basic block.
                if inst.cat is OpCategory.CALL:
                    continue
                nxt = insts[i + 1]
                # A conditional branch may be followed by its terminator
                # jump in the same block.
                if inst.cat is OpCategory.BRANCH and inst.pred is None \
                        and nxt.is_terminator and i + 1 == len(insts) - 1:
                    continue
                name, split_count = fresh_name(block.name, split_count)
                current = BasicBlock(name)
                result.append(current)
    fn.blocks = result
    make_jumps_explicit(fn)


def cleanup_cfg(fn: Function) -> bool:
    """Full cleanup: canonicalize, thread, prune, merge, re-layout."""
    make_jumps_explicit(fn)
    changed = thread_trivial_jumps(fn)
    changed |= remove_unreachable(fn)
    changed |= merge_straightline(fn)
    relayout(fn)
    return changed
