"""Classic scalar optimizations and CFG cleanup."""

from repro.opt.cfg_cleanup import (cleanup_cfg, make_jumps_explicit,
                                   merge_straightline, normalize_basic_blocks, relayout,
                                   remove_unreachable, thread_trivial_jumps)
from repro.opt.copyprop import propagate_copies
from repro.opt.cse import eliminate_common_subexpressions
from repro.opt.dce import eliminate_dead_code
from repro.opt.fold import fold_constants
from repro.opt.pipeline import (CLASSIC_PASSES, optimize_program,
                                run_function_passes)

__all__ = [
    "CLASSIC_PASSES", "cleanup_cfg", "eliminate_common_subexpressions",
    "eliminate_dead_code", "fold_constants", "make_jumps_explicit",
    "merge_straightline", "normalize_basic_blocks", "optimize_program", "propagate_copies",
    "relayout", "remove_unreachable", "run_function_passes",
    "thread_trivial_jumps",
]
