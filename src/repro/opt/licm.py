"""Simple loop-invariant code motion.

Hoists invariant pure computations (and loads from globals that no
instruction in the loop may store to) out of natural loops into a
preheader.  Conservative but effective for the benchmark kernels, where
loop bounds and table bases live in global scalars: without hoisting,
every model pays a reload on the loop's critical path, flattening the
differences the paper measures.

Hoisting rules for instruction ``I`` in block ``B`` of loop ``L``:

* ``B`` dominates every block of ``L`` that can reach a backedge
  (approximated here as: ``B`` is the loop header — the header dominates
  the whole loop, so the hoisted instruction executes at least as often
  as before only via the preheader, which is safe for pure code);
* ``I`` is pure; a may-except ``I`` is hoisted in silent form;
* every register source of ``I`` is defined outside the loop;
* ``I``'s destination has exactly one definition inside the loop and is
  not live into the header from outside the loop's backedges (ensured
  by single-definition + dominance of uses);
* loads additionally require that no store or call in the loop can
  write the loaded global.
"""

from __future__ import annotations

from repro.analysis.cfg import predecessors_map
from repro.analysis.loops import find_loops
from repro.ir.function import BasicBlock, Function
from repro.ir.instruction import Instruction
from repro.ir.opcodes import MAY_EXCEPT, OpCategory, Opcode
from repro.ir.operands import GlobalAddr, Imm, VReg


def _loop_mem_facts(fn: Function, body: set[str]):
    """(set of global names stored to, True if any opaque store/call)."""
    stored: set[str] = set()
    opaque = False
    for name in body:
        for inst in fn.block(name).instructions:
            if inst.cat is OpCategory.STORE:
                base = inst.srcs[0]
                if isinstance(base, GlobalAddr):
                    stored.add(base.name)
                else:
                    opaque = True
            elif inst.cat is OpCategory.CALL:
                opaque = True
    return stored, opaque


def _defs_in_loop(fn: Function, body: set[str]) -> dict[VReg, int]:
    counts: dict[VReg, int] = {}
    for name in body:
        for inst in fn.block(name).instructions:
            for d in inst.defined_regs():
                if isinstance(d, VReg):
                    counts[d] = counts.get(d, 0) + 1
    return counts


def hoist_loop_invariants(fn: Function) -> int:
    """Hoist invariant header instructions to preheaders; returns count."""
    hoisted_total = 0
    for loop in find_loops(fn):
        body = loop.body
        present = {b.name for b in fn.blocks}
        if not body <= present:
            continue
        header = fn.block(loop.header)
        stored, opaque = _loop_mem_facts(fn, body)
        def_counts = _defs_in_loop(fn, body)

        hoistable: list[Instruction] = []
        for inst in header.instructions:
            if inst.is_control:
                break  # only the straight-line prefix of the header
            if not inst.is_pure or inst.pred is not None:
                break
            if inst.dest is None or def_counts.get(inst.dest, 0) != 1:
                break
            invariant_srcs = all(
                isinstance(s, (Imm, GlobalAddr))
                or (isinstance(s, VReg) and s not in def_counts)
                for s in inst.srcs)
            if not invariant_srcs:
                break
            if inst.cat is OpCategory.LOAD:
                base = inst.srcs[0]
                if opaque or not isinstance(base, GlobalAddr) \
                        or base.name in stored:
                    break
            hoistable.append(inst)
        if not hoistable:
            continue

        # Build / find the preheader and retarget outside predecessors.
        pre_name = f"{loop.header}.pre"
        counter = 0
        while any(b.name == pre_name for b in fn.blocks):
            counter += 1
            pre_name = f"{loop.header}.pre{counter}"
        preds = predecessors_map(fn)
        outside = [p for p in preds[loop.header] if p not in body]
        if not outside:
            continue
        pre = BasicBlock(pre_name)
        for inst in hoistable:
            moved = inst.copy()
            if moved.op in MAY_EXCEPT:
                moved = moved.copy(speculative=True)
            pre.append(moved)
        pre.append(Instruction(Opcode.JUMP, target=loop.header))
        header.instructions = header.instructions[len(hoistable):]
        # Insert the preheader right before the header in layout and
        # retarget explicit edges; outside fall-through predecessors now
        # fall into the preheader naturally.
        idx = fn.blocks.index(header)
        fn.blocks.insert(idx, pre)
        for pname in outside:
            pblock = fn.block(pname)
            for inst in pblock.instructions:
                if inst.target == loop.header \
                        and inst.cat is not OpCategory.CALL:
                    inst.target = pre_name
        hoisted_total += len(hoistable)
    return hoisted_total
