"""Global dead code elimination using liveness.

Hyperblocks contain mid-block exit branches, so the backward in-block
scan revives the exit target's live-in set at every control
instruction: a value needed only on an early-exit path must stay live
at that point even if the straight-line code redefines it later.
"""

from __future__ import annotations

from repro.analysis.liveness import liveness
from repro.ir.function import Function
from repro.ir.instruction import Instruction
from repro.ir.opcodes import OpCategory


def eliminate_dead_code(fn: Function) -> bool:
    """Remove pure instructions whose results are never used."""
    changed = False
    while True:
        live = liveness(fn)
        round_changed = False
        for block in fn.blocks:
            live_now = set(live.live_out[block.name])
            kept: list[Instruction] = []
            for inst in reversed(block.instructions):
                defs = inst.defined_regs()
                dead = (inst.is_pure and defs
                        and all(d not in live_now for d in defs))
                if dead:
                    round_changed = True
                    continue
                if not inst.is_conditional_write:
                    # Only definite writes kill.
                    for d in defs:
                        live_now.discard(d)
                live_now.update(inst.used_regs())
                if inst.is_control and inst.target is not None \
                        and inst.cat is not OpCategory.CALL:
                    # Mid-block exit: everything its target needs is
                    # live here, even if redefined later in the block.
                    live_now.update(live.live_in.get(inst.target,
                                                     frozenset()))
                kept.append(inst)
            kept.reverse()
            if len(kept) != len(block.instructions):
                block.instructions = kept
        if not round_changed:
            return changed
        changed = True
