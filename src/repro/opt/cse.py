"""Local common subexpression elimination.

Pure computations with identical opcode and operands reuse the earlier
result via a copy.  Loads participate until a store or call invalidates
memory.  The partial-predication peephole relies on this pass to remove
the redundant comparisons introduced by basic conversions (paper
Section 3.2, "Peephole Optimizations").
"""

from __future__ import annotations

from repro.ir.function import Function
from repro.ir.instruction import Instruction
from repro.ir.opcodes import COMMUTATIVE, OpCategory, Opcode
from repro.ir.operands import Operand, VReg


def _expr_key(inst: Instruction) -> tuple | None:
    """Hashable value-number key, or None if not CSE-able."""
    cat = inst.cat
    if inst.pred is not None:
        return None
    if inst.dest is not None and inst.dest in inst.srcs:
        return None  # self-referential update: result is not reusable
    if cat in (OpCategory.ALU, OpCategory.CMP, OpCategory.FALU,
               OpCategory.FCMP):
        if inst.op in (Opcode.MOV, Opcode.FMOV):
            return None
        srcs = inst.srcs
        if inst.op in COMMUTATIVE:
            srcs = tuple(sorted(srcs, key=repr))
        return (inst.op, srcs)
    if cat is OpCategory.LOAD:
        return (inst.op, inst.srcs, inst.speculative, "mem")
    return None


def eliminate_common_subexpressions(fn: Function) -> bool:
    changed = False
    for block in fn.blocks:
        available: dict[tuple, VReg] = {}
        new_insts: list[Instruction] = []
        for inst in block.instructions:
            cat = inst.cat
            if cat is OpCategory.STORE or cat is OpCategory.CALL:
                # Invalidate memory-dependent expressions.
                available = {k: v for k, v in available.items()
                             if len(k) < 3 or k[-1] != "mem"}
            key = _expr_key(inst)
            if key is not None and inst.dest is not None:
                prior = available.get(key)
                if prior is not None and prior != inst.dest:
                    mov = Opcode.FMOV if inst.dest.is_float else Opcode.MOV
                    new_insts.append(inst.copy(op=mov, srcs=(prior,)))
                    changed = True
                    # The dest now holds the same value; later uses fold
                    # via copy propagation.  Invalidate entries keyed on
                    # the overwritten register below.
                else:
                    available[key] = inst.dest
                    new_insts.append(inst)
            else:
                new_insts.append(inst)
            for d in inst.defined_regs():
                stale = [k for k, v in available.items()
                         if v == d or d in k[1]]
                for k in stale:
                    # Keep the entry if this very instruction defines it.
                    if available.get(k) == inst.dest \
                            and key == k:
                        continue
                    del available[k]
        block.instructions = new_insts
    return changed
