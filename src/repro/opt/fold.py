"""Constant folding, algebraic simplification, and branch folding."""

from __future__ import annotations

from repro.emu.memory import EmulationFault
from repro.ir.function import Function
from repro.ir.instruction import Instruction
from repro.ir.opcodes import OpCategory, Opcode
from repro.ir.operands import Imm

_U32 = 0xFFFFFFFF


def _w32(x: int) -> int:
    return ((x + 0x80000000) & _U32) - 0x80000000


def _cdiv(a: int, b: int) -> int:
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


_INT_EVAL = {
    Opcode.ADD: lambda a, b: _w32(a + b),
    Opcode.SUB: lambda a, b: _w32(a - b),
    Opcode.MUL: lambda a, b: _w32(a * b),
    Opcode.AND: lambda a, b: a & b,
    Opcode.OR: lambda a, b: a | b,
    Opcode.XOR: lambda a, b: a ^ b,
    Opcode.SHL: lambda a, b: _w32(a << (b & 31)),
    Opcode.SHR: lambda a, b: a >> (b & 31),
    Opcode.AND_NOT: lambda a, b: 1 if (a != 0 and b == 0) else 0,
    Opcode.OR_NOT: lambda a, b: 1 if (a != 0 or b == 0) else 0,
}

_FLOAT_EVAL = {
    Opcode.FADD: lambda a, b: a + b,
    Opcode.FSUB: lambda a, b: a - b,
    Opcode.FMUL: lambda a, b: a * b,
}

_CMP_EVAL = {
    "eq": lambda a, b: a == b, "ne": lambda a, b: a != b,
    "lt": lambda a, b: a < b, "le": lambda a, b: a <= b,
    "gt": lambda a, b: a > b, "ge": lambda a, b: a >= b,
}


def _fold_instruction(inst: Instruction) -> Instruction | None:
    """Return a simplified replacement for ``inst``, or None."""
    op = inst.op
    srcs = inst.srcs
    cat = inst.cat
    all_imm = all(isinstance(s, Imm) for s in srcs)

    if cat is OpCategory.ALU and all_imm and srcs:
        a = srcs[0].value
        if op is Opcode.MOV:
            return None
        if op is Opcode.NEG:
            return inst.copy(op=Opcode.MOV, srcs=(Imm(_w32(-a)),))
        if op is Opcode.NOT:
            return inst.copy(op=Opcode.MOV, srcs=(Imm(_w32(~a)),))
        if len(srcs) == 2:
            b = srcs[1].value
            if op in (Opcode.DIV, Opcode.REM):
                if b == 0:
                    return None
                value = _cdiv(a, b) if op is Opcode.DIV \
                    else a - _cdiv(a, b) * b
                return inst.copy(op=Opcode.MOV, srcs=(Imm(_w32(value)),))
            fn = _INT_EVAL.get(op)
            if fn is not None:
                return inst.copy(op=Opcode.MOV, srcs=(Imm(fn(a, b)),))

    if cat is OpCategory.CMP and all_imm:
        value = 1 if _CMP_EVAL[inst.condition](srcs[0].value,
                                               srcs[1].value) else 0
        return inst.copy(op=Opcode.MOV, srcs=(Imm(value),))

    if cat is OpCategory.FALU and all_imm and srcs:
        a = srcs[0].value
        if op is Opcode.FNEG:
            return inst.copy(op=Opcode.FMOV, srcs=(Imm(-float(a)),))
        if op is Opcode.CVT_IF:
            return inst.copy(op=Opcode.FMOV, srcs=(Imm(float(a)),))
        if op is Opcode.CVT_FI:
            return inst.copy(op=Opcode.MOV, srcs=(Imm(_w32(int(a))),))
        if len(srcs) == 2:
            fn = _FLOAT_EVAL.get(op)
            if fn is not None:
                value = fn(float(a), float(srcs[1].value))
                return inst.copy(op=Opcode.FMOV, srcs=(Imm(value),))

    # Algebraic identities (second operand immediate).
    if cat is OpCategory.ALU and len(srcs) == 2 \
            and isinstance(srcs[1], Imm):
        b = srcs[1].value
        if b == 0 and op in (Opcode.ADD, Opcode.SUB, Opcode.OR,
                             Opcode.XOR, Opcode.SHL, Opcode.SHR):
            return inst.copy(op=Opcode.MOV, srcs=(srcs[0],))
        if b == 1 and op in (Opcode.MUL, Opcode.DIV):
            return inst.copy(op=Opcode.MOV, srcs=(srcs[0],))
        if b == 0 and op in (Opcode.MUL, Opcode.AND):
            return inst.copy(op=Opcode.MOV, srcs=(Imm(0),))
    if cat is OpCategory.ALU and len(srcs) == 2 \
            and isinstance(srcs[0], Imm):
        a = srcs[0].value
        if a == 0 and op in (Opcode.ADD, Opcode.OR, Opcode.XOR):
            return inst.copy(op=Opcode.MOV, srcs=(srcs[1],))
        if a == 0 and op in (Opcode.MUL, Opcode.AND):
            return inst.copy(op=Opcode.MOV, srcs=(Imm(0),))
    return None


def fold_constants(fn: Function) -> bool:
    """Fold constant expressions in place; returns True if changed."""
    changed = False
    for block in fn.blocks:
        new_insts: list[Instruction] = []
        for inst in block.instructions:
            # Fold constant conditional branches to jumps / fallthroughs.
            if inst.cat is OpCategory.BRANCH \
                    and all(isinstance(s, Imm) for s in inst.srcs) \
                    and inst.pred is None:
                taken = _CMP_EVAL[inst.condition](inst.srcs[0].value,
                                                  inst.srcs[1].value)
                changed = True
                if taken:
                    new_insts.append(inst.copy(op=Opcode.JUMP, srcs=()))
                    # The rest of the block is unreachable behind the
                    # now-unconditional jump.
                    break
                continue
            folded = _fold_instruction(inst)
            if folded is not None:
                new_insts.append(folded)
                changed = True
            else:
                new_insts.append(inst)
        block.instructions = new_insts
    return changed
