"""Local copy and constant propagation within basic blocks."""

from __future__ import annotations

from repro.ir.function import Function
from repro.ir.instruction import Instruction
from repro.ir.opcodes import Opcode
from repro.ir.operands import Imm, Operand, VReg


def _kill(copies: dict[VReg, Operand], reg: VReg) -> None:
    copies.pop(reg, None)
    for dest in [d for d, src in copies.items() if src == reg]:
        del copies[dest]


def propagate_copies(fn: Function) -> bool:
    """Replace uses of registers with their known copy source or constant.

    Only unguarded ``mov``/``mov_f`` create copy facts; guarded writes
    kill facts without creating new ones.
    """
    changed = False
    for block in fn.blocks:
        copies: dict[VReg, Operand] = {}
        for inst in block.instructions:
            # Rewrite sources through the copy map.
            if copies:
                new_srcs = []
                for s in inst.srcs:
                    replaced = copies.get(s, s) if isinstance(s, VReg) else s
                    new_srcs.append(replaced)
                    if replaced is not s:
                        changed = True
                inst.srcs = tuple(new_srcs)
            if inst.op is Opcode.JSR:
                # Calls may clobber memory but not registers; keep facts.
                pass
            for d in inst.defined_regs():
                if isinstance(d, VReg):
                    _kill(copies, d)
            if inst.op in (Opcode.MOV, Opcode.FMOV) and inst.pred is None \
                    and inst.dest is not None:
                src = inst.srcs[0]
                if isinstance(src, (VReg, Imm)) and src != inst.dest:
                    copies[inst.dest] = src
    return changed
