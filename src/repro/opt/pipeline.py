"""Pass manager and the standard classic-optimization pipeline."""

from __future__ import annotations

from collections.abc import Callable

from repro.ir.function import Function, Program
from repro.opt.cfg_cleanup import cleanup_cfg
from repro.opt.copyprop import propagate_copies
from repro.opt.cse import eliminate_common_subexpressions
from repro.opt.dce import eliminate_dead_code
from repro.opt.fold import fold_constants

FunctionPass = Callable[[Function], bool]

#: The classic scalar pipeline run before region formation on all three
#: processor models, and re-run as the post-conversion peephole cleanup
#: for partial predication.
CLASSIC_PASSES: list[tuple[str, FunctionPass]] = [
    ("fold", fold_constants),
    ("copyprop", propagate_copies),
    ("cse", eliminate_common_subexpressions),
    ("copyprop2", propagate_copies),
    ("dce", eliminate_dead_code),
    ("cfg", cleanup_cfg),
]


def run_function_passes(fn: Function,
                        passes: list[tuple[str, FunctionPass]] | None = None,
                        max_rounds: int = 4) -> bool:
    """Run passes to a fixpoint (bounded); returns True if anything
    changed."""
    if passes is None:
        passes = CLASSIC_PASSES
    any_change = False
    for _ in range(max_rounds):
        round_change = False
        for _name, p in passes:
            if p(fn):
                round_change = True
        if not round_change:
            break
        any_change = True
    return any_change


def optimize_program(program: Program, max_rounds: int = 4) -> None:
    """Run the classic pipeline over every function."""
    for fn in program.functions.values():
        run_function_passes(fn, max_rounds=max_rounds)
