"""Dynamic trace integrity checking.

The cycle simulator trusts the emulator's trace blindly: every cycle
count in the paper's figures is derived from it.  These checks make that
trust earned — a trace must be a *possible* execution of the program it
claims to come from:

* event count bookkeeping matches (``dynamic_count``, ``suppressed_count``);
* only guarded, non-predicate-define instructions are ever nullified;
* memory addresses/values appear exactly on executed memory events;
* the event sequence follows program order: fall-throughs, recorded
  branch directions, call/return nesting and jump targets all replay to
  the next event actually in the trace.

All violations raise :class:`~repro.robustness.errors.TraceIntegrityError`.
"""

from __future__ import annotations

from repro.emu.trace import ExecutionResult, TraceEvent
from repro.ir.function import Program
from repro.ir.opcodes import OpCategory
from repro.robustness.errors import TraceIntegrityError

_CONTROL = (OpCategory.BRANCH, OpCategory.JUMP, OpCategory.CALL,
            OpCategory.RET)


def check_trace_integrity(execution: ExecutionResult,
                          program: Program) -> None:
    """Validate ``execution``'s trace against ``program``.

    Raises :class:`TraceIntegrityError` on the first violation; returns
    None on a clean trace.
    """
    trace = execution.trace
    if trace is None:
        raise TraceIntegrityError(
            "execution result carries no trace (collect_trace was off or "
            "the trace was discarded)")
    if not isinstance(trace, list):
        # Columnar fastpath trace: replay through the legacy event view
        # so the integrity rules stay single-sourced.
        trace = trace.to_events(program)
    if len(trace) != execution.dynamic_count:
        raise TraceIntegrityError(
            f"trace has {len(trace)} events but dynamic_count is "
            f"{execution.dynamic_count}")
    nullified = sum(1 for e in trace if not e.executed)
    if nullified != execution.suppressed_count:
        raise TraceIntegrityError(
            f"trace has {nullified} nullified events but "
            f"suppressed_count is {execution.suppressed_count}")
    _check_event_shapes(trace)
    _check_control_flow(trace, program)


def _check_event_shapes(trace: list[TraceEvent]) -> None:
    """Per-event invariants: guards, taken flags, addresses, values."""
    for idx, ev in enumerate(trace):
        inst = ev.inst
        cat = inst.cat
        if not ev.executed:
            if inst.pred is None:
                raise TraceIntegrityError(
                    f"event {idx}: {inst!r} was nullified but carries no "
                    f"guard predicate")
            if cat is OpCategory.PREDDEF:
                raise TraceIntegrityError(
                    f"event {idx}: predicate define {inst!r} was "
                    f"nullified; defines always execute (Table 1)")
            if ev.taken:
                raise TraceIntegrityError(
                    f"event {idx}: nullified {inst!r} marked taken")
            if ev.addr != -1 or ev.value is not None:
                raise TraceIntegrityError(
                    f"event {idx}: nullified {inst!r} carries memory "
                    f"effects (addr={ev.addr}, value={ev.value!r})")
            continue
        if ev.taken and cat not in _CONTROL:
            raise TraceIntegrityError(
                f"event {idx}: non-control {inst!r} marked taken")
        if cat is OpCategory.STORE:
            if ev.addr < 0:
                raise TraceIntegrityError(
                    f"event {idx}: executed store {inst!r} has no "
                    f"effective address")
            if ev.value is None:
                raise TraceIntegrityError(
                    f"event {idx}: executed store {inst!r} recorded no "
                    f"value")
        elif cat is not OpCategory.LOAD:
            # Speculative loads may record out-of-range addresses; every
            # other executed category must record none at all.
            if ev.addr != -1:
                raise TraceIntegrityError(
                    f"event {idx}: non-memory {inst!r} carries address "
                    f"{ev.addr}")
            if ev.value is not None:
                raise TraceIntegrityError(
                    f"event {idx}: non-store {inst!r} carries value "
                    f"{ev.value!r}")


def _check_control_flow(trace: list[TraceEvent],
                        program: Program) -> None:
    """Replay program order and confirm the trace never deviates."""
    funcs = {
        name: ([list(b.instructions) for b in fn.blocks],
               {b.name: i for i, b in enumerate(fn.blocks)})
        for name, fn in program.functions.items()
    }
    if program.entry not in funcs:
        raise TraceIntegrityError(
            f"program has no entry function {program.entry!r}")
    stack: list[tuple[str, int, int]] = []
    cur_fn, bi, ii = program.entry, 0, 0
    done = False
    for idx, ev in enumerate(trace):
        if done:
            raise TraceIntegrityError(
                f"event {idx}: {ev.inst!r} follows the program's final "
                f"return")
        blocks, labels = funcs[cur_fn]
        while ii >= len(blocks[bi]):
            bi += 1
            ii = 0
            if bi >= len(blocks):
                raise TraceIntegrityError(
                    f"event {idx}: control fell off the end of {cur_fn}")
        expected = blocks[bi][ii]
        inst = ev.inst
        if inst.uid != expected.uid or inst.op is not expected.op:
            raise TraceIntegrityError(
                f"event {idx}: trace shows {inst!r} but program order in "
                f"{cur_fn} expects {expected!r}")
        cat = inst.cat
        if not ev.executed:
            ii += 1
        elif cat is OpCategory.BRANCH and ev.taken:
            target = labels.get(inst.target)
            if target is None:
                raise TraceIntegrityError(
                    f"event {idx}: taken branch {inst!r} targets unknown "
                    f"block {inst.target!r} in {cur_fn}")
            bi, ii = target, 0
        elif cat is OpCategory.JUMP:
            target = labels.get(inst.target)
            if target is None:
                raise TraceIntegrityError(
                    f"event {idx}: jump {inst!r} targets unknown block "
                    f"{inst.target!r} in {cur_fn}")
            bi, ii = target, 0
        elif cat is OpCategory.CALL:
            if inst.target not in funcs:
                raise TraceIntegrityError(
                    f"event {idx}: call {inst!r} targets unknown "
                    f"function {inst.target!r}")
            stack.append((cur_fn, bi, ii + 1))
            cur_fn, bi, ii = inst.target, 0, 0
        elif cat is OpCategory.RET:
            if stack:
                cur_fn, bi, ii = stack.pop()
            else:
                done = True
        else:
            ii += 1
