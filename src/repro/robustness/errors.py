"""Typed error taxonomy for the hardened experiment pipeline.

Every failure mode of the verify/emulate/simulate loop maps to one
exception class so callers (the CLI, the experiment suite's ``degrade``
mode, CI) can react structurally instead of pattern-matching message
strings or — worse — catching bare ``Exception``.  Each class carries a
distinct ``exit_code`` that ``python -m repro`` propagates to the shell.
"""

from __future__ import annotations

from repro.emu.memory import EmulationFault


class ReproError(Exception):
    """Base of the reproduction pipeline's failure taxonomy."""

    exit_code = 10


class CompileError(ReproError):
    """A compilation stage crashed or produced no usable program."""

    exit_code = 11

    def __init__(self, message: str, *, pass_name: str | None = None,
                 function: str | None = None):
        super().__init__(message)
        self.pass_name = pass_name
        self.function = function


class SpecError(ReproError):
    """A user-supplied specification is invalid.

    Covers malformed sweep specs (unknown axes, empty grids, bad
    ranges) and machine descriptions with unknown latency-table keys —
    rejected *before* any digest is computed, so a typo can never be
    silently hashed into a never-matching cache key.  Shares exit code
    11 with :class:`CompileError`: both mean "your input, not the
    pipeline, is broken".
    """

    exit_code = 11

    def __init__(self, message: str, *, field: str | None = None):
        super().__init__(message)
        self.field = field


class PassVerificationError(CompileError):
    """A compiler pass left the IR structurally invalid.

    Raised by the pass gate (``robustness.passgate``) when the verifier
    rejects a function right after a pass ran; ``artifact_path`` points
    at the dumped IR snapshot for post-mortem debugging.
    """

    exit_code = 12

    def __init__(self, message: str, *, pass_name: str | None = None,
                 function: str | None = None,
                 artifact_path: str | None = None):
        super().__init__(message, pass_name=pass_name, function=function)
        self.artifact_path = artifact_path


class EmulationTimeout(ReproError, EmulationFault):
    """The emulation watchdog's wall-clock budget expired.

    Also an :class:`EmulationFault` so existing fault handlers around
    ``run_program`` keep working.
    """

    exit_code = 13

    def __init__(self, message: str, *, steps: int = 0,
                 elapsed: float = 0.0, budget: float = 0.0):
        super().__init__(message)
        self.steps = steps
        self.elapsed = elapsed
        self.budget = budget


class TraceIntegrityError(ReproError):
    """A dynamic trace violates an invariant of emulation.

    Covers missing traces, event/step count mismatches, nullified
    instructions without a guard, and control transfers inconsistent
    with the recorded branch directions.
    """

    exit_code = 14


class ArtifactLockTimeout(ReproError):
    """The store's advisory write lock could not be acquired in time.

    Transient by classification (:mod:`repro.engine.recovery.retry`):
    the holder is usually another live writer about to finish, and a
    crashed holder's lease expires on its own.
    """

    exit_code = 17

    def __init__(self, message: str, *, lock_path: str | None = None,
                 waited: float = 0.0):
        super().__init__(message)
        self.lock_path = lock_path
        self.waited = waited


class ModelDivergenceError(ReproError):
    """Two processor models disagreed on observable program behavior.

    ``kind`` names the observable: ``return-value``, ``output-stream``
    (the dynamic store stream) or ``memory-state`` (final global data).
    """

    exit_code = 15

    def __init__(self, message: str, *, workload: str | None = None,
                 model: str | None = None, kind: str | None = None):
        super().__init__(message)
        self.workload = workload
        self.model = model
        self.kind = kind
        #: for store-stream divergences, the first divergent store
        #: ("store#3 @0x1a0 7 vs 9"), attached by the fuzz executor
        self.first_event: str | None = None


class FuzzFindingsError(ReproError):
    """A fuzzing campaign or corpus replay ended with open findings.

    Raised by ``repro fuzz run`` / ``repro fuzz replay`` after triage:
    ``count`` raw findings collapsed to ``unique`` signatures, each with
    a reproducer saved under ``corpus/``.
    """

    exit_code = 18

    def __init__(self, message: str, *, count: int = 0, unique: int = 0):
        super().__init__(message)
        self.count = count
        self.unique = unique


class ServiceOverloadedError(ReproError):
    """The experiment service shed this submission under load.

    The admission queue was full (or the server is draining), so the
    request was rejected *before* consuming memory or compute —
    explicit load-shedding instead of unbounded queue growth.
    ``retry_after`` (seconds) is the server's hint for when capacity
    should free up; transient by classification.
    """

    exit_code = 19

    def __init__(self, message: str, *, retry_after: float = 1.0,
                 queue_depth: int | None = None):
        super().__init__(message)
        self.retry_after = retry_after
        self.queue_depth = queue_depth


class QuotaExceededError(ReproError):
    """A tenant exhausted its token-bucket rate or concurrency quota.

    ``retry_after`` is the time until the bucket refills one token (0
    when the *concurrency* limit, not the rate, was hit — retry when
    one of the tenant's jobs finishes).  Transient by classification.
    """

    exit_code = 20

    def __init__(self, message: str, *, tenant: str | None = None,
                 retry_after: float = 0.0, kind: str = "rate"):
        super().__init__(message)
        self.tenant = tenant
        self.retry_after = retry_after
        self.kind = kind


class NativeEngineError(ReproError):
    """Base of the native (C) kernel engine's failure taxonomy.

    Everything the native-engine supervisor can report — build
    failures, missing toolchains, parity mismatches, kernel crashes —
    derives from this class, so callers that only care about "the
    native rung is gone" can catch one type while the CLI still maps
    each subclass to a distinct exit code.
    """

    def __init__(self, message: str, *, so_path: str | None = None):
        super().__init__(message)
        self.so_path = so_path


class NativeBuildError(NativeEngineError):
    """The C compiler ran but failed to produce a loadable kernel.

    Permanent: the same source fed to the same compiler fails the same
    way on every retry.  ``cc`` names the compiler, ``stderr`` carries
    its (truncated) diagnostics for the demotion event.
    """

    exit_code = 22

    def __init__(self, message: str, *, cc: str | None = None,
                 stderr: str = "", so_path: str | None = None):
        super().__init__(message, so_path=so_path)
        self.cc = cc
        self.stderr = stderr


class NativeToolchainMissing(NativeEngineError):
    """No usable C compiler was found on this host.

    Transient by classification: the toolchain can reappear (PATH
    fixed, container layer mounted) and a retry lands harmlessly on
    the demoted pure-Python engines either way.  ``searched`` lists
    the compiler names that were tried.
    """

    exit_code = 23

    def __init__(self, message: str,
                 *, searched: tuple[str, ...] = ()):
        super().__init__(message)
        self.searched = searched


class NativeParityError(NativeEngineError):
    """A native kernel's golden-trace observables diverged from the
    interpreter's.

    Permanent: rebuilding the same source with the same compiler
    reproduces the same object, so the supervisor quarantines the
    ``.so`` and demotes the process instead of retrying.  ``expected``
    and ``actual`` are the golden observable digests.
    """

    exit_code = 24

    def __init__(self, message: str, *, so_path: str | None = None,
                 expected: str | None = None, actual: str | None = None):
        super().__init__(message, so_path=so_path)
        self.expected = expected
        self.actual = actual


class NativeKernelCrash(NativeEngineError):
    """A native kernel died hard (SIGSEGV/SIGBUS) or faulted mid-run.

    Raised by the sacrificial-subprocess canary when the child exits
    on a signal, and by the in-process fault hooks when a kernel scan
    is aborted mid-chunk.  Transient by classification: the supervisor
    demotes the process first, so the retry runs on a pure-Python
    engine and succeeds byte-identically.  ``signal`` is the POSIX
    signal number when one is known, ``stage`` names the kernel
    (``emu`` / ``sim-scan`` / ``canary``).
    """

    exit_code = 25

    def __init__(self, message: str, *, so_path: str | None = None,
                 signal: int | None = None, stage: str | None = None):
        super().__init__(message, so_path=so_path)
        self.signal = signal
        self.stage = stage


class DeadlineExceededError(ReproError):
    """A job's wall-clock deadline expired before it completed.

    Raised either before execution starts (the job aged out in the
    admission queue) or from the emulation watchdog the remaining
    budget was propagated into.  Permanent: retrying the same deadline
    would expire again.
    """

    exit_code = 21

    def __init__(self, message: str, *, deadline: float = 0.0,
                 elapsed: float = 0.0):
        super().__init__(message)
        self.deadline = deadline
        self.elapsed = elapsed


class WorkerLostError(ReproError):
    """A campaign worker stopped heartbeating and its shard lease was
    broken.

    Raised (and journaled) by the cluster coordinator when it reassigns
    an orphaned shard.  Transient by classification: the shard is
    deterministic ``(campaign_digest, shard_index)`` work, so any other
    worker — or the coordinator itself — re-executes it to the same
    bytes.
    """

    exit_code = 26

    def __init__(self, message: str, *, worker_id: str | None = None,
                 shard: int | None = None, epoch: int | None = None):
        super().__init__(message)
        self.worker_id = worker_id
        self.shard = shard
        self.epoch = epoch


class LeaseFencedError(ReproError):
    """A worker's shard lease was superseded by a higher fencing epoch.

    Raised when a paused-then-resumed (zombie) worker tries to
    heartbeat or commit a shard whose lease was already broken and
    re-issued.  Permanent *for the fenced worker*: its view of the
    shard is stale by definition, so it must abandon the shard (and the
    typed CLI exit makes a fenced ``repro worker`` process stop rather
    than fight the successor).  The campaign itself is unharmed — the
    successor's lease carries a strictly greater epoch and its commit
    wins.
    """

    exit_code = 27

    def __init__(self, message: str, *, shard: int | None = None,
                 epoch: int | None = None,
                 holder_epoch: int | None = None):
        super().__init__(message)
        self.shard = shard
        self.epoch = epoch
        self.holder_epoch = holder_epoch


# ----- classification -------------------------------------------------------

def _classified_bases() -> tuple[type[BaseException], ...]:
    """Exception bases the pipeline recognizes as already classified.

    Imported lazily: the language frontend does not depend on the
    robustness package, and keeping it that way at module-import time
    avoids any chance of a cycle.
    """
    from concurrent.futures.process import BrokenProcessPool
    from repro.ir.function import IRError
    from repro.lang.lexer import LexError
    from repro.lang.parser import ParseError
    from repro.lang.sema import SemaError
    return (ReproError, EmulationFault, IRError, LexError, ParseError,
            SemaError, BrokenProcessPool, OSError, TimeoutError,
            ConnectionError, KeyboardInterrupt, SystemExit)


def classify_exception(exc: BaseException) -> BaseException:
    """Normalize ``exc`` into the typed taxonomy.

    Exceptions the pipeline already maps to exit codes (the taxonomy,
    emulation faults, frontend errors, OS-level transients) pass
    through unchanged; anything else — a stray ``KeyError`` deep in a
    pass, an ``AssertionError`` in a worker — is wrapped in a generic
    :class:`ReproError` that names the original type, so downstream
    consumers (the scheduler's failure records, the experiment
    service's error mapping) never see an unclassified exception.
    """
    if isinstance(exc, _classified_bases()):
        return exc
    wrapped = ReproError(
        f"unclassified {type(exc).__name__}: {exc}")
    wrapped.__cause__ = exc
    return wrapped
