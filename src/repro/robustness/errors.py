"""Typed error taxonomy for the hardened experiment pipeline.

Every failure mode of the verify/emulate/simulate loop maps to one
exception class so callers (the CLI, the experiment suite's ``degrade``
mode, CI) can react structurally instead of pattern-matching message
strings or — worse — catching bare ``Exception``.  Each class carries a
distinct ``exit_code`` that ``python -m repro`` propagates to the shell.
"""

from __future__ import annotations

from repro.emu.memory import EmulationFault


class ReproError(Exception):
    """Base of the reproduction pipeline's failure taxonomy."""

    exit_code = 10


class CompileError(ReproError):
    """A compilation stage crashed or produced no usable program."""

    exit_code = 11

    def __init__(self, message: str, *, pass_name: str | None = None,
                 function: str | None = None):
        super().__init__(message)
        self.pass_name = pass_name
        self.function = function


class PassVerificationError(CompileError):
    """A compiler pass left the IR structurally invalid.

    Raised by the pass gate (``robustness.passgate``) when the verifier
    rejects a function right after a pass ran; ``artifact_path`` points
    at the dumped IR snapshot for post-mortem debugging.
    """

    exit_code = 12

    def __init__(self, message: str, *, pass_name: str | None = None,
                 function: str | None = None,
                 artifact_path: str | None = None):
        super().__init__(message, pass_name=pass_name, function=function)
        self.artifact_path = artifact_path


class EmulationTimeout(ReproError, EmulationFault):
    """The emulation watchdog's wall-clock budget expired.

    Also an :class:`EmulationFault` so existing fault handlers around
    ``run_program`` keep working.
    """

    exit_code = 13

    def __init__(self, message: str, *, steps: int = 0,
                 elapsed: float = 0.0, budget: float = 0.0):
        super().__init__(message)
        self.steps = steps
        self.elapsed = elapsed
        self.budget = budget


class TraceIntegrityError(ReproError):
    """A dynamic trace violates an invariant of emulation.

    Covers missing traces, event/step count mismatches, nullified
    instructions without a guard, and control transfers inconsistent
    with the recorded branch directions.
    """

    exit_code = 14


class ArtifactLockTimeout(ReproError):
    """The store's advisory write lock could not be acquired in time.

    Transient by classification (:mod:`repro.engine.recovery.retry`):
    the holder is usually another live writer about to finish, and a
    crashed holder's lease expires on its own.
    """

    exit_code = 17

    def __init__(self, message: str, *, lock_path: str | None = None,
                 waited: float = 0.0):
        super().__init__(message)
        self.lock_path = lock_path
        self.waited = waited


class ModelDivergenceError(ReproError):
    """Two processor models disagreed on observable program behavior.

    ``kind`` names the observable: ``return-value``, ``output-stream``
    (the dynamic store stream) or ``memory-state`` (final global data).
    """

    exit_code = 15

    def __init__(self, message: str, *, workload: str | None = None,
                 model: str | None = None, kind: str | None = None):
        super().__init__(message)
        self.workload = workload
        self.model = model
        self.kind = kind
        #: for store-stream divergences, the first divergent store
        #: ("store#3 @0x1a0 7 vs 9"), attached by the fuzz executor
        self.first_event: str | None = None


class FuzzFindingsError(ReproError):
    """A fuzzing campaign or corpus replay ended with open findings.

    Raised by ``repro fuzz run`` / ``repro fuzz replay`` after triage:
    ``count`` raw findings collapsed to ``unique`` signatures, each with
    a reproducer saved under ``corpus/``.
    """

    exit_code = 18

    def __init__(self, message: str, *, count: int = 0, unique: int = 0):
        super().__init__(message)
        self.count = count
        self.unique = unique
