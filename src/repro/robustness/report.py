"""Structured per-workload failure reports for ``degrade`` suite mode.

When the experiment suite runs in ``degrade`` mode, a workload that
fails any pipeline stage is excluded from further tables and its failure
recorded as a :class:`WorkloadFailure` instead of aborting the run; the
report renderer turns the collected failures into the block appended to
experiment output.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class WorkloadFailure:
    """One workload's terminal failure inside the suite."""

    workload: str
    stage: str        # compile | emulate | simulate | differential
    error_type: str
    message: str
    model: str | None = None
    artifact_path: str | None = None


@dataclass
class SuiteReport:
    """Aggregated outcome of a (possibly degraded) suite run."""

    completed: list[str] = field(default_factory=list)
    failures: list[WorkloadFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


def format_failures(failures: list[WorkloadFailure]) -> str:
    """Human-readable failure block (empty string when clean)."""
    if not failures:
        return ""
    lines = [f"FAILED WORKLOADS ({len(failures)})",
             "=" * 30]
    for f in failures:
        where = f.stage if f.model is None else f"{f.stage}/{f.model}"
        lines.append(f"{f.workload:<10s} {where:<22s} "
                     f"[{f.error_type}] {f.message}")
        if f.artifact_path:
            lines.append(f"{'':<10s} artifact: {f.artifact_path}")
    return "\n".join(lines)
