"""Pass gates: verify-after-every-pass with artifacts and rollback.

A compiler bug that corrupts the IR mid-pipeline normally surfaces many
passes later (or worse, as silently wrong cycle counts).  The gate wraps
each transformation stage of :func:`repro.toolchain.compile_for_model`:

* in **paranoid** mode it re-runs the structural verifier after every
  stage, so the *offending pass* is named, and dumps a printed IR
  snapshot of the broken function to an artifact directory;
* with **rollback** enabled it restores the function to its pre-pass
  state instead of aborting — graceful degradation that keeps the model
  runnable (without the failing optimization) and records what was
  skipped in :attr:`PassGate.degradations`.

Crashes inside a pass are wrapped into the typed taxonomy
(:class:`~repro.robustness.errors.CompileError`) either way.
"""

from __future__ import annotations

import copy
import os
import re
import tempfile
from dataclasses import dataclass
from typing import Callable

from repro.ir.function import Function, Program
from repro.ir.printer import format_function
from repro.ir.verifier import ISALevel, VerificationError, verify_function
from repro.robustness.errors import (CompileError, PassVerificationError,
                                     ReproError)


@dataclass
class Degradation:
    """Record of a pass skipped by rollback-and-continue."""

    function: str
    pass_name: str
    error: str
    artifact_path: str | None = None


def default_artifact_dir() -> str:
    return os.path.join(tempfile.gettempdir(), "repro-artifacts")


class PassGate:
    """Runs compilation stages under verification/rollback policies."""

    def __init__(self, program: Program, *, paranoid: bool = False,
                 rollback: bool = False, artifact_dir: str | None = None,
                 model: str = ""):
        self.program = program
        self.paranoid = paranoid
        self.rollback = rollback
        self.artifact_dir = artifact_dir
        self.model = model
        self.degradations: list[Degradation] = []

    def run(self, fn: Function, pass_name: str, thunk: Callable[[], object],
            level: ISALevel = ISALevel.FULL):
        """Run one stage on ``fn``; returns the thunk's result.

        Returns None when the stage failed and was rolled back (callers
        treating the result as optional must handle that).
        """
        snapshot = copy.deepcopy(fn) if self.rollback else None
        try:
            result = thunk()
        except ReproError:
            raise
        except Exception as exc:  # noqa: BLE001 — typed re-raise below
            artifact = self._dump(fn, pass_name, exc)
            if snapshot is not None:
                self._degrade(fn, snapshot, pass_name, exc, artifact)
                return None
            raise CompileError(
                f"pass {pass_name!r} crashed on {fn.name}: {exc}",
                pass_name=pass_name, function=fn.name) from exc
        if self.paranoid:
            try:
                verify_function(fn, self.program, level)
            except VerificationError as exc:
                artifact = self._dump(fn, pass_name, exc)
                if snapshot is not None:
                    self._degrade(fn, snapshot, pass_name, exc, artifact)
                    return None
                raise PassVerificationError(
                    f"pass {pass_name!r} left {fn.name} invalid: {exc}"
                    + (f" (IR snapshot: {artifact})" if artifact else ""),
                    pass_name=pass_name, function=fn.name,
                    artifact_path=artifact) from exc
        return result

    # ----- internals ------------------------------------------------------

    def _degrade(self, fn: Function, snapshot: Function, pass_name: str,
                 exc: Exception, artifact: str | None) -> None:
        vars(fn).clear()
        vars(fn).update(vars(snapshot))
        self.degradations.append(Degradation(
            function=fn.name, pass_name=pass_name,
            error=f"{type(exc).__name__}: {exc}", artifact_path=artifact))

    def _dump(self, fn: Function, pass_name: str,
              exc: Exception) -> str | None:
        """Write the post-pass IR snapshot; never raises."""
        directory = self.artifact_dir or default_artifact_dir()
        safe = re.sub(r"[^\w.-]+", "_", f"{self.model}-{fn.name}-{pass_name}")
        try:
            os.makedirs(directory, exist_ok=True)
            path = os.path.join(directory, f"{safe}.ir.txt")
            suffix = 1
            while os.path.exists(path):
                suffix += 1
                path = os.path.join(directory, f"{safe}-{suffix}.ir.txt")
            with open(path, "w") as handle:
                handle.write(f"; model:    {self.model or '?'}\n")
                handle.write(f"; pass:     {pass_name}\n")
                handle.write(f"; function: {fn.name}\n")
                handle.write(f"; error:    {type(exc).__name__}: {exc}\n\n")
                handle.write(format_function(fn) + "\n")
            return path
        except OSError:
            return None
