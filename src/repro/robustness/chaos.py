"""Engine chaos campaign: prove the recovery machinery recovers.

Where :mod:`repro.robustness.faults` corrupts *data* to prove the
checkers fire, this module attacks the *execution engine* — killing
workers, tearing artifacts, filling the disk, SIGKILLing a whole suite
— and demands that every injection ends in one of exactly two states:

* **recover** — the run completes with correct output (retry, pool
  rebuild, quarantine + recompute, journaled resume), or
* **typed-failure** — a typed taxonomy error is reported cleanly.

Hangs, crashes of the *parent*, and silently wrong output all fail the
campaign.  Every injection is deadline-bounded.  Run it via
``python -m repro selftest --chaos``.

=======================  =============================  ===============
injection                mechanism                      expected
=======================  =============================  ===============
``worker-crash-retry``   pool worker ``os._exit`` on    recover
                         first attempt (sentinel file)
``artifact-truncate``    ``.art`` truncated to half     recover
                         (torn post-crash disk state)
``envelope-bit-flip``    one byte flipped mid-file,     recover
                         caught by ``cache fsck``
``slow-task-timeout``    emulation past its wall-clock  typed-failure
                         budget (watchdog)
``disk-full-write``      store ``write_hook`` raises    recover
                         ``ENOSPC`` once
``sigkill-resume``       suite process SIGKILLed        recover
                         mid-run, resumed from journal
``torn-journal``         partial final journal line     recover
                         (crash mid-append)
=======================  =============================  ===============

:func:`run_native_chaos_campaign` attacks the C-kernel trust chain the
same way (corrupted ``.so`` cache, vanishing compiler, sandboxed
SIGSEGV, stale cache across a simulated compiler upgrade, injected
parity mismatch, mid-run kernel fault); every injection must end in a
byte-identical degraded run or a typed taxonomy failure.
"""

from __future__ import annotations

import errno
import multiprocessing
import os
import signal
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.profile import Profile
from repro.engine.keys import stable_digest
from repro.engine.recovery.fsck import fsck_store
from repro.engine.recovery.journal import RunJournal, journal_path, \
    new_run_id, replay_journal
from repro.engine.recovery.retry import RetryPolicy, is_transient
from repro.engine.scheduler import Job, execute_jobs
from repro.engine.store import ArtifactStore
from repro.robustness.errors import EmulationTimeout
from repro.robustness.faults import CAMPAIGN_INPUTS, CAMPAIGN_SOURCE
from repro.robustness.watchdog import EmulationWatchdog
from repro.toolchain import Model, compile_for_model, frontend, \
    run_compiled

#: hard per-injection deadline — a hung recovery is a failed recovery
_DEADLINE_SECONDS = 120.0

#: workloads the SIGKILL/resume injection runs (small but multi-task)
_RESUME_WORKLOADS = ("wc", "cmp")
_RESUME_SCALE = 0.25


@dataclass
class ChaosReport:
    """Outcome of one engine-level injection."""

    injection: str
    description: str
    expected: str      # "recover" | "typed-failure"
    outcome: str       # what actually happened
    ok: bool
    message: str = ""


def _report(injection: str, description: str, expected: str,
            ok: bool, outcome: str, message: str = "") -> ChaosReport:
    return ChaosReport(injection=injection, description=description,
                       expected=expected, outcome=outcome, ok=ok,
                       message=message)


# ----- pool worker crash ----------------------------------------------------

def _crash_once(sentinel: str) -> dict:
    """Die hard on the first attempt, succeed on the retry."""
    if not os.path.exists(sentinel):
        with open(sentinel, "w") as handle:
            handle.write("crashed\n")
        os._exit(9)
    return {"survived": True}


def _steady(value: int) -> int:
    return value * 2


def _inject_worker_crash(jobs: int) -> ChaosReport:
    description = "pool worker os._exit mid-task; scheduler must " \
                  "rebuild the pool and retry"
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        sentinel = os.path.join(tmp, "crashed.sentinel")
        graph = [Job(job_id="chaos-crash", fn=_crash_once,
                     args=(sentinel,), stage="chaos"),
                 Job(job_id="chaos-steady", fn=_steady, args=(21,),
                     stage="chaos"),
                 Job(job_id="chaos-dependent", fn=_steady, args=(1,),
                     deps=("chaos-crash",), stage="chaos")]
        from repro.engine.metrics import PipelineMetrics
        metrics = PipelineMetrics()
        outcome = execute_jobs(graph, max_workers=max(2, jobs),
                               metrics=metrics)
    ok = outcome.ok \
        and outcome.results.get("chaos-crash") == {"survived": True} \
        and outcome.results.get("chaos-steady") == 42 \
        and metrics.pool_rebuilds >= 1
    return _report(
        "worker-crash-retry", description, "recover", ok,
        "recovered" if ok else "NOT recovered",
        f"{metrics.pool_rebuilds} pool rebuilds, "
        f"{len(outcome.failures)} failures, "
        f"{len(outcome.results)}/3 jobs completed")


# ----- store corruption -----------------------------------------------------

def _inject_artifact_truncate() -> ChaosReport:
    description = "artifact file truncated to half its bytes (torn " \
                  "post-crash disk state); read must quarantine and " \
                  "recompute"
    payload = {"cycles": list(range(500))}
    key = stable_digest("chaos", "truncate")
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        store = ArtifactStore(tmp)
        store.put("stats", key, payload)
        path = store._path("stats", key)
        blob = path.read_bytes()
        path.write_bytes(blob[:len(blob) // 2])
        first = store.get("stats", key)          # quarantine + miss
        store.put("stats", key, payload)         # the recompute
        second = store.get("stats", key)
        quarantined = list(Path(tmp, "quarantine").rglob("*.art*"))
        quarantined = [p for p in quarantined
                       if not p.name.endswith(".reason")]
        ok = first is None and second == payload \
            and store.metrics.quarantined_artifacts == 1 \
            and len(quarantined) == 1
    return _report(
        "artifact-truncate", description, "recover", ok,
        "recovered" if ok else "NOT recovered",
        f"read after truncation -> {'miss' if first is None else 'HIT'}"
        f", rewrite {'round-trips' if second == payload else 'FAILS'}")


def _inject_envelope_bit_flip() -> ChaosReport:
    description = "one byte flipped inside the envelope; fsck must " \
                  "detect it, --repair must quarantine it"
    payload = list(range(1000))
    key = stable_digest("chaos", "bit-flip")
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        store = ArtifactStore(tmp)
        store.put("execution", key, payload)
        store.put("stats", stable_digest("chaos", "healthy"), {"ok": 1})
        path = store._path("execution", key)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0x01
        path.write_bytes(bytes(blob))
        detect = fsck_store(store, repair=False)
        repair = fsck_store(store, repair=True)
        clean = fsck_store(store, repair=False)
        recomputed = store.get("execution", key)  # miss -> recompute
        store.put("execution", key, payload)
        ok = detect.corrupt == 1 and not detect.clean \
            and repair.corrupt == 1 \
            and clean.clean and clean.scanned == 1 \
            and recomputed is None \
            and store.get("execution", key) == payload
    return _report(
        "envelope-bit-flip", description, "recover", ok,
        "recovered" if ok else "NOT recovered",
        f"fsck detected {detect.corrupt}, post-repair scan "
        f"{'clean' if clean.clean else 'STILL CORRUPT'}")


def _inject_disk_full() -> ChaosReport:
    description = "store write_hook raises ENOSPC on the first write; " \
                  "the retry policy must classify it transient and " \
                  "the rewrite must succeed"
    payload = {"figures": [1, 2, 3]}
    key = stable_digest("chaos", "disk-full")
    state = {"armed": True, "tripped": False}

    def hook(kind: str, k: str, nbytes: int) -> None:
        if state["armed"]:
            state["armed"] = False
            state["tripped"] = True
            raise OSError(errno.ENOSPC, "No space left on device")

    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        store = ArtifactStore(tmp)
        store.write_hook = hook
        policy = RetryPolicy(max_attempts=3, backoff_base=0.01,
                             backoff_cap=0.05)
        attempt = 0
        classified = False
        while True:
            attempt += 1
            try:
                store.put("stats", key, payload)
                break
            except OSError as exc:
                classified = is_transient(exc)
                if not policy.should_retry(exc, attempt):
                    raise
                time.sleep(policy.backoff("chaos-disk-full", attempt))
        debris = [p for p in Path(tmp).rglob("*")
                  if p.is_file() and (".tmp" in p.name
                                      or p.name.endswith(".lock"))]
        ok = state["tripped"] and classified and attempt == 2 \
            and store.get("stats", key) == payload and not debris
    return _report(
        "disk-full-write", description, "recover", ok,
        "recovered" if ok else "NOT recovered",
        f"ENOSPC on attempt 1, success on attempt {attempt}, "
        f"{len(debris)} tmp/lock files left behind")


# ----- slow task ------------------------------------------------------------

def _inject_slow_task() -> ChaosReport:
    description = "emulation exceeds its wall-clock budget; the " \
                  "watchdog must raise a typed EmulationTimeout"
    base = frontend(CAMPAIGN_SOURCE)
    profile = Profile.collect(base, inputs=CAMPAIGN_INPUTS)
    from repro.machine.descriptor import scalar_machine
    compiled = compile_for_model(base, Model.SUPERBLOCK, profile,
                                 scalar_machine())
    # A tiny beat interval makes the budget bite on small kernels (the
    # default 65536-step interval never fires inside one).
    wd = EmulationWatchdog(wall_clock_budget=1e-9, interval=64)
    caught: str | None = None
    message = ""
    try:
        run_compiled(compiled, inputs=CAMPAIGN_INPUTS, watchdog=wd)
    except EmulationTimeout as exc:
        caught = type(exc).__name__
        message = str(exc)[:120]
    except Exception as exc:  # noqa: BLE001 — we classify, not handle
        caught = type(exc).__name__
        message = str(exc)[:120]
    ok = caught == "EmulationTimeout" \
        and is_transient(EmulationTimeout("probe"))
    return _report(
        "slow-task-timeout", description, "typed-failure", ok,
        f"typed {caught}" if caught else "NO ERROR RAISED", message)


# ----- SIGKILL + resume -----------------------------------------------------

def _resume_suite(cache_dir: str, run_id: str | None, resume: bool):
    from repro.experiments.runner import ExperimentSuite
    from repro.workloads import get_workload
    return ExperimentSuite(
        workloads=[get_workload(n) for n in _RESUME_WORKLOADS],
        scale=_RESUME_SCALE, cache_dir=cache_dir, run_id=run_id,
        resume=resume)


def _suite_child(cache_dir: str, run_id: str) -> None:
    """Child process body: run the figure suite to completion."""
    from repro.machine.descriptor import fig8_machine
    suite = _resume_suite(cache_dir, run_id, resume=False)
    suite.speedups(fig8_machine())
    suite.close_journal()


def _inject_sigkill_resume() -> ChaosReport:
    description = "suite process SIGKILLed mid-figure; --resume must " \
                  "complete byte-identically with zero recompute of " \
                  "journaled tasks"
    from repro.machine.descriptor import fig8_machine
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        cache_dir = os.path.join(tmp, "killed-cache")
        ref_dir = os.path.join(tmp, "reference-cache")
        run_id = new_run_id()
        child = multiprocessing.Process(
            target=_suite_child, args=(cache_dir, run_id), daemon=True)
        child.start()
        jpath = journal_path(os.path.join(cache_dir, "runs"), run_id)
        deadline = time.monotonic() + _DEADLINE_SECONDS
        finishes = 0
        while time.monotonic() < deadline and child.is_alive():
            try:
                finishes = jpath.read_bytes().count(
                    b'"type":"task-finish"')
            except OSError:
                finishes = 0
            if finishes >= 1:
                break
            time.sleep(0.005)
        killed_midway = child.is_alive()
        if killed_midway:
            os.kill(child.pid, signal.SIGKILL)
        child.join(timeout=_DEADLINE_SECONDS)

        state = replay_journal(jpath)
        # Resume against the same cache dir.
        resumed = _resume_suite(cache_dir, run_id, resume=True)
        table = resumed.speedups(fig8_machine())
        resumed_sims = sum(1 for t in resumed.resumed_verified
                           if t.startswith("simulate:"))
        sims_recomputed = \
            resumed.metrics.stages["simulate"].invocations
        expected_sims = 4 * len(_RESUME_WORKLOADS)  # 3 models + baseline
        # Differential oracle over the recovered executions.
        for name in _RESUME_WORKLOADS:
            resumed.check_model_agreement(name, fig8_machine())
        resumed.close_journal()
        # Clean reference from a cold cache, for byte-identity.
        reference = _resume_suite(ref_dir, None, resume=False)
        ref_table = reference.speedups(fig8_machine())
        reference.close_journal()
        ok = repr(table) == repr(ref_table) \
            and resumed_sims == len(state.completed) \
            and sims_recomputed == expected_sims - resumed_sims \
            and not resumed.resumed_invalid
    return _report(
        "sigkill-resume", description, "recover", ok,
        "recovered" if ok else "NOT recovered",
        f"{'killed mid-run' if killed_midway else 'finished early'}, "
        f"{resumed_sims} tasks journal-verified (zero recompute), "
        f"{sims_recomputed} recomputed, output "
        f"{'byte-identical' if repr(table) == repr(ref_table) else 'DIVERGED'}"
        f", differential oracle clean")


def _inject_torn_journal() -> ChaosReport:
    description = "SIGKILL mid-append leaves a torn final journal " \
                  "line; replay must keep every durable record"
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        journal = RunJournal.create(tmp, meta={"chaos": True})
        run_id = journal.run_id
        journal.task_start("chaos-task")
        journal.task_finish("chaos-task", [("stats", "k" * 64, "s" * 64)])
        journal.close()
        jpath = journal_path(tmp, run_id)
        with open(jpath, "a", encoding="utf-8") as handle:
            handle.write('{"type":"task-fi')  # the torn append
        state = replay_journal(jpath)
        resumed, rstate = RunJournal.resume(tmp, run_id)
        resumed.close()
        ok = state.torn_lines == 1 \
            and "chaos-task" in state.completed \
            and "chaos-task" in rstate.completed
    return _report(
        "torn-journal", description, "recover", ok,
        "recovered" if ok else "NOT recovered",
        f"{state.torn_lines} torn line tolerated, "
        f"{len(state.completed)} completed tasks preserved")


# ----- native-engine chaos --------------------------------------------------
#
# Every injection here attacks the C-kernel trust chain — the .so
# cache, the compiler, the sandbox canary, the parity replay, or a
# kernel mid-run — and demands the same two terminal states as the
# engine campaign: a *byte-identical* degraded run (the ladder ate the
# fault) or a typed taxonomy failure.  The degraded output is compared
# against a pure-Python reference of the same campaign kernel, so
# "recovered" always means "the figures did not move".

#: (compiled program, machine, reference observables) — built once
_NATIVE_CHAOS: tuple | None = None


def _native_chaos_program():
    global _NATIVE_CHAOS
    if _NATIVE_CHAOS is None:
        from repro.machine.descriptor import MachineDescription
        base = frontend(CAMPAIGN_SOURCE)
        profile = Profile.collect(base, inputs=CAMPAIGN_INPUTS)
        machine = MachineDescription(
            issue_width=4, branch_issue_limit=2,
            name="native-chaos").with_real_caches()
        compiled = compile_for_model(base, Model.FULLPRED, profile,
                                     machine)
        reference = _observables(run_compiled(
            compiled, inputs=CAMPAIGN_INPUTS, machine=machine,
            engine="fastpath"))
        _NATIVE_CHAOS = (compiled, machine, reference)
    return _NATIVE_CHAOS


def _observables(result) -> str:
    """Every observable a figure could depend on, as one comparable
    string (the trace itself is engine-internal and may be None)."""
    ex = result.execution
    return repr((ex.return_value, ex.dynamic_count, ex.suppressed_count,
                 ex.output_signature, ex.output_count, ex.memory_digest,
                 result.stats))


def _degraded_run() -> str:
    """Run the campaign kernel through the vector engine under the
    *current* supervisor state (healthy, demoted, or mid-injection)."""
    compiled, machine, _ = _native_chaos_program()
    return _observables(run_compiled(
        compiled, inputs=CAMPAIGN_INPUTS, machine=machine,
        engine="vector"))


def _have_cc() -> bool:
    import shutil
    return any(shutil.which(c) for c in ("cc", "gcc"))


def _skip_no_cc(injection: str, description: str) -> ChaosReport:
    return _report(injection, description, "recover", True,
                   "skipped", "no C toolchain in this environment")


def _quarantined_kernels(cache_dir: str) -> list[Path]:
    qdir = Path(cache_dir) / "quarantine"
    if not qdir.is_dir():
        return []
    return [p for p in qdir.iterdir()
            if not p.name.endswith(".reason")]


def _inject_kernel_so_corrupt() -> ChaosReport:
    description = "cached kernel .so corrupted on disk; load must " \
                  "quarantine the object, rebuild, and stay " \
                  "byte-identical"
    if not _have_cc():
        return _skip_no_cc("kernel-so-corrupt", description)
    from repro.fastpath import native, supervisor
    _, _, reference = _native_chaos_program()
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        try:
            supervisor.reset_for_testing(cache_dir=tmp)
            path = Path(supervisor.ensure_built())
            blob = bytearray(path.read_bytes())
            blob[len(blob) // 2] ^= 0x01
            path.write_bytes(bytes(blob))
            supervisor.reset_for_testing(cache_dir=tmp)
            rebuilt = native.available()
            counters = supervisor.counters_snapshot()
            quarantined = _quarantined_kernels(tmp)
            degraded = _degraded_run()
            ok = rebuilt \
                and counters["kernel_cache_quarantined"] >= 1 \
                and len(quarantined) >= 1 \
                and degraded == reference

            message = (f"corrupt object quarantined "
                       f"({len(quarantined)} in quarantine/), rebuilt "
                       f"and revalidated, output "
                       f"{'byte-identical' if degraded == reference else 'DIVERGED'}")
        finally:
            supervisor.reset_for_testing()
    return _report("kernel-so-corrupt", description, "recover", ok,
                   "recovered" if ok else "NOT recovered", message)


def _inject_kernel_cc_vanish() -> ChaosReport:
    description = "C compiler vanishes before the build; typed " \
                  "NativeToolchainMissing must demote the ladder and " \
                  "the degraded run must be byte-identical"
    from repro.fastpath import native, supervisor
    _, _, reference = _native_chaos_program()
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        try:
            supervisor.reset_for_testing(
                cache_dir=tmp, compilers=("repro-chaos-missing-cc",))
            available = native.available()
            error = supervisor.last_error()
            events = supervisor.degradation_events()
            degraded = _degraded_run()
            ok = not available and error is not None \
                and type(error).__name__ == "NativeToolchainMissing" \
                and is_transient(error) \
                and any(e.from_engine == "native" for e in events) \
                and degraded == reference
            message = (f"typed {type(error).__name__} "
                       f"(exit {getattr(error, 'exit_code', '?')}, "
                       f"transient), engine now "
                       f"{supervisor.current_engine()}, output "
                       f"{'byte-identical' if degraded == reference else 'DIVERGED'}")
        finally:
            supervisor.reset_for_testing()
    return _report("kernel-cc-vanish", description, "recover", ok,
                   "recovered" if ok else "NOT recovered", message)


def _inject_kernel_segv() -> ChaosReport:
    description = "kernel SIGSEGVs inside the sacrificial sandbox " \
                  "canary; only the child dies, the parent demotes " \
                  "with a typed NativeKernelCrash"
    if not _have_cc():
        return _skip_no_cc("kernel-segv", description)
    from repro.fastpath import native, supervisor
    _, _, reference = _native_chaos_program()
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        try:
            supervisor.reset_for_testing(cache_dir=tmp)
            supervisor.set_injection("segv-child")
            available = native.available()
            error = supervisor.last_error()
            counters = supervisor.counters_snapshot()
            degraded = _degraded_run()
            ok = not available and error is not None \
                and type(error).__name__ == "NativeKernelCrash" \
                and getattr(error, "signal", None) == int(signal.SIGSEGV) \
                and is_transient(error) \
                and counters["native_kernel_crashes"] >= 1 \
                and counters["engine_demotions"] >= 1 \
                and degraded == reference
            message = (f"child died on signal "
                       f"{getattr(error, 'signal', '?')}, parent alive, "
                       f"engine now {supervisor.current_engine()}, "
                       f"output "
                       f"{'byte-identical' if degraded == reference else 'DIVERGED'}")
        finally:
            supervisor.set_injection(None)
            supervisor.reset_for_testing()
    return _report("kernel-segv", description, "recover", ok,
                   "recovered" if ok else "NOT recovered", message)


def _inject_kernel_stale_cc() -> ChaosReport:
    description = "compiler upgrade between runs; the " \
                  "fingerprint-keyed cache must rebuild instead of " \
                  "loading the stale object"
    if not _have_cc():
        return _skip_no_cc("kernel-stale-cc", description)
    from repro.fastpath import native, supervisor
    _, _, reference = _native_chaos_program()
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        try:
            supervisor.reset_for_testing(cache_dir=tmp,
                                         fingerprint="chaos-cc 1.0")
            first_path = supervisor.so_path()
            first_ok = native.available()
            first_run = _degraded_run()
            supervisor.reset_for_testing(cache_dir=tmp,
                                         fingerprint="chaos-cc 2.0")
            second_path = supervisor.so_path()
            second_ok = native.available()
            second_run = _degraded_run()
            ok = first_ok and second_ok \
                and first_path != second_path \
                and os.path.exists(first_path) \
                and os.path.exists(second_path) \
                and first_run == reference and second_run == reference
            message = ("cache keys diverged, both objects built and "
                       "validated, outputs "
                       + ("byte-identical"
                          if first_run == reference
                          and second_run == reference else "DIVERGED"))
        finally:
            supervisor.reset_for_testing()
    return _report("kernel-stale-cc", description, "recover", ok,
                   "recovered" if ok else "NOT recovered", message)


def _inject_kernel_parity() -> ChaosReport:
    description = "golden parity mismatch injected in the sandbox " \
                  "canary; the object must be quarantined, the " \
                  "process demoted, the output byte-identical"
    if not _have_cc():
        return _skip_no_cc("kernel-parity-mismatch", description)
    from repro.fastpath import native, supervisor
    _, _, reference = _native_chaos_program()
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        try:
            supervisor.reset_for_testing(cache_dir=tmp)
            supervisor.set_injection("parity-child")
            available = native.available()
            error = supervisor.last_error()
            counters = supervisor.counters_snapshot()
            quarantined = _quarantined_kernels(tmp)
            degraded = _degraded_run()
            ok = not available and error is not None \
                and type(error).__name__ == "NativeParityError" \
                and counters["native_parity_failures"] >= 1 \
                and counters["kernel_cache_quarantined"] >= 1 \
                and len(quarantined) >= 1 \
                and degraded == reference
            message = (f"typed NativeParityError, object quarantined "
                       f"({len(quarantined)} in quarantine/), engine "
                       f"now {supervisor.current_engine()}, output "
                       f"{'byte-identical' if degraded == reference else 'DIVERGED'}")
        finally:
            supervisor.set_injection(None)
            supervisor.reset_for_testing()
    return _report("kernel-parity-mismatch", description, "recover", ok,
                   "recovered" if ok else "NOT recovered", message)


def _inject_kernel_midrun() -> ChaosReport:
    description = "kernel faults mid-run after passing every canary; " \
                  "the vector engine must demote in place and finish " \
                  "byte-identically"
    if not _have_cc():
        return _skip_no_cc("kernel-midrun-fault", description)
    from repro.fastpath import native, supervisor
    _, _, reference = _native_chaos_program()
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        try:
            supervisor.reset_for_testing(cache_dir=tmp)
            healthy = native.available()
            supervisor.set_injection(("scan-fault", 1))
            degraded = _degraded_run()
            counters = supervisor.counters_snapshot()
            events = supervisor.degradation_events()
            ok = healthy \
                and counters["native_kernel_crashes"] >= 1 \
                and counters["engine_demotions"] >= 1 \
                and any(e.error == "NativeKernelCrash" for e in events) \
                and degraded == reference
            message = (f"validated healthy, faulted mid-run, "
                       f"{counters['engine_demotions']} demotion(s) "
                       f"recorded, output "
                       f"{'byte-identical' if degraded == reference else 'DIVERGED'}")
        finally:
            supervisor.set_injection(None)
            supervisor.reset_for_testing()
    return _report("kernel-midrun-fault", description, "recover", ok,
                   "recovered" if ok else "NOT recovered", message)


# ----- the campaigns --------------------------------------------------------

def _run_injections(injections) -> list[ChaosReport]:
    """Run each injection; one report each, the parent never crashes."""
    reports: list[ChaosReport] = []
    for name, injector in injections:
        start = time.monotonic()
        try:
            report = injector()
        except Exception as exc:  # noqa: BLE001 — campaign must finish
            report = _report(name, "injection harness", "recover",
                             False, f"unhandled {type(exc).__name__}",
                             str(exc)[:300])
        elapsed = time.monotonic() - start
        if elapsed > _DEADLINE_SECONDS:
            report.ok = False
            report.message += f" [exceeded {_DEADLINE_SECONDS:g}s deadline]"
        reports.append(report)
    return reports


def run_chaos_campaign(jobs: int = 2) -> list[ChaosReport]:
    """Run every engine injection."""
    return _run_injections([
        ("worker-crash-retry", lambda: _inject_worker_crash(jobs)),
        ("artifact-truncate", _inject_artifact_truncate),
        ("envelope-bit-flip", _inject_envelope_bit_flip),
        ("slow-task-timeout", _inject_slow_task),
        ("disk-full-write", _inject_disk_full),
        ("sigkill-resume", _inject_sigkill_resume),
        ("torn-journal", _inject_torn_journal),
    ])


def run_native_chaos_campaign(jobs: int = 2) -> list[ChaosReport]:
    """Run every native-engine injection (``jobs`` accepted for CLI
    symmetry; the supervisor is per-process state, so the injections
    run in this process)."""
    del jobs
    return _run_injections([
        ("kernel-so-corrupt", _inject_kernel_so_corrupt),
        ("kernel-cc-vanish", _inject_kernel_cc_vanish),
        ("kernel-segv", _inject_kernel_segv),
        ("kernel-stale-cc", _inject_kernel_stale_cc),
        ("kernel-parity-mismatch", _inject_kernel_parity),
        ("kernel-midrun-fault", _inject_kernel_midrun),
    ])


def format_chaos_reports(reports: list[ChaosReport]) -> str:
    lines = ["", "engine chaos campaign",
             f"{'injection':<24s}{'expected':<15s}{'outcome':<24s}"
             f"{'ok':<4s}",
             "-" * 67]
    for r in reports:
        lines.append(f"{r.injection:<24s}{r.expected:<15s}"
                     f"{r.outcome:<24s}{'yes' if r.ok else 'NO':<4s}")
        if r.message:
            lines.append(f"    {r.message}")
    recovered = sum(1 for r in reports if r.ok)
    lines.append(f"{recovered}/{len(reports)} injections ended in clean "
                 f"recovery or a typed failure")
    return "\n".join(lines)
