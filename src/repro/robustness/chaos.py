"""Engine chaos campaign: prove the recovery machinery recovers.

Where :mod:`repro.robustness.faults` corrupts *data* to prove the
checkers fire, this module attacks the *execution engine* — killing
workers, tearing artifacts, filling the disk, SIGKILLing a whole suite
— and demands that every injection ends in one of exactly two states:

* **recover** — the run completes with correct output (retry, pool
  rebuild, quarantine + recompute, journaled resume), or
* **typed-failure** — a typed taxonomy error is reported cleanly.

Hangs, crashes of the *parent*, and silently wrong output all fail the
campaign.  Every injection is deadline-bounded.  Run it via
``python -m repro selftest --chaos``.

=======================  =============================  ===============
injection                mechanism                      expected
=======================  =============================  ===============
``worker-crash-retry``   pool worker ``os._exit`` on    recover
                         first attempt (sentinel file)
``artifact-truncate``    ``.art`` truncated to half     recover
                         (torn post-crash disk state)
``envelope-bit-flip``    one byte flipped mid-file,     recover
                         caught by ``cache fsck``
``slow-task-timeout``    emulation past its wall-clock  typed-failure
                         budget (watchdog)
``disk-full-write``      store ``write_hook`` raises    recover
                         ``ENOSPC`` once
``sigkill-resume``       suite process SIGKILLed        recover
                         mid-run, resumed from journal
``torn-journal``         partial final journal line     recover
                         (crash mid-append)
=======================  =============================  ===============
"""

from __future__ import annotations

import errno
import multiprocessing
import os
import signal
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.profile import Profile
from repro.engine.keys import stable_digest
from repro.engine.recovery.fsck import fsck_store
from repro.engine.recovery.journal import RunJournal, journal_path, \
    new_run_id, replay_journal
from repro.engine.recovery.retry import RetryPolicy, is_transient
from repro.engine.scheduler import Job, execute_jobs
from repro.engine.store import ArtifactStore
from repro.robustness.errors import EmulationTimeout
from repro.robustness.faults import CAMPAIGN_INPUTS, CAMPAIGN_SOURCE
from repro.robustness.watchdog import EmulationWatchdog
from repro.toolchain import Model, compile_for_model, frontend, \
    run_compiled

#: hard per-injection deadline — a hung recovery is a failed recovery
_DEADLINE_SECONDS = 120.0

#: workloads the SIGKILL/resume injection runs (small but multi-task)
_RESUME_WORKLOADS = ("wc", "cmp")
_RESUME_SCALE = 0.25


@dataclass
class ChaosReport:
    """Outcome of one engine-level injection."""

    injection: str
    description: str
    expected: str      # "recover" | "typed-failure"
    outcome: str       # what actually happened
    ok: bool
    message: str = ""


def _report(injection: str, description: str, expected: str,
            ok: bool, outcome: str, message: str = "") -> ChaosReport:
    return ChaosReport(injection=injection, description=description,
                       expected=expected, outcome=outcome, ok=ok,
                       message=message)


# ----- pool worker crash ----------------------------------------------------

def _crash_once(sentinel: str) -> dict:
    """Die hard on the first attempt, succeed on the retry."""
    if not os.path.exists(sentinel):
        with open(sentinel, "w") as handle:
            handle.write("crashed\n")
        os._exit(9)
    return {"survived": True}


def _steady(value: int) -> int:
    return value * 2


def _inject_worker_crash(jobs: int) -> ChaosReport:
    description = "pool worker os._exit mid-task; scheduler must " \
                  "rebuild the pool and retry"
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        sentinel = os.path.join(tmp, "crashed.sentinel")
        graph = [Job(job_id="chaos-crash", fn=_crash_once,
                     args=(sentinel,), stage="chaos"),
                 Job(job_id="chaos-steady", fn=_steady, args=(21,),
                     stage="chaos"),
                 Job(job_id="chaos-dependent", fn=_steady, args=(1,),
                     deps=("chaos-crash",), stage="chaos")]
        from repro.engine.metrics import PipelineMetrics
        metrics = PipelineMetrics()
        outcome = execute_jobs(graph, max_workers=max(2, jobs),
                               metrics=metrics)
    ok = outcome.ok \
        and outcome.results.get("chaos-crash") == {"survived": True} \
        and outcome.results.get("chaos-steady") == 42 \
        and metrics.pool_rebuilds >= 1
    return _report(
        "worker-crash-retry", description, "recover", ok,
        "recovered" if ok else "NOT recovered",
        f"{metrics.pool_rebuilds} pool rebuilds, "
        f"{len(outcome.failures)} failures, "
        f"{len(outcome.results)}/3 jobs completed")


# ----- store corruption -----------------------------------------------------

def _inject_artifact_truncate() -> ChaosReport:
    description = "artifact file truncated to half its bytes (torn " \
                  "post-crash disk state); read must quarantine and " \
                  "recompute"
    payload = {"cycles": list(range(500))}
    key = stable_digest("chaos", "truncate")
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        store = ArtifactStore(tmp)
        store.put("stats", key, payload)
        path = store._path("stats", key)
        blob = path.read_bytes()
        path.write_bytes(blob[:len(blob) // 2])
        first = store.get("stats", key)          # quarantine + miss
        store.put("stats", key, payload)         # the recompute
        second = store.get("stats", key)
        quarantined = list(Path(tmp, "quarantine").rglob("*.art*"))
        quarantined = [p for p in quarantined
                       if not p.name.endswith(".reason")]
        ok = first is None and second == payload \
            and store.metrics.quarantined_artifacts == 1 \
            and len(quarantined) == 1
    return _report(
        "artifact-truncate", description, "recover", ok,
        "recovered" if ok else "NOT recovered",
        f"read after truncation -> {'miss' if first is None else 'HIT'}"
        f", rewrite {'round-trips' if second == payload else 'FAILS'}")


def _inject_envelope_bit_flip() -> ChaosReport:
    description = "one byte flipped inside the envelope; fsck must " \
                  "detect it, --repair must quarantine it"
    payload = list(range(1000))
    key = stable_digest("chaos", "bit-flip")
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        store = ArtifactStore(tmp)
        store.put("execution", key, payload)
        store.put("stats", stable_digest("chaos", "healthy"), {"ok": 1})
        path = store._path("execution", key)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0x01
        path.write_bytes(bytes(blob))
        detect = fsck_store(store, repair=False)
        repair = fsck_store(store, repair=True)
        clean = fsck_store(store, repair=False)
        recomputed = store.get("execution", key)  # miss -> recompute
        store.put("execution", key, payload)
        ok = detect.corrupt == 1 and not detect.clean \
            and repair.corrupt == 1 \
            and clean.clean and clean.scanned == 1 \
            and recomputed is None \
            and store.get("execution", key) == payload
    return _report(
        "envelope-bit-flip", description, "recover", ok,
        "recovered" if ok else "NOT recovered",
        f"fsck detected {detect.corrupt}, post-repair scan "
        f"{'clean' if clean.clean else 'STILL CORRUPT'}")


def _inject_disk_full() -> ChaosReport:
    description = "store write_hook raises ENOSPC on the first write; " \
                  "the retry policy must classify it transient and " \
                  "the rewrite must succeed"
    payload = {"figures": [1, 2, 3]}
    key = stable_digest("chaos", "disk-full")
    state = {"armed": True, "tripped": False}

    def hook(kind: str, k: str, nbytes: int) -> None:
        if state["armed"]:
            state["armed"] = False
            state["tripped"] = True
            raise OSError(errno.ENOSPC, "No space left on device")

    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        store = ArtifactStore(tmp)
        store.write_hook = hook
        policy = RetryPolicy(max_attempts=3, backoff_base=0.01,
                             backoff_cap=0.05)
        attempt = 0
        classified = False
        while True:
            attempt += 1
            try:
                store.put("stats", key, payload)
                break
            except OSError as exc:
                classified = is_transient(exc)
                if not policy.should_retry(exc, attempt):
                    raise
                time.sleep(policy.backoff("chaos-disk-full", attempt))
        debris = [p for p in Path(tmp).rglob("*")
                  if p.is_file() and (".tmp" in p.name
                                      or p.name.endswith(".lock"))]
        ok = state["tripped"] and classified and attempt == 2 \
            and store.get("stats", key) == payload and not debris
    return _report(
        "disk-full-write", description, "recover", ok,
        "recovered" if ok else "NOT recovered",
        f"ENOSPC on attempt 1, success on attempt {attempt}, "
        f"{len(debris)} tmp/lock files left behind")


# ----- slow task ------------------------------------------------------------

def _inject_slow_task() -> ChaosReport:
    description = "emulation exceeds its wall-clock budget; the " \
                  "watchdog must raise a typed EmulationTimeout"
    base = frontend(CAMPAIGN_SOURCE)
    profile = Profile.collect(base, inputs=CAMPAIGN_INPUTS)
    from repro.machine.descriptor import scalar_machine
    compiled = compile_for_model(base, Model.SUPERBLOCK, profile,
                                 scalar_machine())
    # A tiny beat interval makes the budget bite on small kernels (the
    # default 65536-step interval never fires inside one).
    wd = EmulationWatchdog(wall_clock_budget=1e-9, interval=64)
    caught: str | None = None
    message = ""
    try:
        run_compiled(compiled, inputs=CAMPAIGN_INPUTS, watchdog=wd)
    except EmulationTimeout as exc:
        caught = type(exc).__name__
        message = str(exc)[:120]
    except Exception as exc:  # noqa: BLE001 — we classify, not handle
        caught = type(exc).__name__
        message = str(exc)[:120]
    ok = caught == "EmulationTimeout" \
        and is_transient(EmulationTimeout("probe"))
    return _report(
        "slow-task-timeout", description, "typed-failure", ok,
        f"typed {caught}" if caught else "NO ERROR RAISED", message)


# ----- SIGKILL + resume -----------------------------------------------------

def _resume_suite(cache_dir: str, run_id: str | None, resume: bool):
    from repro.experiments.runner import ExperimentSuite
    from repro.workloads import get_workload
    return ExperimentSuite(
        workloads=[get_workload(n) for n in _RESUME_WORKLOADS],
        scale=_RESUME_SCALE, cache_dir=cache_dir, run_id=run_id,
        resume=resume)


def _suite_child(cache_dir: str, run_id: str) -> None:
    """Child process body: run the figure suite to completion."""
    from repro.machine.descriptor import fig8_machine
    suite = _resume_suite(cache_dir, run_id, resume=False)
    suite.speedups(fig8_machine())
    suite.close_journal()


def _inject_sigkill_resume() -> ChaosReport:
    description = "suite process SIGKILLed mid-figure; --resume must " \
                  "complete byte-identically with zero recompute of " \
                  "journaled tasks"
    from repro.machine.descriptor import fig8_machine
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        cache_dir = os.path.join(tmp, "killed-cache")
        ref_dir = os.path.join(tmp, "reference-cache")
        run_id = new_run_id()
        child = multiprocessing.Process(
            target=_suite_child, args=(cache_dir, run_id), daemon=True)
        child.start()
        jpath = journal_path(os.path.join(cache_dir, "runs"), run_id)
        deadline = time.monotonic() + _DEADLINE_SECONDS
        finishes = 0
        while time.monotonic() < deadline and child.is_alive():
            try:
                finishes = jpath.read_bytes().count(
                    b'"type":"task-finish"')
            except OSError:
                finishes = 0
            if finishes >= 1:
                break
            time.sleep(0.005)
        killed_midway = child.is_alive()
        if killed_midway:
            os.kill(child.pid, signal.SIGKILL)
        child.join(timeout=_DEADLINE_SECONDS)

        state = replay_journal(jpath)
        # Resume against the same cache dir.
        resumed = _resume_suite(cache_dir, run_id, resume=True)
        table = resumed.speedups(fig8_machine())
        resumed_sims = sum(1 for t in resumed.resumed_verified
                           if t.startswith("simulate:"))
        sims_recomputed = \
            resumed.metrics.stages["simulate"].invocations
        expected_sims = 4 * len(_RESUME_WORKLOADS)  # 3 models + baseline
        # Differential oracle over the recovered executions.
        for name in _RESUME_WORKLOADS:
            resumed.check_model_agreement(name, fig8_machine())
        resumed.close_journal()
        # Clean reference from a cold cache, for byte-identity.
        reference = _resume_suite(ref_dir, None, resume=False)
        ref_table = reference.speedups(fig8_machine())
        reference.close_journal()
        ok = repr(table) == repr(ref_table) \
            and resumed_sims == len(state.completed) \
            and sims_recomputed == expected_sims - resumed_sims \
            and not resumed.resumed_invalid
    return _report(
        "sigkill-resume", description, "recover", ok,
        "recovered" if ok else "NOT recovered",
        f"{'killed mid-run' if killed_midway else 'finished early'}, "
        f"{resumed_sims} tasks journal-verified (zero recompute), "
        f"{sims_recomputed} recomputed, output "
        f"{'byte-identical' if repr(table) == repr(ref_table) else 'DIVERGED'}"
        f", differential oracle clean")


def _inject_torn_journal() -> ChaosReport:
    description = "SIGKILL mid-append leaves a torn final journal " \
                  "line; replay must keep every durable record"
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        journal = RunJournal.create(tmp, meta={"chaos": True})
        run_id = journal.run_id
        journal.task_start("chaos-task")
        journal.task_finish("chaos-task", [("stats", "k" * 64, "s" * 64)])
        journal.close()
        jpath = journal_path(tmp, run_id)
        with open(jpath, "a", encoding="utf-8") as handle:
            handle.write('{"type":"task-fi')  # the torn append
        state = replay_journal(jpath)
        resumed, rstate = RunJournal.resume(tmp, run_id)
        resumed.close()
        ok = state.torn_lines == 1 \
            and "chaos-task" in state.completed \
            and "chaos-task" in rstate.completed
    return _report(
        "torn-journal", description, "recover", ok,
        "recovered" if ok else "NOT recovered",
        f"{state.torn_lines} torn line tolerated, "
        f"{len(state.completed)} completed tasks preserved")


# ----- the campaign ---------------------------------------------------------

def run_chaos_campaign(jobs: int = 2) -> list[ChaosReport]:
    """Run every injection; one report each, parent never crashes."""
    injections = [
        ("worker-crash-retry", lambda: _inject_worker_crash(jobs)),
        ("artifact-truncate", _inject_artifact_truncate),
        ("envelope-bit-flip", _inject_envelope_bit_flip),
        ("slow-task-timeout", _inject_slow_task),
        ("disk-full-write", _inject_disk_full),
        ("sigkill-resume", _inject_sigkill_resume),
        ("torn-journal", _inject_torn_journal),
    ]
    reports: list[ChaosReport] = []
    for name, injector in injections:
        start = time.monotonic()
        try:
            report = injector()
        except Exception as exc:  # noqa: BLE001 — campaign must finish
            report = _report(name, "injection harness", "recover",
                             False, f"unhandled {type(exc).__name__}",
                             str(exc)[:300])
        elapsed = time.monotonic() - start
        if elapsed > _DEADLINE_SECONDS:
            report.ok = False
            report.message += f" [exceeded {_DEADLINE_SECONDS:g}s deadline]"
        reports.append(report)
    return reports


def format_chaos_reports(reports: list[ChaosReport]) -> str:
    lines = ["", "engine chaos campaign",
             f"{'injection':<22s}{'expected':<15s}{'outcome':<24s}"
             f"{'ok':<4s}",
             "-" * 65]
    for r in reports:
        lines.append(f"{r.injection:<22s}{r.expected:<15s}"
                     f"{r.outcome:<24s}{'yes' if r.ok else 'NO':<4s}")
        if r.message:
            lines.append(f"    {r.message}")
    recovered = sum(1 for r in reports if r.ok)
    lines.append(f"{recovered}/{len(reports)} injections ended in clean "
                 f"recovery or a typed failure")
    return "\n".join(lines)
