"""Hardened experiment pipeline: typed errors, pass gates, watchdogs,
trace integrity, differential validation and fault injection.

The subsystem exists because the paper's result rests on a fragile
invariant — three independently transformed programs must stay
observably equivalent — and a single silent compiler or emulator bug
invalidates every figure.  See EXPERIMENTS.md ("Robustness modes").

``repro.robustness.faults`` (the fault-injection harness) is imported
explicitly by its users; it depends on the toolchain and would widen
this package's import footprint.
"""

from repro.robustness.differential import assert_equivalent, values_differ
from repro.robustness.errors import (CompileError, EmulationTimeout,
                                     ModelDivergenceError,
                                     PassVerificationError, ReproError,
                                     TraceIntegrityError)
from repro.robustness.integrity import check_trace_integrity
from repro.robustness.passgate import Degradation, PassGate
from repro.robustness.report import (SuiteReport, WorkloadFailure,
                                     format_failures)
from repro.robustness.watchdog import EmulationWatchdog

__all__ = [
    "CompileError", "Degradation", "EmulationTimeout",
    "EmulationWatchdog", "ModelDivergenceError", "PassGate",
    "PassVerificationError", "ReproError", "SuiteReport",
    "TraceIntegrityError", "WorkloadFailure", "assert_equivalent",
    "check_trace_integrity", "format_failures", "values_differ",
]
