"""Emulation watchdog: wall-clock budgets and progress heartbeats.

``max_steps`` bounds emulation by *dynamic instruction count*, which is
the wrong unit when a single step can be arbitrarily slow (allocation
churn, pathological traces) or when a suite must finish inside a CI time
slot.  The watchdog adds a wall-clock budget on top, checked every
``interval`` steps so the interpreter's hot loop stays cheap, and keeps
a bounded ring of ``(steps, elapsed_seconds)`` heartbeats so a timeout
report shows whether the run was progressing or stuck.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.robustness.errors import EmulationTimeout


@dataclass
class EmulationWatchdog:
    """Budget/heartbeat tracker threaded into :class:`~repro.emu.interpreter.Interpreter`.

    Attributes:
        wall_clock_budget: seconds of wall time allowed, or None for
            heartbeat-only operation.
        interval: emulation steps between ``beat`` calls (power of two
            keeps the interpreter's modulo cheap).
        max_heartbeats: ring size; older heartbeats are discarded.
    """

    wall_clock_budget: float | None = None
    interval: int = 1 << 16
    max_heartbeats: int = 64
    heartbeats: list[tuple[int, float]] = field(default_factory=list)

    def __post_init__(self):
        if self.interval <= 0:
            raise ValueError("watchdog interval must be positive")
        self._start: float | None = None

    def start(self) -> None:
        """Arm the budget clock (idempotent; ``beat`` auto-arms)."""
        if self._start is None:
            self._start = time.monotonic()

    @property
    def elapsed(self) -> float:
        if self._start is None:
            return 0.0
        return time.monotonic() - self._start

    def beat(self, steps: int) -> None:
        """Record progress; raise :class:`EmulationTimeout` over budget."""
        if self._start is None:
            self.start()
        elapsed = time.monotonic() - self._start
        self.heartbeats.append((steps, elapsed))
        if len(self.heartbeats) > self.max_heartbeats:
            del self.heartbeats[:len(self.heartbeats) // 2]
        budget = self.wall_clock_budget
        if budget is not None and elapsed > budget:
            rate = steps / elapsed if elapsed > 0 else 0.0
            raise EmulationTimeout(
                f"emulation exceeded its {budget:g}s wall-clock budget "
                f"after {steps} steps ({elapsed:.2f}s, "
                f"{rate:,.0f} steps/s)",
                steps=steps, elapsed=elapsed, budget=budget)
