"""Differential oracle: observable-equivalence of two executions.

The paper's methodology rests on all three processor models computing
the same program; comparing only scalar return values (the seed's
check) misses silent data corruption that never reaches the return
expression.  The oracle therefore compares three observables:

* the **return value** (tolerant float comparison);
* the **dynamic output stream** — the ordered sequence of executed
  stores, excluding ``$safe_addr`` redirects, folded into an
  order-sensitive signature by the interpreter;
* the **final memory state** — a digest of the global data region.

Any mismatch raises :class:`~repro.robustness.errors.ModelDivergenceError`
naming the workload, model and divergent observable.
"""

from __future__ import annotations

from repro.emu.trace import ExecutionResult
from repro.robustness.errors import ModelDivergenceError


def values_differ(a, b) -> bool:
    """Tolerant scalar comparison (floats compare to 1e-6 relative)."""
    if isinstance(a, float) or isinstance(b, float):
        return abs(float(a) - float(b)) > 1e-6 * max(1.0, abs(float(b)))
    return a != b


def assert_equivalent(candidate: ExecutionResult,
                      reference: ExecutionResult,
                      *, workload: str = "?", model: str = "?",
                      reference_model: str = "reference") -> None:
    """Raise :class:`ModelDivergenceError` unless the two executions are
    observably equivalent."""
    if values_differ(candidate.return_value, reference.return_value):
        raise ModelDivergenceError(
            f"{workload}: {model} returned {candidate.return_value!r}, "
            f"{reference_model} returned {reference.return_value!r}",
            workload=workload, model=model, kind="return-value")
    if candidate.output_count != reference.output_count:
        raise ModelDivergenceError(
            f"{workload}: {model} performed {candidate.output_count} "
            f"observable stores, {reference_model} performed "
            f"{reference.output_count}",
            workload=workload, model=model, kind="output-stream")
    if candidate.output_signature != reference.output_signature:
        raise ModelDivergenceError(
            f"{workload}: {model}'s dynamic store stream diverges from "
            f"{reference_model}'s (signatures "
            f"{candidate.output_signature:#018x} vs "
            f"{reference.output_signature:#018x} over "
            f"{reference.output_count} stores)",
            workload=workload, model=model, kind="output-stream")
    if (candidate.memory_digest is not None
            and reference.memory_digest is not None
            and candidate.memory_digest != reference.memory_digest):
        raise ModelDivergenceError(
            f"{workload}: {model}'s final global memory differs from "
            f"{reference_model}'s (digests {candidate.memory_digest[:16]} "
            f"vs {reference.memory_digest[:16]})",
            workload=workload, model=model, kind="memory-state")


#: ExecutionResult fields the fastpath must reproduce *exactly* (no
#: float tolerance: the two interpreters share arithmetic, so the only
#: acceptable difference is wall time).
_EXACT_FIELDS = ("return_value", "dynamic_count", "suppressed_count",
                 "branch_outcomes", "block_counts", "output_signature",
                 "output_count", "memory_digest")


def assert_fastpath_equivalent(compiled, inputs=None, machine=None,
                               max_steps: int = 50_000_000,
                               *, workload: str = "?",
                               wall_budget: float | None = None
                               ) -> ExecutionResult:
    """Differential mode for the fastpath: legacy vs fast vs streaming.

    Runs the legacy object-graph emulate+simulate, the columnar
    fastpath, and the streaming emulate→simulate on ``compiled`` and
    raises :class:`ModelDivergenceError` unless every execution
    observable, every trace event, and every ``SimulationStats`` field
    is identical.  This is the oracle behind the ``--differential``
    CLI flag and the acceptance gate for the fastpath.

    ``wall_budget`` arms a fresh :class:`EmulationWatchdog` per engine
    run (fresh, because budgets are per-execution, not per-oracle call).
    Returns the legacy :class:`ExecutionResult` so callers layering a
    cross-model comparison on top — the fuzz executor — can reuse it
    as that model's canonical execution instead of running a fourth
    time.
    """
    from repro.emu.interpreter import run_program
    from repro.fastpath.decode import decode_program
    from repro.fastpath.interp import run_program_fast
    from repro.fastpath.simulate import (emulate_and_simulate_stream,
                                         prepare_sim, simulate_columns)
    from repro.robustness.watchdog import EmulationWatchdog
    from repro.sim.pipeline import simulate_trace

    def watchdog() -> "EmulationWatchdog | None":
        if wall_budget is None:
            return None
        return EmulationWatchdog(wall_clock_budget=wall_budget)

    if machine is None:
        machine = compiled.machine
    model = getattr(compiled.model, "value", str(compiled.model))

    legacy = run_program(compiled.program, inputs=inputs,
                         collect_trace=True, max_steps=max_steps,
                         watchdog=watchdog())
    decoded = decode_program(compiled.program)
    fast = run_program_fast(compiled.program, inputs=inputs,
                            collect_trace=True, max_steps=max_steps,
                            decoded=decoded, watchdog=watchdog())
    for fname in _EXACT_FIELDS:
        a, b = getattr(fast, fname), getattr(legacy, fname)
        if a != b:
            raise ModelDivergenceError(
                f"{workload}: fastpath emulation of {model} diverges on "
                f"{fname}: {a!r} vs legacy {b!r}",
                workload=workload, model=model, kind=f"fastpath-{fname}")
    if fast.trace.to_events(decoded) != legacy.trace:
        raise ModelDivergenceError(
            f"{workload}: fastpath columnar trace of {model} does not "
            f"replay to the legacy event sequence",
            workload=workload, model=model, kind="fastpath-trace")

    prep = prepare_sim(decoded, compiled.addresses, machine)
    legacy_stats = simulate_trace(legacy.trace, compiled.addresses,
                                  machine)
    fast_stats = simulate_columns(fast.trace, prep, machine)
    if fast_stats != legacy_stats:
        raise ModelDivergenceError(
            f"{workload}: fastpath simulation of {model} diverges: "
            f"{fast_stats} vs legacy {legacy_stats}",
            workload=workload, model=model, kind="fastpath-stats")

    streamed, stream_stats = emulate_and_simulate_stream(
        compiled.program, compiled.addresses, machine, inputs=inputs,
        max_steps=max_steps, decoded=decoded, prep=prep,
        watchdog=watchdog())
    if stream_stats != legacy_stats:
        raise ModelDivergenceError(
            f"{workload}: streaming simulation of {model} diverges: "
            f"{stream_stats} vs legacy {legacy_stats}",
            workload=workload, model=model, kind="fastpath-stream")
    for fname in _EXACT_FIELDS:
        a, b = getattr(streamed, fname), getattr(legacy, fname)
        if a != b:
            raise ModelDivergenceError(
                f"{workload}: streaming emulation of {model} diverges "
                f"on {fname}: {a!r} vs legacy {b!r}",
                workload=workload, model=model,
                kind=f"fastpath-stream-{fname}")

    from repro.fastpath.vector import emulate_and_simulate_vector
    vectored, vector_stats = emulate_and_simulate_vector(
        compiled.program, compiled.addresses, machine, inputs=inputs,
        max_steps=max_steps, decoded=decoded, prep=prep,
        watchdog=watchdog())
    if vector_stats != legacy_stats:
        raise ModelDivergenceError(
            f"{workload}: vector simulation of {model} diverges: "
            f"{vector_stats} vs legacy {legacy_stats}",
            workload=workload, model=model, kind="fastpath-vector")
    for fname in _EXACT_FIELDS:
        a, b = getattr(vectored, fname), getattr(legacy, fname)
        if a != b:
            raise ModelDivergenceError(
                f"{workload}: vector emulation of {model} diverges "
                f"on {fname}: {a!r} vs legacy {b!r}",
                workload=workload, model=model,
                kind=f"fastpath-vector-{fname}")
    return legacy
