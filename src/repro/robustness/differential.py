"""Differential oracle: observable-equivalence of two executions.

The paper's methodology rests on all three processor models computing
the same program; comparing only scalar return values (the seed's
check) misses silent data corruption that never reaches the return
expression.  The oracle therefore compares three observables:

* the **return value** (tolerant float comparison);
* the **dynamic output stream** — the ordered sequence of executed
  stores, excluding ``$safe_addr`` redirects, folded into an
  order-sensitive signature by the interpreter;
* the **final memory state** — a digest of the global data region.

Any mismatch raises :class:`~repro.robustness.errors.ModelDivergenceError`
naming the workload, model and divergent observable.
"""

from __future__ import annotations

from repro.emu.trace import ExecutionResult
from repro.robustness.errors import ModelDivergenceError


def values_differ(a, b) -> bool:
    """Tolerant scalar comparison (floats compare to 1e-6 relative)."""
    if isinstance(a, float) or isinstance(b, float):
        return abs(float(a) - float(b)) > 1e-6 * max(1.0, abs(float(b)))
    return a != b


def assert_equivalent(candidate: ExecutionResult,
                      reference: ExecutionResult,
                      *, workload: str = "?", model: str = "?",
                      reference_model: str = "reference") -> None:
    """Raise :class:`ModelDivergenceError` unless the two executions are
    observably equivalent."""
    if values_differ(candidate.return_value, reference.return_value):
        raise ModelDivergenceError(
            f"{workload}: {model} returned {candidate.return_value!r}, "
            f"{reference_model} returned {reference.return_value!r}",
            workload=workload, model=model, kind="return-value")
    if candidate.output_count != reference.output_count:
        raise ModelDivergenceError(
            f"{workload}: {model} performed {candidate.output_count} "
            f"observable stores, {reference_model} performed "
            f"{reference.output_count}",
            workload=workload, model=model, kind="output-stream")
    if candidate.output_signature != reference.output_signature:
        raise ModelDivergenceError(
            f"{workload}: {model}'s dynamic store stream diverges from "
            f"{reference_model}'s (signatures "
            f"{candidate.output_signature:#018x} vs "
            f"{reference.output_signature:#018x} over "
            f"{reference.output_count} stores)",
            workload=workload, model=model, kind="output-stream")
    if (candidate.memory_digest is not None
            and reference.memory_digest is not None
            and candidate.memory_digest != reference.memory_digest):
        raise ModelDivergenceError(
            f"{workload}: {model}'s final global memory differs from "
            f"{reference_model}'s (digests {candidate.memory_digest[:16]} "
            f"vs {reference.memory_digest[:16]})",
            workload=workload, model=model, kind="memory-state")
