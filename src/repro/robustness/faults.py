"""Fault-injection harness: prove the checkers catch what they claim.

A verifier that never fires is indistinguishable from one that works.
This module deliberately corrupts each layer the robustness subsystem
guards — IR operands (structural), predicate values (semantic) and
trace entries (dynamic) — and records which checker caught each
corruption.  A corruption class is only credited when the *intended*
checker raises:

=====================  ==============================  ====================
corruption class       example injection               intended checker
=====================  ==============================  ====================
``ir-operand``         branch to a missing label,      ``VerificationError``
                       garbage source operand,         (structural verifier)
                       malformed pdests, ISA-subset
                       violations
``predicate-value``    swapped comparison operands     ``ModelDivergenceError``
                       of a predicate define           (differential oracle)
``trace-entry``        dropped event, nullified        ``TraceIntegrityError``
                       unguarded op, retargeted        (trace integrity)
                       branch
=====================  ==============================  ====================

Run it via ``python -m repro selftest`` or the pytest suite.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

from repro.analysis.profile import Profile
from repro.emu.interpreter import run_program
from repro.emu.trace import ExecutionResult
from repro.ir.function import Program
from repro.ir.instruction import Instruction, PredDest, PType
from repro.ir.opcodes import OpCategory, Opcode
from repro.ir.operands import Imm, PReg
from repro.ir.verifier import verify_program
from repro.machine.descriptor import scalar_machine
from repro.robustness.differential import assert_equivalent
from repro.robustness.integrity import check_trace_integrity
from repro.toolchain import Model, compile_for_model, frontend

#: Small hammock-heavy kernel in the mould of the paper's ``wc`` case
#: study: hot enough (128 iterations) for hyperblock formation, with
#: asymmetric `<`/`>` conditions so swapping a predicate define's
#: comparison operands changes behavior, and an unconditional store per
#: iteration whose value depends on the predicated accumulators — so
#: predicate corruption diverges stored *values* without perturbing
#: store *addresses* (no spurious memory faults).
CAMPAIGN_SOURCE = """
int src[128];
int out[128];
int n;

int main() {
  int i;
  int c;
  int low;
  int high;
  low = 0;
  high = 0;
  for (i = 0; i < n; i = i + 1) {
    c = src[i];
    if (c < 5) low = low + c;
    if (c > 2) high = high + 1;
    out[i] = low * 10 + high;
  }
  return low * 100 + high;
}
"""

CAMPAIGN_INPUTS = {"src": [(i * 7 + 3) % 13 for i in range(128)],
                   "n": [128]}


@dataclass
class FaultReport:
    """Outcome of one injected corruption."""

    fault: str         # specific injection id
    corruption: str    # class: ir-operand | predicate-value | trace-entry
    description: str   # what was corrupted
    expected: str      # intended checker's exception type name
    caught_by: str | None  # exception type actually raised, or None
    message: str = ""

    @property
    def ok(self) -> bool:
        return self.caught_by == self.expected


# ----- IR corruptions -------------------------------------------------------

def inject_bad_branch_target(program: Program) -> str:
    for fn in program.functions.values():
        for inst in fn.all_instructions():
            if inst.cat in (OpCategory.BRANCH, OpCategory.JUMP):
                inst.target = "__corrupted_label__"
                return f"retargeted {inst!r} in {fn.name} to a missing label"
    raise RuntimeError("campaign program has no branches to corrupt")


def inject_bad_operand(program: Program) -> str:
    for fn in program.functions.values():
        for inst in fn.all_instructions():
            if inst.cat is OpCategory.ALU and inst.srcs:
                inst.srcs = ("garbage",) + inst.srcs[1:]
                return f"replaced a source of {inst!r} in {fn.name} " \
                       f"with a non-operand"
    raise RuntimeError("campaign program has no ALU instructions")


def inject_malformed_pdests(program: Program) -> str:
    for fn in program.functions.values():
        for inst in fn.all_instructions():
            if inst.cat is OpCategory.PREDDEF and inst.pdests:
                inst.pdests = inst.pdests * 3
                return f"gave predicate define {inst!r} in {fn.name} " \
                       f"{len(inst.pdests)} pdests"
    # Baseline/cmov programs have no defines: misplace pdests instead.
    for fn in program.functions.values():
        for inst in fn.all_instructions():
            if inst.cat is OpCategory.ALU:
                inst.pdests = (PredDest(PReg(0), PType.U),)
                return f"attached pdests to non-define {inst!r} in {fn.name}"
    raise RuntimeError("no instruction available for pdest corruption")


def inject_guard_violation(program: Program) -> str:
    """Guard an instruction in a program whose ISA level forbids guards."""
    for fn in program.functions.values():
        for inst in fn.all_instructions():
            if inst.cat is OpCategory.ALU and inst.pred is None:
                inst.pred = PReg(0)
                return f"guarded {inst!r} in {fn.name}"
    raise RuntimeError("campaign program has no ALU instructions")


def inject_cmov_in_baseline(program: Program) -> str:
    fn = program.main
    dest = fn.new_vreg()
    cmov = Instruction(op=Opcode.CMOV, dest=dest, srcs=(Imm(1), Imm(0)))
    fn.entry.instructions.insert(0, cmov)
    return f"inserted {cmov!r} into baseline {fn.name}"


# ----- predicate-value corruption -------------------------------------------

def inject_predicate_corruption(program: Program) -> str:
    """Make runtime predicate values wrong without breaking structure.

    Swapping the comparison operands of an asymmetric predicate define
    flips which arm of the diamond executes — structurally valid IR, so
    only behavioral checking (the differential oracle) can notice.
    """
    for fn in program.functions.values():
        for inst in fn.all_instructions():
            if inst.cat is OpCategory.PREDDEF \
                    and inst.condition in ("lt", "le", "gt", "ge"):
                inst.srcs = (inst.srcs[1], inst.srcs[0])
                return f"swapped comparison operands of {inst!r} " \
                       f"in {fn.name}"
    for fn in program.functions.values():
        for inst in fn.all_instructions():
            if inst.pred is not None \
                    and inst.cat is not OpCategory.PREDDEF:
                inst.pred = None
                return f"dropped the guard of {inst!r} in {fn.name}"
    raise RuntimeError("campaign program has no predicate machinery")


# ----- trace corruptions ----------------------------------------------------

def inject_trace_drop(execution: ExecutionResult, _program: Program) -> str:
    trace = execution.trace
    assert trace is not None
    idx = len(trace) // 2
    dropped = trace.pop(idx)
    return f"dropped trace event {idx} ({dropped.inst!r})"


def inject_trace_nullify_unguarded(execution: ExecutionResult,
                                   _program: Program) -> str:
    trace = execution.trace
    assert trace is not None
    for idx, ev in enumerate(trace):
        if ev.executed and ev.inst.pred is None \
                and ev.inst.cat is OpCategory.ALU:
            trace[idx] = ev._replace(executed=False, taken=False,
                                     addr=-1, value=None)
            # Keep the books consistent so the *guard* check fires, not
            # the cheaper suppressed-count accounting check.
            execution.suppressed_count += 1
            return f"nullified unguarded event {idx} ({ev.inst!r})"
    raise RuntimeError("trace has no unguarded ALU events")


def inject_trace_retarget(execution: ExecutionResult,
                          program: Program) -> str:
    trace = execution.trace
    assert trace is not None
    owner: dict[int, list[str]] = {}
    for fn in program.functions.values():
        labels = [b.name for b in fn.blocks]
        for inst in fn.all_instructions():
            owner[inst.uid] = labels
    for idx, ev in enumerate(trace):
        if ev.executed and ev.taken \
                and ev.inst.cat in (OpCategory.BRANCH, OpCategory.JUMP):
            labels = owner.get(ev.inst.uid, [])
            alt = next((lb for lb in labels if lb != ev.inst.target), None)
            if alt is None:
                continue
            forged = ev.inst.copy(target=alt)
            trace[idx] = ev._replace(inst=forged)
            return f"retargeted taken control event {idx} " \
                   f"({ev.inst.target!r} -> {alt!r})"
    raise RuntimeError("trace has no retargetable control transfers")


# ----- the campaign ---------------------------------------------------------

def run_fault_campaign() -> list[FaultReport]:
    """Inject every corruption class; return one report per injection.

    Raises ``RuntimeError`` if the *uncorrupted* pipeline fails its own
    checks — the campaign is meaningless on a broken baseline.
    """
    machine = scalar_machine()
    base = frontend(CAMPAIGN_SOURCE)
    profile = Profile.collect(base, inputs=CAMPAIGN_INPUTS)
    compiled = {model: compile_for_model(base, model, profile, machine)
                for model in Model}
    reference = run_program(compiled[Model.SUPERBLOCK].program,
                            inputs=CAMPAIGN_INPUTS, collect_trace=True)
    execution = run_program(compiled[Model.FULLPRED].program,
                            inputs=CAMPAIGN_INPUTS, collect_trace=True)

    # Sanity: the clean pipeline must pass every checker.
    for model, comp in compiled.items():
        verify_program(comp.program, model.isa_level)
    check_trace_integrity(execution, compiled[Model.FULLPRED].program)
    check_trace_integrity(reference, compiled[Model.SUPERBLOCK].program)
    assert_equivalent(execution, reference, workload="campaign",
                      model=Model.FULLPRED.value,
                      reference_model=Model.SUPERBLOCK.value)

    reports: list[FaultReport] = []

    ir_faults = [
        ("ir-bad-branch-target", inject_bad_branch_target, Model.FULLPRED),
        ("ir-bad-operand", inject_bad_operand, Model.FULLPRED),
        ("ir-malformed-pdests", inject_malformed_pdests, Model.FULLPRED),
        ("ir-guard-in-cmov-code", inject_guard_violation, Model.CMOV),
        ("ir-cmov-in-baseline", inject_cmov_in_baseline, Model.SUPERBLOCK),
    ]
    for fault, injector, model in ir_faults:
        program = copy.deepcopy(compiled[model].program)
        description = injector(program)
        _observe(reports, fault, "ir-operand", description,
                 "VerificationError",
                 lambda p=program, m=model: verify_program(p, m.isa_level))

    trace_faults = [
        ("trace-dropped-event", inject_trace_drop),
        ("trace-nullified-unguarded", inject_trace_nullify_unguarded),
        ("trace-retargeted-branch", inject_trace_retarget),
    ]
    for fault, injector in trace_faults:
        forged = copy.deepcopy(execution)
        description = injector(forged, compiled[Model.FULLPRED].program)
        _observe(reports, fault, "trace-entry", description,
                 "TraceIntegrityError",
                 lambda f=forged: check_trace_integrity(
                     f, compiled[Model.FULLPRED].program))

    corrupted = copy.deepcopy(compiled[Model.FULLPRED].program)
    description = inject_predicate_corruption(corrupted)
    diverged = run_program(corrupted, inputs=CAMPAIGN_INPUTS)
    _observe(reports, "predicate-swapped-compare", "predicate-value",
             description, "ModelDivergenceError",
             lambda: assert_equivalent(
                 diverged, reference, workload="campaign",
                 model="Full Predication (corrupted)",
                 reference_model=Model.SUPERBLOCK.value))
    return reports


def _observe(reports: list[FaultReport], fault: str, corruption: str,
             description: str, expected: str, thunk) -> None:
    try:
        thunk()
    except Exception as exc:  # noqa: BLE001 — we classify, not handle
        reports.append(FaultReport(fault, corruption, description,
                                   expected, type(exc).__name__, str(exc)))
    else:
        reports.append(FaultReport(fault, corruption, description,
                                   expected, None,
                                   "corruption went undetected"))


def format_fault_reports(reports: list[FaultReport]) -> str:
    lines = [f"{'fault':<28s}{'class':<17s}{'caught by':<24s}{'ok':<4s}",
             "-" * 73]
    for r in reports:
        lines.append(f"{r.fault:<28s}{r.corruption:<17s}"
                     f"{r.caught_by or 'UNDETECTED':<24s}"
                     f"{'yes' if r.ok else 'NO':<4s}")
    caught = sum(1 for r in reports if r.ok)
    lines.append(f"{caught}/{len(reports)} corruption classes caught by "
                 f"their intended checker")
    return "\n".join(lines)
