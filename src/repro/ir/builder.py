"""Convenience builder for constructing IR functions.

The builder keeps a current insertion block and provides one method per
instruction family, returning the destination register so expression
trees compose naturally:

    b = IRBuilder(fn, fn.new_block("entry"))
    t = b.add(x, b.imm(1))
    b.beq(t, b.imm(0), "exit")
"""

from __future__ import annotations

from repro.ir.function import BasicBlock, Function
from repro.ir.instruction import Instruction, PredDest, PType
from repro.ir.opcodes import OpCategory, Opcode, opcode_for_condition
from repro.ir.operands import GlobalAddr, Imm, Operand, PReg, RegClass, VReg


class IRBuilder:
    """Incremental construction of instructions into basic blocks."""

    def __init__(self, fn: Function, block: BasicBlock | None = None,
                 pred: PReg | None = None):
        self.fn = fn
        self.block = block if block is not None else fn.entry
        #: guard applied to all emitted instructions (for predicated code)
        self.pred = pred

    # ----- positioning ---------------------------------------------------

    def set_block(self, block: BasicBlock) -> None:
        self.block = block

    def imm(self, value: int | float) -> Imm:
        return Imm(value)

    def emit(self, inst: Instruction) -> Instruction:
        if inst.pred is None and self.pred is not None:
            inst.pred = self.pred
        self.block.append(inst)
        return inst

    # ----- generic emitters ----------------------------------------------

    def _binop(self, op: Opcode, a: Operand, b: Operand,
               rclass: RegClass = RegClass.INT) -> VReg:
        dest = self.fn.new_vreg(rclass)
        self.emit(Instruction(op, dest=dest, srcs=(a, b)))
        return dest

    def _unop(self, op: Opcode, a: Operand,
              rclass: RegClass = RegClass.INT) -> VReg:
        dest = self.fn.new_vreg(rclass)
        self.emit(Instruction(op, dest=dest, srcs=(a,)))
        return dest

    # ----- integer ALU ----------------------------------------------------

    def add(self, a: Operand, b: Operand) -> VReg:
        return self._binop(Opcode.ADD, a, b)

    def sub(self, a: Operand, b: Operand) -> VReg:
        return self._binop(Opcode.SUB, a, b)

    def mul(self, a: Operand, b: Operand) -> VReg:
        return self._binop(Opcode.MUL, a, b)

    def div(self, a: Operand, b: Operand) -> VReg:
        return self._binop(Opcode.DIV, a, b)

    def rem(self, a: Operand, b: Operand) -> VReg:
        return self._binop(Opcode.REM, a, b)

    def and_(self, a: Operand, b: Operand) -> VReg:
        return self._binop(Opcode.AND, a, b)

    def or_(self, a: Operand, b: Operand) -> VReg:
        return self._binop(Opcode.OR, a, b)

    def xor(self, a: Operand, b: Operand) -> VReg:
        return self._binop(Opcode.XOR, a, b)

    def shl(self, a: Operand, b: Operand) -> VReg:
        return self._binop(Opcode.SHL, a, b)

    def shr(self, a: Operand, b: Operand) -> VReg:
        return self._binop(Opcode.SHR, a, b)

    def neg(self, a: Operand) -> VReg:
        return self._unop(Opcode.NEG, a)

    def not_(self, a: Operand) -> VReg:
        return self._unop(Opcode.NOT, a)

    def mov(self, src: Operand, dest: VReg | None = None) -> VReg:
        if dest is None:
            dest = self.fn.new_vreg()
        self.emit(Instruction(Opcode.MOV, dest=dest, srcs=(src,)))
        return dest

    def mov_to(self, dest: VReg, src: Operand) -> Instruction:
        op = Opcode.FMOV if dest.is_float else Opcode.MOV
        return self.emit(Instruction(op, dest=dest, srcs=(src,)))

    def cmp(self, cond: str, a: Operand, b: Operand) -> VReg:
        return self._binop(opcode_for_condition(OpCategory.CMP, cond), a, b)

    # ----- float ----------------------------------------------------------

    def fadd(self, a: Operand, b: Operand) -> VReg:
        return self._binop(Opcode.FADD, a, b, RegClass.FLOAT)

    def fsub(self, a: Operand, b: Operand) -> VReg:
        return self._binop(Opcode.FSUB, a, b, RegClass.FLOAT)

    def fmul(self, a: Operand, b: Operand) -> VReg:
        return self._binop(Opcode.FMUL, a, b, RegClass.FLOAT)

    def fdiv(self, a: Operand, b: Operand) -> VReg:
        return self._binop(Opcode.FDIV, a, b, RegClass.FLOAT)

    def fmov(self, src: Operand, dest: VReg | None = None) -> VReg:
        if dest is None:
            dest = self.fn.new_vreg(RegClass.FLOAT)
        self.emit(Instruction(Opcode.FMOV, dest=dest, srcs=(src,)))
        return dest

    def cvt_if(self, a: Operand) -> VReg:
        return self._unop(Opcode.CVT_IF, a, RegClass.FLOAT)

    def cvt_fi(self, a: Operand) -> VReg:
        return self._unop(Opcode.CVT_FI, a)

    def fcmp(self, cond: str, a: Operand, b: Operand) -> VReg:
        return self._binop(opcode_for_condition(OpCategory.FCMP, cond), a, b)

    # ----- memory ---------------------------------------------------------

    def load(self, base: Operand, offset: Operand,
             byte: bool = False) -> VReg:
        op = Opcode.LOAD_B if byte else Opcode.LOAD
        return self._binop(op, base, offset)

    def fload(self, base: Operand, offset: Operand) -> VReg:
        return self._binop(Opcode.FLOAD, base, offset, RegClass.FLOAT)

    def store(self, base: Operand, offset: Operand, src: Operand,
              byte: bool = False) -> Instruction:
        op = Opcode.STORE_B if byte else Opcode.STORE
        return self.emit(Instruction(op, srcs=(base, offset, src)))

    def fstore(self, base: Operand, offset: Operand,
               src: Operand) -> Instruction:
        return self.emit(Instruction(Opcode.FSTORE, srcs=(base, offset, src)))

    def global_addr(self, name: str, offset: int = 0) -> GlobalAddr:
        return GlobalAddr(name, offset)

    # ----- control --------------------------------------------------------

    def branch(self, cond: str, a: Operand, b: Operand,
               target: str) -> Instruction:
        op = opcode_for_condition(OpCategory.BRANCH, cond)
        return self.emit(Instruction(op, srcs=(a, b), target=target))

    def beq(self, a: Operand, b: Operand, target: str) -> Instruction:
        return self.branch("eq", a, b, target)

    def bne(self, a: Operand, b: Operand, target: str) -> Instruction:
        return self.branch("ne", a, b, target)

    def blt(self, a: Operand, b: Operand, target: str) -> Instruction:
        return self.branch("lt", a, b, target)

    def bge(self, a: Operand, b: Operand, target: str) -> Instruction:
        return self.branch("ge", a, b, target)

    def jump(self, target: str) -> Instruction:
        return self.emit(Instruction(Opcode.JUMP, target=target))

    def call(self, callee: str, args: tuple[Operand, ...] = (),
             returns_float: bool = False,
             want_result: bool = True) -> VReg | None:
        dest = None
        if want_result:
            rclass = RegClass.FLOAT if returns_float else RegClass.INT
            dest = self.fn.new_vreg(rclass)
        self.emit(Instruction(Opcode.JSR, dest=dest, srcs=tuple(args),
                              target=callee))
        return dest

    def ret(self, value: Operand | None = None) -> Instruction:
        srcs = (value,) if value is not None else ()
        return self.emit(Instruction(Opcode.RET, srcs=srcs))

    # ----- predication ----------------------------------------------------

    def pred_define(self, cond: str, a: Operand, b: Operand,
                    pdests: tuple[PredDest, ...],
                    guard: PReg | None = None) -> Instruction:
        op = opcode_for_condition(OpCategory.PREDDEF, cond)
        inst = Instruction(op, srcs=(a, b), pdests=pdests, pred=guard)
        self.block.append(inst)
        return inst

    def pred_clear(self) -> Instruction:
        inst = Instruction(Opcode.PRED_CLEAR)
        self.block.append(inst)
        return inst

    def cmov(self, dest: VReg, src: Operand, cond: Operand,
             complement: bool = False) -> Instruction:
        if dest.is_float:
            op = Opcode.FCMOV_COM if complement else Opcode.FCMOV
        else:
            op = Opcode.CMOV_COM if complement else Opcode.CMOV
        return self.emit(Instruction(op, dest=dest, srcs=(src, cond)))

    def select(self, dest: VReg, a: Operand, b: Operand,
               cond: Operand) -> Instruction:
        op = Opcode.FSELECT if dest.is_float else Opcode.SELECT
        return self.emit(Instruction(op, dest=dest, srcs=(a, b, cond)))
