"""IR instructions, including full-predication extensions.

Every instruction may carry a *guard predicate* (``pred``), matching the
full-predication model in which each opcode gains an extra predicate
source operand (paper Section 2.1).  Predicate define instructions have up
to two typed predicate destinations following the HPL PlayDoh semantics.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from repro.ir.opcodes import (OpCategory, Opcode, category, has_side_effects,
                              is_control, CONDITION)
from repro.ir.operands import GlobalAddr, Imm, Operand, PReg, VReg


class PType(enum.Enum):
    """Predicate define destination types (paper Table 1).

    ``U``/``U_BAR`` always write; ``OR``/``OR_BAR`` may only set to 1;
    ``AND``/``AND_BAR`` may only clear to 0.
    """

    U = "U"
    U_BAR = "U~"
    OR = "OR"
    OR_BAR = "OR~"
    AND = "AND"
    AND_BAR = "AND~"

    @property
    def complement(self) -> "PType":
        return _COMPLEMENT[self]

    @property
    def is_bar(self) -> bool:
        return self in (PType.U_BAR, PType.OR_BAR, PType.AND_BAR)


_COMPLEMENT = {
    PType.U: PType.U_BAR, PType.U_BAR: PType.U,
    PType.OR: PType.OR_BAR, PType.OR_BAR: PType.OR,
    PType.AND: PType.AND_BAR, PType.AND_BAR: PType.AND,
}


@dataclass(frozen=True, slots=True)
class PredDest:
    """One typed destination of a predicate define instruction."""

    reg: PReg
    ptype: PType

    def __repr__(self) -> str:
        return f"{self.reg}<{self.ptype.value}>"


_ids = itertools.count()


def ensure_uid_headroom(minimum: int) -> None:
    """Advance the uid allocator strictly past ``minimum``.

    Artifacts loaded from the cache carry uids allocated by *another*
    process whose counter state this process does not share.  Before any
    further allocation (tail duplication's ``fresh_copy``), the loader
    must reserve headroom past the adopted uids, or new instructions
    would collide with loaded ones and corrupt the uid-keyed
    address/trace correlation.
    """
    global _ids
    nxt = next(_ids)
    if minimum + 1 > nxt:
        nxt = minimum + 1
    _ids = itertools.count(nxt)


@dataclass(eq=False, slots=True)
class Instruction:
    """A single IR instruction.

    Attributes:
        op: the opcode.
        dest: destination register, or None.
        srcs: source operands (registers, immediates, global addresses).
        pred: guard predicate register, or None for always-execute.
        pdests: typed predicate destinations (predicate defines only).
        target: branch/jump target label, or callee name for JSR.
        speculative: True for the silent (non-excepting) version of the
            opcode, used for speculated instructions.
        uid: unique id, stable across copies for trace correlation.
    """

    op: Opcode
    dest: VReg | None = None
    srcs: tuple[Operand, ...] = ()
    pred: PReg | None = None
    pdests: tuple[PredDest, ...] = ()
    target: str | None = None
    speculative: bool = False
    #: alias hint: name of the single global object this memory access
    #: can touch (set by lowerings that obscure the address, e.g. the
    #: partial-predication $safe_addr store conversion)
    mem_hint: str | None = None
    uid: int = field(default_factory=lambda: next(_ids))

    # ----- structural queries -------------------------------------------

    @property
    def cat(self) -> OpCategory:
        return category(self.op)

    @property
    def is_branch(self) -> bool:
        return self.cat is OpCategory.BRANCH

    @property
    def is_control(self) -> bool:
        return is_control(self.op)

    @property
    def is_terminator(self) -> bool:
        """True if control never falls through (unpredicated jump/ret)."""
        return (self.cat in (OpCategory.JUMP, OpCategory.RET)
                and self.pred is None)

    @property
    def is_pred_define(self) -> bool:
        return self.cat in (OpCategory.PREDDEF, OpCategory.PREDSET)

    @property
    def is_conditional_write(self) -> bool:
        """True when the destination may keep its old value: guarded
        instructions and conditional moves (but not selects, which
        always write)."""
        return self.pred is not None or self.cat is OpCategory.CMOV

    @property
    def condition(self) -> str | None:
        """Comparison condition name for compare-flavoured opcodes."""
        return CONDITION.get(self.op)

    def defined_regs(self) -> tuple[VReg | PReg, ...]:
        """All registers written by this instruction."""
        regs: list[VReg | PReg] = []
        if self.dest is not None:
            regs.append(self.dest)
        regs.extend(pd.reg for pd in self.pdests)
        return tuple(regs)

    def used_regs(self) -> tuple[VReg | PReg, ...]:
        """All registers read by this instruction (guard included)."""
        regs: list[VReg | PReg] = [s for s in self.srcs
                                   if isinstance(s, (VReg, PReg))]
        if self.pred is not None:
            regs.append(self.pred)
        # OR/AND-type predicate destinations read-modify-write the register.
        for pd in self.pdests:
            if pd.ptype is not PType.U and pd.ptype is not PType.U_BAR:
                regs.append(pd.reg)
        # Conditional moves implicitly read their destination: when the
        # condition blocks the move, the old value must survive.
        if self.cat is OpCategory.CMOV and self.dest is not None:
            regs.append(self.dest)
        return tuple(regs)

    @property
    def is_pure(self) -> bool:
        """True if removing the instruction only loses its dest value(s)."""
        return not has_side_effects(self.op) and not self.is_control

    def copy(self, **overrides: object) -> "Instruction":
        """Shallow copy with field overrides; keeps the same ``uid``."""
        fields = dict(op=self.op, dest=self.dest, srcs=self.srcs,
                      pred=self.pred, pdests=self.pdests, target=self.target,
                      speculative=self.speculative, mem_hint=self.mem_hint,
                      uid=self.uid)
        fields.update(overrides)
        return Instruction(**fields)  # type: ignore[arg-type]

    def fresh_copy(self, **overrides: object) -> "Instruction":
        """Copy with a new ``uid`` (for tail duplication)."""
        inst = self.copy(**overrides)
        inst.uid = next(_ids)
        return inst

    # ----- rewriting ----------------------------------------------------

    def replace_srcs(self, mapping: dict[Operand, Operand]) -> None:
        """Substitute source operands (guard included) in place."""
        self.srcs = tuple(mapping.get(s, s) for s in self.srcs)
        if self.pred is not None and self.pred in mapping:
            new = mapping[self.pred]
            assert isinstance(new, PReg)
            self.pred = new

    # ----- display ------------------------------------------------------

    def __repr__(self) -> str:
        parts: list[str] = [self.op.value]
        if self.speculative:
            parts[0] += ".s"
        operands: list[str] = []
        if self.pdests:
            operands.extend(repr(pd) for pd in self.pdests)
        if self.dest is not None:
            operands.append(repr(self.dest))
        operands.extend(repr(s) for s in self.srcs)
        if self.target is not None:
            operands.append(self.target)
        text = f"{parts[0]} " + ", ".join(operands) if operands \
            else parts[0]
        if self.pred is not None:
            text += f" ({self.pred})"
        return text.strip()
