"""Executable intermediate representation: a generic load/store ILP ISA
with full- and partial-predication extensions."""

from repro.ir.builder import IRBuilder
from repro.ir.function import (BasicBlock, Function, GlobalVar, IRError,
                               Program)
from repro.ir.instruction import Instruction, PredDest, PType
from repro.ir.opcodes import OpCategory, Opcode, category, inverse
from repro.ir.operands import GlobalAddr, Imm, Operand, PReg, RegClass, VReg
from repro.ir.printer import format_block, format_function, format_program
from repro.ir.verifier import ISALevel, VerificationError, verify_program

__all__ = [
    "BasicBlock", "Function", "GlobalVar", "GlobalAddr", "IRBuilder",
    "IRError", "ISALevel", "Imm", "Instruction", "OpCategory", "Opcode",
    "Operand", "PReg", "PType", "PredDest", "Program", "RegClass", "VReg",
    "VerificationError", "category", "format_block", "format_function",
    "format_program", "inverse", "verify_program",
]
