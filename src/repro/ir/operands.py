"""Operand kinds for the generic load/store IR.

The IR models the instruction set of the paper's baseline architecture: a
generic load/store ISA with integer and floating-point virtual registers,
plus the 1-bit predicate register file added by the full-predication ISA
extension (Section 2.1 of the paper).

All operand objects are immutable and hashable so they can be used as
dictionary keys in dataflow analyses.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class RegClass(enum.Enum):
    """Architectural register classes."""

    INT = "r"
    FLOAT = "f"
    PRED = "p"


@dataclass(frozen=True, slots=True)
class VReg:
    """A virtual register.

    The paper's baseline processor assumes an infinite register file, so the
    compiler never runs out of virtual registers and no spilling is modelled.
    """

    index: int
    rclass: RegClass = RegClass.INT

    def __repr__(self) -> str:
        return f"{self.rclass.value}{self.index}"

    @property
    def is_float(self) -> bool:
        return self.rclass is RegClass.FLOAT

    @property
    def is_pred(self) -> bool:
        return self.rclass is RegClass.PRED


@dataclass(frozen=True, slots=True)
class PReg:
    """A 1-bit predicate register from the predicate register file."""

    index: int

    def __repr__(self) -> str:
        return f"p{self.index}"

    @property
    def is_pred(self) -> bool:
        return True


@dataclass(frozen=True, slots=True)
class Imm:
    """An immediate (literal) operand; int or float."""

    value: int | float

    def __repr__(self) -> str:
        return f"#{self.value}"


@dataclass(frozen=True, slots=True)
class GlobalAddr:
    """Symbolic address of a global object, resolved at load time.

    ``offset`` is a byte offset into the object, used e.g. for the
    ``$safe_addr`` scratch slot of the partial-predication store conversion.
    """

    name: str
    offset: int = 0

    def __repr__(self) -> str:
        if self.offset:
            return f"@{self.name}+{self.offset}"
        return f"@{self.name}"


Operand = VReg | PReg | Imm | GlobalAddr
"""Anything that may appear in an instruction source position."""


def is_register(op: object) -> bool:
    """True for register operands (integer, float, or predicate)."""
    return isinstance(op, (VReg, PReg))
