"""Opcode definitions and metadata for the generic load/store ISA.

The opcode set covers the paper's three architectural models:

* the **baseline** ISA (integer/float arithmetic, logic, comparisons,
  memory, branches) including silent (non-excepting) execution for
  speculation support;
* the **partial predication** extension: ``cmov``, ``cmov_com`` and
  ``select`` (Section 2.2);
* the **full predication** extension: predicate define opcodes with
  two typed destinations, ``pred_clear``/``pred_set`` (Section 2.1).

Opcode metadata (category, commutativity, comparison function, inverse
comparison) drives the optimizer, the partial-predication lowering, the
scheduler, and the emulator without per-pass opcode switch statements.
"""

from __future__ import annotations

import enum


class OpCategory(enum.Enum):
    """Coarse behaviour class of an opcode."""

    ALU = "alu"            # int arithmetic / logic / moves
    CMP = "cmp"            # int comparisons producing 0/1
    FALU = "falu"          # float arithmetic / moves / conversions
    FCMP = "fcmp"          # float comparisons producing 0/1 int
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"      # conditional branches
    JUMP = "jump"          # unconditional jumps
    CALL = "call"
    RET = "ret"
    PREDDEF = "preddef"    # predicate define instructions
    PREDSET = "predset"    # pred_clear / pred_set
    CMOV = "cmov"          # cmov / cmov_com (partial predication)
    SELECT = "select"
    NOP = "nop"


class Opcode(enum.Enum):
    # --- integer ALU ---
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    REM = "rem"
    NEG = "neg"
    MOV = "mov"
    AND = "and"
    OR = "or"
    XOR = "xor"
    NOT = "not"
    SHL = "shl"
    SHR = "shr"
    AND_NOT = "and_not"    # dest = src1 & !src2 (logical, 0/1 second operand)
    OR_NOT = "or_not"      # dest = src1 | !src2
    # --- integer comparisons (dest = 0/1) ---
    CMP_EQ = "eq"
    CMP_NE = "ne"
    CMP_LT = "lt"
    CMP_LE = "le"
    CMP_GT = "gt"
    CMP_GE = "ge"
    # --- floating point ---
    FADD = "add_f"
    FSUB = "sub_f"
    FMUL = "mul_f"
    FDIV = "div_f"
    FNEG = "neg_f"
    FMOV = "mov_f"
    CVT_IF = "cvt_if"      # int -> float
    CVT_FI = "cvt_fi"      # float -> int (truncate)
    # --- float comparisons (int 0/1 dest) ---
    FCMP_EQ = "eq_f"
    FCMP_NE = "ne_f"
    FCMP_LT = "lt_f"
    FCMP_LE = "le_f"
    FCMP_GT = "gt_f"
    FCMP_GE = "ge_f"
    # --- memory ---
    LOAD = "load"          # dest, base, offset   (32-bit word)
    LOAD_B = "load_b"      # dest, base, offset   (unsigned byte)
    FLOAD = "load_f"
    STORE = "store"        # base, offset, src
    STORE_B = "store_b"
    FSTORE = "store_f"
    # --- control ---
    BEQ = "beq"
    BNE = "bne"
    BLT = "blt"
    BLE = "ble"
    BGT = "bgt"
    BGE = "bge"
    JUMP = "jump"
    JSR = "jsr"
    RET = "ret"
    # --- full predication ---
    PRED_EQ = "pred_eq"
    PRED_NE = "pred_ne"
    PRED_LT = "pred_lt"
    PRED_LE = "pred_le"
    PRED_GT = "pred_gt"
    PRED_GE = "pred_ge"
    PRED_CLEAR = "pred_clear"
    PRED_SET = "pred_set"
    # --- partial predication ---
    CMOV = "cmov"          # dest, src, cond : if cond != 0 dest = src
    CMOV_COM = "cmov_com"  # dest, src, cond : if cond == 0 dest = src
    FCMOV = "cmov_f"
    FCMOV_COM = "cmov_com_f"
    SELECT = "select"      # dest, src1, src2, cond
    FSELECT = "select_f"
    # --- misc ---
    NOP = "nop"


_CATEGORY: dict[Opcode, OpCategory] = {}
for _op in (Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV, Opcode.REM,
            Opcode.NEG, Opcode.MOV, Opcode.AND, Opcode.OR, Opcode.XOR,
            Opcode.NOT, Opcode.SHL, Opcode.SHR, Opcode.AND_NOT,
            Opcode.OR_NOT):
    _CATEGORY[_op] = OpCategory.ALU
for _op in (Opcode.CMP_EQ, Opcode.CMP_NE, Opcode.CMP_LT, Opcode.CMP_LE,
            Opcode.CMP_GT, Opcode.CMP_GE):
    _CATEGORY[_op] = OpCategory.CMP
for _op in (Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV,
            Opcode.FNEG, Opcode.FMOV, Opcode.CVT_IF, Opcode.CVT_FI):
    _CATEGORY[_op] = OpCategory.FALU
for _op in (Opcode.FCMP_EQ, Opcode.FCMP_NE, Opcode.FCMP_LT, Opcode.FCMP_LE,
            Opcode.FCMP_GT, Opcode.FCMP_GE):
    _CATEGORY[_op] = OpCategory.FCMP
for _op in (Opcode.LOAD, Opcode.LOAD_B, Opcode.FLOAD):
    _CATEGORY[_op] = OpCategory.LOAD
for _op in (Opcode.STORE, Opcode.STORE_B, Opcode.FSTORE):
    _CATEGORY[_op] = OpCategory.STORE
for _op in (Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BLE, Opcode.BGT,
            Opcode.BGE):
    _CATEGORY[_op] = OpCategory.BRANCH
_CATEGORY[Opcode.JUMP] = OpCategory.JUMP
_CATEGORY[Opcode.JSR] = OpCategory.CALL
_CATEGORY[Opcode.RET] = OpCategory.RET
for _op in (Opcode.PRED_EQ, Opcode.PRED_NE, Opcode.PRED_LT, Opcode.PRED_LE,
            Opcode.PRED_GT, Opcode.PRED_GE):
    _CATEGORY[_op] = OpCategory.PREDDEF
for _op in (Opcode.PRED_CLEAR, Opcode.PRED_SET):
    _CATEGORY[_op] = OpCategory.PREDSET
for _op in (Opcode.CMOV, Opcode.CMOV_COM, Opcode.FCMOV, Opcode.FCMOV_COM):
    _CATEGORY[_op] = OpCategory.CMOV
for _op in (Opcode.SELECT, Opcode.FSELECT):
    _CATEGORY[_op] = OpCategory.SELECT
_CATEGORY[Opcode.NOP] = OpCategory.NOP


def category(op: Opcode) -> OpCategory:
    """Return the behaviour category of ``op``."""
    return _CATEGORY[op]


COMMUTATIVE: frozenset[Opcode] = frozenset({
    Opcode.ADD, Opcode.MUL, Opcode.AND, Opcode.OR, Opcode.XOR,
    Opcode.CMP_EQ, Opcode.CMP_NE, Opcode.FADD, Opcode.FMUL,
    Opcode.FCMP_EQ, Opcode.FCMP_NE,
})

#: Comparison condition implemented by each comparison-flavoured opcode.
#: Shared by CMP_*, FCMP_*, B**, and PRED_* families.
CONDITION: dict[Opcode, str] = {
    Opcode.CMP_EQ: "eq", Opcode.CMP_NE: "ne", Opcode.CMP_LT: "lt",
    Opcode.CMP_LE: "le", Opcode.CMP_GT: "gt", Opcode.CMP_GE: "ge",
    Opcode.FCMP_EQ: "eq", Opcode.FCMP_NE: "ne", Opcode.FCMP_LT: "lt",
    Opcode.FCMP_LE: "le", Opcode.FCMP_GT: "gt", Opcode.FCMP_GE: "ge",
    Opcode.BEQ: "eq", Opcode.BNE: "ne", Opcode.BLT: "lt",
    Opcode.BLE: "le", Opcode.BGT: "gt", Opcode.BGE: "ge",
    Opcode.PRED_EQ: "eq", Opcode.PRED_NE: "ne", Opcode.PRED_LT: "lt",
    Opcode.PRED_LE: "le", Opcode.PRED_GT: "gt", Opcode.PRED_GE: "ge",
}

_INVERSE_COND = {"eq": "ne", "ne": "eq", "lt": "ge", "ge": "lt",
                 "gt": "le", "le": "gt"}

_SWAPPED_COND = {"eq": "eq", "ne": "ne", "lt": "gt", "gt": "lt",
                 "le": "ge", "ge": "le"}

_BY_COND: dict[tuple[OpCategory, str], Opcode] = {
    (category(op), cond): op for op, cond in CONDITION.items()
}


def opcode_for_condition(cat: OpCategory, cond: str) -> Opcode:
    """Opcode of category ``cat`` implementing comparison ``cond``."""
    return _BY_COND[(cat, cond)]


def inverse(op: Opcode) -> Opcode:
    """The opcode computing the logical negation of comparison ``op``.

    Used by the partial-predication lowering to eliminate one of two
    complementary comparisons (the paper's comparison-inversion peephole).
    """
    return _BY_COND[(category(op), _INVERSE_COND[CONDITION[op]])]


def swapped(op: Opcode) -> Opcode:
    """The opcode equivalent to ``op`` with its two operands exchanged."""
    return _BY_COND[(category(op), _SWAPPED_COND[CONDITION[op]])]


#: Opcodes whose normal (non-silent) execution may raise a program
#: terminating exception.  Silent versions of these exist in the baseline
#: ISA for speculation support (paper Section 4.1).
MAY_EXCEPT: frozenset[Opcode] = frozenset({
    Opcode.DIV, Opcode.REM, Opcode.FDIV,
    Opcode.LOAD, Opcode.LOAD_B, Opcode.FLOAD,
})


def has_side_effects(op: Opcode) -> bool:
    """True if the instruction does more than write its destination."""
    return category(op) in (OpCategory.STORE, OpCategory.BRANCH,
                            OpCategory.JUMP, OpCategory.CALL, OpCategory.RET,
                            OpCategory.PREDSET)


def is_control(op: Opcode) -> bool:
    """True for instructions that may transfer control."""
    return category(op) in (OpCategory.BRANCH, OpCategory.JUMP,
                            OpCategory.CALL, OpCategory.RET)


def writes_float(op: Opcode) -> bool:
    """True if the destination register is a float register."""
    return op in (Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV,
                  Opcode.FNEG, Opcode.FMOV, Opcode.CVT_IF, Opcode.FLOAD,
                  Opcode.FCMOV, Opcode.FCMOV_COM, Opcode.FSELECT)
