"""Structural verification of IR programs.

The verifier enforces both generic well-formedness (branch targets exist,
register classes match operand positions) and the *ISA subset* rules of
each processor model: baseline/superblock code must contain no predicate
machinery at all, conditional-move code may use cmov/select but no
predicate registers, and only full-predication code may use guards and
predicate defines (paper Section 4.1's three processor models).
"""

from __future__ import annotations

import enum

from repro.ir.function import Function, IRError, Program
from repro.ir.instruction import Instruction
from repro.ir.opcodes import OpCategory, Opcode
from repro.ir.operands import GlobalAddr, Imm, PReg, VReg


class ISALevel(enum.Enum):
    """Architectural predication support levels (the three models)."""

    BASELINE = "superblock"
    PARTIAL = "cmov"
    FULL = "fullpred"


class VerificationError(IRError):
    """The IR violates a structural or ISA-subset rule."""


_SRC_COUNTS: dict[OpCategory, tuple[int, ...]] = {
    OpCategory.ALU: (1, 2),
    OpCategory.CMP: (2,),
    OpCategory.FALU: (1, 2),
    OpCategory.FCMP: (2,),
    OpCategory.LOAD: (2,),
    OpCategory.STORE: (3,),
    OpCategory.BRANCH: (2,),
    OpCategory.JUMP: (0,),
    OpCategory.RET: (0, 1),
    OpCategory.PREDDEF: (2,),
    OpCategory.PREDSET: (0,),
    OpCategory.CMOV: (2,),
    OpCategory.SELECT: (3,),
    OpCategory.NOP: (0,),
}


def _check_instruction(inst: Instruction, fn: Function,
                       labels: set[str], level: ISALevel) -> None:
    cat = inst.cat
    if cat is not OpCategory.CALL:
        allowed = _SRC_COUNTS[cat]
        if len(inst.srcs) not in allowed:
            raise VerificationError(
                f"{fn.name}: {inst!r}: expected {allowed} sources, "
                f"got {len(inst.srcs)}")
    if cat in (OpCategory.BRANCH, OpCategory.JUMP):
        if inst.target not in labels:
            raise VerificationError(
                f"{fn.name}: {inst!r}: unknown target {inst.target!r}")
    if cat is OpCategory.CALL and inst.target is None:
        raise VerificationError(f"{fn.name}: {inst!r}: call without callee")
    # ISA subset rules.
    if level is not ISALevel.FULL:
        if inst.pred is not None:
            raise VerificationError(
                f"{fn.name}: {inst!r}: guard predicate not available at "
                f"ISA level {level.value}")
        if cat in (OpCategory.PREDDEF, OpCategory.PREDSET):
            raise VerificationError(
                f"{fn.name}: {inst!r}: predicate defines not available at "
                f"ISA level {level.value}")
        if any(isinstance(s, PReg) for s in inst.srcs):
            raise VerificationError(
                f"{fn.name}: {inst!r}: predicate register operand not "
                f"available at ISA level {level.value}")
    if level is ISALevel.BASELINE:
        if cat in (OpCategory.CMOV, OpCategory.SELECT):
            raise VerificationError(
                f"{fn.name}: {inst!r}: conditional moves not available at "
                f"ISA level {level.value}")
    # Predicate defines must have 1..2 distinct typed destinations.
    if cat is OpCategory.PREDDEF:
        if not 1 <= len(inst.pdests) <= 2:
            raise VerificationError(
                f"{fn.name}: {inst!r}: predicate define needs 1-2 pdests")
        if len({pd.reg for pd in inst.pdests}) != len(inst.pdests):
            raise VerificationError(
                f"{fn.name}: {inst!r}: predicate define writes the same "
                f"predicate register twice")
    elif cat is not OpCategory.PREDSET and inst.pdests:
        raise VerificationError(
            f"{fn.name}: {inst!r}: only predicate defines take pdests")
    # Stores are irreversible side effects: never speculative.
    if cat is OpCategory.STORE and inst.speculative:
        raise VerificationError(
            f"{fn.name}: {inst!r}: stores cannot be speculative")


def verify_function(fn: Function, program: Program,
                    level: ISALevel = ISALevel.FULL) -> None:
    if not fn.blocks:
        raise VerificationError(f"function {fn.name} has no blocks")
    labels = {b.name for b in fn.blocks}
    if len(labels) != len(fn.blocks):
        raise VerificationError(f"duplicate block labels in {fn.name}")
    for block in fn.blocks:
        seen_control = False
        for inst in block.instructions:
            _check_instruction(inst, fn, labels, level)
            if inst.op is Opcode.JSR:
                if inst.target not in program.functions:
                    raise VerificationError(
                        f"{fn.name}: call to unknown function "
                        f"{inst.target!r}")
                callee = program.functions[inst.target]
                if len(inst.srcs) != len(callee.params):
                    raise VerificationError(
                        f"{fn.name}: call to {inst.target} with "
                        f"{len(inst.srcs)} args, expected "
                        f"{len(callee.params)}")
            for src in inst.srcs:
                if not isinstance(src, (VReg, PReg, Imm, GlobalAddr)):
                    raise VerificationError(
                        f"{fn.name}: {inst!r}: bad operand {src!r}")
            if inst.is_terminator:
                seen_control = True
            elif seen_control:
                raise VerificationError(
                    f"{fn.name}/{block.name}: instruction {inst!r} after "
                    f"an unconditional terminator")
    # The last block must not fall off the end of the function.
    last = fn.blocks[-1]
    if last.terminator is None or not last.instructions[-1].is_terminator:
        raise VerificationError(
            f"{fn.name}: control falls off the end of block {last.name}")


def verify_program(program: Program,
                   level: ISALevel = ISALevel.FULL) -> None:
    """Verify every function; raise :class:`VerificationError` on failure."""
    if program.entry not in program.functions:
        raise VerificationError(f"no entry function {program.entry!r}")
    for fn in program.functions.values():
        verify_function(fn, program, level)
