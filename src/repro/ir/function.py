"""Basic blocks, functions, CFG and whole programs."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.instruction import Instruction
from repro.ir.opcodes import OpCategory, Opcode
from repro.ir.operands import PReg, RegClass, VReg


class IRError(Exception):
    """Structural error in the IR."""


@dataclass(eq=False)
class BasicBlock:
    """A basic block: straight-line instructions plus a terminator region.

    Control may leave mid-block only through hyperblock exit branches;
    before region formation blocks have at most one branch + one jump at
    the end.
    """

    name: str
    instructions: list[Instruction] = field(default_factory=list)

    def append(self, inst: Instruction) -> Instruction:
        self.instructions.append(inst)
        return inst

    @property
    def terminator(self) -> Instruction | None:
        """The final control instruction, if any."""
        if self.instructions and self.instructions[-1].is_control:
            return self.instructions[-1]
        return None

    def branch_instructions(self) -> list[Instruction]:
        """All control-transfer instructions in the block, in order."""
        return [i for i in self.instructions if i.is_control]

    def successor_labels(self, layout_next: str | None) -> list[str]:
        """Labels this block may transfer control to.

        ``layout_next`` is the label of the next block in layout order
        (the fall-through target), or None at the end of the function.
        """
        succs: list[str] = []
        falls_through = True
        for inst in self.instructions:
            if inst.cat is OpCategory.BRANCH and inst.target:
                succs.append(inst.target)
            elif inst.op is Opcode.JUMP and inst.target:
                succs.append(inst.target)
                if inst.pred is None:
                    falls_through = False
                    break
            elif inst.op is Opcode.RET and inst.pred is None:
                falls_through = False
                break
        if falls_through and layout_next is not None:
            succs.append(layout_next)
        # Deduplicate, preserving order.
        seen: set[str] = set()
        out: list[str] = []
        for s in succs:
            if s not in seen:
                seen.add(s)
                out.append(s)
        return out

    def __repr__(self) -> str:
        return f"<block {self.name}: {len(self.instructions)} insts>"


@dataclass(eq=False)
class Function:
    """A function: ordered blocks plus virtual register allocation state.

    Block order is the *layout* order: a block without a terminator falls
    through to the next block in ``blocks``.
    """

    name: str
    params: list[VReg] = field(default_factory=list)
    blocks: list[BasicBlock] = field(default_factory=list)
    next_vreg: int = 0
    next_preg: int = 1          # p0 reserved as "always true" if needed
    returns_float: bool = False

    # ----- construction -------------------------------------------------

    def new_block(self, name: str) -> BasicBlock:
        if any(b.name == name for b in self.blocks):
            raise IRError(f"duplicate block name {name!r} in {self.name}")
        block = BasicBlock(name)
        self.blocks.append(block)
        return block

    def new_vreg(self, rclass: RegClass = RegClass.INT) -> VReg:
        reg = VReg(self.next_vreg, rclass)
        self.next_vreg += 1
        return reg

    def new_preg(self) -> PReg:
        reg = PReg(self.next_preg)
        self.next_preg += 1
        return reg

    # ----- CFG ----------------------------------------------------------

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise IRError(f"function {self.name} has no blocks")
        return self.blocks[0]

    def block(self, name: str) -> BasicBlock:
        for b in self.blocks:
            if b.name == name:
                return b
        raise IRError(f"no block named {name!r} in {self.name}")

    def layout_next(self, block: BasicBlock) -> str | None:
        """Label of the fall-through successor in layout order."""
        idx = self.blocks.index(block)
        if idx + 1 < len(self.blocks):
            return self.blocks[idx + 1].name
        return None

    def successors(self, block: BasicBlock) -> list[BasicBlock]:
        return [self.block(lbl)
                for lbl in block.successor_labels(self.layout_next(block))]

    def predecessors_map(self) -> dict[str, list[BasicBlock]]:
        preds: dict[str, list[BasicBlock]] = {b.name: [] for b in self.blocks}
        for b in self.blocks:
            for s in b.successor_labels(self.layout_next(b)):
                if s in preds:
                    preds[s].append(b)
                else:
                    raise IRError(f"branch to unknown block {s!r}")
        return preds

    def all_instructions(self):
        """Iterate over every instruction in layout order."""
        for b in self.blocks:
            yield from b.instructions

    def __repr__(self) -> str:
        return f"<function {self.name}: {len(self.blocks)} blocks>"


@dataclass(eq=False)
class GlobalVar:
    """A global data object.

    ``elem_size`` is 1 (bytes), 4 (ints) or 8 (floats); ``count`` is the
    number of elements.  ``init`` optionally provides initial values.
    """

    name: str
    elem_size: int
    count: int
    init: list[int | float] | None = None
    is_float: bool = False

    @property
    def byte_size(self) -> int:
        return self.elem_size * self.count


@dataclass(eq=False)
class Program:
    """A whole program: functions plus global data declarations."""

    functions: dict[str, Function] = field(default_factory=dict)
    globals: dict[str, GlobalVar] = field(default_factory=dict)
    entry: str = "main"

    def add_function(self, fn: Function) -> Function:
        if fn.name in self.functions:
            raise IRError(f"duplicate function {fn.name!r}")
        self.functions[fn.name] = fn
        return fn

    def add_global(self, g: GlobalVar) -> GlobalVar:
        if g.name in self.globals:
            raise IRError(f"duplicate global {g.name!r}")
        self.globals[g.name] = g
        return g

    @property
    def main(self) -> Function:
        return self.functions[self.entry]

    def static_size(self) -> int:
        """Total static instruction count."""
        return sum(len(b.instructions)
                   for f in self.functions.values() for b in f.blocks)
