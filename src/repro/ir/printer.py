"""Textual dump of IR programs, functions and blocks."""

from __future__ import annotations

from repro.ir.function import BasicBlock, Function, Program


def format_block(block: BasicBlock, indent: str = "  ",
                 cycles: dict[int, int] | None = None) -> str:
    """Render one block; optionally annotate issue cycles by ``uid``."""
    lines = [f"{block.name}:"]
    for inst in block.instructions:
        text = f"{indent}{inst!r}"
        if cycles is not None and inst.uid in cycles:
            text = f"{text:<58s}; cycle {cycles[inst.uid]}"
        lines.append(text)
    return "\n".join(lines)


def format_function(fn: Function,
                    cycles: dict[int, int] | None = None) -> str:
    params = ", ".join(repr(p) for p in fn.params)
    lines = [f"function {fn.name}({params}):"]
    lines.extend(format_block(b, cycles=cycles) for b in fn.blocks)
    return "\n".join(lines)


def format_program(program: Program) -> str:
    lines = []
    for g in program.globals.values():
        kind = "float" if g.is_float else f"i{g.elem_size * 8}"
        lines.append(f"global {g.name}: {kind}[{g.count}]")
    lines.extend(format_function(f) for f in program.functions.values())
    return "\n\n".join(lines)
