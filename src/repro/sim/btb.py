"""Branch target buffer with 2-bit saturating counters.

The paper's dynamic prediction: a 1K-entry BTB with 2-bit counters and a
2-cycle misprediction penalty.  Conditional branches predict taken when
the entry hits and its counter is in a taken state; a BTB miss predicts
not-taken (no target is known).  Unconditional direct jumps/calls are
resolved at decode and never mispredict.
"""

from __future__ import annotations

from repro.machine.descriptor import BTBConfig


class BranchTargetBuffer:
    """Direct-mapped BTB: tag + 2-bit counter per entry."""

    def __init__(self, config: BTBConfig):
        self.entries = config.entries
        self.penalty = config.mispredict_penalty
        self.tags = [-1] * config.entries
        self.counters = [1] * config.entries
        self.predictions = 0
        self.mispredictions = 0

    def predict_and_update(self, addr: int, taken: bool) -> bool:
        """Process one executed conditional branch.

        Returns True if the branch was mispredicted.
        """
        index = (addr >> 2) % self.entries
        if self.tags[index] == addr:
            predicted_taken = self.counters[index] >= 2
        else:
            predicted_taken = False
        self.predictions += 1
        mispredicted = predicted_taken != taken
        if mispredicted:
            self.mispredictions += 1
        # Update: allocate on taken branches (a not-taken branch that
        # misses leaves no useful target to store).
        if self.tags[index] == addr:
            if taken:
                self.counters[index] = min(3, self.counters[index] + 1)
            else:
                self.counters[index] = max(0, self.counters[index] - 1)
        elif taken:
            self.tags[index] = addr
            self.counters[index] = 2
        return mispredicted
