"""Cycle-level simulation: BTB, caches, in-order issue pipeline."""

from repro.sim.btb import BranchTargetBuffer
from repro.sim.cache import DirectMappedCache
from repro.sim.pipeline import (SimulationStats, assign_addresses,
                                simulate_trace)

__all__ = [
    "BranchTargetBuffer", "DirectMappedCache", "SimulationStats",
    "assign_addresses", "simulate_trace",
]
