"""Direct-mapped caches (paper Section 4.1).

64K direct-mapped instruction and data caches with 64-byte blocks; the
data cache is write-through with no write-allocate, blocking, with a
12-cycle miss penalty.
"""

from __future__ import annotations

from repro.machine.descriptor import CacheConfig


class DirectMappedCache:
    """Tag array only — timing model, data lives in the emulator."""

    def __init__(self, config: CacheConfig):
        self.line_bytes = config.line_bytes
        self.num_lines = config.num_lines
        self.miss_penalty = config.miss_penalty
        self.tags = [-1] * self.num_lines
        self.accesses = 0
        self.misses = 0

    def access(self, addr: int, allocate: bool = True) -> bool:
        """Returns True on hit; fills the line on miss if ``allocate``."""
        line = addr // self.line_bytes
        index = line % self.num_lines
        self.accesses += 1
        if self.tags[index] == line:
            return True
        self.misses += 1
        if allocate:
            self.tags[index] = line
        return False

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0
