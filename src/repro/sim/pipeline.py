"""Trace-driven cycle simulator: in-order k-issue with register
interlocks (paper Section 4.1, "emulation-driven simulation").

The simulator consumes the dynamic trace produced by the emulator and
assigns an issue cycle to every fetched instruction under:

* in-order issue, up to ``issue_width`` instructions per cycle with at
  most ``branch_issue_limit`` control transfers per cycle;
* register interlocks: an instruction stalls until all source operands
  (including its guard predicate and a conditional move's incumbent
  destination value) are available;
* the PA-7100-style latency table;
* a 1K-entry 2-bit-counter BTB with a 2-cycle misprediction penalty on
  executed conditional branches;
* optional 64K direct-mapped I/D caches (64-byte lines, write-through
  no-allocate data cache, 12-cycle miss penalty, blocking).

Nullified (guard-false) instructions consume fetch/issue bandwidth but
produce no result, access no memory, and make no prediction — the
decode/issue suppression model of Section 2.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.emu.trace import TraceEvent
from repro.ir.function import Program
from repro.ir.opcodes import OpCategory, Opcode
from repro.machine.descriptor import MachineDescription
from repro.sim.btb import BranchTargetBuffer
from repro.sim.cache import DirectMappedCache


@dataclass
class SimulationStats:
    """Everything a table or figure needs from one simulated run."""

    cycles: int = 0
    dynamic_instructions: int = 0
    executed_instructions: int = 0
    suppressed_instructions: int = 0
    branches: int = 0
    mispredictions: int = 0
    icache_accesses: int = 0
    icache_misses: int = 0
    dcache_accesses: int = 0
    dcache_misses: int = 0

    @property
    def misprediction_rate(self) -> float:
        return self.mispredictions / self.branches if self.branches else 0.0

    @property
    def ipc(self) -> float:
        return self.dynamic_instructions / self.cycles if self.cycles \
            else 0.0


def assign_addresses(program: Program,
                     instruction_bytes: int = 4) -> dict[int, int]:
    """Lay out every static instruction; returns uid -> byte address."""
    addresses: dict[int, int] = {}
    addr = 0
    for fn in program.functions.values():
        for block in fn.blocks:
            for inst in block.instructions:
                addresses[inst.uid] = addr
                addr += instruction_bytes
    return addresses


def simulate_trace(trace: list[TraceEvent], addresses: dict[int, int],
                   machine: MachineDescription) -> SimulationStats:
    """Assign cycles to a dynamic trace; returns run statistics."""
    stats = SimulationStats()
    btb = BranchTargetBuffer(machine.btb)
    perfect = machine.perfect_caches
    icache = None if perfect else DirectMappedCache(machine.icache)
    dcache = None if perfect else DirectMappedCache(machine.dcache)

    width = machine.issue_width
    branch_limit = machine.branch_issue_limit
    latency_of = machine.latency

    ready: dict = {}
    cur_cycle = 0
    slots = 0
    branch_slots = 0
    fetch_available = 0
    mem_busy_until = 0

    get_addr = addresses.get
    CONTROL = (OpCategory.BRANCH, OpCategory.JUMP, OpCategory.CALL,
               OpCategory.RET)

    for inst, executed, taken, mem_addr, _value in trace:
        op = inst.op
        cat = inst.cat
        stats.dynamic_instructions += 1

        earliest = fetch_available
        # Instruction fetch.
        if icache is not None:
            pc = get_addr(inst.uid, 0)
            if not icache.access(pc):
                # Fetch stalls while the line is filled.
                fill_done = max(cur_cycle, earliest) + icache.miss_penalty
                fetch_available = max(fetch_available, fill_done)
                earliest = max(earliest, fill_done)

        # Operand interlocks.  A nullified instruction still needed its
        # guard at decode; an executed one needs all sources.
        if executed:
            for r in inst.used_regs():
                t = ready.get(r)
                if t is not None and t > earliest:
                    earliest = t
        elif inst.pred is not None:
            t = ready.get(inst.pred)
            if t is not None and t > earliest:
                earliest = t

        # Blocking data cache: memory ops wait for an outstanding miss.
        is_mem = executed and (cat is OpCategory.LOAD
                               or cat is OpCategory.STORE)
        if is_mem and mem_busy_until > earliest:
            earliest = mem_busy_until

        # In-order issue: find the slot.
        t = earliest if earliest > cur_cycle else cur_cycle
        if t == cur_cycle:
            if slots >= width:
                t += 1
            elif cat in CONTROL and executed \
                    and branch_slots >= branch_limit:
                t += 1
        if t > cur_cycle:
            cur_cycle = t
            slots = 0
            branch_slots = 0
        slots += 1
        if cat in CONTROL and executed:
            branch_slots += 1

        # Branch prediction.  Conditional branches and predicated jumps
        # are dynamically conditional: they are predicted at fetch even
        # when the guard later nullifies them (outcome: not taken).
        if cat is OpCategory.BRANCH \
                or (cat is OpCategory.JUMP and inst.pred is not None):
            # Fetched conditional transfers count as dynamic branches
            # whether or not the guard later nullifies them: they occupy
            # a prediction slot either way (and this matches the paper's
            # near-equal branch counts for the two predicated models).
            stats.branches += 1
            outcome = taken if executed else False
            if cat is OpCategory.JUMP:
                outcome = executed
            pc = get_addr(inst.uid, 0)
            if btb.predict_and_update(pc, outcome):
                stats.mispredictions += 1
                fetch_available = max(fetch_available,
                                      t + 1 + btb.penalty)

        if not executed:
            stats.suppressed_instructions += 1
            continue
        stats.executed_instructions += 1

        # Result latency and memory timing.
        lat = latency_of(op)
        if cat is OpCategory.LOAD:
            if dcache is not None and mem_addr >= 0:
                if not dcache.access(mem_addr):
                    lat += dcache.miss_penalty
                    mem_busy_until = t + lat
        elif cat is OpCategory.STORE:
            if dcache is not None and mem_addr >= 0:
                # Write-through, no allocate: a miss neither fills the
                # line nor stalls (store buffer absorbs it).
                dcache.access(mem_addr, allocate=False)

        dest = inst.dest
        if dest is not None:
            ready[dest] = t + lat
        for pd in inst.pdests:
            ready[pd.reg] = t + lat

        # Unpredicated jumps/calls/returns resolve at decode: no bubble,
        # no prediction (their BTB handling happened above when guarded).

    stats.cycles = cur_cycle + 1
    if icache is not None:
        stats.icache_accesses = icache.accesses
        stats.icache_misses = icache.misses
    if dcache is not None:
        stats.dcache_accesses = dcache.accesses
        stats.dcache_misses = dcache.misses
    return stats
