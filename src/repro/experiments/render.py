"""Text renderers producing the paper's tables and figure data."""

from __future__ import annotations

from repro.experiments.runner import ExperimentSuite, mean_speedups
from repro.toolchain import Model

_MODELS = [Model.SUPERBLOCK, Model.CMOV, Model.FULLPRED]


def _fmt_count(n: int) -> str:
    if n >= 1_000_000:
        return f"{n / 1_000_000:.1f}M"
    if n >= 1_000:
        return f"{n / 1_000:.0f}K"
    return str(n)


def render_speedup_figure(table: dict[str, dict[Model, float]],
                          title: str, bar_width: int = 36) -> str:
    """ASCII rendering of one speedup figure (Figures 8-11)."""
    lines = [title, "=" * len(title), ""]
    peak = max(max(row.values()) for row in table.values())
    scale = bar_width / max(peak, 1e-9)
    for name in sorted(table):
        lines.append(name)
        for model in _MODELS:
            value = table[name][model]
            bar = "#" * max(1, int(value * scale))
            lines.append(f"  {model.value:<17s} {value:5.2f} |{bar}")
    lines.append("")
    means = mean_speedups(table)
    mean_text = "  ".join(f"{m.value}: {v:.2f}" for m, v in means.items())
    lines.append(f"arithmetic mean speedup — {mean_text}")
    return "\n".join(lines)


def render_table2(counts: dict[str, dict[Model, int]]) -> str:
    """Dynamic instruction count comparison (paper Table 2)."""
    header = (f"{'Benchmark':<12s} {'Superblk':>10s} "
              f"{'Cond. Move':>16s} {'Full Pred.':>16s}")
    lines = ["Table 2: Dynamic instruction count comparison",
             header, "-" * len(header)]
    for name in sorted(counts):
        row = counts[name]
        base = row[Model.SUPERBLOCK]
        cmov = row[Model.CMOV]
        full = row[Model.FULLPRED]
        lines.append(
            f"{name:<12s} {_fmt_count(base):>10s} "
            f"{_fmt_count(cmov):>9s} ({cmov / base:4.2f}) "
            f"{_fmt_count(full):>9s} ({full / base:4.2f})")
    ratios_cmov = [row[Model.CMOV] / row[Model.SUPERBLOCK]
                   for row in counts.values()]
    ratios_full = [row[Model.FULLPRED] / row[Model.SUPERBLOCK]
                   for row in counts.values()]
    lines.append("-" * len(header))
    lines.append(f"{'mean ratio':<12s} {'1.00':>10s} "
                 f"{sum(ratios_cmov) / len(ratios_cmov):>16.2f} "
                 f"{sum(ratios_full) / len(ratios_full):>16.2f}")
    return "\n".join(lines)


def render_table3(stats: dict[str, dict[Model, tuple[int, int, float]]]
                  ) -> str:
    """Branch statistics comparison (paper Table 3)."""
    header = (f"{'Benchmark':<12s}"
              f"{'BR':>9s}{'MP':>9s}{'MPR':>8s}   "
              f"{'BR':>9s}{'MP':>9s}{'MPR':>8s}   "
              f"{'BR':>9s}{'MP':>9s}{'MPR':>8s}")
    lines = [
        "Table 3: Branch statistics (BR branches, MP mispredictions, "
        "MPR rate)",
        f"{'':12s}{'Superblock':>26s}   {'Conditional Move':>26s}   "
        f"{'Full Predication':>26s}",
        header,
        "-" * len(header),
    ]
    for name in sorted(stats):
        row = stats[name]
        cells = []
        for model in _MODELS:
            br, mp, mpr = row[model]
            cells.append(f"{_fmt_count(br):>9s}{_fmt_count(mp):>9s}"
                         f"{mpr * 100:7.2f}%")
        lines.append(f"{name:<12s}" + "   ".join(cells))
    return "\n".join(lines)


def render_all(suite: ExperimentSuite) -> str:
    """Every figure and table, in paper order."""
    sections = [
        render_speedup_figure(
            suite.figure8(),
            "Figure 8: speedup, 8-issue 1-branch, perfect caches"),
        render_speedup_figure(
            suite.figure9(),
            "Figure 9: speedup, 8-issue 2-branch, perfect caches"),
        render_speedup_figure(
            suite.figure10(),
            "Figure 10: speedup, 4-issue 1-branch, perfect caches"),
        render_speedup_figure(
            suite.figure11(),
            "Figure 11: speedup, 8-issue 1-branch, scaled real caches"),
        render_table2(suite.dynamic_counts()),
        render_table3(suite.branch_stats()),
    ]
    return "\n\n".join(sections)
