"""Experiment harness: regenerates every table and figure of the paper.

The :class:`ExperimentSuite` compiles each workload once per (model,
issue configuration), emulates it once per compiled binary, and then
simulates the recorded trace under as many machine configurations as
needed — exactly the paper's emulation-driven-simulation methodology,
with the emulation cost amortized across processor models.

Speedups divide the 1-issue baseline (superblock) cycle count by the
evaluated configuration's cycle count, as in Section 4.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, TypeVar

from repro.analysis.profile import Profile
from repro.emu.interpreter import run_program
from repro.emu.memory import EmulationFault
from repro.emu.trace import ExecutionResult
from repro.ir.function import IRError, Program
from repro.machine.descriptor import (CacheConfig, MachineDescription,
                                      fig8_machine, fig9_machine,
                                      fig10_machine, scalar_machine)
from repro.robustness.differential import assert_equivalent, values_differ
from repro.robustness.errors import ReproError, TraceIntegrityError
from repro.robustness.integrity import check_trace_integrity
from repro.robustness.report import WorkloadFailure, format_failures
from repro.robustness.watchdog import EmulationWatchdog
from repro.sim.pipeline import SimulationStats, simulate_trace
from repro.toolchain import (CompiledProgram, Model, ToolchainOptions,
                             compile_for_model, frontend)
from repro.workloads.base import Workload, all_workloads

_T = TypeVar("_T")


def scaled_fig11_machine() -> MachineDescription:
    """Figure 11 machine with caches scaled to the kernel workloads.

    The paper uses 64K caches against full SPEC footprints; our scaled
    kernels (KBs of code and data) fit entirely in 64K, so the real-cache
    experiment uses proportionally scaled caches (1K instruction / 2K
    data, same 64-byte lines and 12-cycle miss penalty).  EXPERIMENTS.md
    records this substitution.
    """
    m = MachineDescription(name="8-issue,1-branch,scaled-caches",
                           issue_width=8, branch_issue_limit=1)
    return m.with_real_caches(CacheConfig(size_bytes=1024),
                              CacheConfig(size_bytes=2048))


@dataclass
class WorkloadRun:
    """Everything measured for one (workload, model, machine) triple."""

    workload: str
    model: Model
    machine: MachineDescription
    stats: SimulationStats
    return_value: int | float
    static_size: int

    @property
    def cycles(self) -> int:
        return self.stats.cycles


@dataclass
class ExperimentSuite:
    """Caches compilations/emulations across experiment queries.

    ``mode`` selects the failure policy: ``strict`` (default) propagates
    the first typed error; ``degrade`` quarantines the failing workload,
    records a :class:`WorkloadFailure` in :attr:`failures` and completes
    the remaining workloads.  ``paranoid`` additionally verifies every
    recorded trace's integrity, and ``wall_clock_budget`` (seconds, per
    emulation) arms the watchdog on top of ``max_steps``.
    """

    workloads: list[Workload] = field(default_factory=all_workloads)
    scale: float = 1.0
    options: ToolchainOptions | None = None
    max_steps: int = 20_000_000
    mode: str = "strict"
    paranoid: bool = False
    wall_clock_budget: float | None = None

    def __post_init__(self):
        if self.mode not in ("strict", "degrade"):
            raise ValueError(f"unknown suite mode {self.mode!r} "
                             f"(expected 'strict' or 'degrade')")
        self._base: dict[str, Program] = {}
        self._profile: dict[str, Profile] = {}
        self._compiled: dict[tuple, CompiledProgram] = {}
        self._execution: dict[tuple, ExecutionResult] = {}
        self._stats: dict[tuple, SimulationStats] = {}
        self._by_name = {w.name: w for w in self.workloads}
        self.failures: list[WorkloadFailure] = []
        self._failed: set[str] = set()

    # ----- pipeline stages (memoized) -------------------------------------

    def _frontend(self, name: str) -> Program:
        if name not in self._base:
            self._base[name] = frontend(self._by_name[name].source)
        return self._base[name]

    def _profiled(self, name: str) -> Profile:
        if name not in self._profile:
            program = self._frontend(name)
            inputs = self._by_name[name].inputs(self.scale)
            self._profile[name] = Profile.collect(program, inputs=inputs,
                                                  max_steps=self.max_steps)
        return self._profile[name]

    def _compile(self, name: str, model: Model,
                 machine: MachineDescription) -> CompiledProgram:
        key = (name, model, machine.issue_width,
               machine.branch_issue_limit)
        if key not in self._compiled:
            self._compiled[key] = compile_for_model(
                self._frontend(name), model, self._profiled(name),
                machine, self.options)
        return self._compiled[key]

    def _emulate(self, name: str, model: Model,
                 machine: MachineDescription) -> ExecutionResult:
        key = (name, model, machine.issue_width,
               machine.branch_issue_limit)
        if key not in self._execution:
            compiled = self._compile(name, model, machine)
            inputs = self._by_name[name].inputs(self.scale)
            watchdog = None
            if self.wall_clock_budget is not None:
                watchdog = EmulationWatchdog(
                    wall_clock_budget=self.wall_clock_budget)
            execution = run_program(
                compiled.program, inputs=inputs, collect_trace=True,
                max_steps=self.max_steps, watchdog=watchdog)
            if self.paranoid:
                check_trace_integrity(execution, compiled.program)
            self._execution[key] = execution
        return self._execution[key]

    # ----- failure policy -------------------------------------------------

    def _guard(self, name: str, stage: str,
               thunk: Callable[[], _T]) -> _T | None:
        """Run one workload stage under the suite's failure policy.

        Returns None (and records the failure) in ``degrade`` mode;
        re-raises in ``strict`` mode.
        """
        try:
            return thunk()
        except (ReproError, EmulationFault, IRError) as exc:
            if self.mode != "degrade":
                raise
            self._failed.add(name)
            self.failures.append(WorkloadFailure(
                workload=name, stage=stage,
                error_type=type(exc).__name__, message=str(exc),
                artifact_path=getattr(exc, "artifact_path", None)))
            return None

    def failure_report(self) -> str:
        """Human-readable block describing degraded workloads."""
        return format_failures(self.failures)

    # ----- public queries ----------------------------------------------------

    def run(self, name: str, model: Model,
            machine: MachineDescription) -> WorkloadRun:
        """Simulate one (workload, model, machine) triple (memoized)."""
        key = (name, model, machine.issue_width,
               machine.branch_issue_limit, machine.perfect_caches,
               machine.icache.size_bytes, machine.dcache.size_bytes,
               machine.btb.entries, machine.btb.mispredict_penalty)
        compiled = self._compile(name, model, machine)
        execution = self._emulate(name, model, machine)
        if key not in self._stats:
            if execution.trace is None:
                raise TraceIntegrityError(
                    f"{name}/{model.value}: emulation produced no trace")
            self._stats[key] = simulate_trace(execution.trace,
                                              compiled.addresses, machine)
        return WorkloadRun(workload=name, model=model, machine=machine,
                           stats=self._stats[key],
                           return_value=execution.return_value,
                           static_size=compiled.static_size)

    def baseline_cycles(self, name: str) -> int:
        """1-issue superblock cycles — the speedup denominator."""
        return self.run(name, Model.SUPERBLOCK, scalar_machine()).cycles

    def check_model_agreement(self, name: str,
                              machine: MachineDescription) -> None:
        """All three models must compute observably identical programs.

        Beyond the scalar return value, the differential oracle compares
        the dynamic output (store) stream and the final global memory
        state; raises :class:`ModelDivergenceError` naming the divergent
        model and observable.
        """
        reference = self._emulate(name, Model.SUPERBLOCK, machine)
        for model in (Model.CMOV, Model.FULLPRED):
            candidate = self._emulate(name, model, machine)
            assert_equivalent(candidate, reference, workload=name,
                              model=model.value,
                              reference_model=Model.SUPERBLOCK.value)

    def validate_models(self, machine: MachineDescription
                        ) -> dict[str, bool]:
        """Run the differential oracle over every workload.

        In ``degrade`` mode divergent workloads are recorded in
        :attr:`failures` and marked False; ``strict`` mode raises on the
        first divergence.
        """
        outcome: dict[str, bool] = {}
        for w in self.workloads:
            if w.name in self._failed:
                continue
            ok = self._guard(
                w.name, "differential",
                lambda w=w: (self.check_model_agreement(w.name, machine),
                             True)[1])
            outcome[w.name] = bool(ok)
        return outcome

    # ----- figure/table data ----------------------------------------------------

    def speedups(self, machine: MachineDescription
                 ) -> dict[str, dict[Model, float]]:
        """Per-benchmark speedups vs the 1-issue baseline (Figs 8-11)."""
        table: dict[str, dict[Model, float]] = {}
        for w in self.workloads:
            if w.name in self._failed:
                continue
            row = self._guard(w.name, "speedup", lambda w=w: {
                model: self.baseline_cycles(w.name)
                / self.run(w.name, model, machine).cycles
                for model in Model})
            if row is not None:
                table[w.name] = row
        return table

    def dynamic_counts(self) -> dict[str, dict[Model, int]]:
        """Executed dynamic instruction counts (Table 2 data)."""
        machine = fig8_machine()
        table: dict[str, dict[Model, int]] = {}
        for w in self.workloads:
            if w.name in self._failed:
                continue
            row = self._guard(w.name, "dynamic-counts", lambda w=w: {
                model: self.run(w.name, model,
                                machine).stats.executed_instructions
                for model in Model})
            if row is not None:
                table[w.name] = row
        return table

    def branch_stats(self, machine: MachineDescription | None = None
                     ) -> dict[str, dict[Model, tuple[int, int, float]]]:
        """(branches, mispredictions, rate) per model (Table 3 data)."""
        if machine is None:
            machine = fig8_machine()

        def row_for(w: Workload) -> dict[Model, tuple[int, int, float]]:
            row = {}
            for model in Model:
                stats = self.run(w.name, model, machine).stats
                row[model] = (stats.branches, stats.mispredictions,
                              stats.misprediction_rate)
            return row

        table: dict[str, dict[Model, tuple[int, int, float]]] = {}
        for w in self.workloads:
            if w.name in self._failed:
                continue
            row = self._guard(w.name, "branch-stats",
                              lambda w=w: row_for(w))
            if row is not None:
                table[w.name] = row
        return table

    # ----- the paper's experiments by number ------------------------------------

    def figure8(self):
        return self.speedups(fig8_machine())

    def figure9(self):
        return self.speedups(fig9_machine())

    def figure10(self):
        return self.speedups(fig10_machine())

    def figure11(self):
        return self.speedups(scaled_fig11_machine())


#: retained name for the seed's scalar comparison (now shared with the
#: differential oracle in ``repro.robustness.differential``)
_differs = values_differ


def mean_speedups(table: dict[str, dict[Model, float]]
                  ) -> dict[Model, float]:
    """Arithmetic mean across benchmarks (the paper's averages)."""
    out: dict[Model, float] = {}
    for model in Model:
        values = [row[model] for row in table.values()]
        out[model] = sum(values) / len(values) if values else 0.0
    return out
