"""Experiment harness: regenerates every table and figure of the paper.

The :class:`ExperimentSuite` compiles each workload once per (model,
issue configuration), emulates it once per compiled binary, and then
simulates the recorded trace under as many machine configurations as
needed — exactly the paper's emulation-driven-simulation methodology,
with the emulation cost amortized across processor models.

The pipeline itself lives in :class:`repro.engine.stages.PipelineContext`:
stages are memoized under stable content digests and, when ``cache_dir``
is set, persisted to a content-addressed artifact store so a repeated
figure run performs zero compilations and emulations.  ``jobs > 1``
fans the compile+emulate and trace x machine simulate work across a
process pool via the DAG scheduler, with worker failures feeding the
suite's ``degrade`` quarantine.

Speedups divide the 1-issue baseline (superblock) cycle count by the
evaluated configuration's cycle count, as in Section 4.1.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, TypeVar

from repro.emu.memory import EmulationFault
from repro.emu.trace import ExecutionResult
from repro.engine.metrics import PipelineMetrics
from repro.engine.recovery.journal import RunJournal, verify_completed
from repro.engine.recovery.retry import RetryPolicy, is_transient
from repro.engine.scheduler import Job, JobFailure, execute_jobs
from repro.engine.stages import PipelineContext, RunSummary
from repro.engine.store import ArtifactStore
from repro.engine.workers import (JobSpec, compile_emulate,
                                  prepare_workload, simulate)
from repro.ir.function import IRError
from repro.machine.descriptor import (CacheConfig, MachineDescription,
                                      fig8_machine, fig9_machine,
                                      fig10_machine, scalar_machine)
from repro.robustness.differential import assert_equivalent, values_differ
from repro.robustness.errors import ReproError, classify_exception
from repro.robustness.report import WorkloadFailure, format_failures
from repro.sim.pipeline import SimulationStats
from repro.toolchain import Model, ToolchainOptions
from repro.workloads.base import Workload, all_workloads

_T = TypeVar("_T")


def scaled_fig11_machine() -> MachineDescription:
    """Figure 11 machine with caches scaled to the kernel workloads.

    The paper uses 64K caches against full SPEC footprints; our scaled
    kernels (KBs of code and data) fit entirely in 64K, so the real-cache
    experiment uses proportionally scaled caches (1K instruction / 2K
    data, same 64-byte lines and 12-cycle miss penalty).  EXPERIMENTS.md
    records this substitution.
    """
    m = MachineDescription(name="8-issue,1-branch,scaled-caches",
                           issue_width=8, branch_issue_limit=1)
    return m.with_real_caches(CacheConfig(size_bytes=1024),
                              CacheConfig(size_bytes=2048))


@dataclass
class WorkloadRun:
    """Everything measured for one (workload, model, machine) triple."""

    workload: str
    model: Model
    machine: MachineDescription
    stats: SimulationStats
    return_value: int | float
    static_size: int

    @property
    def cycles(self) -> int:
        return self.stats.cycles


@dataclass
class ExperimentSuite:
    """Caches compilations/emulations across experiment queries.

    ``mode`` selects the failure policy: ``strict`` (default) propagates
    the first typed error; ``degrade`` quarantines the failing workload,
    records a :class:`WorkloadFailure` in :attr:`failures` and completes
    the remaining workloads.  ``paranoid`` additionally verifies every
    recorded trace's integrity, and ``wall_clock_budget`` (seconds, per
    emulation) arms the watchdog on top of ``max_steps``.

    ``cache_dir`` attaches the content-addressed artifact store (None
    keeps everything in-memory, as hermetic tests expect); ``jobs``
    selects the process-pool width for the prefetch DAG (1 = serial,
    in-process).  Parallel execution communicates through the store, so
    ``jobs > 1`` without a ``cache_dir`` gets a throwaway temp store.

    Every store-backed run is journaled: a ``run_id`` (generated unless
    given) names an fsync'd JSONL journal under ``<cache_dir>/runs/``
    recording each task's start/finish/failure and artifact digests.
    ``resume=True`` replays an earlier run's journal, re-verifies every
    recorded artifact against the store (quarantining digest
    mismatches), and re-executes only the unfinished frontier — a
    SIGKILLed figure run resumes to byte-identical output with zero
    recompute of completed tasks.  ``retry`` bounds transient-failure
    retries in the scheduler (None: the default policy).
    """

    workloads: list[Workload] = field(default_factory=all_workloads)
    scale: float = 1.0
    options: ToolchainOptions | None = None
    max_steps: int = 20_000_000
    mode: str = "strict"
    paranoid: bool = False
    wall_clock_budget: float | None = None
    cache_dir: str | None = None
    jobs: int = 1
    #: execution backend for emulate/simulate ("legacy", "fastpath",
    #: "stream" or "vector"); artifacts are engine-free, so mixing
    #: engines over one store is safe and byte-identical
    engine: str = "fastpath"
    run_id: str | None = None
    resume: bool = False
    retry: RetryPolicy | None = None
    #: extra keys merged into the journal's run-start meta (e.g. the
    #: sweep digest and task total that ``repro watch`` streams)
    journal_meta: dict | None = None

    def __post_init__(self):
        if self.mode not in ("strict", "degrade"):
            raise ValueError(f"unknown suite mode {self.mode!r} "
                             f"(expected 'strict' or 'degrade')")
        if self.options is None:
            self.options = ToolchainOptions()
        if self.jobs > 1 and self.cache_dir is None:
            self.cache_dir = tempfile.mkdtemp(prefix="repro-cache-")
        store = ArtifactStore(self.cache_dir) \
            if self.cache_dir is not None else None
        self.ctx = PipelineContext(
            scale=self.scale, options=self.options,
            max_steps=self.max_steps, paranoid=self.paranoid,
            wall_clock_budget=self.wall_clock_budget, store=store,
            engine=self.engine, jobs=self.jobs)
        self._by_name = {w.name: w for w in self.workloads}
        self.failures: list[WorkloadFailure] = []
        self._failed: set[str] = set()
        self.journal: RunJournal | None = None
        #: tasks the resumed journal proved complete (artifacts verified)
        self.resumed_verified: set[str] = set()
        #: task -> reason a journal completion claim failed verification
        self.resumed_invalid: dict[str, str] = {}
        self._journaled: set[str] = set()
        if store is not None:
            self._open_journal(store)

    # ----- run journal ----------------------------------------------------

    def _open_journal(self, store: ArtifactStore) -> None:
        runs_dir = Path(self.cache_dir) / "runs"
        if self.resume:
            if self.run_id is None:
                raise ValueError("resume=True requires a run_id")
            self.journal, state = RunJournal.resume(runs_dir, self.run_id)
            self.resumed_verified, self.resumed_invalid = \
                verify_completed(state, store)
            self._journaled |= self.resumed_verified
        else:
            meta = {"scale": self.scale, "mode": self.mode,
                    "jobs": self.jobs, "max_steps": self.max_steps,
                    "workloads": [w.name for w in self.workloads]}
            if self.journal_meta:
                meta.update(self.journal_meta)
            self.journal = RunJournal.create(runs_dir, self.run_id,
                                             meta=meta)
            self.run_id = self.journal.run_id

    def close_journal(self, ok: bool | None = None) -> None:
        """Append the run-finish record and release the file handle."""
        if self.journal is None:
            return
        self.journal.run_finish(not self.failures if ok is None else ok)
        self.journal.close()
        self.journal = None

    def journal_summary(self) -> str:
        """One-line resume/progress description for the CLI."""
        if self.run_id is None:
            return "journaling disabled (no cache dir)"
        done = len(self._journaled - self.resumed_verified)
        parts = [f"run {self.run_id}: {done} tasks completed"]
        if self.resume:
            parts.append(f"{len(self.resumed_verified)} resumed "
                         f"(journal-verified, zero recompute)")
            if self.resumed_invalid:
                parts.append(f"{len(self.resumed_invalid)} failed "
                             f"verification (recomputed)")
        return ", ".join(parts)

    def _journal_artifacts(self, pairs) -> list[tuple[str, str, str]]:
        store = self.ctx.store
        return [(kind, key, store.digest_of(kind, key) or "")
                for kind, key in pairs]

    def _journal_finish(self, task: str, pairs) -> None:
        if self.journal is not None:
            self.journal.task_finish(task, self._journal_artifacts(pairs))

    def _on_job_complete(self, job: Job, _result) -> None:
        """Scheduler callback: make each pool job's completion durable."""
        self._journaled.add(job.job_id)
        self._journal_finish(job.job_id, job.artifacts)

    @property
    def metrics(self) -> PipelineMetrics:
        """Per-stage wall time and cache hit/miss counters."""
        return self.ctx.metrics

    # ----- pipeline stages (delegated to the engine) ----------------------

    def _workload(self, name: str) -> Workload:
        return self._by_name[name]

    def _frontend(self, name: str):
        return self.ctx.frontend_program(self._workload(name))

    def _compile(self, name: str, model: Model,
                 machine: MachineDescription):
        return self.ctx.compiled(self._workload(name), model, machine)

    def _emulate(self, name: str, model: Model,
                 machine: MachineDescription) -> ExecutionResult:
        return self.ctx.execution(self._workload(name), model, machine)

    # ----- failure policy -------------------------------------------------

    def _guard(self, name: str, stage: str,
               thunk: Callable[[], _T]) -> _T | None:
        """Run one workload stage under the suite's failure policy.

        Returns None (and records the failure) in ``degrade`` mode;
        re-raises in ``strict`` mode.
        """
        try:
            return thunk()
        except (ReproError, EmulationFault, IRError) as exc:
            if self.mode != "degrade":
                raise
            self._failed.add(name)
            self.failures.append(WorkloadFailure(
                workload=name, stage=stage,
                error_type=type(exc).__name__, message=str(exc),
                artifact_path=getattr(exc, "artifact_path", None)))
            return None

    def failure_report(self) -> str:
        """Human-readable block describing degraded workloads."""
        return format_failures(self.failures)

    # ----- parallel prefetch ----------------------------------------------

    def _job_spec(self, name: str, model: Model,
                  machine: MachineDescription) -> JobSpec:
        return JobSpec(cache_dir=self.cache_dir, workload=name,
                       model_name=model.name, machine=machine,
                       scale=self.scale, options=self.options,
                       max_steps=self.max_steps, paranoid=self.paranoid,
                       wall_clock_budget=self.wall_clock_budget,
                       engine=self.engine)

    def prefetch(self, targets: list[
            tuple[MachineDescription, tuple[Model, ...]]]) -> None:
        """Populate the artifact store for the exact (machine, models)
        pairs a figure query will consume.

        Builds the three-stage job DAG (prepare -> compile+emulate ->
        simulate), skips any node whose artifact is already stored, and
        fans the rest across ``jobs`` pool workers.  The plan is
        per-machine precise — the speedup figures need all three models
        on the evaluated machine but only SUPERBLOCK on the scalar
        baseline, and prefetching more would make a warm serial cache
        look cold to the parallel path.  No-op when running serially or
        without a store.
        """
        store = self.ctx.store
        if self.jobs <= 1 or store is None:
            return
        jobs: list[Job] = []
        job_ids: set[str] = set()
        for w in self.workloads:
            if w.name in self._failed:
                continue
            prep_id = f"prepare:{w.name}"
            prep_needed = False
            for machine, models in targets:
                ce_done: set[str] = set()
                for model in models:
                    skey = self.ctx.stats_key(w, model, machine)
                    if store.contains("stats", skey):
                        continue
                    ce_key = self.ctx.compile_key(w, model, machine)
                    exec_key = self.ctx.execution_key(w, model, machine)
                    ce_id = f"compile:{w.name}:{model.name}:{ce_key[:12]}"
                    ce_cached = store.contains("compiled", ce_key) \
                        and store.contains("execution", exec_key)
                    if ce_id not in ce_done and ce_id not in job_ids \
                            and not ce_cached:
                        prep_needed = True
                        jobs.append(Job(
                            job_id=ce_id, fn=compile_emulate,
                            args=(self._job_spec(w.name, model, machine),),
                            deps=(prep_id,), workload=w.name,
                            stage="compile+emulate",
                            artifacts=(("compiled", ce_key),
                                       ("execution", exec_key))))
                        job_ids.add(ce_id)
                    ce_done.add(ce_id)
                    sim_deps = (ce_id,) if ce_id in job_ids else ()
                    sim_id = f"simulate:{w.name}:{model.name}:{skey[:12]}"
                    if sim_id not in job_ids:
                        jobs.append(Job(
                            job_id=sim_id, fn=simulate,
                            args=(self._job_spec(w.name, model, machine),),
                            deps=sim_deps, workload=w.name,
                            stage="simulate",
                            artifacts=(("stats", skey),)))
                        job_ids.add(sim_id)
            if prep_needed:
                first_machine, first_models = targets[0]
                jobs.append(Job(
                    job_id=prep_id, fn=prepare_workload,
                    args=(self._job_spec(w.name, first_models[0],
                                         first_machine),),
                    workload=w.name, stage="prepare"))
                job_ids.add(prep_id)
        if not jobs:
            return
        self.execute_plan(jobs)

    def execute_plan(self, jobs: list[Job]) -> None:
        """Journal and execute an externally built job DAG.

        The sweep runner constructs its own plan (point jobs instead of
        per-triple simulate jobs) but shares the suite's dispatch path:
        every job's start/finish lands in the run journal, pool-worker
        counters merge into :attr:`metrics`, and failures feed the
        suite's failure policy.  Runs through the scheduler even at
        ``jobs=1`` so the journal is identical at any parallelism.
        """
        if not jobs:
            return
        self.metrics.jobs_dispatched += len(jobs)
        if self.journal is not None:
            for job in jobs:
                self.journal.task_start(job.job_id)
        outcome = execute_jobs(jobs, max_workers=self.jobs,
                               retry=self.retry, metrics=self.metrics,
                               on_complete=self._on_job_complete)
        for counters in outcome.results.values():
            self.metrics.merge_dict(counters)
        self._absorb_job_failures(outcome.failures)

    def _absorb_job_failures(self, failures: list[JobFailure]) -> None:
        """Map scheduler failures onto the suite's failure policy."""
        for failure in failures:
            if failure.crashed:
                self.metrics.worker_crashes += 1
            if self.journal is not None:
                self.journal.task_fail(
                    failure.job_id, failure.error_type, failure.message,
                    transient=failure.transient, attempt=failure.attempts)
            if self.mode != "degrade":
                if failure.exception is not None:
                    raise failure.exception
                raise ReproError(
                    f"worker crashed during {failure.stage} of "
                    f"{failure.workload}: {failure.message}")
            if failure.workload is not None:
                self._failed.add(failure.workload)
            self.failures.append(WorkloadFailure(
                workload=failure.workload or "?", stage=failure.stage,
                error_type=failure.error_type, message=failure.message))

    # ----- public queries ----------------------------------------------------

    def run(self, name: str, model: Model,
            machine: MachineDescription) -> WorkloadRun:
        """Simulate one (workload, model, machine) triple (memoized).

        Against a warm artifact store this performs no compilation,
        emulation or simulation — the :class:`RunSummary` is served
        straight from the store.
        """
        w = self._workload(name)
        task = None
        if self.journal is not None:
            skey = self.ctx.stats_key(w, model, machine)
            task = f"simulate:{name}:{model.name}:{skey[:12]}"
        if task is not None and task not in self._journaled:
            self.journal.task_start(task)
            try:
                summary: RunSummary = self.ctx.run_summary(
                    w, model, machine)
            except Exception as raw:
                # Journal and re-raise the *classified* failure, so
                # both the journal record and whoever catches it (the
                # CLI's exit-code mapping, the experiment service) see
                # a typed taxonomy member.
                exc = classify_exception(raw)
                self.journal.task_fail(
                    task, type(exc).__name__, str(exc),
                    transient=is_transient(exc))
                if exc is raw:
                    raise
                raise exc from raw
            self._journaled.add(task)
            self._journal_finish(task, (("stats", skey),))
        else:
            summary = self.ctx.run_summary(w, model, machine)
        return WorkloadRun(workload=name, model=model, machine=machine,
                           stats=summary.stats,
                           return_value=summary.return_value,
                           static_size=summary.static_size)

    def baseline_cycles(self, name: str) -> int:
        """1-issue superblock cycles — the speedup denominator."""
        return self.run(name, Model.SUPERBLOCK, scalar_machine()).cycles

    def check_model_agreement(self, name: str,
                              machine: MachineDescription) -> None:
        """All three models must compute observably identical programs.

        Beyond the scalar return value, the differential oracle compares
        the dynamic output (store) stream and the final global memory
        state; raises :class:`ModelDivergenceError` naming the divergent
        model and observable.
        """
        reference = self._emulate(name, Model.SUPERBLOCK, machine)
        for model in (Model.CMOV, Model.FULLPRED):
            candidate = self._emulate(name, model, machine)
            assert_equivalent(candidate, reference, workload=name,
                              model=model.value,
                              reference_model=Model.SUPERBLOCK.value)

    def validate_models(self, machine: MachineDescription
                        ) -> dict[str, bool]:
        """Run the differential oracle over every workload.

        In ``degrade`` mode divergent workloads are recorded in
        :attr:`failures` and marked False; ``strict`` mode raises on the
        first divergence.
        """
        outcome: dict[str, bool] = {}
        for w in self.workloads:
            if w.name in self._failed:
                continue
            ok = self._guard(
                w.name, "differential",
                lambda w=w: (self.check_model_agreement(w.name, machine),
                             True)[1])
            outcome[w.name] = bool(ok)
        return outcome

    # ----- figure/table data ----------------------------------------------------

    def speedups(self, machine: MachineDescription
                 ) -> dict[str, dict[Model, float]]:
        """Per-benchmark speedups vs the 1-issue baseline (Figs 8-11)."""
        self.prefetch([(machine, tuple(Model)),
                       (scalar_machine(), (Model.SUPERBLOCK,))])
        table: dict[str, dict[Model, float]] = {}
        for w in self.workloads:
            if w.name in self._failed:
                continue
            row = self._guard(w.name, "speedup", lambda w=w: {
                model: self.baseline_cycles(w.name)
                / self.run(w.name, model, machine).cycles
                for model in Model})
            if row is not None:
                table[w.name] = row
        return table

    def dynamic_counts(self) -> dict[str, dict[Model, int]]:
        """Executed dynamic instruction counts (Table 2 data)."""
        machine = fig8_machine()
        self.prefetch([(machine, tuple(Model))])
        table: dict[str, dict[Model, int]] = {}
        for w in self.workloads:
            if w.name in self._failed:
                continue
            row = self._guard(w.name, "dynamic-counts", lambda w=w: {
                model: self.run(w.name, model,
                                machine).stats.executed_instructions
                for model in Model})
            if row is not None:
                table[w.name] = row
        return table

    def branch_stats(self, machine: MachineDescription | None = None
                     ) -> dict[str, dict[Model, tuple[int, int, float]]]:
        """(branches, mispredictions, rate) per model (Table 3 data)."""
        if machine is None:
            machine = fig8_machine()
        self.prefetch([(machine, tuple(Model))])

        def row_for(w: Workload) -> dict[Model, tuple[int, int, float]]:
            row = {}
            for model in Model:
                stats = self.run(w.name, model, machine).stats
                row[model] = (stats.branches, stats.mispredictions,
                              stats.misprediction_rate)
            return row

        table: dict[str, dict[Model, tuple[int, int, float]]] = {}
        for w in self.workloads:
            if w.name in self._failed:
                continue
            row = self._guard(w.name, "branch-stats",
                              lambda w=w: row_for(w))
            if row is not None:
                table[w.name] = row
        return table

    # ----- the paper's experiments by number ------------------------------------

    def figure8(self):
        return self.speedups(fig8_machine())

    def figure9(self):
        return self.speedups(fig9_machine())

    def figure10(self):
        return self.speedups(fig10_machine())

    def figure11(self):
        return self.speedups(scaled_fig11_machine())


#: retained name for the seed's scalar comparison (now shared with the
#: differential oracle in ``repro.robustness.differential``)
_differs = values_differ


def mean_speedups(table: dict[str, dict[Model, float]]
                  ) -> dict[Model, float]:
    """Arithmetic mean across benchmarks (the paper's averages)."""
    out: dict[Model, float] = {}
    for model in Model:
        values = [row[model] for row in table.values()]
        out[model] = sum(values) / len(values) if values else 0.0
    return out
