"""Experiment harness regenerating the paper's tables and figures."""

from repro.experiments.runner import (ExperimentSuite, WorkloadRun,
                                      mean_speedups, scaled_fig11_machine)
from repro.experiments.render import (render_all, render_speedup_figure,
                                      render_table2, render_table3)

__all__ = [
    "ExperimentSuite", "WorkloadRun", "mean_speedups", "render_all",
    "render_speedup_figure", "render_table2", "render_table3",
    "scaled_fig11_machine",
]
