"""Instruction scheduling: dependence DAG + critical-path list scheduler."""

from repro.schedule.dag import DepGraph, build_dag
from repro.schedule.list_scheduler import (ScheduleResult, schedule_block,
                                           schedule_function,
                                           schedule_program)

__all__ = [
    "DepGraph", "ScheduleResult", "build_dag", "schedule_block",
    "schedule_function", "schedule_program",
]
