"""Dependence DAG construction for block scheduling.

The DAG encodes sequential semantics: the scheduled order must be a
topological order, and the emulator executes the scheduled order
sequentially, so *every* ordering requirement is an edge (latency-0
edges permit same-cycle issue while preserving emission order).

Predicate-aware special cases (paper Sections 2.1/4.2):

* OR-type (and AND-type) predicate defines targeting the same predicate
  register are order-independent (wired-OR): no output or RMW edges
  between them, so they may issue simultaneously;
* a guarded instruction depends on its predicate define with the
  define's full latency (suppression happens at decode/issue, so the
  predicate must be available one cycle ahead);
* pure instructions whose destinations are dead at an exit branch's
  target may cross that branch (speculation); may-except instructions
  that do so must later be marked silent.

Calls and returns are full barriers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.liveness import Liveness
from repro.ir.function import BasicBlock, Function
from repro.ir.instruction import Instruction, PType
from repro.ir.opcodes import MAY_EXCEPT, OpCategory, Opcode
from repro.ir.operands import PReg
from repro.machine.descriptor import MachineDescription

_PARALLEL_SET = frozenset({PType.OR, PType.OR_BAR})
_PARALLEL_CLEAR = frozenset({PType.AND, PType.AND_BAR})


@dataclass
class DepGraph:
    """Nodes are instruction indices; ``succs[i]`` holds (j, latency)."""

    insts: list[Instruction]
    succs: list[list[tuple[int, int]]] = field(default_factory=list)
    preds: list[list[tuple[int, int]]] = field(default_factory=list)

    def add_edge(self, i: int, j: int, latency: int) -> None:
        if i == j:
            return
        self.succs[i].append((j, latency))
        self.preds[j].append((i, latency))

    def heights(self, machine: MachineDescription) -> list[int]:
        """Longest-path-to-sink priority for list scheduling."""
        n = len(self.insts)
        height = [0] * n
        for i in range(n - 1, -1, -1):
            best = machine.latency(self.insts[i].op)
            for j, lat in self.succs[i]:
                best = max(best, lat + height[j])
            height[i] = best
        return height


def _parallel_family(inst: Instruction, reg) -> frozenset | None:
    """Ptype family of inst's define of ``reg`` if order-independent."""
    for pd in inst.pdests:
        if pd.reg == reg:
            if pd.ptype in _PARALLEL_SET:
                return _PARALLEL_SET
            if pd.ptype in _PARALLEL_CLEAR:
                return _PARALLEL_CLEAR
            return None
    return None


def _complementary_cmovs(a: Instruction, b: Instruction) -> bool:
    """cmov/cmov_com on the same dest and condition may issue together
    (paper Section 2.2: at most one of them modifies the register)."""
    pair = {a.op, b.op}
    if pair not in ({Opcode.CMOV, Opcode.CMOV_COM},
                    {Opcode.FCMOV, Opcode.FCMOV_COM}):
        return False
    return a.dest == b.dest and a.srcs[1] == b.srcs[1]


def _speculable(inst: Instruction, live_at_target: frozenset) -> bool:
    """May ``inst`` cross a branch with the given target liveness?"""
    if not inst.is_pure:
        return False
    for d in inst.defined_regs():
        if d in live_at_target:
            return False
    return True


def build_dag(fn: Function, block: BasicBlock, live: Liveness,
              machine: MachineDescription) -> DepGraph:
    insts = block.instructions
    n = len(insts)
    graph = DepGraph(insts, [[] for _ in range(n)], [[] for _ in range(n)])

    # Register dependences.
    last_definite: dict = {}
    pending: dict = {}  # reg -> list of conditional def indices

    def defs_reaching(reg) -> list[int]:
        out = []
        if reg in last_definite:
            out.append(last_definite[reg])
        out.extend(pending.get(reg, ()))
        return out

    for j, inst in enumerate(insts):
        lat_j = machine.latency(inst.op)
        # RAW (including guard predicates and cmov implicit dest reads).
        for r in inst.used_regs():
            for i in defs_reaching(r):
                producer = insts[i]
                fam_i = _parallel_family(producer, r)
                fam_j = _parallel_family(inst, r)
                if fam_i is not None and fam_i is fam_j:
                    continue  # wired-OR/AND: order independent
                if _complementary_cmovs(producer, inst):
                    continue
                graph.add_edge(i, j, machine.latency(producer.op))
        # WAR: writers wait for earlier readers (latency 0 keeps order).
        for r in inst.defined_regs():
            for i in range(j):
                if r in insts[i].used_regs() and i not in defs_reaching(r):
                    fam_i = _parallel_family(insts[i], r)
                    fam_j = _parallel_family(inst, r)
                    if fam_i is not None and fam_i is fam_j:
                        continue
                    if _complementary_cmovs(insts[i], inst):
                        continue
                    graph.add_edge(i, j, 0)
        # WAW.
        for r in inst.defined_regs():
            for i in defs_reaching(r):
                fam_i = _parallel_family(insts[i], r)
                fam_j = _parallel_family(inst, r)
                if fam_i is not None and fam_i is fam_j:
                    continue
                if _complementary_cmovs(insts[i], inst):
                    continue
                # Predicate WAW must keep a cycle between writes (U-type
                # defines "may not issue simultaneously"); register WAW
                # only needs ordering unless the producer is slow.
                if isinstance(r, PReg):
                    waw_lat = 1
                else:
                    waw_lat = 1 if machine.latency(insts[i].op) > 1 else 0
                graph.add_edge(i, j, waw_lat)
            # Update def records.  Parallel-type (OR/AND) predicate
            # destinations accumulate rather than overwrite, so they are
            # pending defs like guarded writes — a later reader depends
            # on *all* of them, not just the latest.
            if inst.is_conditional_write \
                    or _parallel_family(inst, r) is not None:
                pending.setdefault(r, []).append(j)
            else:
                last_definite[r] = j
                pending.pop(r, None)
    del lat_j

    # pred_clear / pred_set rewrite the entire predicate file: order them
    # against every instruction touching any predicate register.
    touchers: list[int] = []
    last_predset: int | None = None
    for j, inst in enumerate(insts):
        if inst.cat is OpCategory.PREDSET:
            for i in touchers:
                graph.add_edge(i, j, 0)
            if last_predset is not None:
                graph.add_edge(last_predset, j, 0)
            last_predset = j
            touchers = []
        else:
            touches_preds = (inst.pred is not None or inst.pdests
                             or any(isinstance(r, PReg)
                                    for r in inst.used_regs()))
            if touches_preds:
                if last_predset is not None:
                    graph.add_edge(last_predset, j, 1)
                touchers.append(j)

    # Memory dependences with symbolic disambiguation: accesses through
    # distinct global objects cannot alias (globals do not overlap);
    # anything with a register base address is treated as "may touch
    # anything" ("*").  Calls behave as opaque stores.
    from repro.ir.operands import GlobalAddr

    def mem_key(inst: Instruction) -> str:
        if inst.mem_hint is not None:
            return inst.mem_hint
        base = inst.srcs[0] if inst.srcs else None
        if isinstance(base, GlobalAddr):
            return base.name
        return "*"

    last_store_at: dict[str, int] = {}
    loads_since: dict[str, list[int]] = {}
    last_mem_write: int | None = None

    def conflicting_stores(key: str) -> list[int]:
        if key == "*":
            return list(last_store_at.values())
        found = []
        if key in last_store_at:
            found.append(last_store_at[key])
        if "*" in last_store_at:
            found.append(last_store_at["*"])
        return found

    def conflicting_loads(key: str) -> list[int]:
        if key == "*":
            return [i for lst in loads_since.values() for i in lst]
        return loads_since.get(key, []) + loads_since.get("*", [])

    for j, inst in enumerate(insts):
        cat = inst.cat
        if cat is OpCategory.LOAD:
            key = mem_key(inst)
            for i in conflicting_stores(key):
                graph.add_edge(i, j, machine.latency(insts[i].op))
            loads_since.setdefault(key, []).append(j)
        elif cat is OpCategory.STORE or cat is OpCategory.CALL:
            key = "*" if cat is OpCategory.CALL else mem_key(inst)
            for i in conflicting_stores(key):
                graph.add_edge(i, j, 1)
            for i in conflicting_loads(key):
                graph.add_edge(i, j, 0)
            # The dynamic store stream is an architectural observable
            # (the differential oracle compares it across models), so
            # writes keep program order even when disambiguation proves
            # them independent.  Latency 0 lets ready stores share a
            # cycle, but a cheap store can no longer hoist above a
            # slower one's operand chain.
            if last_mem_write is not None:
                graph.add_edge(last_mem_write, j, 0)
            last_mem_write = j
            if key == "*":
                last_store_at.clear()
                loads_since.clear()
            else:
                # Keep "*" loads listed: they must also order before any
                # *later* store to a different global, which has no
                # transitive path through this one.
                loads_since.pop(key, None)
            last_store_at[key] = j

    # Control dependences.
    empty: frozenset = frozenset()
    for b, binst in enumerate(insts):
        if not binst.is_control:
            continue
        barrier = binst.cat is OpCategory.CALL
        if barrier:
            live_target = None
        elif binst.cat is OpCategory.RET:
            # A return's "target" needs only the returned value: other
            # pure instructions may move across it like any exit branch.
            live_target = frozenset(binst.used_regs())
        else:
            live_target = live.live_in.get(binst.target or "", empty)
        for j in range(n):
            if j == b:
                continue
            other = insts[j]
            if other.is_control and j > b:
                graph.add_edge(b, j, 0)
                continue
            if other.is_control:
                continue
            movable = (not barrier and live_target is not None
                       and _speculable(other, live_target))
            if not movable:
                if j < b:
                    graph.add_edge(j, b, 0)
                else:
                    graph.add_edge(b, j, 0)
    return graph
