"""Critical-path list scheduler with issue-width and branch-slot
resources.

Schedules each block independently (superblocks and hyperblocks are
single blocks, so they are the scheduling regions).  The scheduled order
is a topological order of the dependence DAG, which keeps sequential
emulation of the output correct; issue-cycle annotations drive both the
paper's case-study listings (Figures 5/6) and static schedule-length
statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from heapq import heappop, heappush

from repro.analysis.liveness import liveness
from repro.ir.function import BasicBlock, Function
from repro.ir.instruction import Instruction
from repro.ir.opcodes import MAY_EXCEPT, OpCategory
from repro.machine.descriptor import MachineDescription
from repro.schedule.dag import build_dag


@dataclass
class ScheduleResult:
    """Issue cycles by instruction uid plus the schedule length."""

    cycles: dict[int, int] = field(default_factory=dict)
    length: int = 0
    speculated: int = 0


def schedule_block(fn: Function, block: BasicBlock,
                   machine: MachineDescription,
                   live=None) -> ScheduleResult:
    """Reorder ``block`` in place according to the list schedule."""
    if live is None:
        live = liveness(fn)
    insts = block.instructions
    n = len(insts)
    result = ScheduleResult()
    if n == 0:
        return result
    graph = build_dag(fn, block, live, machine)
    height = graph.heights(machine)

    indegree = [len(graph.preds[i]) for i in range(n)]
    earliest = [0] * n
    # Ready heap: (-height, original index) for determinism.
    ready: list[tuple[int, int]] = []
    for i in range(n):
        if indegree[i] == 0:
            heappush(ready, (-height[i], i))

    scheduled_order: list[int] = []
    start_cycle = [0] * n
    cycle = 0
    slots = 0
    branch_slots = 0
    pending: list[tuple[int, int]] = []  # (earliest_cycle, index) deferred

    while ready or pending:
        if not ready:
            # Advance to the next cycle where something becomes ready.
            cycle = max(cycle + 1, min(c for c, _ in pending))
            slots = 0
            branch_slots = 0
            requeue = [(c, i) for c, i in pending if c <= cycle]
            pending = [(c, i) for c, i in pending if c > cycle]
            for _c, i in requeue:
                heappush(ready, (-height[i], i))
            continue
        neg_h, i = heappop(ready)
        if earliest[i] > cycle:
            pending.append((earliest[i], i))
            continue
        inst = insts[i]
        is_branchy = inst.is_control
        if slots >= machine.issue_width or \
                (is_branchy and branch_slots >= machine.branch_issue_limit):
            # Current cycle is full for this instruction: defer it to the
            # next cycle and try other ready instructions first.
            pending.append((cycle + 1, i))
            continue
        # Issue.
        start_cycle[i] = cycle
        scheduled_order.append(i)
        slots += 1
        if is_branchy:
            branch_slots += 1
        for j, lat in graph.succs[i]:
            earliest[j] = max(earliest[j], cycle + lat)
            indegree[j] -= 1
            if indegree[j] == 0:
                if earliest[j] <= cycle:
                    heappush(ready, (-height[j], j))
                else:
                    pending.append((earliest[j], j))
        if slots >= machine.issue_width:
            cycle += 1
            slots = 0
            branch_slots = 0
            requeue = [(c, k) for c, k in pending if c <= cycle]
            pending = [(c, k) for c, k in pending if c > cycle]
            for _c, k in requeue:
                heappush(ready, (-height[k], k))

    assert len(scheduled_order) == n, "scheduler dropped instructions"

    # Mark may-except instructions that moved above a branch as silent.
    final_pos = {idx: pos for pos, idx in enumerate(scheduled_order)}
    new_insts: list[Instruction] = []
    branch_positions = [(i, final_pos[i]) for i in range(n)
                        if insts[i].is_control]
    for idx in scheduled_order:
        inst = insts[idx]
        if inst.op in MAY_EXCEPT and not inst.speculative:
            crossed = any(orig < idx and pos > final_pos[idx]
                          for orig, pos in branch_positions)
            if crossed:
                inst = inst.copy(speculative=True)
                result.speculated += 1
        new_insts.append(inst)
        result.cycles[inst.uid] = start_cycle[idx]
    block.instructions = new_insts
    result.length = max(start_cycle) + 1 if n else 0
    return result


def schedule_function(fn: Function,
                      machine: MachineDescription) -> ScheduleResult:
    """Schedule every block of ``fn``; returns merged cycle annotations."""
    live = liveness(fn)
    merged = ScheduleResult()
    for block in fn.blocks:
        r = schedule_block(fn, block, machine, live)
        merged.cycles.update(r.cycles)
        merged.length += r.length
        merged.speculated += r.speculated
    return merged


def schedule_program(program, machine: MachineDescription) -> ScheduleResult:
    merged = ScheduleResult()
    for fn in program.functions.values():
        r = schedule_function(fn, machine)
        merged.cycles.update(r.cycles)
        merged.speculated += r.speculated
    return merged
