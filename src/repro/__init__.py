"""repro — reproduction of Mahlke et al., "A Comparison of Full and
Partial Predicated Execution Support for ILP Processors" (ISCA 1995).

The package implements, from scratch:

* an executable IR for a generic load/store ILP ISA with full- and
  partial-predication extensions (:mod:`repro.ir`);
* a MiniC frontend for the benchmark workloads (:mod:`repro.lang`);
* superblock and hyperblock (if-conversion) region compilers
  (:mod:`repro.regions`), classic optimizations (:mod:`repro.opt`),
  partial-predication lowering (:mod:`repro.partial`), and a
  resource-aware list scheduler (:mod:`repro.schedule`);
* emulation-driven simulation: a functional interpreter (:mod:`repro.emu`)
  feeding a cycle-level in-order processor model (:mod:`repro.sim`);
* the benchmark workloads and experiment harness that regenerate every
  table and figure of the paper (:mod:`repro.workloads`,
  :mod:`repro.experiments`).

Entry point: :func:`repro.toolchain.compile_and_simulate`.
"""

__version__ = "1.0.0"
