"""Command-line interface: compile, run, and report from the shell.

Subcommands:

* ``compile``  — compile a MiniC file for one model and dump the code;
* ``run``      — compile + emulate + simulate one file and print stats;
* ``bench``    — run one registered workload under all three models;
* ``report``   — regenerate every figure/table (the paper's evaluation);
* ``figures``  — alias of ``report`` (the paper's figures);
* ``sweep``    — design-space exploration: ``sweep run`` expands a
  declarative TOML/JSON grid (issue widths x branch limits x cache
  geometries x BTBs x latency tables x models) into a deduplicated
  machine lattice and measures every point (deterministic at any
  ``--jobs``, resumable, warm points are zero-compute), ``sweep
  report`` renders speedup surfaces and Pareto frontiers from a
  stored result, ``sweep diff`` compares two results point-for-point;
* ``cache``    — inspect, verify (``fsck``) or clear the artifact store;
* ``selftest`` — fault-injection campaign proving the checkers work
  (``--chaos`` adds the engine chaos campaign — crash/corruption/
  resume — the service chaos campaign: queue saturation, quota
  exhaustion, breaker trips, kill+resume, dedup storms — and the
  native chaos campaign: corrupted ``.so`` caches, vanishing
  compilers, kernel segfaults, stale caches across a simulated cc
  upgrade and parity mismatches — and the cluster chaos campaign:
  SIGKILLed workers mid-shard, zombie fencing, hedge commit races,
  each ending in a byte-identical degraded run or a typed failure);
* ``native``   — probe the native kernel path (build, sandbox-canary,
  parity-check) and print the engine-ladder state;
* ``serve``    — long-lived multi-tenant experiment service: bounded
  admission with load shedding, per-tenant quotas, single-flight
  dedup, a circuit breaker over the worker pool and graceful SIGTERM
  drain (interrupted jobs resume on restart);
* ``submit``   — submit a MiniC file, a workload or the figure suite
  to a running service; ``--wait`` blocks for the canonical result;
* ``status``   — one job's record from the service;
* ``watch``    — stream a job's journal progress until it finishes;
  a dropped connection reconnects with capped backoff and resumes
  from the last event seen;
* ``worker``   — join a distributed sweep campaign over a shared
  cache dir (or via ``--endpoint`` through a running service): claims
  shard leases with fencing tokens, heartbeats while executing,
  commits results into the store; a SIGKILLed worker's shards are
  reassigned by the coordinator and a fenced zombie cannot commit;
* ``fuzz``     — differential fuzzing: ``fuzz run`` executes a seeded
  campaign over all three models, ``fuzz replay`` re-checks corpus
  reproducers, ``fuzz corpus`` lists them, ``fuzz seed`` populates the
  corpus from the workload suite and examples;
* ``list``     — list the registered workloads.

``bench`` and ``report`` cache every compiled program, emulation trace
and simulation result in a content-addressed store (``--cache-dir``,
default ``.repro-cache`` or ``$REPRO_CACHE_DIR``), so a repeated run is
served entirely from artifacts; ``--jobs N`` fans the pipeline across a
process pool.  Every store-backed suite run writes an fsync'd JSONL
journal under ``<cache-dir>/runs/<RUN_ID>.jsonl``; a killed run resumes
with ``--resume RUN_ID`` (journal-verified completed tasks are never
recomputed).

Examples::

    python -m repro compile kernel.c --model fullpred
    python -m repro run kernel.c --model cmov --width 8 --branches 1
    python -m repro run kernel.c --paranoid --time-budget 30
    python -m repro bench wc --scale 0.5
    python -m repro report --scale 0.5 --mode degrade -o RESULTS.txt
    python -m repro report --jobs 4 --bench-json BENCH_pipeline.json
    python -m repro figures --resume R20260805-120000-abcd1234
    python -m repro cache stats
    python -m repro cache fsck --repair
    python -m repro cache clear
    python -m repro selftest
    python -m repro selftest --chaos --jobs 2
    python -m repro native --fresh
    python -m repro sweep run examples/paper_sweep.toml --jobs 4 -o sweep.json
    python -m repro sweep run grid.json --report --resume R20260807-...
    python -m repro worker --cache-dir /shared/cache &
    python -m repro sweep run grid.toml --cluster --expect-workers 3
    python -m repro sweep report sweep.json
    python -m repro sweep diff old.json new.json
    python -m repro serve --workers 2 --queue-depth 16
    python -m repro submit --workload wc --wait -o wc.json
    python -m repro submit --sweep examples/paper_sweep.toml --wait
    python -m repro submit kernel.c --deadline 120 --tenant alice
    python -m repro watch J0123456789abcdef
    python -m repro fuzz run --budget 500 --seed 0xfeed --jobs 4
    python -m repro fuzz replay --all
    python -m repro fuzz replay finding-0123456789ab
    python -m repro fuzz seed && python -m repro fuzz corpus

Failures exit with the typed taxonomy's codes (one-line diagnostics,
no tracebacks): 10 generic pipeline error, 11 compile or invalid
spec (bad sweep grid, unknown latency op-class name), 12 pass
verification, 13 emulation timeout, 14 trace integrity, 15 model
divergence, 16 emulation fault, 17 artifact lock timeout, 18 open
fuzz findings, 19 service overloaded (load shed), 20 tenant quota
exceeded, 21 job deadline exceeded, 22 native kernel build failure,
23 C toolchain missing, 24 native kernel parity mismatch, 25 native
kernel crash, 26 cluster worker lost mid-shard, 27 shard lease fenced
(a newer lease superseded this worker's claim).  Codes 13, 14, 17,
19, 20, 23, 25 and 26 are transient (retry, honouring any Retry-After
hint — the native-engine supervisor demotes before raising, so a
retry lands on the Python engines); the rest are permanent — in
particular 27 means another worker owns the shard now, so the right
response is to claim new work, not to retry the old lease.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.analysis.profile import Profile
from repro.emu.memory import EmulationFault
from repro.engine.store import ArtifactStore
from repro.experiments.render import render_all
from repro.experiments.runner import ExperimentSuite
from repro.ir.function import IRError
from repro.ir.printer import format_program
from repro.lang.lexer import LexError
from repro.lang.parser import ParseError
from repro.lang.sema import SemaError
from repro.machine.descriptor import MachineDescription, scalar_machine
from repro.robustness.errors import ReproError
from repro.robustness.watchdog import EmulationWatchdog
from repro.toolchain import (Model, ToolchainOptions, compile_for_model,
                             frontend, run_compiled)
from repro.workloads import all_workloads, get_workload

_MODELS = {"superblock": Model.SUPERBLOCK, "cmov": Model.CMOV,
           "fullpred": Model.FULLPRED}

#: exit code for emulation faults outside the typed taxonomy
_EMULATION_FAULT_EXIT = 16
#: exit code for IR errors escaping the compile pipeline
_IR_ERROR_EXIT = 11


def _machine(args) -> MachineDescription:
    machine = MachineDescription(issue_width=args.width,
                                 branch_issue_limit=args.branches,
                                 name=f"{args.width}-issue,"
                                      f"{args.branches}-branch")
    if getattr(args, "real_caches", False):
        machine = machine.with_real_caches()
    return machine


def _add_machine_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--width", type=int, default=8,
                        help="issue width (default 8)")
    parser.add_argument("--branches", type=int, default=1,
                        help="branch issue limit (default 1)")
    parser.add_argument("--real-caches", action="store_true",
                        help="64K direct-mapped I/D caches instead of "
                             "perfect memory")


def _add_robustness_args(parser: argparse.ArgumentParser,
                         watchdog: bool = True) -> None:
    parser.add_argument("--paranoid", action="store_true",
                        help="verify the IR after every compiler pass; "
                             "failures name the pass and dump an IR "
                             "snapshot")
    parser.add_argument("--rollback", action="store_true",
                        help="skip (instead of abort on) a failing pass; "
                             "degradations are reported")
    parser.add_argument("--artifact-dir", default=None,
                        help="directory for failure IR snapshots "
                             "(default: system temp)")
    if watchdog:
        parser.add_argument("--time-budget", type=float, default=None,
                            metavar="SECONDS",
                            help="wall-clock budget for each emulation")


def _default_cache_dir() -> str:
    return os.environ.get("REPRO_CACHE_DIR", ".repro-cache")


def _add_engine_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--engine",
                        choices=("legacy", "fastpath", "stream",
                                 "vector"),
                        default="fastpath",
                        help="execution backend (default fastpath); "
                             "every engine is byte-identical — vector "
                             "is the fastest and shards its trace "
                             "across --jobs workers")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="fan pipeline work across N pool processes "
                             "(default 1: serial, in-process)")
    parser.add_argument("--cache-dir", default=_default_cache_dir(),
                        metavar="DIR",
                        help="artifact store directory (default "
                             "$REPRO_CACHE_DIR or .repro-cache)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk artifact store")
    parser.add_argument("--run-id", default=None, metavar="RUN_ID",
                        help="name this run's journal (default: "
                             "generated; printed to stderr)")
    parser.add_argument("--resume", default=None, metavar="RUN_ID",
                        help="resume an interrupted run from its "
                             "journal: completed tasks are verified "
                             "against the store and never recomputed")
    parser.add_argument("--retries", type=int, default=None, metavar="N",
                        help="max attempts per task for transient "
                             "failures (default 3)")


def _add_perf_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--bench-json", metavar="PATH",
                        help="dump pipeline metrics (wall time, cache "
                             "hit/miss, byte volume, cycles) as JSON "
                             "with a dated timing trajectory, e.g. "
                             "BENCH_pipeline.json")
    parser.add_argument("--compare", metavar="BASELINE_JSON",
                        help="compare stage wall times against a "
                             "baseline bench JSON; exit "
                             f"{_BENCH_REGRESSION_EXIT} if any stage "
                             "regresses by more than 25%%.  With "
                             "--engine vector, additionally require "
                             f"emulate/simulate to run "
                             f"{_VECTOR_MIN_SPEEDUP}x faster per "
                             "invocation than the baseline")
    parser.add_argument("--profile", action="store_true",
                        help="cProfile each pipeline stage; write "
                             "per-stage .pstats and a top-20 cumulative "
                             "summary next to --bench-json (or CWD)")


def _cache_dir(args) -> str | None:
    if getattr(args, "no_cache", False):
        return None
    return getattr(args, "cache_dir", None)


#: exit code for a >threshold stage-walltime regression (--compare)
_BENCH_REGRESSION_EXIT = 3

#: per-invocation emulate/simulate speedup the vector engine must
#: sustain over the committed fastpath baseline (--engine vector
#: --compare)
_VECTOR_MIN_SPEEDUP = 2.5


def _attach_profiler(suite, args):
    """Hook a per-stage cProfile collector into the suite's metrics."""
    if not getattr(args, "profile", False):
        return None
    from repro.engine.profiling import StageProfiler
    profiler = StageProfiler()
    suite.metrics.profiler = profiler
    if getattr(args, "jobs", 1) > 1:
        print("note: --profile captures in-process work only; pool "
              "workers (--jobs) are not profiled", file=sys.stderr)
    return profiler


def _print_metrics(metrics, args, profiler=None) -> int:
    """Pipeline summary to stderr; counters to --bench-json; profiles
    next to it; baseline comparison last.  Returns the exit code the
    comparison demands (0 when clean or not requested)."""
    print(metrics.render(), file=sys.stderr)
    bench_json = getattr(args, "bench_json", None)
    if bench_json:
        metrics.write_json(bench_json)
        print(f"wrote {bench_json}", file=sys.stderr)
    if profiler is not None:
        out_dir = os.path.dirname(bench_json) or "." if bench_json else "."
        for path in profiler.write(out_dir):
            print(f"wrote {path}", file=sys.stderr)
    baseline_path = getattr(args, "compare", None)
    if baseline_path:
        from repro.engine.metrics import (compare_stage_walltimes,
                                          vector_speedup_floor)
        import json as _json
        with open(baseline_path) as handle:
            baseline = _json.load(handle)
        current = metrics.to_dict()
        regressions = compare_stage_walltimes(current, baseline)
        if regressions:
            print(f"stage regressions vs {baseline_path}:",
                  file=sys.stderr)
            for line in regressions:
                print(f"  {line}", file=sys.stderr)
            return _BENCH_REGRESSION_EXIT
        print(f"no stage regressions vs {baseline_path}",
              file=sys.stderr)
        if getattr(args, "engine", None) == "vector":
            # The vector engine additionally owes a speedup *floor*
            # over the committed fastpath baseline, not just absence
            # of regression.
            floor = vector_speedup_floor(current, baseline,
                                         min_speedup=_VECTOR_MIN_SPEEDUP)
            if floor:
                print(f"vector engine below its "
                      f"{_VECTOR_MIN_SPEEDUP:.1f}x speedup floor vs "
                      f"{baseline_path}:", file=sys.stderr)
                for line in floor:
                    print(f"  {line}", file=sys.stderr)
                return _BENCH_REGRESSION_EXIT
            print(f"vector speedup floor ({_VECTOR_MIN_SPEEDUP:.1f}x) "
                  f"met vs {baseline_path}", file=sys.stderr)
    return 0


def _suite_recovery_kwargs(args) -> dict:
    """Map --run-id/--resume/--retries onto ExperimentSuite fields."""
    kwargs: dict = {}
    resume = getattr(args, "resume", None)
    if resume:
        kwargs["run_id"] = resume
        kwargs["resume"] = True
    elif getattr(args, "run_id", None):
        kwargs["run_id"] = args.run_id
    retries = getattr(args, "retries", None)
    if retries is not None:
        from repro.engine.recovery.retry import RetryPolicy
        kwargs["retry"] = RetryPolicy(max_attempts=max(1, retries))
    return kwargs


def _announce_run(suite) -> None:
    if suite.run_id is not None:
        print(f"run id: {suite.run_id} (resume with --resume "
              f"{suite.run_id})", file=sys.stderr)


def _finish_run(suite) -> None:
    if suite.run_id is not None:
        print(suite.journal_summary(), file=sys.stderr)
    suite.close_journal()


def _options(args) -> ToolchainOptions:
    return ToolchainOptions(paranoid=getattr(args, "paranoid", False),
                            rollback=getattr(args, "rollback", False),
                            artifact_dir=getattr(args, "artifact_dir",
                                                 None))


def _watchdog(args) -> EmulationWatchdog | None:
    budget = getattr(args, "time_budget", None)
    if budget is None:
        return None
    return EmulationWatchdog(wall_clock_budget=budget)


def _print_degradations(compiled) -> None:
    for d in compiled.degradations:
        line = (f"degraded: skipped pass {d.pass_name!r} on "
                f"{d.function} ({d.error})")
        if d.artifact_path:
            line += f" [artifact: {d.artifact_path}]"
        print(line, file=sys.stderr)


def _read_source(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path) as handle:
        return handle.read()


def _cmd_compile(args) -> int:
    source = _read_source(args.file)
    base = frontend(source)
    profile = Profile.collect(base, inputs=None)
    compiled = compile_for_model(base, _MODELS[args.model], profile,
                                 _machine(args), _options(args))
    _print_degradations(compiled)
    print(format_program(compiled.program))
    return 0


def _cmd_run(args) -> int:
    source = _read_source(args.file)
    base = frontend(source)
    profile = Profile.collect(base, inputs=None)
    machine = _machine(args)
    model = _MODELS[args.model]
    options = _options(args)
    compiled = compile_for_model(base, model, profile, machine, options)
    _print_degradations(compiled)
    engine = args.engine
    if engine is None and args.stream:
        engine = "stream"
    result = run_compiled(compiled, inputs=None, watchdog=_watchdog(args),
                          engine=engine)
    scalar = run_compiled(
        compile_for_model(base, Model.SUPERBLOCK, profile,
                          scalar_machine(), options),
        watchdog=_watchdog(args))
    stats = result.stats
    print(f"model              : {model.value}")
    print(f"machine            : {machine.name}")
    print(f"result             : {result.return_value}")
    print(f"cycles             : {stats.cycles}")
    print(f"dynamic instrs     : {stats.dynamic_instructions} "
          f"({stats.suppressed_instructions} nullified)")
    print(f"branches           : {stats.branches} "
          f"({stats.mispredictions} mispredicted, "
          f"{stats.misprediction_rate * 100:.2f}%)")
    print(f"speedup vs 1-issue : "
          f"{scalar.stats.cycles / stats.cycles:.2f}")
    return 0


def _cmd_bench(args) -> int:
    if args.micro:
        from repro.fastpath import micro
        print(micro.render(micro.run_all(repeat=args.repeat)))
        return 0
    if args.name is None:
        print("error: a workload name is required unless --micro is "
              "given (see `repro list`)", file=sys.stderr)
        return 2
    workload = get_workload(args.name)
    suite = ExperimentSuite(workloads=[workload], scale=args.scale,
                            options=_options(args),
                            paranoid=args.paranoid,
                            wall_clock_budget=args.time_budget,
                            cache_dir=_cache_dir(args), jobs=args.jobs,
                            engine=args.engine,
                            **_suite_recovery_kwargs(args))
    _announce_run(suite)
    profiler = _attach_profiler(suite, args)
    machine = _machine(args)
    try:
        base = suite.baseline_cycles(workload.name)
        print(f"{workload.name} ({workload.stands_for}), "
              f"scale {args.scale}")
        print(f"{'model':<20s}{'cycles':>9s}{'speedup':>9s}{'instrs':>9s}"
              f"{'BR':>8s}{'MP':>7s}")
        for model in Model:
            run = suite.run(workload.name, model, machine)
            stats = run.stats
            print(f"{model.value:<20s}{stats.cycles:>9d}"
                  f"{base / stats.cycles:>9.2f}"
                  f"{stats.executed_instructions:>9d}"
                  f"{stats.branches:>8d}{stats.mispredictions:>7d}")
        if args.differential:
            _run_differential(workload, machine, args)
    except BaseException:
        suite.close_journal(ok=False)
        raise
    exit_code = _print_metrics(suite.metrics, args, profiler)
    _finish_run(suite)
    return exit_code


def _run_differential(workload, machine, args) -> None:
    """Prove legacy, fastpath, streaming and vector agree on every
    observable.

    Raises :class:`~repro.robustness.errors.ModelDivergenceError` (CLI
    exit code 15) on the first divergence.
    """
    from repro.robustness.differential import assert_fastpath_equivalent
    base = frontend(workload.source)
    inputs = workload.inputs(args.scale)
    profile = Profile.collect(base, inputs=inputs)
    options = _options(args)
    for model in Model:
        compiled = compile_for_model(base, model, profile, machine,
                                     options)
        assert_fastpath_equivalent(compiled, inputs=inputs,
                                   machine=machine,
                                   workload=workload.name)
        print(f"differential {workload.name}/{model.value}: legacy, "
              f"fastpath, streaming and vector agree", file=sys.stderr)


def _cmd_report(args) -> int:
    suite = ExperimentSuite(scale=args.scale, mode=args.mode,
                            options=_options(args),
                            paranoid=args.paranoid,
                            wall_clock_budget=args.time_budget,
                            cache_dir=_cache_dir(args), jobs=args.jobs,
                            engine=args.engine,
                            **_suite_recovery_kwargs(args))
    _announce_run(suite)
    profiler = _attach_profiler(suite, args)
    try:
        text = render_all(suite)
    except BaseException:
        suite.close_journal(ok=False)
        raise
    if suite.failures:
        text += "\n\n" + suite.failure_report()
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.output}")
    else:
        print(text)
    compare_exit = _print_metrics(suite.metrics, args, profiler)
    _finish_run(suite)
    if suite.failures:
        return 1
    return compare_exit


def _cmd_cache(args) -> int:
    cache_dir = args.cache_dir
    if args.action in ("stats", "clear") and not os.path.isdir(cache_dir):
        print(f"no artifact store at {cache_dir} (nothing cached yet — "
              f"run `repro report` or `repro bench` to populate it)")
        return 0
    store = ArtifactStore(cache_dir)
    if args.action == "stats":
        inventory = store.stats()
        if inventory.entries == 0:
            print(f"artifact store at {cache_dir} is empty (run "
                  f"`repro report` or `repro bench` to populate it)")
            return 0
        print(inventory.render())
        return 0
    if args.action == "fsck":
        from repro.engine.recovery.fsck import fsck_store
        report = fsck_store(store, repair=args.repair,
                            include_kernels=True)
        print(report.render())
        return 0 if report.clean or args.repair else 1
    removed = store.clear()
    print(f"removed {removed} artifacts from {cache_dir}")
    return 0


def _cmd_selftest(args) -> int:
    from repro.robustness.faults import (format_fault_reports,
                                         run_fault_campaign)
    reports = run_fault_campaign()
    print(format_fault_reports(reports))
    ok = all(r.ok for r in reports)
    if getattr(args, "chaos", False):
        from repro.robustness.chaos import (format_chaos_reports,
                                            run_chaos_campaign)
        chaos = run_chaos_campaign(jobs=args.jobs)
        print(format_chaos_reports(chaos))
        ok = ok and all(r.ok for r in chaos)
        from repro.service.chaos import run_service_chaos_campaign
        service = run_service_chaos_campaign()
        print(format_chaos_reports(service)
              .replace("engine chaos campaign",
                       "service chaos campaign"))
        ok = ok and all(r.ok for r in service)
        from repro.robustness.chaos import run_native_chaos_campaign
        native = run_native_chaos_campaign(jobs=args.jobs)
        print(format_chaos_reports(native)
              .replace("engine chaos campaign",
                       "native chaos campaign"))
        ok = ok and all(r.ok for r in native)
        from repro.service.chaos import run_cluster_chaos_campaign
        cluster = run_cluster_chaos_campaign()
        print(format_chaos_reports(cluster)
              .replace("engine chaos campaign",
                       "cluster chaos campaign"))
        ok = ok and all(r.ok for r in cluster)
    return 0 if ok else 1


def _cmd_native(args) -> int:
    """Probe, report and (optionally) rebuild the native kernel path."""
    from repro.fastpath import native, supervisor
    if getattr(args, "fresh", False):
        supervisor.reset_for_testing()
    available = native.available()
    for line in supervisor.status_lines():
        print(line)
    if available:
        return 0
    error = supervisor.last_error()
    if error is not None:
        print(f"last failure: {error}")
        return error.exit_code
    return 0


def _cmd_list(_args) -> int:
    for w in all_workloads():
        print(f"{w.name:<10s} {w.category:<8s} {w.stands_for}")
    return 0


# ----- experiment service ---------------------------------------------------


def _cmd_serve(args) -> int:
    from repro.service.breaker import BreakerConfig
    from repro.service.quota import QuotaConfig
    from repro.service.server import ServiceConfig, serve_forever
    try:
        config = ServiceConfig(
            cache_dir=args.cache_dir, host=args.host, port=args.port,
            jobs=args.jobs, workers=args.workers,
            queue_depth=args.queue_depth,
            quota=QuotaConfig(rate=args.quota_rate,
                              burst=args.quota_burst,
                              max_concurrent=args.quota_concurrent),
            breaker=BreakerConfig(),
            drain_grace=args.drain_grace,
            bench_json=args.bench_json)
    except ValueError as exc:
        raise ReproError(str(exc)) from exc
    return serve_forever(config)


def _service_client(args):
    from repro.service.client import ServiceClient
    return ServiceClient(host=args.host, port=args.port,
                         cache_dir=args.cache_dir)


def _submit_spec(args):
    from repro.service.spec import ServiceJobSpec
    targets = [bool(args.file), bool(args.workload), args.figures,
               bool(args.sweep)]
    if sum(targets) != 1:
        raise ReproError("submit needs exactly one of: a MiniC FILE, "
                         "--workload NAME, --figures, or --sweep SPEC")
    if args.sweep:
        from repro.sweep import SweepSpec
        return ServiceJobSpec(
            kind="sweep", sweep=SweepSpec.from_file(args.sweep).to_dict(),
            deadline=args.deadline)
    kind = "figures" if args.figures \
        else ("bench" if args.workload else "source")
    models = tuple(m.strip() for m in args.models.split(",")) \
        if args.models else ("superblock", "cmov", "fullpred")
    return ServiceJobSpec(
        kind=kind,
        source=_read_source(args.file) if kind == "source" else None,
        workload=args.workload if kind == "bench" else None,
        models=models, width=args.width, branches=args.branches,
        real_caches=args.real_caches, scale=args.scale,
        max_steps=args.max_steps, deadline=args.deadline)


def _emit_result(result_json: str, args) -> None:
    """Write the canonical result bytes verbatim (plus one newline)."""
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(result_json + "\n")
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(result_json)


def _cmd_submit(args) -> int:
    client = _service_client(args)
    response = client.submit(_submit_spec(args), tenant=args.tenant)
    job = response["job"]
    if response.get("deduped"):
        print(f"coalesced with in-flight job {job['job_id']} "
              f"(single-flight dedup)", file=sys.stderr)
    print(f"job {job['job_id']} {job['state']} "
          f"(run {job['run_id']})", file=sys.stderr)
    if not args.wait:
        print(job["job_id"])
        return 0
    _emit_result(client.result(job["job_id"], timeout=args.timeout),
                 args)
    return 0


def _cmd_status(args) -> int:
    import json as _json
    job = _service_client(args).status(args.job_id)
    if args.json:
        print(_json.dumps(job, indent=2, sort_keys=True))
        return 0
    line = f"job {job['job_id']}: {job['state']}"
    if job.get("error"):
        line += (f" ({job['error']['type']}: "
                 f"{job['error']['message']})")
    print(line + f" [tenant {job['tenant']}, mode {job['mode']}, "
                 f"observers {job['observers']}]")
    return 0


def _cmd_worker(args) -> int:
    from repro.service.cluster import run_worker
    outcome = run_worker(args.cache_dir, endpoint=args.endpoint,
                         once=args.once,
                         idle_timeout=args.idle_timeout,
                         max_shards=args.max_shards)
    print(f"worker {outcome.worker_id}: "
          f"{outcome.shards_completed} shard(s) completed, "
          f"{outcome.hedges_lost} hedge(s) lost, "
          f"{outcome.shards_failed} failed", file=sys.stderr)
    return 0


def _cmd_watch(args) -> int:
    client = _service_client(args)
    final = None
    for event in client.watch(args.job_id):
        if event.get("event") == "journal":
            record = event["record"]
            label = record.get("task") or record.get("run_id", "")
            print(f"{record['type']:<13s} {label}")
        elif event.get("event") == "progress":
            total = event.get("tasks_total")
            done = event.get("tasks_done", 0)
            bar = f"{done}/{total}" if total else str(done)
            print(f"{'progress':<13s} {bar} [{event.get('task', '')}]")
        elif event.get("event") == "end":
            final = event["job"]
    if final is None:
        raise ReproError("watch stream ended without a final state")
    print(f"job {final['job_id']}: {final['state']}", file=sys.stderr)
    if final["state"] == "failed":
        error = final.get("error") or {}
        print(f"error[{error.get('type', 'ReproError')}]: "
              f"{error.get('message', '')}", file=sys.stderr)
        return int(error.get("exit_code", ReproError.exit_code))
    return 0


# ----- sweep ----------------------------------------------------------------


def _cmd_sweep_run(args) -> int:
    from repro.engine.metrics import PipelineMetrics
    from repro.sweep import SweepSpec, run_sweep
    from repro.sweep.report import render
    spec = SweepSpec.from_file(args.spec)
    metrics = PipelineMetrics()
    profiler = None
    if args.profile:
        from repro.engine.profiling import StageProfiler
        profiler = StageProfiler()
        metrics.profiler = profiler
        if args.jobs > 1:
            print("note: --profile captures in-process work only; pool "
                  "workers (--jobs) are not profiled", file=sys.stderr)
    if getattr(args, "cluster", False):
        from repro.service.cluster import (ClusterConfig,
                                           run_cluster_sweep)
        cache_dir = _cache_dir(args)
        if cache_dir is None:
            raise ReproError("--cluster needs a cache dir (the shared "
                             "store is the coordination substrate)")
        config = ClusterConfig(
            shard_size=args.shard_size,
            expect_workers=args.expect_workers,
            worker_grace=args.worker_grace,
            lease_timeout=args.lease_timeout,
            require_workers=args.require_workers)
        outcome = run_cluster_sweep(spec, cache_dir, config,
                                    jobs=args.jobs, metrics=metrics,
                                    engine=args.engine,
                                    **_suite_recovery_kwargs(args))
    else:
        outcome = run_sweep(spec, cache_dir=_cache_dir(args),
                            jobs=args.jobs, metrics=metrics,
                            engine=args.engine,
                            **_suite_recovery_kwargs(args))
    if outcome.run_id is not None:
        print(f"run id: {outcome.run_id} (resume with --resume "
              f"{outcome.run_id})", file=sys.stderr)
    print(f"sweep {spec.name}: {outcome.points_total} points "
          f"({outcome.points_cached} warm, {outcome.resumed_tasks} "
          f"journal-resumed)", file=sys.stderr)
    result_json = outcome.result.to_json()
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(result_json + "\n")
        print(f"wrote {args.output}", file=sys.stderr)
    if args.report_text:
        print(render(outcome.result.to_dict()), end="")
    elif not args.output:
        print(result_json)
    return _print_metrics(metrics, args, profiler)


def _cmd_sweep_report(args) -> int:
    from repro.sweep import SweepResult
    from repro.sweep.report import render
    print(render(SweepResult.from_file(args.result).to_dict()), end="")
    return 0


def _cmd_sweep_diff(args) -> int:
    from repro.sweep import SweepResult
    from repro.sweep.report import diff
    print(diff(SweepResult.from_file(args.old).to_dict(),
               SweepResult.from_file(args.new).to_dict()), end="")
    return 0


# ----- fuzz -----------------------------------------------------------------


def _fuzz_config(args):
    from repro.fuzz.executor import ExecutorConfig
    return ExecutorConfig(max_steps=args.max_steps,
                          wall_budget=args.time_budget,
                          issue_width=args.width,
                          branch_issue_limit=args.branches)


def _write_fuzz_log(path: str, reports) -> None:
    """One JSON line per case, wall time excluded: two campaigns with
    the same seed/budget must produce byte-identical logs (CI diffs
    them to prove reproducibility)."""
    import json
    with open(path, "w") as handle:
        for report in reports:
            entry = report.to_dict()
            entry.pop("wall_seconds", None)
            handle.write(json.dumps(entry, sort_keys=True) + "\n")


def _cmd_fuzz_run(args) -> int:
    from repro.engine.metrics import PipelineMetrics
    from repro.fuzz.runner import run_campaign
    from repro.robustness.errors import FuzzFindingsError

    seed = int(args.seed, 0)
    metrics = PipelineMetrics()
    result = run_campaign(seed, args.budget, jobs=args.jobs,
                          config=_fuzz_config(args),
                          corpus_dir=args.corpus_dir,
                          save_findings=not args.no_save,
                          reduce_findings=not args.no_reduce,
                          metrics=metrics)
    if args.log:
        _write_fuzz_log(args.log, result.reports)
    print(f"fuzz campaign seed={seed:#x} budget={args.budget} "
          f"jobs={args.jobs}")
    print(f"  {result.case_count} cases in {result.wall_seconds:.1f}s "
          f"({result.cases_per_second:.2f}/s)")
    print(f"  {result.finding_count} findings, "
          f"{result.unique_findings} unique signatures")
    for key, bucket in result.buckets.items():
        print(f"  [{key}] {bucket.signature.describe()} "
              f"({bucket.count} witness(es), first {bucket.case_ids[0]})")
        reduction = result.reductions.get(key)
        if reduction is not None:
            _, stats = reduction
            print(f"    reduced {stats.original_lines} -> "
                  f"{stats.reduced_lines} lines "
                  f"({stats.shrink_ratio * 100:.0f}% shrink, "
                  f"{stats.tests_run} probes)")
    for entry_id in result.saved_entries:
        print(f"    saved corpus/{entry_id}")
    if args.bench_json:
        # Fold any existing bench baseline forward so a fuzz campaign
        # adds its throughput without clobbering the committed
        # per-stage timings that `report --compare` checks against.
        import json
        try:
            with open(args.bench_json) as handle:
                metrics.merge_dict(json.load(handle))
        except (OSError, ValueError):
            pass
        metrics.write_json(args.bench_json)
    if result.finding_count:
        raise FuzzFindingsError(
            f"{result.finding_count} finding(s), "
            f"{result.unique_findings} unique — reproducers saved under "
            f"corpus/", count=result.finding_count,
            unique=result.unique_findings)
    print("  no divergence, no crashes, no hangs")
    return 0


def _cmd_fuzz_replay(args) -> int:
    from repro.fuzz.corpus import list_entries, load_entry
    from repro.fuzz.executor import run_case
    from repro.fuzz.generator import FuzzCase
    from repro.robustness.errors import FuzzFindingsError

    if args.case is None and not args.all:
        print("error: give a corpus entry id or --all", file=sys.stderr)
        return 2
    entries = list_entries(args.corpus_dir) if args.all \
        else [load_entry(args.case, args.corpus_dir)]
    if not entries:
        print("corpus is empty (run `repro fuzz seed` first)")
        return 0
    config = _fuzz_config(args)
    failures = 0
    for entry in entries:
        case = FuzzCase(case_id=entry.entry_id, seed=0,
                        profile="corpus", source=entry.source,
                        inputs=entry.inputs)
        report = run_case(case, config)
        ok = report.verdict == entry.expect
        failures += 0 if ok else 1
        status = "ok" if ok else f"FAIL ({report.verdict})"
        print(f"  {entry.entry_id:<28s} expect={entry.expect:<8s} "
              f"{status}")
        if not ok and report.message:
            print(f"    {report.message}")
    print(f"replayed {len(entries)} corpus entries, "
          f"{failures} failure(s)")
    if failures:
        raise FuzzFindingsError(
            f"{failures} corpus entr(ies) no longer match their "
            f"expected verdict", count=failures, unique=failures)
    return 0


def _cmd_fuzz_corpus(args) -> int:
    from repro.fuzz.corpus import list_entries

    entries = list_entries(args.corpus_dir)
    if not entries:
        print("corpus is empty (run `repro fuzz seed` first)")
        return 0
    for entry in entries:
        lines = len(entry.source.splitlines())
        sig = ""
        if entry.signature:
            sig = (f"  sig={entry.signature.get('kind')}/"
                   f"{entry.signature.get('key')}")
        print(f"  {entry.entry_id:<28s} expect={entry.expect:<8s} "
              f"{lines:>4d} lines  {entry.provenance}{sig}")
    print(f"{len(entries)} corpus entries")
    return 0


def _cmd_fuzz_seed(args) -> int:
    from repro.fuzz.corpus import CorpusEntry, save_entry

    saved = 0
    for w in all_workloads():
        inputs = {name: list(values) if isinstance(values, bytes)
                  else values
                  for name, values in w.inputs(args.scale).items()}
        entry = CorpusEntry(entry_id=f"seed-{w.name}", source=w.source,
                            inputs=inputs, expect="ok",
                            provenance=f"seed:{w.name}",
                            notes=f"workload suite @ scale {args.scale}")
        save_entry(entry, args.corpus_dir)
        saved += 1
    quickstart = _load_quickstart_module()
    if quickstart is not None:
        entry = CorpusEntry(entry_id="seed-quickstart",
                            source=quickstart.SOURCE,
                            inputs=quickstart.make_inputs(n=200),
                            expect="ok",
                            provenance="seed:examples/quickstart.py",
                            notes="Figure 1 kernel from the quickstart")
        save_entry(entry, args.corpus_dir)
        saved += 1
    print(f"seeded {saved} corpus entries")
    return 0


def _load_quickstart_module():
    import importlib.util
    from pathlib import Path
    path = Path(__file__).resolve().parents[2] / "examples" \
        / "quickstart.py"
    if not path.is_file():
        return None
    spec = importlib.util.spec_from_file_location("_quickstart", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'A Comparison of Full and Partial "
                    "Predicated Execution Support for ILP Processors' "
                    "(ISCA 1995)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compile", help="compile a MiniC file and dump IR")
    p.add_argument("file", help="MiniC source file, or - for stdin")
    p.add_argument("--model", choices=sorted(_MODELS), default="fullpred")
    _add_machine_args(p)
    _add_robustness_args(p, watchdog=False)
    p.set_defaults(func=_cmd_compile)

    p = sub.add_parser("run", help="compile, emulate and simulate a file")
    p.add_argument("file", help="MiniC source file, or - for stdin")
    p.add_argument("--model", choices=sorted(_MODELS), default="fullpred")
    p.add_argument("--engine",
                   choices=("legacy", "fastpath", "stream", "vector"),
                   default=None,
                   help="execution backend (default fastpath; all "
                        "engines are byte-identical)")
    p.add_argument("--stream", action="store_true",
                   help="stream emulation chunks straight into the "
                        "cycle simulator (no full trace in memory); "
                        "same as --engine stream")
    _add_machine_args(p)
    _add_robustness_args(p)
    p.set_defaults(func=_cmd_run)

    p = sub.add_parser("bench", help="run one workload, all models")
    p.add_argument("name", nargs="?", default=None,
                   help="workload name (see `list`); optional with "
                        "--micro")
    p.add_argument("--scale", type=float, default=0.5)
    p.add_argument("--micro", action="store_true",
                   help="run the hot-loop timeit microbenchmarks "
                        "(benchmarks/perf/) instead of a workload")
    p.add_argument("--repeat", type=int, default=3,
                   help="timeit repetitions for --micro (default 3)")
    p.add_argument("--differential", action="store_true",
                   help="after benchmarking, prove the legacy, "
                        "fastpath, streaming and vector engines agree "
                        "on every observable")
    _add_machine_args(p)
    _add_robustness_args(p)
    _add_engine_args(p)
    _add_perf_args(p)
    p.set_defaults(func=_cmd_bench)

    for name, help_text in (
            ("report", "regenerate all figures/tables"),
            ("figures", "regenerate all figures/tables "
                        "(alias of report)")):
        p = sub.add_parser(name, help=help_text)
        p.add_argument("--scale", type=float, default=0.5)
        p.add_argument("-o", "--output", help="write to file")
        p.add_argument("--mode", choices=("strict", "degrade"),
                       default="strict",
                       help="strict: abort on the first failing "
                            "workload; degrade: quarantine it and "
                            "report at the end")
        _add_robustness_args(p)
        _add_engine_args(p)
        _add_perf_args(p)
        p.set_defaults(func=_cmd_report)

    p = sub.add_parser("cache",
                       help="inspect, verify or clear the artifact "
                            "store")
    p.add_argument("action", choices=("stats", "fsck", "clear"))
    p.add_argument("--cache-dir", default=_default_cache_dir(),
                   metavar="DIR",
                   help="artifact store directory (default "
                        "$REPRO_CACHE_DIR or .repro-cache)")
    p.add_argument("--repair", action="store_true",
                   help="with fsck: quarantine corrupt artifacts and "
                        "remove stale tmp files / expired locks")
    p.set_defaults(func=_cmd_cache)

    p = sub.add_parser("selftest",
                       help="fault-injection campaign: prove every "
                            "corruption class is caught")
    p.add_argument("--chaos", action="store_true",
                   help="add the engine, service and native chaos "
                        "campaigns: worker crashes, torn/corrupt "
                        "artifacts, timeouts, disk-full writes, "
                        "SIGKILL+resume, kernel segfaults, corrupted "
                        ".so caches and parity mismatches must all "
                        "recover or fail typed")
    p.add_argument("--jobs", type=int, default=2, metavar="N",
                   help="pool width for the chaos campaign (default 2)")
    p.set_defaults(func=_cmd_selftest)

    p = sub.add_parser("native",
                       help="probe the native kernel path: build, "
                            "sandbox-canary and parity-check the C "
                            "engine, then report the ladder state")
    p.add_argument("--fresh", action="store_true",
                   help="drop this process's cached supervisor state "
                        "first (forces a re-probe; the on-disk .so "
                        "cache still applies)")
    p.set_defaults(func=_cmd_native)

    p = sub.add_parser("fuzz",
                       help="differential fuzzing: campaign, corpus "
                            "replay, corpus management")
    fuzz_sub = p.add_subparsers(dest="fuzz_command", required=True)

    def _add_fuzz_exec_args(fp: argparse.ArgumentParser) -> None:
        fp.add_argument("--corpus-dir", default=None, metavar="DIR",
                        help="corpus root (default: ./corpus)")
        fp.add_argument("--max-steps", type=int, default=400_000,
                        help="emulation step budget per run "
                             "(default 400000)")
        fp.add_argument("--time-budget", type=float, default=10.0,
                        metavar="SECONDS",
                        help="wall-clock watchdog per engine run "
                             "(default 10)")
        fp.add_argument("--width", type=int, default=8,
                        help="issue width (default 8)")
        fp.add_argument("--branches", type=int, default=1,
                        help="branch issue limit (default 1)")

    fp = fuzz_sub.add_parser("run",
                             help="run a seeded differential campaign")
    fp.add_argument("--budget", type=int, default=100, metavar="N",
                    help="number of cases (default 100)")
    fp.add_argument("--seed", default="0xfeed", metavar="S",
                    help="master seed, any int literal "
                         "(default 0xfeed)")
    fp.add_argument("--jobs", type=int, default=1, metavar="J",
                    help="parallel scheduler workers (default 1)")
    fp.add_argument("--log", default=None, metavar="FILE",
                    help="write one JSON line per case (wall time "
                         "excluded, so equal-seed runs diff clean)")
    fp.add_argument("--no-reduce", action="store_true",
                    help="skip delta-debugging of findings")
    fp.add_argument("--no-save", action="store_true",
                    help="do not write findings to the corpus")
    fp.add_argument("--bench-json", default=None, metavar="FILE",
                    help="append fuzz throughput to a bench JSON file")
    _add_fuzz_exec_args(fp)
    fp.set_defaults(func=_cmd_fuzz_run)

    fp = fuzz_sub.add_parser("replay",
                             help="re-run corpus reproducers through "
                                  "the full differential check")
    fp.add_argument("case", nargs="?", default=None,
                    help="corpus entry id or directory")
    fp.add_argument("--all", action="store_true",
                    help="replay every corpus entry")
    _add_fuzz_exec_args(fp)
    fp.set_defaults(func=_cmd_fuzz_replay)

    fp = fuzz_sub.add_parser("corpus", help="list corpus entries")
    fp.add_argument("--corpus-dir", default=None, metavar="DIR")
    fp.set_defaults(func=_cmd_fuzz_corpus)

    fp = fuzz_sub.add_parser("seed",
                             help="seed the corpus from the workload "
                                  "suite and examples")
    fp.add_argument("--corpus-dir", default=None, metavar="DIR")
    fp.add_argument("--scale", type=float, default=0.1,
                    help="workload input scale for seeded entries "
                         "(default 0.1: replay must stay fast)")
    fp.set_defaults(func=_cmd_fuzz_seed)

    def _add_service_conn_args(sp: argparse.ArgumentParser) -> None:
        sp.add_argument("--cache-dir", default=_default_cache_dir(),
                        metavar="DIR",
                        help="service cache dir; its "
                             "service/service.json names the endpoint "
                             "(default $REPRO_CACHE_DIR or "
                             ".repro-cache)")
        sp.add_argument("--host", default=None,
                        help="server host (overrides discovery)")
        sp.add_argument("--port", type=int, default=None,
                        help="server port (overrides discovery)")

    p = sub.add_parser("sweep",
                       help="design-space sweeps: grid run, report, "
                            "diff")
    sweep_sub = p.add_subparsers(dest="sweep_cmd", required=True)

    sp = sweep_sub.add_parser(
        "run", help="expand a sweep spec into its machine lattice and "
                    "measure every point")
    sp.add_argument("spec", metavar="SPEC",
                    help="sweep spec file (.toml on Python 3.11+, or "
                         ".json)")
    sp.add_argument("-o", "--output", default=None, metavar="PATH",
                    help="write the canonical SweepResult JSON here "
                         "(default: stdout unless --report)")
    sp.add_argument("--report", action="store_true", dest="report_text",
                    help="print the rendered surface/Pareto report "
                         "instead of raw JSON")
    sp.add_argument("--cluster", action="store_true",
                    help="coordinate the campaign over registered "
                         "`repro worker` processes sharing the cache "
                         "dir (lease-based shards, orphan recovery, "
                         "byte-identical result)")
    sp.add_argument("--expect-workers", type=int, default=0,
                    metavar="N",
                    help="with --cluster: wait for N live workers "
                         "before falling back (default 0: any)")
    sp.add_argument("--worker-grace", type=float, default=5.0,
                    metavar="SECONDS",
                    help="with --cluster: how long to wait for workers "
                         "to register before degrading to the "
                         "in-process pool (default 5)")
    sp.add_argument("--shard-size", type=int, default=2, metavar="N",
                    help="with --cluster: lattice points per shard "
                         "(default 2)")
    sp.add_argument("--lease-timeout", type=float, default=6.0,
                    metavar="SECONDS",
                    help="with --cluster: a shard lease whose "
                         "heartbeat stalls this long is reassigned "
                         "(default 6)")
    sp.add_argument("--require-workers", action="store_true",
                    help="with --cluster: fail instead of degrading "
                         "to the in-process pool when no workers "
                         "register")
    _add_engine_args(sp)
    _add_perf_args(sp)
    sp.set_defaults(func=_cmd_sweep_run)

    sp = sweep_sub.add_parser("report",
                              help="render a stored SweepResult JSON")
    sp.add_argument("result", metavar="RESULT_JSON")
    sp.set_defaults(func=_cmd_sweep_report)

    sp = sweep_sub.add_parser(
        "diff", help="compare two SweepResult files point-for-point")
    sp.add_argument("old", metavar="OLD_JSON")
    sp.add_argument("new", metavar="NEW_JSON")
    sp.set_defaults(func=_cmd_sweep_diff)

    p = sub.add_parser("serve",
                       help="run the multi-tenant experiment service")
    p.add_argument("--cache-dir", default=_default_cache_dir(),
                   metavar="DIR",
                   help="shared artifact store + service state "
                        "(default $REPRO_CACHE_DIR or .repro-cache)")
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=0,
                   help="TCP port (default 0: OS-assigned, recorded "
                        "in <cache-dir>/service/service.json)")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="process-pool width per job execution "
                        "(default 1)")
    p.add_argument("--workers", type=int, default=2, metavar="N",
                   help="concurrent job executions (default 2)")
    p.add_argument("--queue-depth", type=int, default=16, metavar="N",
                   help="admission queue bound; submissions past it "
                        "are shed with exit 19 (default 16)")
    p.add_argument("--quota-rate", type=float, default=2.0,
                   metavar="R", help="per-tenant submissions/second "
                                     "refill (default 2)")
    p.add_argument("--quota-burst", type=int, default=8, metavar="N",
                   help="per-tenant submission burst (default 8)")
    p.add_argument("--quota-concurrent", type=int, default=4,
                   metavar="N", help="per-tenant concurrent jobs "
                                     "(default 4)")
    p.add_argument("--drain-grace", type=float, default=30.0,
                   metavar="SECONDS",
                   help="SIGTERM drain grace before handing unfinished "
                        "jobs to the next instance (default 30)")
    p.add_argument("--bench-json", metavar="PATH",
                   help="merge + write service pipeline metrics here "
                        "on drain")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("submit",
                       help="submit a job to a running service")
    p.add_argument("file", nargs="?", default=None, metavar="FILE",
                   help="MiniC source file ('-' for stdin)")
    p.add_argument("--workload", default=None, metavar="NAME",
                   help="submit a registered workload instead")
    p.add_argument("--figures", action="store_true",
                   help="submit the whole figure suite")
    p.add_argument("--sweep", default=None, metavar="SPEC",
                   help="submit a design-space sweep spec file "
                        "(.toml/.json, see EXPERIMENTS.md)")
    _add_machine_args(p)
    p.add_argument("--models", default=None, metavar="A,B",
                   help="comma-separated subset of "
                        "superblock,cmov,fullpred (default all)")
    p.add_argument("--scale", type=float, default=0.5,
                   help="workload scale factor (default 0.5)")
    p.add_argument("--max-steps", type=int, default=20_000_000,
                   help="emulation step budget (default 20M)")
    p.add_argument("--deadline", type=float, default=None,
                   metavar="SECONDS",
                   help="wall-clock deadline from admission; expiry "
                        "fails the job with exit 21")
    p.add_argument("--tenant", default="default",
                   help="tenant the job is charged to")
    p.add_argument("--wait", action="store_true",
                   help="block until the job finishes and print its "
                        "canonical result JSON")
    p.add_argument("--timeout", type=float, default=None,
                   metavar="SECONDS",
                   help="stop waiting after this long (job keeps "
                        "running)")
    p.add_argument("-o", "--output", default=None, metavar="PATH",
                   help="with --wait: write the result JSON here "
                        "verbatim")
    _add_service_conn_args(p)
    p.set_defaults(func=_cmd_submit)

    p = sub.add_parser("status", help="show one service job's record")
    p.add_argument("job_id", metavar="JOB_ID")
    p.add_argument("--json", action="store_true",
                   help="print the full record as JSON")
    _add_service_conn_args(p)
    p.set_defaults(func=_cmd_status)

    p = sub.add_parser("watch",
                       help="stream a service job's journal progress")
    p.add_argument("job_id", metavar="JOB_ID")
    _add_service_conn_args(p)
    p.set_defaults(func=_cmd_watch)

    p = sub.add_parser("worker",
                       help="join a distributed sweep campaign: claim "
                            "shard leases, heartbeat, commit results")
    p.add_argument("--cache-dir", default=_default_cache_dir(),
                   metavar="DIR",
                   help="shared store the campaign coordinates "
                        "through (default $REPRO_CACHE_DIR or "
                        ".repro-cache)")
    p.add_argument("--endpoint", default=None, metavar="HOST:PORT",
                   help="claim shards via a running `repro serve` "
                        "instead of direct store access")
    p.add_argument("--once", action="store_true",
                   help="exit after the first idle claim instead of "
                        "polling for new campaigns")
    p.add_argument("--idle-timeout", type=float, default=60.0,
                   metavar="SECONDS",
                   help="exit after this long with nothing to claim "
                        "(default 60)")
    p.add_argument("--max-shards", type=int, default=0, metavar="N",
                   help="exit after completing N shards (default 0: "
                        "unlimited)")
    p.set_defaults(func=_cmd_worker)

    p = sub.add_parser("list", help="list registered workloads")
    p.set_defaults(func=_cmd_list)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error[{type(exc).__name__}]: {exc}", file=sys.stderr)
        return exc.exit_code
    except EmulationFault as exc:
        print(f"error[{type(exc).__name__}]: {exc}", file=sys.stderr)
        return _EMULATION_FAULT_EXIT
    except (IRError, LexError, ParseError, SemaError) as exc:
        print(f"error[{type(exc).__name__}]: {exc}", file=sys.stderr)
        return _IR_ERROR_EXIT
    except OSError as exc:
        print(f"error[{type(exc).__name__}]: {exc}", file=sys.stderr)
        return ReproError.exit_code


if __name__ == "__main__":
    sys.exit(main())
