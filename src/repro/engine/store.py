"""Content-addressed on-disk artifact store.

Layout::

    <root>/v<SCHEMA_VERSION>/<kind>/<key[:2]>/<key>.art
    <root>/quarantine/<kind>/...        (corrupt files moved aside)
    <root>/runs/<RUN_ID>.jsonl          (run journals; see recovery)

``key`` is a :func:`repro.engine.keys.stable_digest` of the artifact's
inputs, so the path *is* the cache lookup.  Writes take an advisory
file lock with a lease (:class:`~repro.engine.recovery.locks.FileLock`)
and then go through an fsync'd temporary file in the same directory
followed by :func:`os.replace` — concurrent writers (pool workers, or a
resumed run racing a stale worker) serialize on the lock and the rename
is atomic, so a reader never observes a torn file.

Reads verify the envelope digest (:func:`repro.engine.serialize.unpack`).
A corrupt envelope is *quarantined* (moved under ``quarantine/``) and
reported as a cache miss, so the pipeline recomputes and rewrites the
artifact instead of crashing the suite; the quarantined bytes stay on
disk for post-mortem.  ``repro cache fsck`` scans the whole store the
same way (:func:`repro.engine.recovery.fsck.fsck_store`).

Version invalidation is structural: artifacts live under a
``v<SCHEMA_VERSION>`` directory, so bumping the schema version orphans
every old artifact without any migration logic.  ``stats()`` reports
stale versions and ``clear()`` removes everything.
"""

from __future__ import annotations

import hashlib
import os
import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.engine.keys import KINDS, SCHEMA_VERSION
from repro.engine.metrics import PipelineMetrics
from repro.engine.recovery.locks import (DEFAULT_LEASE_SECONDS,
                                         DEFAULT_TIMEOUT, FileLock)
from repro.engine.serialize import pack, unpack
from repro.robustness.errors import TraceIntegrityError

_SUFFIX = ".art"
_QUARANTINE_DIR = "quarantine"
#: store-internal directories that are not artifact version dirs
RESERVED_DIRS = (_QUARANTINE_DIR, "runs")


@dataclass
class StoreStats:
    """Inventory of one store root."""

    root: str
    entries: int = 0
    total_bytes: int = 0
    by_kind: dict[str, int] = field(default_factory=dict)
    bytes_by_kind: dict[str, int] = field(default_factory=dict)
    #: other vN directories present (orphaned by schema bumps)
    stale_versions: list[str] = field(default_factory=list)
    #: files moved aside by corruption recovery / fsck
    quarantined: int = 0

    def render(self) -> str:
        lines = [f"artifact store at {self.root}",
                 f"  schema version : v{SCHEMA_VERSION}",
                 f"  artifacts      : {self.entries} "
                 f"({self.total_bytes / 1024:.1f} KiB)"]
        for kind in KINDS:
            if self.by_kind.get(kind):
                lines.append(
                    f"    {kind:<9s}: {self.by_kind[kind]:>5d}  "
                    f"{self.bytes_by_kind.get(kind, 0) / 1024:>9.1f} KiB")
        if self.stale_versions:
            lines.append(f"  stale versions : "
                         f"{', '.join(self.stale_versions)} "
                         f"(run `repro cache clear` to reclaim)")
        if self.quarantined:
            lines.append(f"  quarantined    : {self.quarantined} "
                         f"(run `repro cache fsck` for details)")
        return "\n".join(lines)


class ArtifactStore:
    """Digest-addressed artifact cache rooted at one directory."""

    def __init__(self, root: str | os.PathLike,
                 metrics: PipelineMetrics | None = None,
                 locking: bool = True,
                 lock_timeout: float = DEFAULT_TIMEOUT,
                 lease_seconds: float = DEFAULT_LEASE_SECONDS):
        self.root = Path(root)
        self.version_dir = self.root / f"v{SCHEMA_VERSION}"
        self.metrics = metrics if metrics is not None else PipelineMetrics()
        self.locking = locking
        self.lock_timeout = lock_timeout
        self.lease_seconds = lease_seconds
        #: fault-injection / accounting hook called with
        #: ``(kind, key, nbytes)`` right before the bytes hit disk;
        #: raising ``OSError`` here simulates a full disk (chaos tests)
        self.write_hook: Callable[[str, str, int], None] | None = None

    def _path(self, kind: str, key: str) -> Path:
        if kind not in KINDS:
            raise ValueError(f"unknown artifact kind {kind!r}")
        return self.version_dir / kind / key[:2] / f"{key}{_SUFFIX}"

    def _lock_for(self, path: Path) -> FileLock:
        return FileLock(path.with_name(path.name + ".lock"),
                        lease_seconds=self.lease_seconds,
                        timeout=self.lock_timeout)

    # ----- access -------------------------------------------------------

    def get(self, kind: str, key: str) -> Any | None:
        """Load an artifact; None on a miss *or* quarantined corruption.

        A present-but-corrupt artifact (torn write, flipped bit, schema
        skew inside the envelope) raises
        :class:`~repro.robustness.errors.TraceIntegrityError` internally,
        is moved to ``quarantine/`` and counted as a miss — the caller
        recomputes and rewrites a valid artifact.  Corruption is never
        silently *served*; it is also never allowed to crash a suite
        that could simply recompute.
        """
        path = self._path(kind, key)
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            self.metrics.record_miss(kind)
            return None
        try:
            payload = unpack(blob, expect_kind=kind)
        except TraceIntegrityError as exc:
            self.quarantine(kind, key, reason=str(exc))
            self.metrics.record_miss(kind)
            return None
        self.metrics.record_hit(kind, len(blob))
        return payload

    def put(self, kind: str, key: str, payload: Any) -> None:
        """Durably persist an artifact (locked, fsync'd, atomic rename)."""
        path = self._path(kind, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        blob = pack(kind, payload)
        self.metrics.record_write(kind, len(blob))
        lock = self._lock_for(path) if self.locking else None
        if lock is not None:
            lock.acquire()
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        try:
            if self.write_hook is not None:
                self.write_hook(kind, key, len(blob))
            with open(tmp, "wb") as handle:
                handle.write(blob)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        finally:
            if tmp.exists():
                tmp.unlink(missing_ok=True)
            if lock is not None:
                lock.release()

    def contains(self, kind: str, key: str) -> bool:
        """Presence probe; does not touch hit/miss counters."""
        return self._path(kind, key).exists()

    def digest_of(self, kind: str, key: str) -> str | None:
        """SHA-256 of the artifact file's bytes (None when absent).

        This is the digest the run journal records at task-finish and
        re-verifies on ``--resume`` — over the *whole envelope*, so a
        torn header is caught as readily as a flipped body bit.
        """
        try:
            return hashlib.sha256(
                self._path(kind, key).read_bytes()).hexdigest()
        except FileNotFoundError:
            return None

    # ----- quarantine ---------------------------------------------------

    @property
    def quarantine_dir(self) -> Path:
        return self.root / _QUARANTINE_DIR

    def quarantine(self, kind: str, key: str,
                   reason: str = "") -> Path | None:
        """Move a (presumed corrupt) artifact out of the lookup path."""
        return self.quarantine_file(self._path(kind, key), kind, reason)

    def quarantine_file(self, path: Path, kind: str,
                        reason: str = "") -> Path | None:
        """Move ``path`` under ``quarantine/<kind>/``; returns the new
        location, or None when the file vanished first (a concurrent
        reader already quarantined it — not an error)."""
        dest_dir = self.quarantine_dir / kind
        dest_dir.mkdir(parents=True, exist_ok=True)
        dest = dest_dir / path.name
        if dest.exists():  # repeat offender: keep each copy
            dest = dest_dir / f"{path.name}.{os.getpid()}" \
                              f".{os.urandom(3).hex()}"
        try:
            os.replace(path, dest)
        except FileNotFoundError:
            return None
        if reason:
            dest.with_name(dest.name + ".reason").write_text(
                reason + "\n")
        self.metrics.record_quarantine(kind)
        return dest

    # ----- maintenance --------------------------------------------------

    def stats(self) -> StoreStats:
        stats = StoreStats(root=str(self.root))
        if self.root.is_dir():
            for entry in sorted(self.root.iterdir()):
                if entry.is_dir() and entry.name.startswith("v") \
                        and entry != self.version_dir \
                        and entry.name not in RESERVED_DIRS:
                    stats.stale_versions.append(entry.name)
        if self.quarantine_dir.is_dir():
            stats.quarantined = sum(
                1 for p in self.quarantine_dir.rglob(f"*{_SUFFIX}*")
                if p.is_file() and not p.name.endswith(".reason"))
        if not self.version_dir.is_dir():
            return stats
        for kind_dir in sorted(self.version_dir.iterdir()):
            if not kind_dir.is_dir():
                continue
            count = 0
            kind_bytes = 0
            for path in kind_dir.rglob(f"*{_SUFFIX}"):
                count += 1
                kind_bytes += path.stat().st_size
            if count:
                stats.by_kind[kind_dir.name] = count
                stats.bytes_by_kind[kind_dir.name] = kind_bytes
                stats.entries += count
                stats.total_bytes += kind_bytes
        return stats

    def clear(self) -> int:
        """Remove every artifact (all schema versions); returns count."""
        removed = 0
        if not self.root.is_dir():
            return 0
        for entry in list(self.root.iterdir()):
            if entry.is_dir() and entry.name.startswith("v") \
                    and entry.name not in RESERVED_DIRS:
                removed += sum(1 for _ in entry.rglob(f"*{_SUFFIX}"))
                shutil.rmtree(entry)
        return removed
